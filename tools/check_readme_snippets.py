#!/usr/bin/env python3
"""Docs lint: README code snippets must not drift from their source files.

Every fenced code block in README.md that is immediately preceded by a
marker comment of the form

    <!-- snippet: examples/quickstart.cpp -->

must appear *verbatim* (as a contiguous substring) in the named file.
Exits non-zero listing each stale snippet otherwise.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
README = ROOT / "README.md"

MARKER = re.compile(
    r"<!--\s*snippet:\s*(?P<path>\S+)\s*-->\s*\n```[^\n]*\n(?P<body>.*?)```",
    re.DOTALL,
)


def main() -> int:
    text = README.read_text()
    snippets = list(MARKER.finditer(text))
    if not snippets:
        print("error: README.md contains no tagged snippets "
              "(expected '<!-- snippet: <file> -->' markers)")
        return 1
    failures = 0
    for m in snippets:
        rel, body = m.group("path"), m.group("body")
        src = ROOT / rel
        if not src.exists():
            print(f"error: README snippet references missing file {rel}")
            failures += 1
            continue
        if body not in src.read_text():
            line = text.count("\n", 0, m.start()) + 1
            print(f"error: README.md:{line}: snippet drifted from {rel}:")
            for snippet_line in body.rstrip("\n").split("\n"):
                print(f"    {snippet_line}")
            failures += 1
    if failures:
        return 1
    print(f"ok: {len(snippets)} README snippet(s) match their sources")
    return 0


if __name__ == "__main__":
    sys.exit(main())
