// ufilter_server: the network front end as a process. Serves the chain
// fixture over the net/ wire protocol, with WAL durability and graceful
// drain on SIGTERM/SIGINT.
//
//   ufilter_server [--port=N] [--wal=PATH] [--depth=N] [--rows=N]
//                  [--workers=N] [--queue=N] [--fsync=always|group|never]
//                  [--metrics-port=N] [--metrics-dump=PATH]
//                  [--trace-dump=PATH] [--trace-sample=M]
//                  [--slow-check-ms=N] [--slow-check-log=PATH]
//                  [--repl-port=N] [--follow=HOST:PORT]
//
// Replication: --repl-port (requires --wal) starts the epoch-stream
// replication source on that port (0 = ephemeral; printed as "REPL <port>"
// on stdout before READY). --follow turns the process into a read replica:
// it subscribes to the primary's replication endpoint, applies the shipped
// epoch stream, serves check-only traffic from pinned snapshots, and
// answers every apply with kRedirectToPrimary naming HOST:PORT. A follower
// given --wal re-logs applied epochs locally and persists wire bootstraps
// as <wal>.ckpt, so a killed follower recovers locally and resumes from
// its own epoch instead of re-shipping the whole state.
//
// Observability: --metrics-port starts a Prometheus text endpoint (curl
// it or point a scrape_config at it); --metrics-dump / --trace-dump write
// a final Prometheus snapshot / the sampled-trace ring (Chrome trace-event
// JSON, loadable in chrome://tracing or Perfetto) at drain;
// --trace-sample=M samples one full trace per M requests (default 64,
// 0 = off); --slow-check-ms logs a structured JSON line for every check
// slower than N ms (to stderr, or --slow-check-log=PATH).
//
// Startup: if --wal names an existing non-empty file the database is
// recovered from it (the seeding and every later apply replay from the
// log); otherwise a fresh chain is populated *through* the WAL so a later
// restart replays it identically. Once serving, the process prints
//
//   READY <port>
//
// on stdout (and flushes), which is the line the crash-restart test and
// bench_server wait for. SIGTERM/SIGINT trigger a graceful drain: stop
// accepting, finish or deadline-expire in-flight requests, sync the WAL,
// exit 0. kill -9 at any point must lose nothing the WAL certified —
// that is exactly what tests/net/crash_restart_test.cc proves.
#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <sys/stat.h>

#include "fixtures/synthetic.h"
#include "net/metrics_http.h"
#include "net/replication.h"
#include "net/server.h"
#include "obs/prometheus.h"
#include "relational/database.h"
#include "relational/wal.h"
#include "ufilter/checker.h"

namespace {

struct Args {
  uint16_t port = 0;
  std::string wal_path;
  int depth = 3;
  int rows = 64;
  int workers = 2;
  size_t queue = 256;
  ufilter::relational::FsyncPolicy fsync =
      ufilter::relational::FsyncPolicy::kGroup;
  /// 0 = no Prometheus HTTP endpoint.
  int metrics_port = -1;
  std::string metrics_dump_path;
  std::string trace_dump_path;
  uint32_t trace_sample = 64;
  int slow_check_ms = 0;
  std::string slow_check_log_path;
  /// -1 = no replication source; 0 = ephemeral port.
  int repl_port = -1;
  /// Follower mode: the primary's replication endpoint ("host:port").
  std::string follow_host;
  uint16_t follow_port = 0;
  std::string follow_raw;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--port", &v)) {
      args->port = static_cast<uint16_t>(std::atoi(v));
    } else if (ParseFlag(argv[i], "--wal", &v)) {
      args->wal_path = v;
    } else if (ParseFlag(argv[i], "--depth", &v)) {
      args->depth = std::atoi(v);
    } else if (ParseFlag(argv[i], "--rows", &v)) {
      args->rows = std::atoi(v);
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      args->workers = std::atoi(v);
    } else if (ParseFlag(argv[i], "--queue", &v)) {
      args->queue = static_cast<size_t>(std::atoll(v));
    } else if (ParseFlag(argv[i], "--metrics-port", &v)) {
      args->metrics_port = std::atoi(v);
    } else if (ParseFlag(argv[i], "--metrics-dump", &v)) {
      args->metrics_dump_path = v;
    } else if (ParseFlag(argv[i], "--trace-dump", &v)) {
      args->trace_dump_path = v;
    } else if (ParseFlag(argv[i], "--trace-sample", &v)) {
      args->trace_sample = static_cast<uint32_t>(std::atoi(v));
    } else if (ParseFlag(argv[i], "--slow-check-ms", &v)) {
      args->slow_check_ms = std::atoi(v);
    } else if (ParseFlag(argv[i], "--slow-check-log", &v)) {
      args->slow_check_log_path = v;
    } else if (ParseFlag(argv[i], "--repl-port", &v)) {
      args->repl_port = std::atoi(v);
    } else if (ParseFlag(argv[i], "--follow", &v)) {
      args->follow_raw = v;
      const char* colon = std::strrchr(v, ':');
      if (colon == nullptr || colon == v || colon[1] == '\0') {
        std::fprintf(stderr, "--follow wants HOST:PORT, got: %s\n", v);
        return false;
      }
      args->follow_host.assign(v, static_cast<size_t>(colon - v));
      args->follow_port = static_cast<uint16_t>(std::atoi(colon + 1));
    } else if (ParseFlag(argv[i], "--fsync", &v)) {
      if (std::strcmp(v, "always") == 0) {
        args->fsync = ufilter::relational::FsyncPolicy::kAlways;
      } else if (std::strcmp(v, "group") == 0) {
        args->fsync = ufilter::relational::FsyncPolicy::kGroup;
      } else if (std::strcmp(v, "never") == 0) {
        args->fsync = ufilter::relational::FsyncPolicy::kNever;
      } else {
        std::fprintf(stderr, "unknown --fsync policy: %s\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

bool FileHasBytes(const std::string& path) {
  struct stat st;
  return !path.empty() && ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  // Block the shutdown signals in every thread the server will spawn;
  // the main thread collects them with sigwait below.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  auto db_result = ufilter::relational::Database::Create(
      ufilter::fixtures::MakeChainSchema(args.depth));
  if (!db_result.ok()) {
    std::fprintf(stderr, "Database::Create failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ufilter::relational::Database> db = std::move(*db_result);

  const bool follower_mode = !args.follow_raw.empty();
  if (args.repl_port >= 0 && args.wal_path.empty()) {
    std::fprintf(stderr, "--repl-port requires --wal (the stream is the "
                         "WAL)\n");
    return 2;
  }

  ufilter::relational::DurabilityOptions dopts;
  dopts.wal_path = args.wal_path;
  dopts.fsync_policy = args.fsync;
  if (follower_mode && !args.wal_path.empty()) {
    // Wire bootstraps persist here, so a follower restart recovers locally
    // and resumes from its own epoch instead of re-shipping the state.
    dopts.checkpoint_path = args.wal_path + ".ckpt";
  }

  const bool recovering = FileHasBytes(args.wal_path);
  if (recovering) {
    ufilter::Status st = db->RecoverFrom(dopts);
    if (!st.ok()) {
      std::fprintf(stderr, "WAL recovery failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!args.wal_path.empty()) {
    ufilter::Status st = db->EnableDurability(dopts);
    if (!st.ok()) {
      std::fprintf(stderr, "EnableDurability failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (!recovering && !follower_mode) {
    // A follower never seeds: its entire state ships from the primary.
    // Fresh start: seed through the WAL so a restart replays it.
    ufilter::Status st =
        ufilter::fixtures::PopulateChain(db.get(), args.depth, args.rows);
    if (!st.ok()) {
      std::fprintf(stderr, "PopulateChain failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    if (!args.wal_path.empty()) {
      // Publication is lazy (first snapshot/writer triggers it). Force the
      // seed epoch into the WAL now, or a zero-traffic kill would leave a
      // magic-only file that a restart "recovers" into an empty database.
      auto epoch = db->PublishVersion();
      if (!epoch.ok()) {
        std::fprintf(stderr, "seed publish failed: %s\n",
                     epoch.status().ToString().c_str());
        return 1;
      }
      st = db->SyncWal();
      if (!st.ok()) {
        std::fprintf(stderr, "seed WAL sync failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    }
  }

  auto uf = ufilter::check::UFilter::Create(
      db.get(), ufilter::fixtures::ChainViewQuery(args.depth));
  if (!uf.ok()) {
    std::fprintf(stderr, "UFilter::Create failed: %s\n",
                 uf.status().ToString().c_str());
    return 1;
  }

  ufilter::net::ServerOptions sopts;
  sopts.port = args.port;
  if (follower_mode) sopts.redirect_primary = args.follow_raw;
  sopts.service.worker_threads = args.workers;
  sopts.service.queue_capacity = args.queue;
  sopts.service.trace.sample_every = args.trace_sample;
  sopts.service.slow_log.threshold_ns =
      static_cast<uint64_t>(args.slow_check_ms) * 1000000ull;
  if (!args.slow_check_log_path.empty()) {
    sopts.service.slow_log.path = args.slow_check_log_path;
  }
  auto server = ufilter::net::Server::Start(uf->get(), sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "Server::Start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  auto render = [&server] {
    return ufilter::obs::RenderPrometheus(
        (*server)->service().registry().Collect());
  };
  ufilter::net::MetricsHttpServer metrics_http;
  if (args.metrics_port >= 0) {
    ufilter::Status st = metrics_http.Start(
        static_cast<uint16_t>(args.metrics_port), render);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics endpoint failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics on 127.0.0.1:%u\n",
                 static_cast<unsigned>(metrics_http.port()));
  }

  std::unique_ptr<ufilter::net::ReplicationSource> repl;
  if (args.repl_port >= 0) {
    ufilter::net::ReplicationSourceOptions ropts;
    ropts.port = static_cast<uint16_t>(args.repl_port);
    ropts.wal_path = args.wal_path;
    auto started = ufilter::net::ReplicationSource::Start(
        db.get(), &(*server)->service().registry(), ropts);
    if (!started.ok()) {
      std::fprintf(stderr, "ReplicationSource::Start failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    repl = std::move(*started);
    std::printf("REPL %u\n", static_cast<unsigned>(repl->port()));
    std::fflush(stdout);
  }

  std::unique_ptr<ufilter::net::Follower> follower;
  if (follower_mode) {
    ufilter::net::FollowerOptions fopts;
    fopts.host = args.follow_host;
    fopts.port = args.follow_port;
    fopts.checkpoint_path = dopts.checkpoint_path;
    follower =
        ufilter::net::Follower::Start(&(*server)->service(), db.get(), fopts);
  }

  std::printf("READY %u\n", static_cast<unsigned>((*server)->port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: draining\n", sig);
  if (follower != nullptr) {
    follower->Stop();
    ufilter::Status st = follower->status();
    if (!st.ok()) {
      std::fprintf(stderr, "replication apply failed: %s\n",
                   st.ToString().c_str());
    }
  }
  if (repl != nullptr) repl->Stop();
  (*server)->Drain();
  metrics_http.Stop();

  // Post-drain dumps: every in-flight request has finished, so the
  // snapshot and the trace ring are final.
  if (!args.metrics_dump_path.empty()) {
    std::FILE* f = std::fopen(args.metrics_dump_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_dump_path.c_str());
      return 1;
    }
    std::string text = render();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  if (!args.trace_dump_path.empty()) {
    std::FILE* f = std::fopen(args.trace_dump_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.trace_dump_path.c_str());
      return 1;
    }
    std::string json = (*server)->service().tracer().ExportChromeJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  return 0;
}
