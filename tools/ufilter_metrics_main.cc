// ufilter_metrics: scrapes a running ufilter_server's full metric
// registry over the wire protocol (kMetricsRequest) and prints it as
// Prometheus text. Doubles as the CI health gate:
//
//   ufilter_metrics --port=N [--host=H]
//                   [--require=NAME]...   # fail unless present AND nonzero
//                   [--expect=NAME]...    # fail unless present
//
// Exit codes: 0 all gates passed, 1 a gate failed, 2 usage, 3 unreachable.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.h"
#include "obs/prometheus.h"

namespace {

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

/// A metric's scalar reading: counter/gauge value, or a histogram's count.
uint64_t MetricReading(const ufilter::net::WireMetric& m) {
  return m.kind == 2 ? m.hist_count : m.value;
}

}  // namespace

int main(int argc, char** argv) {
  ufilter::net::ClientOptions copts;
  std::vector<std::string> require;
  std::vector<std::string> expect;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--host", &v)) {
      copts.host = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      copts.port = static_cast<uint16_t>(std::atoi(v));
    } else if (ParseFlag(argv[i], "--require", &v)) {
      require.push_back(v);
    } else if (ParseFlag(argv[i], "--expect", &v)) {
      expect.push_back(v);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (copts.port == 0) {
    std::fprintf(stderr, "usage: ufilter_metrics --port=N [--host=H] "
                         "[--require=NAME]... [--expect=NAME]... [--quiet]\n");
    return 2;
  }

  ufilter::net::Client client(copts);
  auto metrics = client.Metrics();
  if (!metrics.ok()) {
    std::fprintf(stderr, "scrape failed: %s\n",
                 metrics.status().ToString().c_str());
    return 3;
  }

  if (!quiet) {
    std::fputs(
        ufilter::obs::RenderPrometheus(ufilter::net::SnapshotFromMetrics(
                                           *metrics))
            .c_str(),
        stdout);
  }

  int failures = 0;
  for (const std::string& name : expect) {
    if (metrics->Find(name) == nullptr) {
      std::fprintf(stderr, "FAIL: expected series '%s' is missing\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : require) {
    const ufilter::net::WireMetric* m = metrics->Find(name);
    if (m == nullptr) {
      std::fprintf(stderr, "FAIL: required series '%s' is missing\n",
                   name.c_str());
      ++failures;
    } else if (MetricReading(*m) == 0) {
      std::fprintf(stderr, "FAIL: required series '%s' is zero\n",
                   name.c_str());
      ++failures;
    } else {
      std::fprintf(stderr, "ok: %s = %" PRIu64 "\n", name.c_str(),
                   MetricReading(*m));
    }
  }
  return failures == 0 ? 0 : 1;
}
