#!/usr/bin/env python3
"""Summarize and compare BENCH_<name>.json files (Google Benchmark JSON).

Usage:
  compare_bench.py CURRENT.json                 # summary table
  compare_bench.py CURRENT.json BASELINE.json   # per-benchmark speedups
  compare_bench.py --check CURRENT.json         # validate (CI perf-smoke)
  compare_bench.py CURRENT.json --pair A B --min-speedup 5
      # assert mean(real_time of benchmarks starting with A)
      #      / mean(real_time of benchmarks starting with B) >= 5

--check fails (exit 1) when the file is missing, unparsable, or contains no
benchmarks — the CI perf-smoke step uses it to guarantee the benchmark both
ran and produced its JSON mirror. --require NAME_PREFIX (repeatable) fails
unless at least one benchmark with that name prefix is present, so a series
silently dropped from a sweep (e.g. the writers=1 mixed series) is a CI
failure too. --pair/--min-speedup additionally turn a performance
regression (e.g. the hash-join rescue disappearing) into a CI failure.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        sys.exit(f"error: benchmark output '{path}' is missing")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: '{path}' is not valid JSON: {exc}")
    benches = [
        b
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ]
    if not benches:
        sys.exit(f"error: '{path}' contains no benchmark results")
    return benches


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def time_ns(bench):
    unit = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[bench.get("time_unit", "ns")]
    return bench["real_time"] * unit


def summarize(benches):
    width = max(len(b["name"]) for b in benches)
    print(f"{'benchmark':<{width}}  {'real_time':>10}  notable counters")
    for b in benches:
        counters = []
        for key in (
            "rows_scanned_per_iter",
            "hash_join_probes_per_iter",
            "index_lookups_per_iter",
            "plan_replays_per_iter",
            "requests_per_iter",
            "completed_per_iter",
            "shed_per_iter",
            "deadline_expired_per_iter",
            "client_errors_per_iter",
        ):
            if key in b:
                counters.append(f"{key.replace('_per_iter', '')}={b[key]:.0f}")
        print(
            f"{b['name']:<{width}}  {fmt_time(time_ns(b)):>10}  "
            + " ".join(counters)
        )


def compare(current, baseline):
    base_by_name = {b["name"]: b for b in baseline}
    width = max(len(b["name"]) for b in current)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  speedup")
    regressions = 0
    for b in current:
        base = base_by_name.get(b["name"])
        if base is None:
            continue
        cur_ns, base_ns = time_ns(b), time_ns(base)
        speedup = base_ns / cur_ns if cur_ns > 0 else float("inf")
        marker = "  <-- regression" if speedup < 0.9 else ""
        if speedup < 0.9:
            regressions += 1
        print(
            f"{b['name']:<{width}}  {fmt_time(base_ns):>10}  "
            f"{fmt_time(cur_ns):>10}  {speedup:5.2f}x{marker}"
        )
    return regressions


def pair_speedup(benches, slow_prefix, fast_prefix):
    slow = [time_ns(b) for b in benches if b["name"].startswith(slow_prefix)]
    fast = [time_ns(b) for b in benches if b["name"].startswith(fast_prefix)]
    if not slow or not fast:
        sys.exit(
            f"error: --pair found no benchmarks for "
            f"'{slow_prefix}' and/or '{fast_prefix}'"
        )
    return (sum(slow) / len(slow)) / (sum(fast) / len(fast))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_<name>.json to read")
    parser.add_argument("baseline", nargs="?", help="older JSON to compare to")
    parser.add_argument(
        "--check",
        action="store_true",
        help="only validate that the file exists and holds results",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME_PREFIX",
        help="fail unless a benchmark with this name prefix is present "
        "(repeatable)",
    )
    parser.add_argument(
        "--pair",
        nargs=2,
        metavar=("SLOW_PREFIX", "FAST_PREFIX"),
        help="benchmark-name prefixes to compare within the current file",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the --pair speedup reaches this factor",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="with a baseline: exit 1 when any benchmark regressed >10%%",
    )
    args = parser.parse_args()

    benches = load(args.current)
    for prefix in args.require:
        hits = sum(1 for b in benches if b["name"].startswith(prefix))
        if hits == 0:
            sys.exit(
                f"error: '{args.current}' holds no benchmark named "
                f"'{prefix}*' (series missing from the sweep?)"
            )
        print(f"ok: '{prefix}*' present ({hits} result(s))")
    if args.check:
        print(f"ok: '{args.current}' holds {len(benches)} benchmark results")
    else:
        summarize(benches)

    if args.baseline:
        print()
        regressions = compare(benches, load(args.baseline))
        if regressions:
            print(f"{regressions} benchmark(s) regressed >10%")
            if args.fail_on_regression:
                sys.exit(1)

    if args.pair:
        speedup = pair_speedup(benches, args.pair[0], args.pair[1])
        need = args.min_speedup or 1.0
        print(f"pair speedup {args.pair[0]} / {args.pair[1]}: {speedup:.1f}x")
        if speedup < need:
            sys.exit(f"error: pair speedup {speedup:.1f}x < required {need}x")


if __name__ == "__main__":
    main()
