// Section 7.3: U-Filter on a Protein Sequence Database-like domain —
// non-well-nested views (nesting against the FK direction through an
// association table) and the SET NULL delete policy. Demonstrates that both
// are handled where well-nested-only systems would give up.
#include <cstdio>

#include "fixtures/psd.h"
#include "ufilter/checker.h"
#include "xml/writer.h"

int main() {
  using namespace ufilter;
  using relational::DeletePolicy;

  for (DeletePolicy policy : {DeletePolicy::kSetNull, DeletePolicy::kCascade}) {
    std::printf("==== delete policy: %s ====\n",
                relational::DeletePolicyName(policy));
    auto db = fixtures::MakePsdDatabase(policy);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }

    auto keyword_view =
        check::UFilter::Create(db->get(), fixtures::PsdKeywordViewQuery());
    if (!keyword_view.ok()) {
      std::fprintf(stderr, "%s\n", keyword_view.status().ToString().c_str());
      return 1;
    }
    auto xml = (*keyword_view)->MaterializeView();
    if (xml.ok()) {
      std::printf("KeywordView (proteins nested under keywords — NOT "
                  "well-nested):\n%s\n",
                  xml::ToString(**xml).c_str());
    }

    // Remove hemoglobin from the "oxygen transport" keyword. The protein
    // tuple is shared with the "heme" keyword; minimization must keep it.
    check::CheckReport r = (*keyword_view)->Check(
        "FOR $keyword IN document(\"v\")/keyword, $protein IN "
        "$keyword/protein WHERE $keyword/kid/text() = \"K01\" AND "
        "$protein/pid/text() = \"P001\" UPDATE $keyword { DELETE $protein }");
    std::printf("delete <protein P001> under K01 -> %s\n\n",
                r.Describe().c_str());
    std::printf("proteins left: %zu, annotations left: %zu\n",
                (*(*db)->GetTable("protein"))->live_row_count(),
                (*(*db)->GetTable("annotation"))->live_row_count());

    // Protein-centric view: delete a whole protein; references behave per
    // the policy (survive with NULL pid under SET NULL, cascade otherwise).
    auto protein_view =
        check::UFilter::Create(db->get(), fixtures::PsdProteinViewQuery());
    if (!protein_view.ok()) {
      std::fprintf(stderr, "%s\n", protein_view.status().ToString().c_str());
      return 1;
    }
    check::CheckReport r2 = (*protein_view)->Check(
        "FOR $root IN document(\"v\"), $protein = $root/protein WHERE "
        "$protein/pid/text() = \"P002\" UPDATE $root { DELETE $protein }");
    std::printf("delete <protein P002> from ProteinView -> %s\n",
                r2.Describe().c_str());
    std::printf("references left: %zu (policy %s)\n\n",
                (*(*db)->GetTable("reference"))->live_row_count(),
                relational::DeletePolicyName(policy));
  }
  return 0;
}
