// Batch update checker: a small command-line front end over the library.
//
//   batch_checker [updates.xq]
//
// Compiles the BookView over the sample database and checks every update
// statement from the given file (or a built-in demo batch when no file is
// given). Statements are separated by lines containing only "---". For each
// statement the verdict, the rejection reason or the translated SQL is
// printed — the loop an application embedding U-Filter would run.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "fixtures/bookdb.h"
#include "ufilter/checker.h"

namespace {

std::vector<std::string> DemoBatch() {
  using ufilter::fixtures::PaperUpdate;
  return {PaperUpdate(8), PaperUpdate(13), PaperUpdate(2), PaperUpdate(5),
          PaperUpdate(9)};
}

std::vector<std::string> ReadBatch(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s; using the demo batch\n", path);
    return DemoBatch();
  }
  std::vector<std::string> out;
  std::string line, current;
  while (std::getline(in, line)) {
    if (ufilter::Trim(line) == "---") {
      if (!ufilter::Trim(current).empty()) out.push_back(current);
      current.clear();
    } else {
      current += line + "\n";
    }
  }
  if (!ufilter::Trim(current).empty()) out.push_back(current);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ufilter;

  auto db = fixtures::MakeBookDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  auto uf = check::UFilter::Create(db->get(), fixtures::BookViewQuery());
  if (!uf.ok()) {
    std::fprintf(stderr, "%s\n", uf.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> batch =
      argc > 1 ? ReadBatch(argv[1]) : DemoBatch();
  std::printf("checking %zu update statement(s) against BookView\n\n",
              batch.size());

  int accepted = 0, rejected = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    check::CheckReport report = (*uf)->Check(batch[i]);
    std::printf("[%zu] %s\n", i + 1, report.Describe().c_str());
    std::printf("     (step1 %.6fs, step2 %.6fs, step3 %.6fs)\n\n",
                report.step1_seconds, report.step2_seconds,
                report.step3_seconds);
    if (report.outcome == check::CheckOutcome::kExecuted) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  std::printf("summary: %d executed, %d filtered out by U-Filter\n", accepted,
              rejected);
  return 0;
}
