// Batch update checker: a small command-line front end over the library.
//
//   batch_checker [updates.xq]
//
// Compiles the BookView over the sample database and checks every update
// statement from the given file (or a built-in demo batch when no file is
// given). Statements are separated by lines containing only "---". For each
// statement the verdict, the rejection reason or the translated SQL is
// printed — the loop an application embedding U-Filter would run.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "fixtures/bookdb.h"
#include "ufilter/checker.h"

namespace {

std::vector<std::string> DemoBatch() {
  using ufilter::fixtures::PaperUpdate;
  return {PaperUpdate(8), PaperUpdate(13), PaperUpdate(2), PaperUpdate(5),
          PaperUpdate(9)};
}

std::vector<std::string> ReadBatch(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s; using the demo batch\n", path);
    return DemoBatch();
  }
  std::vector<std::string> out;
  std::string line, current;
  while (std::getline(in, line)) {
    if (ufilter::Trim(line) == "---") {
      if (!ufilter::Trim(current).empty()) out.push_back(current);
      current.clear();
    } else {
      current += line + "\n";
    }
  }
  if (!ufilter::Trim(current).empty()) out.push_back(current);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ufilter;

  auto db = fixtures::MakeBookDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  auto uf = check::UFilter::Create(db->get(), fixtures::BookViewQuery());
  if (!uf.ok()) {
    std::fprintf(stderr, "%s\n", uf.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> batch =
      argc > 1 ? ReadBatch(argv[1]) : DemoBatch();
  std::printf("checking %zu update statement(s) against BookView\n\n",
              batch.size());

  // One CheckBatch call: every statement is prepared through the plan cache
  // and same-shaped step-3 probes are merged into OR-of-predicates queries.
  std::vector<check::CheckReport> reports = (*uf)->CheckBatch(batch);

  int accepted = 0, rejected = 0;
  for (size_t i = 0; i < reports.size(); ++i) {
    const check::CheckReport& report = reports[i];
    std::printf("[%zu] %s\n", i + 1, report.Describe().c_str());
    std::printf("     (prepare %.6fs%s, step3 %.6fs)\n\n",
                report.prepare_seconds,
                report.from_plan_cache ? " [plan cache]" : "",
                report.step3_seconds);
    if (report.outcome == check::CheckOutcome::kExecuted) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  const relational::EngineStats stats = (*db)->SnapshotWorkCounters();
  std::printf(
      "summary: %d executed, %d filtered out by U-Filter\n"
      "work: %llu probe queries (%llu merged covering %llu probes), "
      "%llu plans compiled, %llu cache hits\n",
      accepted, rejected,
      static_cast<unsigned long long>(stats.queries_executed),
      static_cast<unsigned long long>(stats.batch_queries_executed),
      static_cast<unsigned long long>(stats.batch_branches_merged),
      static_cast<unsigned long long>(stats.updates_compiled),
      static_cast<unsigned long long>(stats.plan_cache_hits));
  return 0;
}
