// The Section 7.2 evaluation setting, interactively: builds a TPC-H-like
// database, compiles Vsuccess and Vfail, shows the STAR classification per
// nesting level, and contrasts U-Filter's early rejection with the blind
// translate-execute-detect-rollback baseline.
#include <chrono>
#include <cstdio>

#include "fixtures/tpch_views.h"
#include "relational/tpch.h"
#include "ufilter/blind.h"
#include "ufilter/checker.h"
#include "xquery/parser.h"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace ufilter;

  relational::tpch::TpchOptions options;
  options.scale = 0.5;
  auto db = relational::tpch::MakeDatabase(options);
  if (!db.ok()) {
    std::fprintf(stderr, "tpch generation failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("TPC-H-like database at scale %.1f: %zu rows total\n\n",
              options.scale, (*db)->TotalRows());

  // ---- Vsuccess: everything unconditional --------------------------------
  auto vsuccess =
      check::UFilter::Create(db->get(), fixtures::VSuccessQuery());
  if (!vsuccess.ok()) {
    std::fprintf(stderr, "%s\n", vsuccess.status().ToString().c_str());
    return 1;
  }
  std::printf("Vsuccess compiled; STAR marking took %.4f s\n",
              (*vsuccess)->marking_seconds());
  std::printf("%-10s | %-28s | rows deleted | seconds\n", "level",
              "classification");
  struct Level {
    const char* tag;
    int64_t key;
  };
  for (const Level& level : {Level{"region", 1}, Level{"nation", 7},
                             Level{"customer", 3}, Level{"order", 11},
                             Level{"lineitem", 2}}) {
    check::CheckOptions check_options;
    check_options.apply = false;  // keep the database intact across levels
    double t0 = Now();
    check::CheckReport r = (*vsuccess)->Check(
        fixtures::DeleteElementUpdate(level.tag, level.key), check_options);
    double dt = Now() - t0;
    std::printf("%-10s | %-28s | %12lld | %.5f\n", level.tag,
                check::TranslatabilityName(r.star_class),
                static_cast<long long>(r.rows_affected), dt);
  }

  // ---- Vfail: early rejection vs. blind baseline --------------------------
  std::printf("\nVfail (REGION republished): deleting a region...\n");
  auto vfail = check::UFilter::Create(db->get(),
                                      fixtures::VFailQuery("region"));
  if (!vfail.ok()) {
    std::fprintf(stderr, "%s\n", vfail.status().ToString().c_str());
    return 1;
  }
  double t0 = Now();
  check::CheckReport rejected =
      (*vfail)->Check(fixtures::DeleteElementUpdate("region", 1));
  double star_time = Now() - t0;
  std::printf("  U-Filter: %s in %.6f s\n",
              check::CheckOutcomeName(rejected.outcome), star_time);

  auto stmt = xq::ParseUpdate(fixtures::DeleteElementUpdate("region", 1));
  if (stmt.ok()) {
    t0 = Now();
    auto blind = check::BlindExecute(vfail->get(), *stmt);
    double blind_time = Now() - t0;
    if (blind.ok()) {
      std::printf(
          "  Blind baseline: executed %lld row deletes, detected the side "
          "effect, rolled back — %.4f s total (%.0fx slower)\n",
          static_cast<long long>(blind->rows_affected), blind_time,
          blind_time / std::max(star_time, 1e-9));
    }
  }
  return 0;
}
