// Quickstart: the paper's running example end to end.
//
// Builds the book/publisher/review database of Fig. 1, compiles the BookView
// of Fig. 3(a) into a U-Filter instance (view ASG + base ASG + STAR marks),
// materializes the view of Fig. 3(b), then pushes the paper's updates u1..u13
// through the three-step checker, printing each verdict and — for the
// translatable ones — the emitted SQL.
#include <cstdio>
#include <string>

#include "fixtures/bookdb.h"
#include "ufilter/checker.h"
#include "xml/writer.h"

int main() {
  using namespace ufilter;

  auto db = fixtures::MakeBookDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "database setup failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("== Relational schema (Fig. 1) ==\n");
  for (const auto& table : (*db)->schema().tables()) {
    std::printf("%s;\n\n", table.ToCreateSql().c_str());
  }

  auto uf = check::UFilter::Create(db->get(), fixtures::BookViewQuery());
  if (!uf.ok()) {
    std::fprintf(stderr, "view compilation failed: %s\n",
                 uf.status().ToString().c_str());
    return 1;
  }

  std::printf("== View ASG with STAR marks (Fig. 8) ==\n%s\n",
              (*uf)->view_asg().ToString().c_str());
  std::printf("== Base ASG (Fig. 9) ==\n%s\n",
              (*uf)->base_asg().ToString().c_str());

  auto view = (*uf)->MaterializeView();
  if (view.ok()) {
    std::printf("== Materialized BookView (Fig. 3b) ==\n%s\n",
                xml::ToString(**view).c_str());
  }

  std::printf("== Checking updates u1..u13 (Figs. 4 and 10) ==\n");
  for (int u = 1; u <= 13; ++u) {
    check::CheckReport report = (*uf)->Check(fixtures::PaperUpdate(u));
    std::printf("---- u%-2d -> %s\n", u, report.Describe().c_str());
  }

  std::printf("\n== View after the translatable updates ==\n");
  auto after = (*uf)->MaterializeView();
  if (after.ok()) {
    std::printf("%s", xml::ToString(**after).c_str());
  }
  return 0;
}
