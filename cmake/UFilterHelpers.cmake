# Helper functions so adding a new test suite or benchmark is one line in the
# root CMakeLists.txt.

# ufilter_add_test(tests/<dir>/<stem>_test.cc)
#
# Builds one gtest binary for the suite and registers it with ctest under the
# name "<dir>/<stem>" (e.g. tests/ufilter/star_test.cc -> "ufilter/star").
function(ufilter_add_test src)
  get_filename_component(stem "${src}" NAME_WE)
  get_filename_component(dir "${src}" DIRECTORY)
  get_filename_component(dir "${dir}" NAME)
  string(REGEX REPLACE "_test$" "" suite "${stem}")

  set(target "ufilter_${dir}_${suite}_test")
  add_executable(${target} "${src}")
  target_link_libraries(${target} PRIVATE ufilter_core GTest::gtest_main)
  add_test(NAME "${dir}/${suite}" COMMAND ${target})
  set_tests_properties("${dir}/${suite}" PROPERTIES TIMEOUT 300)
endfunction()

# ufilter_add_bench(bench/bench_<name>.cc)
#
# Builds one Google Benchmark binary. Benchmarks are not registered with
# ctest; run them directly from the build tree (see docs/BENCHMARKS.md).
function(ufilter_add_bench src)
  get_filename_component(stem "${src}" NAME_WE)
  add_executable(${stem} "${src}")
  target_link_libraries(${stem} PRIVATE ufilter_core benchmark::benchmark)
endfunction()

# ufilter_add_example(examples/<name>.cpp)
function(ufilter_add_example src)
  get_filename_component(stem "${src}" NAME_WE)
  add_executable(example_${stem} "${src}")
  set_target_properties(example_${stem} PROPERTIES OUTPUT_NAME "${stem}")
  target_link_libraries(example_${stem} PRIVATE ufilter_core)
endfunction()
