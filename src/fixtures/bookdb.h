// The paper's running example (Figs. 1-4, 10): the book/publisher/review
// database, the BookView view query, and updates u1..u13. Shared by tests,
// examples and benchmarks.
#ifndef UFILTER_FIXTURES_BOOKDB_H_
#define UFILTER_FIXTURES_BOOKDB_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "relational/database.h"

namespace ufilter::fixtures {

/// Schema of Fig. 1 (publisher, book, review) with the FK delete policy.
relational::DatabaseSchema MakeBookSchema(
    relational::DeletePolicy policy = relational::DeletePolicy::kCascade);

/// Database of Fig. 1 with its sample tuples.
Result<std::unique_ptr<relational::Database>> MakeBookDatabase(
    relational::DeletePolicy policy = relational::DeletePolicy::kCascade);

/// The BookView view query of Fig. 3(a).
const std::string& BookViewQuery();

/// BookView without the republished-publisher branch (the second top-level
/// FLWR). Used to demonstrate step-3 update-point conflicts: with the full
/// BookView a book insert is already rejected at step 2.
const std::string& BookViewNoRepublishQuery();

/// Update statements u1..u13 of Figs. 4 and 10 (1-based index).
const std::string& PaperUpdate(int number);

}  // namespace ufilter::fixtures

#endif  // UFILTER_FIXTURES_BOOKDB_H_
