#include "fixtures/tpch_views.h"

#include <map>

namespace ufilter::fixtures {

namespace {

/// The FK-following linear chain body shared by Vsuccess/Vlinear/Vfail.
const char* kChainBody = R"(
FOR $region IN document("default.xml")/region/row
RETURN {
 <region>
  $region/r_regionkey, $region/r_name,
  FOR $nation IN document("default.xml")/nation/row
  WHERE ($nation/n_regionkey = $region/r_regionkey)
  RETURN {
   <nation>
    $nation/n_nationkey, $nation/n_name,
    FOR $customer IN document("default.xml")/customer/row
    WHERE ($customer/c_nationkey = $nation/n_nationkey)
    RETURN {
     <customer>
      $customer/c_custkey, $customer/c_name,
      FOR $order IN document("default.xml")/orders/row
      WHERE ($order/o_custkey = $customer/c_custkey)
      RETURN {
       <order>
        $order/o_orderkey, $order/o_totalprice,
        FOR $lineitem IN document("default.xml")/lineitem/row
        WHERE ($lineitem/l_orderkey = $order/o_orderkey)
        RETURN {
         <lineitem>
          $lineitem/l_linenumber, $lineitem/l_quantity, $lineitem/l_shipmode
         </lineitem>
        }
       </order>
      }
     </customer>
    }
   </nation>
  }
 </region>
}
)";

/// Attributes projected by the republished branch per relation.
const std::map<std::string, std::pair<std::string, std::string>>&
RepublishAttrs() {
  static const std::map<std::string, std::pair<std::string, std::string>>
      kAttrs = {
          {"region", {"r_regionkey", "r_name"}},
          {"nation", {"n_nationkey", "n_name"}},
          {"customer", {"c_custkey", "c_name"}},
          {"orders", {"o_orderkey", "o_totalprice"}},
          {"lineitem", {"l_linenumber", "l_quantity"}},
      };
  return kAttrs;
}

}  // namespace

const std::string& VSuccessQuery() {
  static const std::string kQuery =
      "<Vsuccess>" + std::string(kChainBody) + "</Vsuccess>";
  return kQuery;
}

const std::string& VLinearQuery() {
  static const std::string kQuery =
      "<Vlinear>" + std::string(kChainBody) + "</Vlinear>";
  return kQuery;
}

std::string VFailQuery(const std::string& relation) {
  auto it = RepublishAttrs().find(relation);
  const auto& attrs = it != RepublishAttrs().end()
                          ? it->second
                          : RepublishAttrs().at("region");
  std::string republish = ",\nFOR $dup IN document(\"default.xml\")/" +
                          relation + "/row\nRETURN {\n <duplist>\n  $dup/" +
                          attrs.first + ", $dup/" + attrs.second +
                          "\n </duplist>\n}\n";
  return "<Vfail>" + std::string(kChainBody) + republish + "</Vfail>";
}

const std::string& VBushQuery() {
  static const std::string kQuery = R"(
<Vbush>
FOR $region IN document("default.xml")/region/row,
    $nation IN document("default.xml")/nation/row
WHERE ($nation/n_regionkey = $region/r_regionkey)
RETURN {
 <nation>
  $region/r_regionkey, $region/r_name,
  $nation/n_nationkey, $nation/n_name,
  FOR $customer IN document("default.xml")/customer/row,
      $order IN document("default.xml")/orders/row
  WHERE ($customer/c_nationkey = $nation/n_nationkey)
    AND ($order/o_custkey = $customer/c_custkey)
  RETURN {
   <order>
    $customer/c_custkey, $customer/c_name,
    $order/o_orderkey, $order/o_totalprice,
    FOR $lineitem IN document("default.xml")/lineitem/row
    WHERE ($lineitem/l_orderkey = $order/o_orderkey)
    RETURN {
     <lineitem>
      $lineitem/l_linenumber, $lineitem/l_quantity, $lineitem/l_shipmode
     </lineitem>
    }
   </order>
  }
 </nation>
}
</Vbush>
)";
  return kQuery;
}

std::string DeleteElementUpdate(const std::string& relation_tag,
                                int64_t key_value) {
  struct Level {
    const char* tag;
    const char* key;
  };
  static const Level kLevels[] = {
      {"region", "r_regionkey"},   {"nation", "n_nationkey"},
      {"customer", "c_custkey"},   {"order", "o_orderkey"},
      {"lineitem", "l_linenumber"},
  };
  // FOR bindings down to the victim's parent; the victim is bound last.
  std::string stmt = "FOR $root IN document(\"V.xml\")";
  std::string parent = "root";
  std::string victim_tag;
  std::string key_col;
  for (const Level& level : kLevels) {
    stmt += ",\n    $" + std::string(level.tag) + " IN $" + parent + "/" +
            level.tag;
    victim_tag = level.tag;
    key_col = level.key;
    if (relation_tag == level.tag) break;
    parent = level.tag;
  }
  // Lineitem elements carry no l_orderkey leaf: key on the line number and
  // pin the enclosing order so exactly one element matches.
  stmt += "\nWHERE $" + victim_tag + "/" + key_col +
          "/text() = " + std::to_string(key_value);
  if (relation_tag == "lineitem") {
    stmt += " AND $order/o_orderkey/text() = 0";
  }
  stmt += "\nUPDATE $" + parent + " {\n  DELETE $" + victim_tag + "\n}";
  return stmt;
}

std::string InsertLineitemUpdate(int64_t order_key, int64_t line_number) {
  return "FOR $order IN "
         "document(\"V.xml\")/region/nation/customer/order\n"
         "WHERE $order/o_orderkey/text() = " +
         std::to_string(order_key) +
         "\nUPDATE $order {\n  INSERT\n  <lineitem>\n    <l_linenumber>" +
         std::to_string(line_number) +
         "</l_linenumber>\n    <l_quantity>5</l_quantity>\n    "
         "<l_shipmode>AIR</l_shipmode>\n  </lineitem>\n}";
  }

}  // namespace ufilter::fixtures
