// Synthetic Protein Sequence Database (Section 7.3). Mirrors the properties
// the paper observed in the PIR PSD domain: views are NOT well-nested (the
// nesting does not follow key/foreign-key constraints) and the SET NULL
// delete policy is standard. The real PSD is proprietary-ish curated data;
// this synthetic schema exercises the same checker code paths.
#ifndef UFILTER_FIXTURES_PSD_H_
#define UFILTER_FIXTURES_PSD_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "relational/database.h"

namespace ufilter::fixtures {

/// protein(pid, name, organism), reference(refid, pid, citation),
/// keyword(kid, word), annotation(pid, kid, note) — FKs with SET NULL where
/// nullable, as in the paper's PSD discussion.
relational::DatabaseSchema MakePsdSchema(
    relational::DeletePolicy policy = relational::DeletePolicy::kSetNull);

Result<std::unique_ptr<relational::Database>> MakePsdDatabase(
    relational::DeletePolicy policy = relational::DeletePolicy::kSetNull);

/// A non-well-nested view: proteins nested under keywords through the
/// annotation association table — the nesting runs *against* the FK
/// direction, so the well-nesting assumption of [7,8] fails while U-Filter
/// still classifies updates.
const std::string& PsdKeywordViewQuery();

/// A protein-centric view with references nested inside proteins.
const std::string& PsdProteinViewQuery();

}  // namespace ufilter::fixtures

#endif  // UFILTER_FIXTURES_PSD_H_
