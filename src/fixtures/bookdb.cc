#include "fixtures/bookdb.h"

#include <array>

namespace ufilter::fixtures {

using relational::Database;
using relational::DatabaseSchema;
using relational::DeletePolicy;
using relational::TableSchema;

DatabaseSchema MakeBookSchema(DeletePolicy policy) {
  DatabaseSchema schema;

  TableSchema publisher("publisher");
  publisher.AddColumn("pubid", ValueType::kString, true)
      .AddColumn("pubname", ValueType::kString, true)
      .SetPrimaryKey({"pubid"})
      .SetUnique("pubname");
  (void)schema.AddTable(std::move(publisher));

  TableSchema book("book");
  book.AddColumn("bookid", ValueType::kString, true)
      .AddColumn("title", ValueType::kString, true)
      .AddColumn("pubid", ValueType::kString)
      .AddColumn("price", ValueType::kDouble)
      .AddColumn("year", ValueType::kInt)
      .SetPrimaryKey({"bookid"})
      .AddForeignKey({{"pubid"}, "publisher", {"pubid"}, policy});
  book.AddCheck("price", CompareOp::kGt, Value::Double(0.0));
  (void)schema.AddTable(std::move(book));

  TableSchema review("review");
  review.AddColumn("bookid", ValueType::kString, true)
      .AddColumn("reviewid", ValueType::kString, true)
      .AddColumn("comment", ValueType::kString)
      .AddColumn("reviewer", ValueType::kString)
      .SetPrimaryKey({"bookid", "reviewid"})
      .AddForeignKey({{"bookid"}, "book", {"bookid"}, policy});
  (void)schema.AddTable(std::move(review));

  return schema;
}

Result<std::unique_ptr<Database>> MakeBookDatabase(DeletePolicy policy) {
  UFILTER_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                           Database::Create(MakeBookSchema(policy)));
  auto S = [](const char* s) { return Value::String(s); };
  UFILTER_RETURN_NOT_OK(
      db->Insert("publisher", {S("A01"), S("McGraw-Hill Inc.")}).status());
  UFILTER_RETURN_NOT_OK(
      db->Insert("publisher", {S("B01"), S("Prentice-Hall Inc.")}).status());
  UFILTER_RETURN_NOT_OK(
      db->Insert("publisher", {S("A02"), S("Simon & Schuster Inc.")})
          .status());
  UFILTER_RETURN_NOT_OK(
      db->Insert("book", {S("98001"), S("TCP/IP Illustrated"), S("A01"),
                          Value::Double(37.00), Value::Int(1997)})
          .status());
  UFILTER_RETURN_NOT_OK(
      db->Insert("book", {S("98002"), S("Programming in Unix"), S("A02"),
                          Value::Double(45.00), Value::Int(1985)})
          .status());
  UFILTER_RETURN_NOT_OK(
      db->Insert("book", {S("98003"), S("Data on the Web"), S("A01"),
                          Value::Double(48.00), Value::Int(2004)})
          .status());
  UFILTER_RETURN_NOT_OK(
      db->Insert("review", {S("98001"), S("001"),
                            S("A good book on network."), S("William")})
          .status());
  UFILTER_RETURN_NOT_OK(
      db->Insert("review", {S("98001"), S("002"),
                            S("Useful for advanced user."), S("John")})
          .status());
  db->Checkpoint();
  return db;
}

const std::string& BookViewQuery() {
  static const std::string kQuery = R"(
<BookView>
FOR $book IN document("default.xml")/book/row,
    $publisher IN document("default.xml")/publisher/row
WHERE ($book/pubid = $publisher/pubid)
  AND ($book/price < 50.00) AND ($book/year > 1990)
RETURN {
  <book>
    $book/bookid, $book/title, $book/price,
    <publisher>
      $publisher/pubid, $publisher/pubname
    </publisher>,
    FOR $review IN document("default.xml")/review/row
    WHERE ($book/bookid = $review/bookid)
    RETURN {
      <review>
        $review/reviewid, $review/comment
      </review>
    }
  </book>
},
FOR $publisher IN document("default.xml")/publisher/row
RETURN {
  <publisher>
    $publisher/pubid, $publisher/pubname
  </publisher>
}
</BookView>
)";
  return kQuery;
}

const std::string& BookViewNoRepublishQuery() {
  static const std::string kQuery = R"(
<BookView>
FOR $book IN document("default.xml")/book/row,
    $publisher IN document("default.xml")/publisher/row
WHERE ($book/pubid = $publisher/pubid)
  AND ($book/price < 50.00) AND ($book/year > 1990)
RETURN {
  <book>
    $book/bookid, $book/title, $book/price,
    <publisher>
      $publisher/pubid, $publisher/pubname
    </publisher>,
    FOR $review IN document("default.xml")/review/row
    WHERE ($book/bookid = $review/bookid)
    RETURN {
      <review>
        $review/reviewid, $review/comment
      </review>
    }
  </book>
}
</BookView>
)";
  return kQuery;
}

const std::string& PaperUpdate(int number) {
  static const std::array<std::string, 14> kUpdates = {
      // index 0 unused
      "",
      // u1: insert a book with an empty title and price 0.00 -> invalid
      // (NOT NULL title, CHECK price > 0).
      R"(FOR $root IN document("BookView.xml")
UPDATE $root {
  INSERT
  <book>
    <bookid>"98004"</bookid>
    <title></title>
    <price>0.00</price>
    <publisher>
      <pubid>A01</pubid>
      <pubname>McGraw-Hill Inc.</pubname>
    </publisher>
  </book>
})",
      // u2: delete the publisher of book 98001 -> untranslatable
      // (foreign-key conflict with the view structure).
      R"(FOR $root IN document("BookView.xml"),
    $book IN $root/book
WHERE $book/bookid/text() = "98001"
UPDATE $root {
  DELETE $book/publisher
})",
      // u3: insert a review into a book that is not in the view -> data
      // conflict.
      R"(FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "DB2 Universal Database"
UPDATE $book {
  INSERT
  <review>
    <reviewid>001</reviewid>
    <comment>Easy read and useful.</comment>
  </review>
})",
      // u4: insert a book whose key already exists.
      R"(FOR $root IN document("BookView.xml")
UPDATE $root {
  INSERT
  <book>
    <bookid>"98001"</bookid>
    <title>"Operating Systems"</title>
    <price>20.00</price>
    <publisher>
      <pubid>A01</pubid>
      <pubname>McGraw-Hill Inc.</pubname>
    </publisher>
  </book>
})",
      // u5: delete the reviews of books costing more than $50 -> invalid
      // (the view only contains books under $50).
      R"(FOR $book IN document("BookView.xml")/book
WHERE $book/price/text() > 50.00
UPDATE $book {
  DELETE $book/review
})",
      // u6: delete the bookid text -> invalid (NOT NULL / key).
      R"(FOR $book IN document("BookView.xml")/book
UPDATE $book {
  DELETE $book/bookid/text()
})",
      // u7: insert a book without its publisher -> invalid (each book has
      // exactly one publisher).
      R"(FOR $root IN document("BookView.xml")
UPDATE $root {
  INSERT
  <book>
    <bookid>"98004"</bookid>
    <title>"Operating Systems"</title>
    <price>20.00</price>
  </book>
})",
      // u8: delete the reviews of books under $40 -> unconditionally
      // translatable.
      R"(FOR $book IN document("BookView.xml")/book
WHERE $book/price < 40.00
UPDATE $book {
  DELETE $book/review
})",
      // u9: delete the books over $40 -> conditionally translatable
      // (translation minimization).
      R"(FOR $root IN document("BookView.xml"),
    $book = $root/book
WHERE $book/price > 40.00
UPDATE $root {
  DELETE $book
})",
      // u10: delete the publishers of books over $40 -> untranslatable.
      R"(FOR $book IN document("BookView.xml")/book
WHERE $book/price > 40.00
UPDATE $book {
  DELETE $book/publisher
})",
      // u11: delete the reviews of a book that is not in the view -> data
      // conflict (context probe empty).
      R"(FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Programming in Unix"
UPDATE $book {
  DELETE $book/review
})",
      // u12: delete the reviews of a book that has none -> zero tuples
      // deleted (warning, not an error).
      R"(FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
  DELETE $book/review
})",
      // u13: insert a review into "Data on the Web" -> translatable; the
      // probe result supplies the bookid for the translated INSERT.
      R"(FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
  INSERT
  <review>
    <reviewid>001</reviewid>
    <comment>Easy read and useful.</comment>
  </review>
})",
  };
  return kUpdates.at(static_cast<size_t>(number));
}

}  // namespace ufilter::fixtures
