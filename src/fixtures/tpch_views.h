// View queries over the TPC-H-like schema used by the paper's evaluation
// (Section 7.2): Vsuccess (FK-following nesting, all updates unconditional),
// Vfail (REGION republished under the root, region deletes untranslatable),
// Vlinear (the same linear chain, used by Figs. 15/17) and Vbush (relations
// grouped "evenly", used by Fig. 16).
#ifndef UFILTER_FIXTURES_TPCH_VIEWS_H_
#define UFILTER_FIXTURES_TPCH_VIEWS_H_

#include <string>

namespace ufilter::fixtures {

/// REGION > NATION > CUSTOMER > ORDER > LINEITEM, nested along the FKs.
const std::string& VSuccessQuery();

/// Vsuccess plus `relation` ("region", "nation", "customer", "orders",
/// "lineitem") published a second time under the root — deleting that
/// relation's chain element becomes untranslatable (Fig. 14's setup).
std::string VFailQuery(const std::string& relation);

/// Alias of the linear chain nesting (the paper's Vlinear).
const std::string& VLinearQuery();

/// "Even" grouping: (region+nation) > (customer+orders) > lineitem.
const std::string& VBushQuery();

/// The delete statement over the element publishing `relation_tag`
/// ("region", "nation", "customer", "order", "lineitem") with the given key.
std::string DeleteElementUpdate(const std::string& relation_tag,
                                int64_t key_value);

/// Insert of a new lineitem element into the deepest order element matching
/// `order_key` (Fig. 15's workload).
std::string InsertLineitemUpdate(int64_t order_key, int64_t line_number);

}  // namespace ufilter::fixtures

#endif  // UFILTER_FIXTURES_TPCH_VIEWS_H_
