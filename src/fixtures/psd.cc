#include "fixtures/psd.h"

namespace ufilter::fixtures {

using relational::Database;
using relational::DatabaseSchema;
using relational::DeletePolicy;
using relational::TableSchema;

DatabaseSchema MakePsdSchema(DeletePolicy policy) {
  DatabaseSchema schema;

  TableSchema protein("protein");
  protein.AddColumn("pid", ValueType::kString, true)
      .AddColumn("name", ValueType::kString, true)
      .AddColumn("organism", ValueType::kString)
      .SetPrimaryKey({"pid"});
  (void)schema.AddTable(std::move(protein));

  TableSchema reference("reference");
  reference.AddColumn("refid", ValueType::kString, true)
      .AddColumn("pid", ValueType::kString)
      .AddColumn("citation", ValueType::kString)
      .SetPrimaryKey({"refid"})
      .AddForeignKey({{"pid"}, "protein", {"pid"}, policy});
  (void)schema.AddTable(std::move(reference));

  TableSchema keyword("keyword");
  keyword.AddColumn("kid", ValueType::kString, true)
      .AddColumn("word", ValueType::kString, true)
      .SetPrimaryKey({"kid"});
  (void)schema.AddTable(std::move(keyword));

  TableSchema annotation("annotation");
  annotation.AddColumn("aid", ValueType::kString, true)
      .AddColumn("pid", ValueType::kString)
      .AddColumn("kid", ValueType::kString)
      .AddColumn("note", ValueType::kString)
      .SetPrimaryKey({"aid"})
      .AddForeignKey({{"pid"}, "protein", {"pid"}, policy})
      .AddForeignKey({{"kid"}, "keyword", {"kid"}, policy});
  (void)schema.AddTable(std::move(annotation));

  return schema;
}

Result<std::unique_ptr<Database>> MakePsdDatabase(DeletePolicy policy) {
  UFILTER_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                           Database::Create(MakePsdSchema(policy)));
  auto S = [](const char* s) { return Value::String(s); };
  for (const auto& [pid, name, org] :
       std::vector<std::tuple<const char*, const char*, const char*>>{
           {"P001", "Hemoglobin alpha", "Homo sapiens"},
           {"P002", "Myoglobin", "Physeter catodon"},
           {"P003", "Lysozyme C", "Gallus gallus"}}) {
    UFILTER_RETURN_NOT_OK(db->Insert("protein", {S(pid), S(name), S(org)})
                              .status());
  }
  for (const auto& [refid, pid, cite] :
       std::vector<std::tuple<const char*, const char*, const char*>>{
           {"R001", "P001", "J. Mol. Biol. 1970"},
           {"R002", "P001", "Nature 1960"},
           {"R003", "P002", "Science 1958"}}) {
    UFILTER_RETURN_NOT_OK(
        db->Insert("reference", {S(refid), S(pid), S(cite)}).status());
  }
  for (const auto& [kid, word] :
       std::vector<std::tuple<const char*, const char*>>{
           {"K01", "oxygen transport"},
           {"K02", "heme"},
           {"K03", "hydrolase"}}) {
    UFILTER_RETURN_NOT_OK(db->Insert("keyword", {S(kid), S(word)}).status());
  }
  for (const auto& [aid, pid, kid, note] :
       std::vector<std::tuple<const char*, const char*, const char*,
                              const char*>>{
           {"A1", "P001", "K01", "primary function"},
           {"A2", "P001", "K02", "binds heme"},
           {"A3", "P002", "K01", "muscle oxygen store"},
           {"A4", "P002", "K02", "binds heme"},
           {"A5", "P003", "K03", "glycoside hydrolase"}}) {
    UFILTER_RETURN_NOT_OK(
        db->Insert("annotation", {S(aid), S(pid), S(kid), S(note)}).status());
  }
  db->Checkpoint();
  return db;
}

const std::string& PsdKeywordViewQuery() {
  // Keywords at the top, proteins nested underneath via the annotation
  // association — nesting runs against the FK direction (annotation
  // references both), so this view is not well-nested in the sense of
  // Braganholo et al.
  static const std::string kQuery = R"(
<KeywordView>
FOR $keyword IN document("default.xml")/keyword/row
RETURN {
  <keyword>
    $keyword/kid, $keyword/word,
    FOR $annotation IN document("default.xml")/annotation/row,
        $protein IN document("default.xml")/protein/row
    WHERE ($annotation/kid = $keyword/kid)
      AND ($annotation/pid = $protein/pid)
    RETURN {
      <protein>
        $protein/pid, $protein/name,
        <annotation> $annotation/aid, $annotation/note </annotation>
      </protein>
    }
  </keyword>
}
</KeywordView>
)";
  return kQuery;
}

const std::string& PsdProteinViewQuery() {
  static const std::string kQuery = R"(
<ProteinView>
FOR $protein IN document("default.xml")/protein/row
RETURN {
  <protein>
    $protein/pid, $protein/name, $protein/organism,
    FOR $reference IN document("default.xml")/reference/row
    WHERE ($reference/pid = $protein/pid)
    RETURN {
      <reference> $reference/refid, $reference/citation </reference>
    }
  </protein>
}
</ProteinView>
)";
  return kQuery;
}

}  // namespace ufilter::fixtures
