#include "fixtures/synthetic.h"

#include <map>
#include <random>
#include <string>
#include <vector>

namespace ufilter::fixtures {

using relational::Database;
using relational::DatabaseSchema;
using relational::DeletePolicy;
using relational::TableSchema;

namespace {

std::string T(int i) { return "t" + std::to_string(i); }
std::string K(int i) { return "k" + std::to_string(i); }
std::string V(int i) { return "v" + std::to_string(i); }
std::string P(int i) { return "p" + std::to_string(i); }

}  // namespace

DatabaseSchema MakeChainSchema(int depth, DeletePolicy policy) {
  DatabaseSchema schema;
  for (int i = 0; i < depth; ++i) {
    TableSchema table(T(i));
    table.AddColumn(K(i), ValueType::kInt, true)
        .AddColumn(V(i), ValueType::kString)
        .SetPrimaryKey({K(i)});
    if (i > 0) {
      table.AddColumn(P(i), ValueType::kInt);
      table.AddForeignKey({{P(i)}, T(i - 1), {K(i - 1)}, policy});
    }
    (void)schema.AddTable(std::move(table));
  }
  return schema;
}

Status PopulateChain(Database* db, int depth, int rows_per_level) {
  for (int i = 0; i < depth; ++i) {
    for (int r = 0; r < rows_per_level; ++r) {
      relational::Row row;
      row.push_back(Value::Int(r));
      row.push_back(Value::String("level" + std::to_string(i) + "_row" +
                                  std::to_string(r)));
      if (i > 0) row.push_back(Value::Int(r % rows_per_level));
      UFILTER_RETURN_NOT_OK(db->Insert(T(i), std::move(row)).status());
    }
  }
  db->Checkpoint();
  return Status::OK();
}

Result<std::unique_ptr<Database>> MakeChainDatabase(int depth,
                                                    int rows_per_level,
                                                    DeletePolicy policy) {
  UFILTER_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                           Database::Create(MakeChainSchema(depth, policy)));
  UFILTER_RETURN_NOT_OK(PopulateChain(db.get(), depth, rows_per_level));
  return db;
}

Status ApplyChainBatch(Database* db, int depth, int rows_per_level,
                       uint32_t seed, int index) {
  // The op stream must be a pure function of (seed, index): the crash fuzz
  // replays exactly the batches whose commit records survived, so nothing
  // here may read database state to decide what to do.
  std::mt19937 rng(seed + 0x9e3779b9u * static_cast<uint32_t>(index + 1));
  const int leaf = depth - 1;
  const std::string table = T(leaf);
  const int ops = 1 + static_cast<int>(rng() % 4);
  Database::WriterGuard guard(db);
  for (int j = 0; j < ops; ++j) {
    const std::string color =
        "c" + std::to_string(rng() % 7);  // small palette => deletes hit
    // Op 0 is always an insert: a batch of nothing but zero-victim updates
    // or deletes would leave the guard clean, publish no epoch and append
    // no WAL record — breaking the crash fuzz's batch <-> epoch mapping.
    // One guaranteed-effective op per batch keeps it bijective.
    switch (j == 0 ? 1 : rng() % 3) {
      case 0: {  // Recolor one seeded-or-surviving leaf by key.
        const int64_t key = static_cast<int64_t>(rng() % rows_per_level);
        UFILTER_RETURN_NOT_OK(
            db->UpdateWhere(table, {{V(leaf), Value::String(color)}},
                            {{K(leaf), CompareOp::kEq,
                              Value::Int(key)}})
                .status());
        break;
      }
      case 1: {  // Insert a batch-unique leaf (keys never collide: each
                 // batch owns the range [1e6 + index*8, 1e6 + index*8 + 7]).
        relational::Row row;
        row.push_back(Value::Int(1'000'000 + static_cast<int64_t>(index) * 8 +
                                 j));
        row.push_back(Value::String(color));
        if (depth > 1)
          row.push_back(Value::Int(static_cast<int64_t>(rng()) %
                                   rows_per_level));
        UFILTER_RETURN_NOT_OK(db->Insert(table, std::move(row)).status());
        break;
      }
      default: {  // Delete every leaf currently wearing `color` (leaf level
                  // => no cascade fan-out; zero victims is fine).
        UFILTER_RETURN_NOT_OK(
            db->DeleteWhere(table, {{V(leaf), CompareOp::kEq,
                                     Value::String(color)}})
                .status());
        break;
      }
    }
  }
  db->Checkpoint();  // Seal the redo + drop the undo before publishing.
  return Status::OK();
}

std::string ChainViewQuery(int depth) {
  // Innermost-out construction of nested FLWRs.
  std::string inner;
  for (int i = depth - 1; i >= 0; --i) {
    std::string flwr = "FOR $x" + std::to_string(i) +
                       " IN document(\"default.xml\")/" + T(i) + "/row\n";
    if (i > 0) {
      flwr += "WHERE ($x" + std::to_string(i) + "/" + P(i) + " = $x" +
              std::to_string(i - 1) + "/" + K(i - 1) + ")\n";
    }
    flwr += "RETURN {\n<e" + std::to_string(i) + "> $x" + std::to_string(i) +
            "/" + K(i) + ", $x" + std::to_string(i) + "/" + V(i);
    if (!inner.empty()) flwr += ",\n" + inner;
    flwr += "\n</e" + std::to_string(i) + ">\n}";
    inner = flwr;
  }
  return "<Chain>\n" + inner + "\n</Chain>";
}

namespace {

/// FOR clause binding $root and $e0..$e<level>, shared by the update
/// builders below.
std::string ChainForClause(int level) {
  std::string stmt = "FOR $root IN document(\"V.xml\")";
  std::string parent = "root";
  for (int i = 0; i <= level; ++i) {
    stmt += ",\n    $e" + std::to_string(i) + " IN $" + parent + "/e" +
            std::to_string(i);
    parent = "e" + std::to_string(i);
  }
  return stmt;
}

std::string ChainAnchor(int level) {
  return level == 0 ? "root" : "e" + std::to_string(level - 1);
}

}  // namespace

std::string ChainDeleteUpdate(int level, int64_t key) {
  std::string stmt = ChainForClause(level);
  stmt += "\nWHERE $e" + std::to_string(level) + "/k" +
          std::to_string(level) + "/text() = " + std::to_string(key);
  stmt += "\nUPDATE $" + ChainAnchor(level) + " {\n  DELETE $e" +
          std::to_string(level) + "\n}";
  return stmt;
}

std::string ChainDeleteByValueUpdate(int level, const std::string& value) {
  std::string stmt = ChainForClause(level);
  stmt += "\nWHERE $e" + std::to_string(level) + "/v" +
          std::to_string(level) + "/text() = \"" + value + "\"";
  stmt += "\nUPDATE $" + ChainAnchor(level) + " {\n  DELETE $e" +
          std::to_string(level) + "\n}";
  return stmt;
}

std::string ChainReplaceUpdate(int level, int64_t key,
                               const std::string& value) {
  const std::string l = std::to_string(level);
  std::string stmt = ChainForClause(level);
  stmt += "\nWHERE $e" + l + "/k" + l + "/text() = " + std::to_string(key);
  stmt += "\nUPDATE $" + ChainAnchor(level) + " {\n  REPLACE $e" + l + "/v" +
          l + " WITH <v" + l + ">" + value + "</v" + l + ">\n}";
  return stmt;
}

}  // namespace ufilter::fixtures
