#include "fixtures/synthetic.h"

#include <string>

namespace ufilter::fixtures {

using relational::Database;
using relational::DatabaseSchema;
using relational::DeletePolicy;
using relational::TableSchema;

namespace {

std::string T(int i) { return "t" + std::to_string(i); }
std::string K(int i) { return "k" + std::to_string(i); }
std::string V(int i) { return "v" + std::to_string(i); }
std::string P(int i) { return "p" + std::to_string(i); }

}  // namespace

DatabaseSchema MakeChainSchema(int depth, DeletePolicy policy) {
  DatabaseSchema schema;
  for (int i = 0; i < depth; ++i) {
    TableSchema table(T(i));
    table.AddColumn(K(i), ValueType::kInt, true)
        .AddColumn(V(i), ValueType::kString)
        .SetPrimaryKey({K(i)});
    if (i > 0) {
      table.AddColumn(P(i), ValueType::kInt);
      table.AddForeignKey({{P(i)}, T(i - 1), {K(i - 1)}, policy});
    }
    (void)schema.AddTable(std::move(table));
  }
  return schema;
}

Result<std::unique_ptr<Database>> MakeChainDatabase(int depth,
                                                    int rows_per_level,
                                                    DeletePolicy policy) {
  UFILTER_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                           Database::Create(MakeChainSchema(depth, policy)));
  for (int i = 0; i < depth; ++i) {
    for (int r = 0; r < rows_per_level; ++r) {
      relational::Row row;
      row.push_back(Value::Int(r));
      row.push_back(Value::String("level" + std::to_string(i) + "_row" +
                                  std::to_string(r)));
      if (i > 0) row.push_back(Value::Int(r % rows_per_level));
      UFILTER_RETURN_NOT_OK(db->Insert(T(i), std::move(row)).status());
    }
  }
  db->Checkpoint();
  return db;
}

std::string ChainViewQuery(int depth) {
  // Innermost-out construction of nested FLWRs.
  std::string inner;
  for (int i = depth - 1; i >= 0; --i) {
    std::string flwr = "FOR $x" + std::to_string(i) +
                       " IN document(\"default.xml\")/" + T(i) + "/row\n";
    if (i > 0) {
      flwr += "WHERE ($x" + std::to_string(i) + "/" + P(i) + " = $x" +
              std::to_string(i - 1) + "/" + K(i - 1) + ")\n";
    }
    flwr += "RETURN {\n<e" + std::to_string(i) + "> $x" + std::to_string(i) +
            "/" + K(i) + ", $x" + std::to_string(i) + "/" + V(i);
    if (!inner.empty()) flwr += ",\n" + inner;
    flwr += "\n</e" + std::to_string(i) + ">\n}";
    inner = flwr;
  }
  return "<Chain>\n" + inner + "\n</Chain>";
}

namespace {

/// FOR clause binding $root and $e0..$e<level>, shared by the update
/// builders below.
std::string ChainForClause(int level) {
  std::string stmt = "FOR $root IN document(\"V.xml\")";
  std::string parent = "root";
  for (int i = 0; i <= level; ++i) {
    stmt += ",\n    $e" + std::to_string(i) + " IN $" + parent + "/e" +
            std::to_string(i);
    parent = "e" + std::to_string(i);
  }
  return stmt;
}

std::string ChainAnchor(int level) {
  return level == 0 ? "root" : "e" + std::to_string(level - 1);
}

}  // namespace

std::string ChainDeleteUpdate(int level, int64_t key) {
  std::string stmt = ChainForClause(level);
  stmt += "\nWHERE $e" + std::to_string(level) + "/k" +
          std::to_string(level) + "/text() = " + std::to_string(key);
  stmt += "\nUPDATE $" + ChainAnchor(level) + " {\n  DELETE $e" +
          std::to_string(level) + "\n}";
  return stmt;
}

std::string ChainDeleteByValueUpdate(int level, const std::string& value) {
  std::string stmt = ChainForClause(level);
  stmt += "\nWHERE $e" + std::to_string(level) + "/v" +
          std::to_string(level) + "/text() = \"" + value + "\"";
  stmt += "\nUPDATE $" + ChainAnchor(level) + " {\n  DELETE $e" +
          std::to_string(level) + "\n}";
  return stmt;
}

std::string ChainReplaceUpdate(int level, int64_t key,
                               const std::string& value) {
  const std::string l = std::to_string(level);
  std::string stmt = ChainForClause(level);
  stmt += "\nWHERE $e" + l + "/k" + l + "/text() = " + std::to_string(key);
  stmt += "\nUPDATE $" + ChainAnchor(level) + " {\n  REPLACE $e" + l + "/v" +
          l + " WITH <v" + l + ">" + value + "</v" + l + ">\n}";
  return stmt;
}

}  // namespace ufilter::fixtures
