// Synthetic scalable schemas/views for ablation studies: a chain of N
// relations t0 <- t1 <- ... <- t(N-1) (FK pointing left) published as an
// N-level FK-following nested view. Used to exercise the Section 7.1
// complexity claim: STAR marking is polynomial in the *view query* size and
// independent of the database size.
#ifndef UFILTER_FIXTURES_SYNTHETIC_H_
#define UFILTER_FIXTURES_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "relational/database.h"

namespace ufilter::fixtures {

/// t<i>(k<i> PK, v<i>, p<i> FK -> t<i-1>.k<i-1>).
relational::DatabaseSchema MakeChainSchema(
    int depth,
    relational::DeletePolicy policy = relational::DeletePolicy::kCascade);

/// Seeds an empty chain database: each level gets `rows_per_level` rows,
/// row r of level i referencing row r % rows of level i-1. Ends with a
/// Checkpoint(), so the seed is one undo-free baseline. Extracted from
/// MakeChainDatabase so crash-recovery tests can replay the exact seeding
/// into a recovered or reference database.
Status PopulateChain(relational::Database* db, int depth, int rows_per_level);

/// Populates each level with `rows_per_level` rows; row r of level i
/// references row r % rows of level i-1.
Result<std::unique_ptr<relational::Database>> MakeChainDatabase(
    int depth, int rows_per_level,
    relational::DeletePolicy policy = relational::DeletePolicy::kCascade);

/// Applies one deterministic pseudo-random mutation batch (1-4 leaf-level
/// inserts / recolors / deletes-by-color, derived from `seed` and the batch
/// `index` alone, never from database state) and commits it as a single
/// WriterGuard epoch. Replaying batches 0..k-1 in order onto a freshly
/// populated chain always lands on the same published state — the
/// reference-replay oracle of the crash-recovery fuzz tests.
Status ApplyChainBatch(relational::Database* db, int depth,
                       int rows_per_level, uint32_t seed, int index);

/// <Chain> with N nested FLWRs following the FKs; every internal node is
/// (clean | safe-delete, safe-insert).
std::string ChainViewQuery(int depth);

/// Delete of the element at `level` (0-based) with key `key`.
std::string ChainDeleteUpdate(int level, int64_t key);

/// Delete of every element at `level` whose v<level> text equals `value`
/// (victim set depends on current data, unlike the key-addressed delete —
/// used by the snapshot fuzz tests to make verdicts epoch-sensitive).
std::string ChainDeleteByValueUpdate(int level, const std::string& value);

/// Value replacement: REPLACE the v<level> leaf of the element with key
/// `key` by `value`. Translates to UPDATE t<level> SET v<level>=... —
/// repeatable forever, which makes it the writer workload of the mixed
/// concurrency bench.
std::string ChainReplaceUpdate(int level, int64_t key,
                               const std::string& value);

}  // namespace ufilter::fixtures

#endif  // UFILTER_FIXTURES_SYNTHETIC_H_
