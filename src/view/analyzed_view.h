// Analyzed (name-resolved) form of a view query. The parser's AST is
// syntactic; this module binds variables to relations, classifies predicates
// (correlation vs. non-correlation, Section 3.1) and normalizes the
// constructor structure into a tree that the ASG builder, the materializer
// and the probe-query composer all walk.
//
// Tree shape:
//   kRoot                 the (possibly dummy) root element
//   kGroup                an FLWR: carries a Scope (new bindings + WHERE);
//                         its children repeat once per qualifying binding
//   kComplex              an element constructor <tag>...</tag>
//   kSimple               a projection $var/attr, rendering <attr>value</attr>
#ifndef UFILTER_VIEW_ANALYZED_VIEW_H_
#define UFILTER_VIEW_ANALYZED_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "xquery/ast.h"

namespace ufilter::view {

/// Resolved `$var/attr`: the variable, its bound relation, and the column.
struct AttrRef {
  std::string variable;
  std::string relation;
  std::string attr;

  std::string ToString() const { return relation + "." + attr; }
};

/// A resolved WHERE conjunct. Correlation predicates join two attributes;
/// local (non-correlation) predicates compare an attribute with a literal.
struct ResolvedCondition {
  bool is_correlation = false;
  AttrRef lhs;
  CompareOp op = CompareOp::kEq;
  AttrRef rhs;    ///< when is_correlation
  Value literal;  ///< when !is_correlation

  std::string ToString() const;
};

/// Variable scope of one FLWR. Scopes nest following the query's FLWR
/// nesting; `FindVar` walks outward.
struct Scope {
  const Scope* parent = nullptr;
  /// Bindings introduced by this FLWR, in binding order: var -> relation.
  std::vector<std::pair<std::string, std::string>> vars;
  /// Resolved WHERE conjuncts of this FLWR.
  std::vector<ResolvedCondition> conditions;

  /// Relation bound to `var`, searching this scope then ancestors.
  const std::string* FindVar(const std::string& var) const;
  /// Names of relations newly bound here.
  std::vector<std::string> NewRelations() const;
  /// Relations bound here or in any ancestor (the UCBinding contribution).
  std::vector<std::string> AllRelations() const;
};

/// One node of the analyzed view tree.
struct AvNode {
  enum class Kind { kRoot, kGroup, kComplex, kSimple };

  Kind kind = Kind::kRoot;
  std::string tag;  ///< element tag (kRoot/kComplex/kSimple)
  // kSimple projection source:
  std::string variable;
  std::string relation;
  std::string attr;

  /// Scope in effect at this node. For kGroup this is the group's own,
  /// newly introduced scope.
  const Scope* scope = nullptr;
  AvNode* parent = nullptr;
  std::vector<std::unique_ptr<AvNode>> children;

  bool is_element() const { return kind != Kind::kGroup; }

  /// Element children, looking through kGroup wrappers.
  std::vector<const AvNode*> ElementChildren() const;
  /// Nearest ancestor that is an element (skipping groups); null for root.
  const AvNode* ParentElement() const;
  /// True if this element sits (possibly through kComplex ancestors) under a
  /// kGroup that is a descendant-or-self of `ancestor`'s subtree start,
  /// i.e. the element repeats relative to `ancestor`.
  bool RepeatsBelow(const AvNode* ancestor) const;
  /// Path of tags from the root element to this element (root tag excluded).
  std::vector<std::string> TagPath() const;
};

/// \brief The analyzed view: resolved tree + schema handle.
class AnalyzedView {
 public:
  /// Analyzes `query` against `schema`. Fails with NotFound / NotSupported
  /// when names don't resolve or the query leaves the supported fragment.
  static Result<std::unique_ptr<AnalyzedView>> Analyze(
      const xq::ViewQuery& query, const relational::DatabaseSchema* schema);

  const AvNode& root() const { return *root_; }
  const relational::DatabaseSchema& schema() const { return *schema_; }

  /// rel(DEFv): all relations referenced by the view query.
  std::vector<std::string> Relations() const;

  /// Structural fingerprint of the analyzed view (tags, bindings, resolved
  /// conditions). Prepared update plans carry the signature of the view they
  /// were compiled against so a plan can never execute against a different
  /// view definition.
  uint64_t Signature() const;

  /// Resolves a path of element tags from the root (e.g. {"book",
  /// "publisher"}) to the **first** matching element node, document order.
  Result<const AvNode*> ResolveElementPath(
      const std::vector<std::string>& steps) const;

 private:
  AnalyzedView() = default;

  std::unique_ptr<AvNode> root_;
  std::vector<std::unique_ptr<Scope>> scopes_;
  const relational::DatabaseSchema* schema_ = nullptr;

  friend class Analyzer;
};

}  // namespace ufilter::view

#endif  // UFILTER_VIEW_ANALYZED_VIEW_H_
