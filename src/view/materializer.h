// Evaluates an analyzed view query over the relational database, producing
// the XML view content (Fig. 3(b) from Fig. 3(a) + Fig. 1). Used by the
// examples, by tests as a side-effect oracle, and by the Fig. 14 baseline
// (blind translation detects side effects by materializing before/after).
#ifndef UFILTER_VIEW_MATERIALIZER_H_
#define UFILTER_VIEW_MATERIALIZER_H_

#include "common/result.h"
#include "relational/database.h"
#include "view/analyzed_view.h"
#include "xml/node.h"

namespace ufilter::view {

/// \brief View query evaluator.
///
/// Group enumeration uses the engine's hash indexes when a scope condition
/// equates a new variable's indexed column with an already-bound value;
/// otherwise it scans. NULL projection values render as absent elements
/// (matching the '?' cardinality in the view ASG).
class Materializer {
 public:
  explicit Materializer(relational::Database* db) : db_(db) {}

  Result<xml::NodePtr> Materialize(const AnalyzedView& view);

 private:
  relational::Database* db_;
};

}  // namespace ufilter::view

#endif  // UFILTER_VIEW_MATERIALIZER_H_
