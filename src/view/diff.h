// Structural XML diff used as the side-effect oracle: the blind-translation
// baseline (Fig. 14) materializes the view before and after executing a
// translated update and compares the observed change against the requested
// one; tests use it to verify Definition 1's "rectangle rule".
#ifndef UFILTER_VIEW_DIFF_H_
#define UFILTER_VIEW_DIFF_H_

#include <optional>
#include <string>

#include "xml/node.h"

namespace ufilter::view {

/// Describes the first structural difference between two XML trees, or
/// nullopt when they are equal. The description contains the path and the
/// differing labels.
std::optional<std::string> FirstDifference(const xml::Node& a,
                                           const xml::Node& b);

/// Convenience: trees equal?
inline bool TreesEqual(const xml::Node& a, const xml::Node& b) {
  return !FirstDifference(a, b).has_value();
}

}  // namespace ufilter::view

#endif  // UFILTER_VIEW_DIFF_H_
