#include "view/diff.h"

namespace ufilter::view {

namespace {

std::optional<std::string> DiffAt(const xml::Node& a, const xml::Node& b,
                                  const std::string& path) {
  if (a.kind() != b.kind()) {
    return path + ": node kind differs";
  }
  if (a.label() != b.label()) {
    return path + ": '" + a.label() + "' vs '" + b.label() + "'";
  }
  if (a.children().size() != b.children().size()) {
    return path + "/" + a.label() + ": child count " +
           std::to_string(a.children().size()) + " vs " +
           std::to_string(b.children().size());
  }
  for (size_t i = 0; i < a.children().size(); ++i) {
    auto d = DiffAt(*a.children()[i], *b.children()[i],
                    path + "/" + a.label() + "[" + std::to_string(i) + "]");
    if (d.has_value()) return d;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> FirstDifference(const xml::Node& a,
                                           const xml::Node& b) {
  return DiffAt(a, b, "");
}

}  // namespace ufilter::view
