// The "internal approach" substrate (Section 6.2.1): maps the XML view to a
// single flat relational view built with left outer joins following the view
// nesting (the paper's RelationalBookView, Fig. 11). The internal strategy
// then updates this relational view, which forces retrieval of *all* view
// columns — the inefficiency Fig. 15 measures.
#ifndef UFILTER_VIEW_RELVIEW_H_
#define UFILTER_VIEW_RELVIEW_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "view/analyzed_view.h"

namespace ufilter::view {

/// One column of the flattened relational view.
struct RelViewColumn {
  std::string name;      ///< unique-ified column name
  AttrRef source;        ///< originating relation.attribute
};

/// The flattened relational view: schema + rows (NULL-padded on the outer
/// side of each nesting level, like a LEFT JOIN chain).
struct RelationalView {
  std::vector<RelViewColumn> columns;
  std::vector<relational::Row> rows;

  int ColumnIndex(const std::string& name) const;
  /// CREATE VIEW text describing this mapping (documentation/logging).
  std::string ToCreateViewSql(const std::string& view_name) const;
};

/// Builds the flattened relational view of `view` over `db`.
Result<RelationalView> BuildRelationalView(relational::Database* db,
                                           const AnalyzedView& view);

/// Collects the flattened column list only (no data access); used by the
/// internal strategy to know which attributes a relational-view update must
/// populate.
std::vector<RelViewColumn> FlattenColumns(const AnalyzedView& view);

}  // namespace ufilter::view

#endif  // UFILTER_VIEW_RELVIEW_H_
