#include "view/relview.h"

#include <map>
#include <set>

#include "common/strings.h"

namespace ufilter::view {

namespace {

using relational::Database;
using relational::Row;
using relational::RowId;
using relational::Table;

void CollectColumns(const AvNode& node, std::set<std::string>* used,
                    std::vector<RelViewColumn>* out) {
  if (node.kind == AvNode::Kind::kSimple) {
    std::string name = node.attr;
    int n = 1;
    while (used->count(name) > 0) name = node.attr + "_" + std::to_string(n++);
    used->insert(name);
    out->push_back({name, AttrRef{node.variable, node.relation, node.attr}});
    return;
  }
  for (const auto& c : node.children) CollectColumns(*c, used, out);
}

struct BoundVar {
  const Table* table;
  const Row* row;
};
using Env = std::map<std::string, BoundVar>;

class Flattener {
 public:
  Flattener(Database* db, const RelationalView* schema_only)
      : db_(db), schema_(schema_only) {}

  Status Flatten(const AvNode& node, Env* env, std::vector<Row>* out) {
    // Find the first group child (nesting level); emit the cartesian LOJ.
    const AvNode* group = nullptr;
    for (const auto& c : node.children) {
      if (c->kind == AvNode::Kind::kGroup) {
        group = c.get();
        break;
      }
    }
    if (group == nullptr) {
      out->push_back(RowFromEnv(*env));
      return Status::OK();
    }
    return BindGroup(*group, 0, env, out);
  }

 private:
  Row RowFromEnv(const Env& env) const {
    Row row(schema_->columns.size());
    for (size_t i = 0; i < schema_->columns.size(); ++i) {
      const AttrRef& src = schema_->columns[i].source;
      auto it = env.find(src.variable);
      if (it == env.end()) continue;  // NULL (outer side unmatched)
      int c = it->second.table->schema().ColumnIndex(src.attr);
      if (c >= 0) row[i] = (*it->second.row)[static_cast<size_t>(c)];
    }
    return row;
  }

  const Value* Lookup(const Env& env, const AttrRef& ref) const {
    auto it = env.find(ref.variable);
    if (it == env.end()) return nullptr;
    int c = it->second.table->schema().ColumnIndex(ref.attr);
    if (c < 0) return nullptr;
    return &(*it->second.row)[static_cast<size_t>(c)];
  }

  Status BindGroup(const AvNode& group, size_t var_index, Env* env,
                   std::vector<Row>* out) {
    const Scope& scope = *group.scope;
    if (var_index == scope.vars.size()) {
      for (const ResolvedCondition& cond : scope.conditions) {
        const Value* lhs = Lookup(*env, cond.lhs);
        bool pass = false;
        if (lhs != nullptr) {
          if (cond.is_correlation) {
            const Value* rhs = Lookup(*env, cond.rhs);
            pass = rhs != nullptr && EvalCompare(*lhs, cond.op, *rhs);
          } else {
            pass = EvalCompare(*lhs, cond.op, cond.literal);
          }
        }
        if (!pass) return Status::OK();
      }
      // Descend into nested groups (next nesting level); left-outer: if no
      // nested rows were produced, emit this level NULL-padded.
      size_t before = out->size();
      const AvNode* nested = nullptr;
      for (const auto& c : group.children) {
        UFILTER_RETURN_NOT_OK(FindNestedGroup(*c, &nested));
      }
      if (nested != nullptr) {
        UFILTER_RETURN_NOT_OK(BindGroup(*nested, 0, env, out));
      }
      if (out->size() == before) out->push_back(RowFromEnv(*env));
      return Status::OK();
    }

    const auto& [var, relation] = scope.vars[var_index];
    UFILTER_ASSIGN_OR_RETURN(Table * table, db_->GetTable(relation));
    size_t produced_before = out->size();
    for (RowId id : table->AllRowIds()) {
      const Row* row = table->GetRow(id);
      if (row == nullptr) continue;
      (*env)[var] = BoundVar{table, row};
      UFILTER_RETURN_NOT_OK(BindGroup(group, var_index + 1, env, out));
    }
    env->erase(var);
    // Left-outer semantics at the top of each group: parent row without
    // children still appears (handled by caller when nothing was produced).
    (void)produced_before;
    return Status::OK();
  }

  Status FindNestedGroup(const AvNode& node, const AvNode** found) const {
    if (node.kind == AvNode::Kind::kGroup) {
      if (*found != nullptr && *found != &node) {
        return Status::NotSupported(
            "relational view mapping supports one nested group per level");
      }
      *found = &node;
      return Status::OK();
    }
    for (const auto& c : node.children) {
      UFILTER_RETURN_NOT_OK(FindNestedGroup(*c, found));
    }
    return Status::OK();
  }

  Database* db_;
  const RelationalView* schema_;
};

}  // namespace

int RelationalView::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationalView::ToCreateViewSql(const std::string& view_name) const {
  std::vector<std::string> cols;
  std::set<std::string> rels;
  for (const RelViewColumn& c : columns) {
    cols.push_back(c.source.relation + "." + c.source.attr + " AS " + c.name);
    rels.insert(c.source.relation);
  }
  return "CREATE VIEW " + view_name + " AS SELECT " + Join(cols, ", ") +
         " FROM " + Join({rels.begin(), rels.end()}, " LEFT JOIN ");
}

std::vector<RelViewColumn> FlattenColumns(const AnalyzedView& view) {
  std::set<std::string> used;
  std::vector<RelViewColumn> out;
  CollectColumns(view.root(), &used, &out);
  return out;
}

Result<RelationalView> BuildRelationalView(relational::Database* db,
                                           const AnalyzedView& view) {
  RelationalView rv;
  rv.columns = FlattenColumns(view);
  Env env;
  Flattener flattener(db, &rv);
  // The root's first group drives the flattening; additional top-level
  // groups (republished relations) are out of scope for the internal
  // mapping, matching the paper's well-nested RelationalBookView which only
  // flattens the book branch.
  const AvNode* first_group = nullptr;
  for (const auto& c : view.root().children) {
    if (c->kind == AvNode::Kind::kGroup) {
      first_group = c.get();
      break;
    }
  }
  if (first_group == nullptr) return rv;
  std::vector<relational::Row> rows;
  Flattener inner(db, &rv);
  UFILTER_RETURN_NOT_OK(inner.Flatten(view.root(), &env, &rows));
  rv.rows = std::move(rows);
  (void)flattener;
  return rv;
}

}  // namespace ufilter::view
