#include "view/materializer.h"

#include <map>

namespace ufilter::view {

namespace {

using relational::ColumnPredicate;
using relational::Database;
using relational::Row;
using relational::RowId;
using relational::Table;

struct BoundVar {
  const Table* table;
  const Row* row;
};

using Env = std::map<std::string, BoundVar>;

class Emitter {
 public:
  explicit Emitter(Database* db) : db_(db) {}

  Status EmitChildren(const AvNode& node, Env* env, xml::Node* out) {
    for (const auto& child : node.children) {
      switch (child->kind) {
        case AvNode::Kind::kGroup:
          UFILTER_RETURN_NOT_OK(EmitGroup(*child, env, out));
          break;
        case AvNode::Kind::kSimple:
          UFILTER_RETURN_NOT_OK(EmitSimple(*child, *env, out));
          break;
        case AvNode::Kind::kComplex: {
          xml::Node* el = out->AddChild(xml::Node::Element(child->tag));
          UFILTER_RETURN_NOT_OK(EmitChildren(*child, env, el));
          break;
        }
        case AvNode::Kind::kRoot:
          return Status::Internal("nested root node");
      }
    }
    return Status::OK();
  }

 private:
  Status EmitSimple(const AvNode& node, const Env& env, xml::Node* out) {
    auto it = env.find(node.variable);
    if (it == env.end()) {
      return Status::Internal("unbound variable $" + node.variable +
                              " during materialization");
    }
    int c = it->second.table->schema().ColumnIndex(node.attr);
    if (c < 0) {
      return Status::Internal("missing column " + node.attr);
    }
    const Value& v = (*it->second.row)[static_cast<size_t>(c)];
    if (v.is_null()) return Status::OK();  // absent element for NULL
    out->AddChild(xml::Node::SimpleElement(node.tag, v.ToText()));
    return Status::OK();
  }

  /// Returns the current value of `ref` from the environment, or nullptr if
  /// its variable is not bound yet.
  const Value* Lookup(const Env& env, const AttrRef& ref) {
    auto it = env.find(ref.variable);
    if (it == env.end()) return nullptr;
    int c = it->second.table->schema().ColumnIndex(ref.attr);
    if (c < 0) return nullptr;
    return &(*it->second.row)[static_cast<size_t>(c)];
  }

  Status EmitGroup(const AvNode& group, Env* env, xml::Node* out) {
    return BindFrom(group, 0, env, out);
  }

  Status BindFrom(const AvNode& group, size_t var_index, Env* env,
                  xml::Node* out) {
    const Scope& scope = *group.scope;
    if (var_index == scope.vars.size()) {
      // All bound: verify every condition of this scope, then emit contents.
      for (const ResolvedCondition& cond : scope.conditions) {
        const Value* lhs = Lookup(*env, cond.lhs);
        if (lhs == nullptr) {
          return Status::Internal("unresolvable condition " + cond.ToString());
        }
        bool pass;
        if (cond.is_correlation) {
          const Value* rhs = Lookup(*env, cond.rhs);
          if (rhs == nullptr) {
            return Status::Internal("unresolvable condition " +
                                    cond.ToString());
          }
          pass = EvalCompare(*lhs, cond.op, *rhs);
        } else {
          pass = EvalCompare(*lhs, cond.op, cond.literal);
        }
        if (!pass) return Status::OK();
      }
      return EmitChildren(group, env, out);
    }

    const auto& [var, relation] = scope.vars[var_index];
    UFILTER_ASSIGN_OR_RETURN(Table * table, db_->GetTable(relation));

    // Collect pushdown predicates for this variable.
    std::vector<ColumnPredicate> preds;
    for (const ResolvedCondition& cond : scope.conditions) {
      if (!cond.is_correlation) {
        if (cond.lhs.variable == var) {
          preds.push_back({cond.lhs.attr, cond.op, cond.literal});
        }
        continue;
      }
      if (cond.lhs.variable == var) {
        const Value* bound = Lookup(*env, cond.rhs);
        if (bound != nullptr && !bound->is_null()) {
          preds.push_back({cond.lhs.attr, cond.op, *bound});
        }
      } else if (cond.rhs.variable == var) {
        const Value* bound = Lookup(*env, cond.lhs);
        if (bound != nullptr && !bound->is_null()) {
          preds.push_back({cond.rhs.attr, FlipCompareOp(cond.op), *bound});
        }
      }
    }

    for (RowId id : table->Find(preds, &db_->stats())) {
      const Row* row = table->GetRow(id);
      if (row == nullptr) continue;
      (*env)[var] = BoundVar{table, row};
      UFILTER_RETURN_NOT_OK(BindFrom(group, var_index + 1, env, out));
    }
    env->erase(var);
    return Status::OK();
  }

  Database* db_;
};

}  // namespace

Result<xml::NodePtr> Materializer::Materialize(const AnalyzedView& view) {
  xml::NodePtr root = xml::Node::Element(view.root().tag);
  Env env;
  Emitter emitter(db_);
  UFILTER_RETURN_NOT_OK(emitter.EmitChildren(view.root(), &env, root.get()));
  return root;
}

}  // namespace ufilter::view
