#include "view/analyzed_view.h"

#include <set>

#include "common/strings.h"

namespace ufilter::view {

std::string ResolvedCondition::ToString() const {
  if (is_correlation) {
    return lhs.ToString() + " " + CompareOpSymbol(op) + " " + rhs.ToString();
  }
  return lhs.ToString() + " " + CompareOpSymbol(op) + " " +
         literal.ToSqlLiteral();
}

const std::string* Scope::FindVar(const std::string& var) const {
  for (const auto& [v, rel] : vars) {
    if (v == var) return &rel;
  }
  return parent != nullptr ? parent->FindVar(var) : nullptr;
}

std::vector<std::string> Scope::NewRelations() const {
  std::set<std::string> out;
  for (const auto& [v, rel] : vars) {
    (void)v;
    out.insert(rel);
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> Scope::AllRelations() const {
  std::set<std::string> out;
  for (const Scope* s = this; s != nullptr; s = s->parent) {
    for (const auto& [v, rel] : s->vars) {
      (void)v;
      out.insert(rel);
    }
  }
  return {out.begin(), out.end()};
}

std::vector<const AvNode*> AvNode::ElementChildren() const {
  std::vector<const AvNode*> out;
  for (const auto& c : children) {
    if (c->kind == Kind::kGroup) {
      for (const auto& gc : c->children) {
        if (gc->is_element()) out.push_back(gc.get());
      }
    } else if (c->is_element()) {
      out.push_back(c.get());
    }
  }
  return out;
}

const AvNode* AvNode::ParentElement() const {
  const AvNode* p = parent;
  while (p != nullptr && !p->is_element()) p = p->parent;
  return p;
}

bool AvNode::RepeatsBelow(const AvNode* ancestor) const {
  for (const AvNode* p = parent; p != nullptr; p = p->parent) {
    if (p == ancestor) return false;
    if (p->kind == Kind::kGroup) return true;
  }
  return false;
}

std::vector<std::string> AvNode::TagPath() const {
  std::vector<std::string> out;
  for (const AvNode* n = this; n != nullptr; n = n->ParentElement()) {
    if (n->kind == Kind::kRoot) break;
    if (n->is_element()) out.push_back(n->tag);
  }
  return {out.rbegin(), out.rend()};
}

class Analyzer {
 public:
  Analyzer(const xq::ViewQuery& query, const relational::DatabaseSchema* schema)
      : query_(query), schema_(schema) {}

  Result<std::unique_ptr<AnalyzedView>> Run() {
    auto view = std::unique_ptr<AnalyzedView>(new AnalyzedView());
    view->schema_ = schema_;
    view_ = view.get();

    auto root_scope = std::make_unique<Scope>();
    const Scope* root_scope_ptr = root_scope.get();
    view_->scopes_.push_back(std::move(root_scope));

    auto root = std::make_unique<AvNode>();
    root->kind = AvNode::Kind::kRoot;
    root->tag = query_.root_tag;
    root->scope = root_scope_ptr;
    view_->root_ = std::move(root);

    for (const xq::FlwrPtr& flwr : query_.flwrs) {
      UFILTER_RETURN_NOT_OK(
          AnalyzeFlwr(*flwr, view_->root_.get(), root_scope_ptr));
    }
    return view;
  }

 private:
  Status AnalyzeFlwr(const xq::Flwr& flwr, AvNode* parent,
                     const Scope* parent_scope) {
    auto scope = std::make_unique<Scope>();
    scope->parent = parent_scope;
    for (const xq::ForBinding& b : flwr.bindings) {
      UFILTER_ASSIGN_OR_RETURN(std::string relation, RelationOf(b.path));
      if (scope->FindVar(b.variable) != nullptr) {
        return Status::NotSupported("variable $" + b.variable +
                                    " shadows an outer binding");
      }
      scope->vars.emplace_back(b.variable, relation);
    }
    for (const xq::Condition& c : flwr.conditions) {
      UFILTER_ASSIGN_OR_RETURN(ResolvedCondition rc,
                               ResolveCondition(c, scope.get()));
      scope->conditions.push_back(std::move(rc));
    }
    Scope* scope_ptr = scope.get();
    view_->scopes_.push_back(std::move(scope));

    auto group = std::make_unique<AvNode>();
    group->kind = AvNode::Kind::kGroup;
    group->scope = scope_ptr;
    group->parent = parent;
    AvNode* group_ptr = group.get();
    parent->children.push_back(std::move(group));

    for (const xq::Content& content : flwr.contents) {
      UFILTER_RETURN_NOT_OK(AnalyzeContent(content, group_ptr, scope_ptr));
    }
    return Status::OK();
  }

  Status AnalyzeContent(const xq::Content& content, AvNode* parent,
                        const Scope* scope) {
    switch (content.kind) {
      case xq::Content::Kind::kProjection:
        return AnalyzeProjection(content.projection, parent, scope);
      case xq::Content::Kind::kElement: {
        auto node = std::make_unique<AvNode>();
        node->kind = AvNode::Kind::kComplex;
        node->tag = content.element->tag;
        node->scope = scope;
        node->parent = parent;
        AvNode* node_ptr = node.get();
        parent->children.push_back(std::move(node));
        for (const xq::Content& child : content.element->children) {
          UFILTER_RETURN_NOT_OK(AnalyzeContent(child, node_ptr, scope));
        }
        return Status::OK();
      }
      case xq::Content::Kind::kFlwr:
        return AnalyzeFlwr(*content.flwr, parent, scope);
    }
    return Status::Internal("unreachable content kind");
  }

  Status AnalyzeProjection(const xq::Path& path, AvNode* parent,
                           const Scope* scope) {
    UFILTER_ASSIGN_OR_RETURN(AttrRef ref, ResolveAttr(path, scope));
    auto node = std::make_unique<AvNode>();
    node->kind = AvNode::Kind::kSimple;
    node->tag = ref.attr;
    node->variable = ref.variable;
    node->relation = ref.relation;
    node->attr = ref.attr;
    node->scope = scope;
    node->parent = parent;
    parent->children.push_back(std::move(node));
    return Status::OK();
  }

  /// FOR paths look like document("default.xml")/<table>/row.
  Result<std::string> RelationOf(const xq::Path& path) const {
    if (!path.from_document) {
      return Status::NotSupported(
          "FOR binding must range over document(...): got " + path.ToString());
    }
    if (path.steps.empty()) {
      return Status::NotSupported("FOR binding path has no table step: " +
                                  path.ToString());
    }
    const std::string& table = path.steps[0];
    if (!schema_->HasTable(table)) {
      return Status::NotFound("view query references unknown table '" + table +
                              "'");
    }
    if (path.steps.size() > 2 ||
        (path.steps.size() == 2 && path.steps[1] != "row")) {
      return Status::NotSupported("unsupported FOR path: " + path.ToString());
    }
    return table;
  }

  Result<AttrRef> ResolveAttr(const xq::Path& path, const Scope* scope) const {
    if (path.from_document) {
      return Status::NotSupported("expected $var/attr path, got " +
                                  path.ToString());
    }
    if (path.steps.size() != 1) {
      return Status::NotSupported("expected single-step attribute path, got " +
                                  path.ToString());
    }
    const std::string* relation = scope->FindVar(path.variable);
    if (relation == nullptr) {
      return Status::NotFound("unbound variable $" + path.variable);
    }
    UFILTER_ASSIGN_OR_RETURN(const relational::TableSchema* table,
                             schema_->FindTable(*relation));
    if (!table->HasColumn(path.steps[0])) {
      return Status::NotFound("no column '" + path.steps[0] + "' in '" +
                              *relation + "'");
    }
    return AttrRef{path.variable, *relation, path.steps[0]};
  }

  Result<ResolvedCondition> ResolveCondition(const xq::Condition& cond,
                                             const Scope* scope) const {
    ResolvedCondition out;
    if (cond.IsCorrelation()) {
      out.is_correlation = true;
      UFILTER_ASSIGN_OR_RETURN(out.lhs, ResolveAttr(cond.lhs.path, scope));
      out.op = cond.op;
      UFILTER_ASSIGN_OR_RETURN(out.rhs, ResolveAttr(cond.rhs.path, scope));
      return out;
    }
    // Normalize literal to the right side.
    const xq::Operand* path_side = &cond.lhs;
    const xq::Operand* lit_side = &cond.rhs;
    CompareOp op = cond.op;
    if (!cond.lhs.is_path()) {
      path_side = &cond.rhs;
      lit_side = &cond.lhs;
      op = FlipCompareOp(op);
    }
    if (!path_side->is_path() || lit_side->is_path()) {
      return Status::NotSupported("unsupported condition " + cond.ToString());
    }
    out.is_correlation = false;
    UFILTER_ASSIGN_OR_RETURN(out.lhs, ResolveAttr(path_side->path, scope));
    out.op = op;
    out.literal = lit_side->literal;
    return out;
  }

  const xq::ViewQuery& query_;
  const relational::DatabaseSchema* schema_;
  AnalyzedView* view_ = nullptr;
};

Result<std::unique_ptr<AnalyzedView>> AnalyzedView::Analyze(
    const xq::ViewQuery& query, const relational::DatabaseSchema* schema) {
  Analyzer analyzer(query, schema);
  return analyzer.Run();
}

std::vector<std::string> AnalyzedView::Relations() const {
  std::set<std::string> out;
  for (const auto& scope : scopes_) {
    for (const auto& [v, rel] : scope->vars) {
      (void)v;
      out.insert(rel);
    }
  }
  return {out.begin(), out.end()};
}

namespace {

uint64_t HashNode(uint64_t h, const AvNode& node) {
  h = Fnv1aMix(h, std::to_string(static_cast<int>(node.kind)));
  h = Fnv1aMix(h, node.tag);
  h = Fnv1aMix(h, node.variable);
  h = Fnv1aMix(h, node.relation);
  h = Fnv1aMix(h, node.attr);
  if (node.kind == AvNode::Kind::kGroup && node.scope != nullptr) {
    h = Fnv1aMix(h, std::to_string(node.scope->vars.size()));
    for (const auto& [var, rel] : node.scope->vars) {
      h = Fnv1aMix(h, var);
      h = Fnv1aMix(h, rel);
    }
    for (const ResolvedCondition& c : node.scope->conditions) {
      h = Fnv1aMix(h, c.ToString());
    }
  }
  // Open/close sentinels disambiguate tree shape: <A<B>> vs. <A><B> must
  // hash differently.
  h = Fnv1aMix(h, "(");
  for (const auto& child : node.children) h = HashNode(h, *child);
  h = Fnv1aMix(h, ")");
  return h;
}

}  // namespace

uint64_t AnalyzedView::Signature() const {
  return HashNode(kFnv1aOffsetBasis, *root_);
}

Result<const AvNode*> AnalyzedView::ResolveElementPath(
    const std::vector<std::string>& steps) const {
  const AvNode* current = root_.get();
  for (const std::string& step : steps) {
    const AvNode* next = nullptr;
    for (const AvNode* child : current->ElementChildren()) {
      if (child->tag == step) {
        next = child;
        break;
      }
    }
    if (next == nullptr) {
      return Status::NotFound("view has no element path .../" + step);
    }
    current = next;
  }
  return current;
}

}  // namespace ufilter::view
