// The concurrent check service: multiplexes many client sessions over one
// shared Database + compiled UFilter (Fig. 5 deployed as middleware, the
// way XPERANTO / SilkRoute front multiple clients).
//
// Architecture:
//   - a fixed pool of worker threads drains a *bounded* MPMC admission
//     queue (Submit blocks when it is full — backpressure — and TrySubmit
//     sheds load instead);
//   - check-only traffic (apply=false, outside strategy) runs on the *fast
//     path*: plan-cache prepare + probes + read-only translation validation
//     under a shared reader lock, so N workers check concurrently and never
//     block each other;
//   - everything that must mutate the base tables — apply=true requests,
//     hybrid/internal strategies, multi-action statements, and the rare
//     sequences the read-only validator punts on — is serialized through
//     the single *writer lane* (the exclusive side of the same lock), where
//     the classic execute / rollback protocol runs unchanged.
//
// Shared vs. per-session state: the Database's base tables, the compiled
// view and the sharded plan cache are shared; each Session owns an
// ExecutionContext (temp tables, undo log) plus its outcome counters. Work
// counters everywhere are relaxed atomics. See docs/ARCHITECTURE.md,
// "Concurrency model".
#ifndef UFILTER_SERVICE_CHECK_SERVICE_H_
#define UFILTER_SERVICE_CHECK_SERVICE_H_

#include <future>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/bounded_queue.h"
#include "service/session.h"
#include "ufilter/checker.h"
#include "ufilter/plan_cache.h"

namespace ufilter::service {

struct CheckServiceOptions {
  /// Worker pool size; 0 means std::thread::hardware_concurrency().
  int worker_threads = 0;
  /// Admission queue bound (backpressure threshold).
  size_t queue_capacity = 256;
};

/// Point-in-time service counters.
struct CheckServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  /// Served read-only under the shared lock (concurrent with each other).
  uint64_t fast_path = 0;
  /// Serialized through the exclusive writer lane.
  uint64_t writer_lane = 0;
  /// Writer-lane subset that *tried* the fast path first and was punted
  /// (read-only validator undecided / multi-action / wrong strategy).
  uint64_t escalations = 0;
  /// TrySubmit refusals (queue full).
  uint64_t shed = 0;
  /// Deepest the admission queue has been.
  uint64_t queue_high_water = 0;
  /// The shared plan cache's counters (hits/misses/insertions/evictions).
  check::PlanCacheCounters plan_cache;
};

class CheckService {
 public:
  /// Starts the worker pool immediately. `filter` (and its database) must
  /// outlive the service.
  explicit CheckService(check::UFilter* filter,
                        CheckServiceOptions options = {});
  /// Drains and joins (see Shutdown).
  ~CheckService();

  CheckService(const CheckService&) = delete;
  CheckService& operator=(const CheckService&) = delete;

  /// Opens a new session (thread-safe). The session is valid until the
  /// service is destroyed; closing is just dropping the shared_ptr.
  std::shared_ptr<Session> OpenSession(std::string name = "");

  /// Enqueues one check; blocks while the queue is full (backpressure).
  /// The future resolves when a worker finishes the check. After Shutdown
  /// the future resolves immediately with an InvalidArgument report.
  std::future<check::CheckReport> Submit(std::shared_ptr<Session> session,
                                         std::string update_text,
                                         check::CheckOptions options = {});

  /// Non-blocking Submit: false (and no future) when the queue is full.
  bool TrySubmit(std::shared_ptr<Session> session, std::string update_text,
                 check::CheckOptions options,
                 std::future<check::CheckReport>* out);

  /// Refuses new submissions, drains everything queued, joins the workers.
  /// Idempotent.
  void Shutdown();

  CheckServiceStats Snapshot() const;

  int worker_threads() const {
    return static_cast<int>(workers_.size());
  }
  check::UFilter* filter() { return filter_; }

 private:
  struct Request {
    std::shared_ptr<Session> session;
    std::string update_text;
    check::CheckOptions options;
    std::promise<check::CheckReport> promise;
  };

  void WorkerLoop();
  check::CheckReport Process(Request* req);

  check::UFilter* filter_;
  relational::Database* db_;
  BoundedQueue<std::unique_ptr<Request>> queue_;
  std::vector<std::thread> workers_;

  /// Readers = concurrent fast-path checks; the exclusive side is the
  /// writer lane.
  std::shared_mutex data_mu_;

  relational::RelaxedCounter next_session_id_{1};
  relational::RelaxedCounter submitted_;
  relational::RelaxedCounter completed_;
  relational::RelaxedCounter fast_path_;
  relational::RelaxedCounter writer_lane_;
  relational::RelaxedCounter escalations_;
  relational::RelaxedCounter shed_;
};

}  // namespace ufilter::service

#endif  // UFILTER_SERVICE_CHECK_SERVICE_H_
