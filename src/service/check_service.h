// The concurrent check service: multiplexes many client sessions over one
// shared Database + compiled UFilter (Fig. 5 deployed as middleware, the
// way XPERANTO / SilkRoute front multiple clients).
//
// Architecture:
//   - a fixed pool of worker threads drains a *bounded* MPMC admission
//     queue (Submit blocks when it is full — backpressure — and TrySubmit
//     sheds load instead);
//   - check-only traffic (apply=false, outside strategy) runs on the *fast
//     path*: the worker pins an MVCC snapshot (Database::OpenSnapshot, a
//     mutex-guarded pointer copy) on the session's context and then runs
//     plan-cache prepare + probes + read-only translation validation with
//     **no lock held at all** — N workers check concurrently with each
//     other *and* with the writer lane;
//   - everything that must mutate the base tables — apply=true requests,
//     hybrid/internal strategies, multi-action statements, and the rare
//     sequences the read-only validator punts on — is serialized through
//     the single *writer lane* (a plain mutex), where the classic
//     execute / rollback protocol runs against the live tables and a
//     Database::WriterGuard publishes the result as a new commit epoch.
//     In-flight snapshot checks keep reading their pinned epoch; the
//     writer's copy-on-write clones never touch a published table version.
//
// Shared vs. per-session state: the Database's base tables, the compiled
// view and the sharded plan cache are shared; each Session owns an
// ExecutionContext (temp tables, undo log) plus its outcome counters. Work
// counters everywhere are relaxed atomics. See docs/ARCHITECTURE.md,
// "Concurrency model" and "Snapshots & versioning".
#ifndef UFILTER_SERVICE_CHECK_SERVICE_H_
#define UFILTER_SERVICE_CHECK_SERVICE_H_

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "relational/wal.h"
#include "service/bounded_queue.h"
#include "service/session.h"
#include "ufilter/checker.h"
#include "ufilter/plan_cache.h"

namespace ufilter::service {

struct CheckServiceOptions {
  /// Worker pool size; 0 means std::thread::hardware_concurrency().
  int worker_threads = 0;
  /// Admission queue bound (backpressure threshold).
  size_t queue_capacity = 256;
  /// Test-only fault injection: every writer-lane request holds the lane
  /// for this long before executing, so tests can assert that snapshot
  /// readers never wait on a slow writer.
  int writer_lane_hold_ms_for_testing = 0;
  /// Durability config forwarded to Database::EnableDurability at service
  /// construction (wal_path empty = in-memory only, the default). The
  /// fsync-policy knob trades commit latency for durability: kAlways syncs
  /// per committed epoch, kGroup amortizes one fsync over
  /// `durability.group_commit_size` writer-lane commits, kNever leaves it
  /// to the OS. Fast-path (snapshot) checks never touch the WAL either
  /// way. If the database already has durability enabled the service just
  /// uses it; a failed enable is surfaced via durability_status().
  relational::DurabilityOptions durability;
  /// Per-check timing instrumentation: stage spans, latency/stage/queue
  /// histograms, trace sampling, slow-check log. Counters (submitted /
  /// shed / engine work) stay on regardless — they predate this knob and
  /// cost one relaxed add each. Off = the clock is never read on the check
  /// path; bench_obs gates the on-vs-off gap at <3%.
  bool metrics_enabled = true;
  /// Full-trace sampling (1-in-N requests) and ring size.
  obs::Tracer::Options trace;
  /// Slow-check log threshold / rate limit / sink (threshold 0 = off).
  obs::SlowLogOptions slow_log;
};

/// Point-in-time service counters.
struct CheckServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  /// Served read-only against a pinned snapshot (no lock held; concurrent
  /// with each other and with the writer lane).
  uint64_t fast_path = 0;
  /// Serialized through the exclusive writer lane.
  uint64_t writer_lane = 0;
  /// Writer-lane subset that *tried* the fast path first and was punted
  /// (read-only validator undecided / multi-action / wrong strategy).
  uint64_t escalations = 0;
  /// TrySubmit refusals (queue full).
  uint64_t shed = 0;
  /// Requests whose deadline expired before execution: rejected at
  /// admission or purged from the queue by a worker (answered with a
  /// kDeadlineExceeded verdict — the request never executed).
  uint64_t deadline_expired = 0;
  /// Deepest the admission queue has been.
  uint64_t queue_high_water = 0;
  /// Total time fast-path requests spent blocked acquiring their snapshot
  /// (the only synchronization point on the read path). Stays ~0 even while
  /// a writer occupies the lane — the readers-never-block invariant.
  uint64_t reader_wait_ns = 0;
  /// Total time writer-lane requests spent waiting for the lane mutex.
  uint64_t writer_wait_ns = 0;
  /// MVCC gauges/counters from the database (see relational/database.h).
  uint64_t snapshots_opened = 0;
  uint64_t versions_retired = 0;
  uint64_t commit_epoch = 0;
  uint64_t oldest_pinned_epoch = 0;
  /// Columnar read path (see relational/columnar.h): caches built for
  /// pinned table versions, rows fed through vectorized predicate loops /
  /// typed hash builds, and selection-vector survivors. Fast-path checks
  /// pin a snapshot, so their scans are exactly what these count.
  uint64_t columnar_builds = 0;
  uint64_t columnar_scan_rows = 0;
  uint64_t selection_vector_rows = 0;
  /// WAL durability counters (all zero while durability is off): records
  /// appended (one per committed epoch), fsyncs issued, bytes written, and
  /// the achieved group-commit batching factor (records per fsync,
  /// rounded down; 0 before the first fsync).
  uint64_t wal_records = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_group_commit_size = 0;
  /// The shared plan cache's counters (hits/misses/insertions/evictions).
  check::PlanCacheCounters plan_cache;
  /// Admission-queue residency percentiles (push -> worker pop), from the
  /// queue_wait_ns histogram; 0 when metrics are disabled or nothing has
  /// been popped yet.
  uint64_t queue_wait_p50_ns = 0;
  uint64_t queue_wait_p99_ns = 0;
};

/// How SubmitWithDeadline disposed of a request at admission.
enum class AdmitResult {
  kAdmitted,  ///< queued; the future resolves when a worker finishes it
  kShed,      ///< queue full past its deadline budget — retry later
  kExpired,   ///< the deadline had already passed at admission
  kClosed,    ///< the service is shut down / draining
};

const char* AdmitResultName(AdmitResult r);

class CheckService {
 public:
  using SteadyTime = std::chrono::steady_clock::time_point;
  /// Starts the worker pool immediately. `filter` (and its database) must
  /// outlive the service.
  explicit CheckService(check::UFilter* filter,
                        CheckServiceOptions options = {});
  /// Drains and joins (see Shutdown).
  ~CheckService();

  CheckService(const CheckService&) = delete;
  CheckService& operator=(const CheckService&) = delete;

  /// Opens a new session (thread-safe). The session is valid until the
  /// service is destroyed; closing is just dropping the shared_ptr.
  std::shared_ptr<Session> OpenSession(std::string name = "");

  /// Enqueues one check; blocks while the queue is full (backpressure).
  /// The future resolves when a worker finishes the check. After Shutdown
  /// the future resolves immediately with an InvalidArgument report.
  std::future<check::CheckReport> Submit(std::shared_ptr<Session> session,
                                         std::string update_text,
                                         check::CheckOptions options = {});

  /// Non-blocking Submit: false (and no future) when the queue is full.
  bool TrySubmit(std::shared_ptr<Session> session, std::string update_text,
                 check::CheckOptions options,
                 std::future<check::CheckReport>* out);

  /// Deadline-carrying admission, the network front end's entry point.
  /// An already-expired deadline is rejected as kExpired without touching
  /// the queue; otherwise the request waits for queue room only until its
  /// deadline (never a blocked socket) and is shed as kShed when the queue
  /// stays full. An admitted request keeps its deadline: a worker that pops
  /// it after expiry answers kDeadlineExceeded without executing (the queue
  /// purge), so the verdict is authoritative — an expired/shed request was
  /// *never* executed and is always safe to retry. `deadline` nullopt =
  /// no deadline (plain TrySubmit admission).
  AdmitResult SubmitWithDeadline(std::shared_ptr<Session> session,
                                 std::string update_text,
                                 check::CheckOptions options,
                                 std::optional<SteadyTime> deadline,
                                 std::future<check::CheckReport>* out,
                                 std::shared_ptr<obs::TraceContext> trace =
                                     nullptr);

  /// Applies one replicated WAL record through the writer lane (follower
  /// mode). Serializing with the lane means a replica can keep serving
  /// escalated check-only traffic while epochs stream in: the applier and
  /// any writer-lane check take turns on writer_mu_, and fast-path checks
  /// keep reading their pinned snapshots throughout. Forwards to
  /// Database::ApplyReplicatedEpoch (idempotent for already-applied
  /// epochs; see its contract for failure semantics).
  Status ApplyReplicatedEpoch(const relational::WalRecord& record);

  /// Refuses new submissions, drains everything queued, joins the workers.
  /// Idempotent.
  void Shutdown();

  CheckServiceStats Snapshot() const;

  int worker_threads() const {
    return static_cast<int>(workers_.size());
  }
  check::UFilter* filter() { return filter_; }

  /// Outcome of the construction-time Database::EnableDurability call (OK
  /// when durability was not requested or the database already had it on).
  const Status& durability_status() const { return durability_status_; }

  /// The service-wide metric registry: every service counter, the stage /
  /// latency / queue-wait histograms, and (via collectors) the engine,
  /// WAL, columnar, MVCC and plan-cache counters. Snapshot() and every
  /// remote exposition path render from Collect() of this registry.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  obs::Tracer& tracer() { return tracer_; }
  obs::SlowLog& slow_log() { return slow_log_; }
  bool metrics_enabled() const { return options_.metrics_enabled; }

  /// Starts a trace for a request whose lifetime extends beyond the
  /// service (the network front end: the response write belongs in the
  /// trace). Returns nullptr when metrics are disabled. The returned
  /// context has defer_finish set — the caller must call
  /// tracer().Finish(*trace) after its final span.
  std::shared_ptr<obs::TraceContext> StartTrace();

  /// Records an out-of-band stage duration into that stage's always-on
  /// histogram (no-op when metrics are disabled). Used by the network
  /// front end for response_write, which happens after the worker is done.
  void ObserveStage(obs::Stage stage, uint64_t dur_ns);

 private:
  struct Request {
    std::shared_ptr<Session> session;
    std::string update_text;
    check::CheckOptions options;
    /// Absolute execution deadline; a worker popping the request after
    /// this instant answers kDeadlineExceeded instead of executing.
    std::optional<SteadyTime> deadline;
    std::promise<check::CheckReport> promise;
    /// Null when metrics are disabled. Shared with the network front end
    /// when it owns the finish (defer_finish).
    std::shared_ptr<obs::TraceContext> trace;
    /// Set by Process for the slow-check log (the plan fingerprint).
    std::shared_ptr<const check::PreparedUpdate> plan;
    bool plan_from_cache = false;
  };

  void WorkerLoop();
  check::CheckReport Process(Request* req);
  std::unique_ptr<Request> MakeRequest(
      std::shared_ptr<Session> session, std::string update_text,
      check::CheckOptions options, std::shared_ptr<obs::TraceContext> trace);
  void FinishRequest(Request* req, check::CheckReport report);

  check::UFilter* filter_;
  relational::Database* db_;
  CheckServiceOptions options_;
  BoundedQueue<std::unique_ptr<Request>> queue_;
  std::vector<std::thread> workers_;

  /// The writer lane: one mutating request at a time. Fast-path checks
  /// never touch it — they read a pinned MVCC snapshot instead.
  std::mutex writer_mu_;

  relational::RelaxedCounter next_session_id_{1};
  relational::RelaxedCounter next_request_id_{1};

  // All owned by registry_ (declared before the pointers so destruction
  // order is safe); the named counters double as the CheckServiceStats
  // fields — Snapshot() is a view, not a second set of books.
  obs::Registry registry_;
  obs::Counter* submitted_;
  obs::Counter* completed_;
  obs::Counter* fast_path_;
  obs::Counter* writer_lane_;
  obs::Counter* escalations_;
  obs::Counter* shed_;
  obs::Counter* deadline_expired_;
  obs::Counter* reader_wait_ns_;
  obs::Counter* writer_wait_ns_;
  obs::Histogram* check_latency_;
  obs::Histogram* queue_wait_;
  obs::Histogram* stage_hist_[obs::kStageCount];

  obs::Tracer tracer_;
  obs::SlowLog slow_log_;
  Status durability_status_;
};

}  // namespace ufilter::service

#endif  // UFILTER_SERVICE_CHECK_SERVICE_H_
