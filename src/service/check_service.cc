#include "service/check_service.h"

#include <chrono>
#include <utility>

namespace ufilter::service {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

CheckReport DeadlineExceededReport(const char* where) {
  CheckReport report;
  report.outcome = CheckOutcome::kDeadlineExceeded;
  report.error = Status::DeadlineExceeded(where);
  return report;
}

}  // namespace

const char* AdmitResultName(AdmitResult r) {
  switch (r) {
    case AdmitResult::kAdmitted:
      return "admitted";
    case AdmitResult::kShed:
      return "shed";
    case AdmitResult::kExpired:
      return "expired";
    case AdmitResult::kClosed:
      return "closed";
  }
  return "?";
}

CheckService::CheckService(check::UFilter* filter, CheckServiceOptions options)
    : filter_(filter),
      db_(filter->database()),
      options_(options),
      queue_(options.queue_capacity) {
  if (!options_.durability.wal_path.empty() && !db_->durability_enabled()) {
    // Before the workers start: EnableDurability is a setup-time call, and
    // every epoch committed through the writer lane below must be logged.
    durability_status_ = db_->EnableDurability(options_.durability);
  }
  int threads = options.worker_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CheckService::~CheckService() { Shutdown(); }

void CheckService::Shutdown() {
  queue_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Durability barrier: with the workers drained and joined, force the last
  // (possibly partial) group-commit batch to stable storage.
  if (db_->durability_enabled()) (void)db_->SyncWal();
}

std::shared_ptr<Session> CheckService::OpenSession(std::string name) {
  uint64_t id = next_session_id_++;
  if (name.empty()) name = "session-" + std::to_string(id);
  return std::make_shared<Session>(id, std::move(name), db_->CreateContext());
}

std::future<CheckReport> CheckService::Submit(std::shared_ptr<Session> session,
                                              std::string update_text,
                                              CheckOptions options) {
  // Keep a reference across the Push: once the queue owns the request, a
  // worker may finish it (and drop the request's Session reference) at any
  // moment.
  std::shared_ptr<Session> s = session;
  auto req = std::make_unique<Request>();
  req->session = std::move(session);
  req->update_text = std::move(update_text);
  req->options = options;
  std::future<CheckReport> future = req->promise.get_future();
  // Counted only once actually admitted, so submitted == completed holds
  // after a drain (a rejected push below is neither).
  ++submitted_;
  s->counters().submitted++;
  if (!queue_.Push(std::move(req))) {
    // Shut down: resolve immediately instead of hanging the caller. (Push
    // moved the request out; rebuild the rejection inline.)
    ++completed_;
    std::promise<CheckReport> rejected;
    CheckReport report;
    report.outcome = CheckOutcome::kInvalid;
    report.error =
        Status::InvalidArgument("check service is shut down");
    rejected.set_value(std::move(report));
    s->counters().rejected++;
    return rejected.get_future();
  }
  return future;
}

bool CheckService::TrySubmit(std::shared_ptr<Session> session,
                             std::string update_text, CheckOptions options,
                             std::future<CheckReport>* out) {
  std::shared_ptr<Session> s = session;  // see Submit
  auto req = std::make_unique<Request>();
  req->session = std::move(session);
  req->update_text = std::move(update_text);
  req->options = options;
  std::future<CheckReport> future = req->promise.get_future();
  // Count before the push: once the queue owns the request a worker may
  // finish it immediately, and completed must never overtake submitted.
  ++submitted_;
  s->counters().submitted++;
  if (!queue_.TryPush(std::move(req))) {
    submitted_ -= 1;
    s->counters().submitted -= 1;
    ++shed_;
    return false;
  }
  *out = std::move(future);
  return true;
}

AdmitResult CheckService::SubmitWithDeadline(
    std::shared_ptr<Session> session, std::string update_text,
    check::CheckOptions options, std::optional<SteadyTime> deadline,
    std::future<CheckReport>* out) {
  if (deadline.has_value() &&
      std::chrono::steady_clock::now() >= *deadline) {
    ++deadline_expired_;
    return AdmitResult::kExpired;
  }
  std::shared_ptr<Session> s = session;  // see Submit
  auto req = std::make_unique<Request>();
  req->session = std::move(session);
  req->update_text = std::move(update_text);
  req->options = options;
  req->deadline = deadline;
  std::future<CheckReport> future = req->promise.get_future();
  // Count before the push: once the queue owns the request a worker may
  // finish it immediately, and completed must never overtake submitted.
  ++submitted_;
  s->counters().submitted++;
  // With a deadline, wait for queue room only until it expires — the
  // caller is a socket handler that must answer the client either way.
  // Without one, this is plain TryPush admission.
  QueueWaitResult pushed =
      deadline.has_value()
          ? queue_.PushFor(std::move(req), *deadline)
          : (queue_.TryPush(std::move(req)) ? QueueWaitResult::kOk
                                            : QueueWaitResult::kTimedOut);
  if (pushed != QueueWaitResult::kOk) {
    submitted_ -= 1;
    s->counters().submitted -= 1;
    if (pushed == QueueWaitResult::kClosed) return AdmitResult::kClosed;
    ++shed_;
    return AdmitResult::kShed;
  }
  *out = std::move(future);
  return AdmitResult::kAdmitted;
}

void CheckService::WorkerLoop() {
  std::unique_ptr<Request> req;
  while (queue_.Pop(&req)) {
    // Queue purge: a request whose deadline expired while it waited is
    // answered without executing — the client already gave up, and the
    // kDeadlineExceeded verdict certifies nothing ran (safe to retry).
    CheckReport report =
        (req->deadline.has_value() &&
         std::chrono::steady_clock::now() >= *req->deadline)
            ? DeadlineExceededReport("deadline expired in admission queue")
            : Process(req.get());
    if (report.outcome == CheckOutcome::kDeadlineExceeded) {
      ++deadline_expired_;
    }
    SessionCounters& counters = req->session->counters();
    switch (report.outcome) {
      case CheckOutcome::kExecuted:
        counters.executed++;
        break;
      case CheckOutcome::kDataConflict:
        counters.data_conflicts++;
        break;
      default:
        counters.rejected++;
        break;
    }
    ++completed_;
    req->promise.set_value(std::move(report));
    req.reset();
  }
}

CheckReport CheckService::Process(Request* req) {
  // One session, one request at a time: the session's context carries the
  // snapshot pin (and the writer lane mutates its scratch), so same-session
  // requests must not interleave. Cross-session requests never contend
  // here.
  std::lock_guard<std::mutex> session_lock(
      req->session->processing_mutex());
  relational::ExecutionContext* ctx = req->session->context();
  std::shared_ptr<const check::PreparedUpdate> plan;
  bool tried_fast_path = false;
  {
    // Fast path: pin a snapshot of the latest commit epoch on the session's
    // context, then prepare (thread-safe sharded plan cache) and attempt
    // the whole check read-only against the pinned tables. Opening the
    // snapshot is the only synchronization point — after it, no lock is
    // held, so this runs concurrently with every other reader *and* with a
    // writer-lane occupant committing new versions.
    auto wait_start = std::chrono::steady_clock::now();
    std::shared_ptr<const relational::Snapshot> snapshot =
        db_->OpenSnapshot();
    tried_fast_path = !req->options.apply;
    // Only genuine fast-path candidates account into the reader-wait
    // counter: an apply=true request's snapshot open is writer-side work
    // and must not pollute the readers-never-block metric.
    if (tried_fast_path) reader_wait_ns_ += ElapsedNs(wait_start);
    ctx->PinReadSnapshot(std::move(snapshot));
    plan = filter_->Prepare(req->update_text, nullptr, ctx);
    std::optional<CheckReport> fast =
        filter_->TryCheckReadOnly(*plan, req->options, ctx);
    ctx->ClearReadSnapshot();
    if (fast.has_value()) {
      ++fast_path_;
      return *std::move(fast);
    }
  }
  // Writer lane: one occupant at a time; the classic execute / rollback
  // protocol runs against the live tables (copy-on-write keeps pinned
  // snapshots stable), and the guard publishes the outcome as one commit.
  auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> write_lock(writer_mu_);
  writer_wait_ns_ += ElapsedNs(wait_start);
  relational::Database::WriterGuard guard(db_);
  if (!req->options.apply) {
    // Escalated check-only traffic executes and fully rolls back: no net
    // change, so don't commit a byte-identical epoch per check.
    guard.AbandonPublish();
  }
  ++writer_lane_;
  if (tried_fast_path) ++escalations_;
  if (options_.writer_lane_hold_ms_for_testing > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.writer_lane_hold_ms_for_testing));
  }
  CheckReport report = filter_->Execute(*plan, req->options, ctx);
  if (report.outcome != CheckOutcome::kExecuted) {
    // A rejected apply rolled everything back too — don't commit a no-op
    // epoch for it.
    guard.AbandonPublish();
  }
  return report;
}

CheckServiceStats CheckService::Snapshot() const {
  CheckServiceStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.fast_path = fast_path_;
  s.writer_lane = writer_lane_;
  s.escalations = escalations_;
  s.shed = shed_;
  s.deadline_expired = deadline_expired_;
  s.queue_high_water = queue_.high_water();
  s.reader_wait_ns = reader_wait_ns_;
  s.writer_wait_ns = writer_wait_ns_;
  relational::EngineStats engine = db_->SnapshotWorkCounters();
  s.snapshots_opened = engine.snapshots_opened;
  s.versions_retired = engine.versions_retired;
  s.commit_epoch = db_->commit_epoch();
  s.oldest_pinned_epoch = db_->oldest_pinned_epoch();
  s.columnar_builds = engine.columnar_builds;
  s.columnar_scan_rows = engine.columnar_scan_rows;
  s.selection_vector_rows = engine.selection_vector_rows;
  s.wal_records = engine.wal_records;
  s.wal_fsyncs = engine.wal_fsyncs;
  s.wal_bytes = engine.wal_bytes;
  s.wal_group_commit_size =
      engine.wal_fsyncs > 0 ? engine.wal_records / engine.wal_fsyncs : 0;
  s.plan_cache = filter_->plan_cache().counters();
  return s;
}

}  // namespace ufilter::service
