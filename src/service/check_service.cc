#include "service/check_service.h"

#include <chrono>
#include <utility>

namespace ufilter::service {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

CheckReport DeadlineExceededReport(const char* where) {
  CheckReport report;
  report.outcome = CheckOutcome::kDeadlineExceeded;
  report.error = Status::DeadlineExceeded(where);
  return report;
}

}  // namespace

const char* AdmitResultName(AdmitResult r) {
  switch (r) {
    case AdmitResult::kAdmitted:
      return "admitted";
    case AdmitResult::kShed:
      return "shed";
    case AdmitResult::kExpired:
      return "expired";
    case AdmitResult::kClosed:
      return "closed";
  }
  return "?";
}

CheckService::CheckService(check::UFilter* filter, CheckServiceOptions options)
    : filter_(filter),
      db_(filter->database()),
      options_(options),
      queue_(options.queue_capacity),
      tracer_(options.trace) {
  // Service-owned metrics. The named counters below ARE the
  // CheckServiceStats fields: Snapshot() reads them back out of the
  // registry objects, and Collect() exposes the same objects remotely.
  submitted_ = registry_.GetCounter("service_submitted");
  completed_ = registry_.GetCounter("service_completed");
  fast_path_ = registry_.GetCounter("service_fast_path");
  writer_lane_ = registry_.GetCounter("service_writer_lane");
  escalations_ = registry_.GetCounter("service_escalations");
  shed_ = registry_.GetCounter("service_shed");
  deadline_expired_ = registry_.GetCounter("service_deadline_expired");
  reader_wait_ns_ = registry_.GetCounter("service_reader_wait_ns");
  writer_wait_ns_ = registry_.GetCounter("service_writer_wait_ns");
  check_latency_ = registry_.GetHistogram("check_latency_ns");
  for (size_t i = 0; i < obs::kStageCount; ++i) {
    stage_hist_[i] = registry_.GetHistogram(
        std::string("stage_") + obs::StageName(static_cast<obs::Stage>(i)) +
        "_ns");
  }
  queue_wait_ = stage_hist_[static_cast<size_t>(obs::Stage::kQueueWait)];
  // Everything computed outside the service — engine work counters, WAL
  // and columnar tallies, MVCC epochs, plan-cache counters, queue gauges —
  // joins the registry through one collector, so a single Collect() is the
  // full observable state of the process.
  registry_.AddCollector([this](obs::RegistrySnapshot* out) {
    auto add = [out](const char* name, obs::MetricKind kind, uint64_t v) {
      obs::MetricSample s;
      s.name = name;
      s.kind = kind;
      s.value = v;
      out->push_back(std::move(s));
    };
    const auto kCounter = obs::MetricKind::kCounter;
    const auto kGauge = obs::MetricKind::kGauge;
    relational::EngineStats e = db_->SnapshotWorkCounters();
    add("engine_rows_scanned", kCounter, e.rows_scanned);
    add("engine_rows_inserted", kCounter, e.rows_inserted);
    add("engine_rows_deleted", kCounter, e.rows_deleted);
    add("engine_rows_updated", kCounter, e.rows_updated);
    add("engine_index_lookups", kCounter, e.index_lookups);
    add("engine_plans_compiled", kCounter, e.plans_compiled);
    add("engine_plan_replays", kCounter, e.plan_replays);
    add("engine_hash_join_builds", kCounter, e.hash_join_builds);
    add("engine_hash_join_probes", kCounter, e.hash_join_probes);
    add("engine_queries_executed", kCounter, e.queries_executed);
    add("engine_updates_compiled", kCounter, e.updates_compiled);
    add("engine_star_checks", kCounter, e.star_checks);
    add("columnar_builds", kCounter, e.columnar_builds);
    add("columnar_scan_rows", kCounter, e.columnar_scan_rows);
    add("selection_vector_rows", kCounter, e.selection_vector_rows);
    add("wal_records", kCounter, e.wal_records);
    add("wal_fsyncs", kCounter, e.wal_fsyncs);
    add("wal_bytes", kCounter, e.wal_bytes);
    add("mvcc_snapshots_opened", kCounter, e.snapshots_opened);
    add("mvcc_versions_retired", kCounter, e.versions_retired);
    add("db_commit_epoch", kGauge, db_->commit_epoch());
    add("db_oldest_pinned_epoch", kGauge, db_->oldest_pinned_epoch());
    check::PlanCacheCounters pc = filter_->plan_cache().counters();
    add("plan_cache_hits", kCounter, pc.hits);
    add("plan_cache_misses", kCounter, pc.misses);
    add("plan_cache_insertions", kCounter, pc.insertions);
    add("plan_cache_evictions", kCounter, pc.evictions);
    add("queue_depth", kGauge, queue_.size());
    add("queue_high_water", kGauge, queue_.high_water());
    add("queue_capacity", kGauge, queue_.capacity());
    add("slow_checks_logged", kCounter, slow_log_.logged());
    add("slow_checks_suppressed", kCounter, slow_log_.suppressed());
    add("traces_sampled", kCounter, tracer_.sampled_count());
  });
  slow_log_.Configure(options_.slow_log);
  if (!options_.durability.wal_path.empty() && !db_->durability_enabled()) {
    // Before the workers start: EnableDurability is a setup-time call, and
    // every epoch committed through the writer lane below must be logged.
    durability_status_ = db_->EnableDurability(options_.durability);
  }
  int threads = options.worker_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CheckService::~CheckService() { Shutdown(); }

void CheckService::Shutdown() {
  queue_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Durability barrier: with the workers drained and joined, force the last
  // (possibly partial) group-commit batch to stable storage.
  if (db_->durability_enabled()) (void)db_->SyncWal();
}

Status CheckService::ApplyReplicatedEpoch(
    const relational::WalRecord& record) {
  std::lock_guard<std::mutex> lane(writer_mu_);
  return db_->ApplyReplicatedEpoch(record);
}

std::shared_ptr<Session> CheckService::OpenSession(std::string name) {
  uint64_t id = next_session_id_++;
  if (name.empty()) name = "session-" + std::to_string(id);
  return std::make_shared<Session>(id, std::move(name), db_->CreateContext());
}

std::shared_ptr<obs::TraceContext> CheckService::StartTrace() {
  if (!options_.metrics_enabled) return nullptr;
  auto trace =
      std::make_shared<obs::TraceContext>(tracer_.Begin(next_request_id_++));
  trace->set_defer_finish(true);
  return trace;
}

void CheckService::ObserveStage(obs::Stage stage, uint64_t dur_ns) {
  if (!options_.metrics_enabled) return;
  stage_hist_[static_cast<size_t>(stage)]->Record(dur_ns);
}

std::unique_ptr<CheckService::Request> CheckService::MakeRequest(
    std::shared_ptr<Session> session, std::string update_text,
    check::CheckOptions options,
    std::shared_ptr<obs::TraceContext> trace) {
  auto req = std::make_unique<Request>();
  req->session = std::move(session);
  req->update_text = std::move(update_text);
  req->options = options;
  if (trace != nullptr) {
    req->trace = std::move(trace);
  } else if (options_.metrics_enabled) {
    req->trace =
        std::make_shared<obs::TraceContext>(tracer_.Begin(next_request_id_++));
  }
  return req;
}

std::future<CheckReport> CheckService::Submit(std::shared_ptr<Session> session,
                                              std::string update_text,
                                              CheckOptions options) {
  // Keep a reference across the Push: once the queue owns the request, a
  // worker may finish it (and drop the request's Session reference) at any
  // moment.
  std::shared_ptr<Session> s = session;
  auto req = MakeRequest(std::move(session), std::move(update_text), options,
                         nullptr);
  std::future<CheckReport> future = req->promise.get_future();
  // Counted only once actually admitted, so submitted == completed holds
  // after a drain (a rejected push below is neither).
  submitted_->Inc();
  s->counters().submitted++;
  if (!queue_.Push(std::move(req))) {
    // Shut down: resolve immediately instead of hanging the caller. (Push
    // moved the request out; rebuild the rejection inline.)
    completed_->Inc();
    std::promise<CheckReport> rejected;
    CheckReport report;
    report.outcome = CheckOutcome::kInvalid;
    report.error =
        Status::InvalidArgument("check service is shut down");
    rejected.set_value(std::move(report));
    s->counters().rejected++;
    return rejected.get_future();
  }
  return future;
}

bool CheckService::TrySubmit(std::shared_ptr<Session> session,
                             std::string update_text, CheckOptions options,
                             std::future<CheckReport>* out) {
  std::shared_ptr<Session> s = session;  // see Submit
  auto req = MakeRequest(std::move(session), std::move(update_text), options,
                         nullptr);
  std::future<CheckReport> future = req->promise.get_future();
  // Count before the push: once the queue owns the request a worker may
  // finish it immediately, and completed must never overtake submitted.
  submitted_->Inc();
  s->counters().submitted++;
  if (!queue_.TryPush(std::move(req))) {
    submitted_->Sub(1);
    s->counters().submitted -= 1;
    shed_->Inc();
    return false;
  }
  *out = std::move(future);
  return true;
}

AdmitResult CheckService::SubmitWithDeadline(
    std::shared_ptr<Session> session, std::string update_text,
    check::CheckOptions options, std::optional<SteadyTime> deadline,
    std::future<CheckReport>* out, std::shared_ptr<obs::TraceContext> trace) {
  if (deadline.has_value() &&
      std::chrono::steady_clock::now() >= *deadline) {
    deadline_expired_->Inc();
    return AdmitResult::kExpired;
  }
  std::shared_ptr<Session> s = session;  // see Submit
  auto req = MakeRequest(std::move(session), std::move(update_text), options,
                         std::move(trace));
  req->deadline = deadline;
  std::future<CheckReport> future = req->promise.get_future();
  // Count before the push: once the queue owns the request a worker may
  // finish it immediately, and completed must never overtake submitted.
  submitted_->Inc();
  s->counters().submitted++;
  // With a deadline, wait for queue room only until it expires — the
  // caller is a socket handler that must answer the client either way.
  // Without one, this is plain TryPush admission.
  QueueWaitResult pushed =
      deadline.has_value()
          ? queue_.PushFor(std::move(req), *deadline)
          : (queue_.TryPush(std::move(req)) ? QueueWaitResult::kOk
                                            : QueueWaitResult::kTimedOut);
  if (pushed != QueueWaitResult::kOk) {
    submitted_->Sub(1);
    s->counters().submitted -= 1;
    if (pushed == QueueWaitResult::kClosed) return AdmitResult::kClosed;
    shed_->Inc();
    return AdmitResult::kShed;
  }
  *out = std::move(future);
  return AdmitResult::kAdmitted;
}

void CheckService::WorkerLoop() {
  std::unique_ptr<Request> req;
  BoundedQueue<std::unique_ptr<Request>>::SteadyTime pushed_at{};
  while (queue_.Pop(&req, &pushed_at)) {
    if (options_.metrics_enabled) {
      // Queue residency is attributed at pop (the only point that knows
      // both ends): always into the stage histogram, and into the span
      // list of a sampled trace.
      auto popped = std::chrono::steady_clock::now();
      queue_wait_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(popped -
                                                               pushed_at)
              .count()));
      if (req->trace != nullptr) {
        req->trace->RecordSpanLane(obs::Stage::kQueueWait, pushed_at, popped,
                                   obs::CurrentThreadLane());
      }
    }
    // Queue purge: a request whose deadline expired while it waited is
    // answered without executing — the client already gave up, and the
    // kDeadlineExceeded verdict certifies nothing ran (safe to retry).
    CheckReport report =
        (req->deadline.has_value() &&
         std::chrono::steady_clock::now() >= *req->deadline)
            ? DeadlineExceededReport("deadline expired in admission queue")
            : Process(req.get());
    FinishRequest(req.get(), std::move(report));
    req.reset();
  }
}

void CheckService::FinishRequest(Request* req, CheckReport report) {
  if (report.outcome == CheckOutcome::kDeadlineExceeded) {
    deadline_expired_->Inc();
  }
  SessionCounters& counters = req->session->counters();
  switch (report.outcome) {
    case CheckOutcome::kExecuted:
      counters.executed++;
      break;
    case CheckOutcome::kDataConflict:
      counters.data_conflicts++;
      break;
    default:
      counters.rejected++;
      break;
  }
  completed_->Inc();
  obs::TraceContext* trace = req->trace.get();
  if (options_.metrics_enabled && trace != nullptr) {
    // End-to-end latency as seen by the service (response write, if any,
    // is appended by the network front end before it finishes the trace).
    uint64_t total = trace->NowRelNs();
    check_latency_->Record(total);
    // Queue-wait was recorded at pop; response-write hasn't happened yet —
    // both naturally excluded by the skip-zero rule (stages that didn't
    // run must not contribute zeros to their distributions).
    for (size_t i = 1; i < obs::kStageCount; ++i) {
      uint64_t ns = trace->stage_totals()[i];
      if (ns != 0) stage_hist_[i]->Record(ns);
    }
    if (slow_log_.enabled() && total >= slow_log_.threshold_ns()) {
      obs::SlowCheckRecord rec;
      rec.request_id = trace->request_id();
      rec.session = req->session->name();
      rec.verdict = check::CheckOutcomeName(report.outcome);
      rec.total_ns = total;
      rec.stage_ns = trace->stage_totals();
      if (req->plan != nullptr) {
        rec.normalized_text = req->plan->normalized_text();
        rec.template_hash = req->plan->template_hash();
      }
      rec.from_plan_cache = req->plan_from_cache;
      slow_log_.Log(rec);
    }
    if (!trace->defer_finish()) {
      tracer_.Finish(*trace);
    }
  }
  // Resolve the caller's future last: for the network path the writer
  // thread takes over (response write + deferred trace finish) from here.
  req->promise.set_value(std::move(report));
}

CheckReport CheckService::Process(Request* req) {
  // One session, one request at a time: the session's context carries the
  // snapshot pin (and the writer lane mutates its scratch), so same-session
  // requests must not interleave. Cross-session requests never contend
  // here.
  std::lock_guard<std::mutex> session_lock(
      req->session->processing_mutex());
  relational::ExecutionContext* ctx = req->session->context();
  obs::TraceContext* trace = req->trace.get();
  std::shared_ptr<const check::PreparedUpdate> plan;
  bool tried_fast_path = false;
  {
    // Fast path: pin a snapshot of the latest commit epoch on the session's
    // context, then prepare (thread-safe sharded plan cache) and attempt
    // the whole check read-only against the pinned tables. Opening the
    // snapshot is the only synchronization point — after it, no lock is
    // held, so this runs concurrently with every other reader *and* with a
    // writer-lane occupant committing new versions.
    auto wait_start = std::chrono::steady_clock::now();
    std::shared_ptr<const relational::Snapshot> snapshot;
    {
      obs::ScopedSpan span(trace, obs::Stage::kSnapshotPin);
      snapshot = db_->OpenSnapshot();
    }
    tried_fast_path = !req->options.apply;
    // Only genuine fast-path candidates account into the reader-wait
    // counter: an apply=true request's snapshot open is writer-side work
    // and must not pollute the readers-never-block metric.
    if (tried_fast_path) reader_wait_ns_->Add(ElapsedNs(wait_start));
    ctx->PinReadSnapshot(std::move(snapshot));
    bool cache_hit = false;
    plan = filter_->Prepare(req->update_text, &cache_hit, ctx, trace);
    req->plan = plan;
    req->plan_from_cache = cache_hit;
    std::optional<CheckReport> fast;
    {
      obs::ScopedSpan span(trace, obs::Stage::kProbe);
      fast = filter_->TryCheckReadOnly(*plan, req->options, ctx);
    }
    ctx->ClearReadSnapshot();
    if (fast.has_value()) {
      fast_path_->Inc();
      return *std::move(fast);
    }
  }
  // Writer lane: one occupant at a time; the classic execute / rollback
  // protocol runs against the live tables (copy-on-write keeps pinned
  // snapshots stable), and the guard publishes the outcome as one commit.
  auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> write_lock(writer_mu_);
  writer_wait_ns_->Add(ElapsedNs(wait_start));
  CheckReport report;
  bool timing = trace != nullptr && trace->active();
  obs::TraceClock::time_point publish_start{};
  {
    relational::Database::WriterGuard guard(db_);
    if (!req->options.apply) {
      // Escalated check-only traffic executes and fully rolls back: no net
      // change, so don't commit a byte-identical epoch per check.
      guard.AbandonPublish();
    }
    writer_lane_->Inc();
    if (tried_fast_path) escalations_->Inc();
    {
      obs::ScopedSpan span(trace, obs::Stage::kApply);
      if (options_.writer_lane_hold_ms_for_testing > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            options_.writer_lane_hold_ms_for_testing));
      }
      report = filter_->Execute(*plan, req->options, ctx);
    }
    if (report.outcome != CheckOutcome::kExecuted) {
      // A rejected apply rolled everything back too — don't commit a no-op
      // epoch for it.
      guard.AbandonPublish();
    }
    if (timing) publish_start = obs::TraceClock::now();
    // The guard's destruction publishes the commit epoch and appends it to
    // the WAL (fsync per policy) — that is the wal_sync span.
  }
  if (timing) {
    trace->RecordSpan(obs::Stage::kWalSync, publish_start,
                      obs::TraceClock::now());
  }
  return report;
}

CheckServiceStats CheckService::Snapshot() const {
  CheckServiceStats s;
  s.submitted = submitted_->Value();
  s.completed = completed_->Value();
  s.fast_path = fast_path_->Value();
  s.writer_lane = writer_lane_->Value();
  s.escalations = escalations_->Value();
  s.shed = shed_->Value();
  s.deadline_expired = deadline_expired_->Value();
  s.queue_high_water = queue_.high_water();
  s.reader_wait_ns = reader_wait_ns_->Value();
  s.writer_wait_ns = writer_wait_ns_->Value();
  relational::EngineStats engine = db_->SnapshotWorkCounters();
  s.snapshots_opened = engine.snapshots_opened;
  s.versions_retired = engine.versions_retired;
  s.commit_epoch = db_->commit_epoch();
  s.oldest_pinned_epoch = db_->oldest_pinned_epoch();
  s.columnar_builds = engine.columnar_builds;
  s.columnar_scan_rows = engine.columnar_scan_rows;
  s.selection_vector_rows = engine.selection_vector_rows;
  s.wal_records = engine.wal_records;
  s.wal_fsyncs = engine.wal_fsyncs;
  s.wal_bytes = engine.wal_bytes;
  s.wal_group_commit_size =
      engine.wal_fsyncs > 0 ? engine.wal_records / engine.wal_fsyncs : 0;
  s.plan_cache = filter_->plan_cache().counters();
  obs::HistogramSnapshot queue_wait = queue_wait_->Snapshot();
  s.queue_wait_p50_ns = queue_wait.Percentile(50);
  s.queue_wait_p99_ns = queue_wait.Percentile(99);
  return s;
}

}  // namespace ufilter::service
