#include "service/check_service.h"

#include <utility>

namespace ufilter::service {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;

CheckService::CheckService(check::UFilter* filter, CheckServiceOptions options)
    : filter_(filter),
      db_(filter->database()),
      queue_(options.queue_capacity) {
  int threads = options.worker_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CheckService::~CheckService() { Shutdown(); }

void CheckService::Shutdown() {
  queue_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::shared_ptr<Session> CheckService::OpenSession(std::string name) {
  uint64_t id = next_session_id_++;
  if (name.empty()) name = "session-" + std::to_string(id);
  return std::make_shared<Session>(id, std::move(name), db_->CreateContext());
}

std::future<CheckReport> CheckService::Submit(std::shared_ptr<Session> session,
                                              std::string update_text,
                                              CheckOptions options) {
  // Keep a reference across the Push: once the queue owns the request, a
  // worker may finish it (and drop the request's Session reference) at any
  // moment.
  std::shared_ptr<Session> s = session;
  auto req = std::make_unique<Request>();
  req->session = std::move(session);
  req->update_text = std::move(update_text);
  req->options = options;
  std::future<CheckReport> future = req->promise.get_future();
  // Counted only once actually admitted, so submitted == completed holds
  // after a drain (a rejected push below is neither).
  ++submitted_;
  s->counters().submitted++;
  if (!queue_.Push(std::move(req))) {
    // Shut down: resolve immediately instead of hanging the caller. (Push
    // moved the request out; rebuild the rejection inline.)
    ++completed_;
    std::promise<CheckReport> rejected;
    CheckReport report;
    report.outcome = CheckOutcome::kInvalid;
    report.error =
        Status::InvalidArgument("check service is shut down");
    rejected.set_value(std::move(report));
    s->counters().rejected++;
    return rejected.get_future();
  }
  return future;
}

bool CheckService::TrySubmit(std::shared_ptr<Session> session,
                             std::string update_text, CheckOptions options,
                             std::future<CheckReport>* out) {
  std::shared_ptr<Session> s = session;  // see Submit
  auto req = std::make_unique<Request>();
  req->session = std::move(session);
  req->update_text = std::move(update_text);
  req->options = options;
  std::future<CheckReport> future = req->promise.get_future();
  // Count before the push: once the queue owns the request a worker may
  // finish it immediately, and completed must never overtake submitted.
  ++submitted_;
  s->counters().submitted++;
  if (!queue_.TryPush(std::move(req))) {
    submitted_ -= 1;
    s->counters().submitted -= 1;
    ++shed_;
    return false;
  }
  *out = std::move(future);
  return true;
}

void CheckService::WorkerLoop() {
  std::unique_ptr<Request> req;
  while (queue_.Pop(&req)) {
    CheckReport report = Process(req.get());
    SessionCounters& counters = req->session->counters();
    switch (report.outcome) {
      case CheckOutcome::kExecuted:
        counters.executed++;
        break;
      case CheckOutcome::kDataConflict:
        counters.data_conflicts++;
        break;
      default:
        counters.rejected++;
        break;
    }
    ++completed_;
    req->promise.set_value(std::move(report));
    req.reset();
  }
}

CheckReport CheckService::Process(Request* req) {
  relational::ExecutionContext* ctx = req->session->context();
  std::shared_ptr<const check::PreparedUpdate> plan;
  bool tried_fast_path = false;
  {
    // Fast path: prepare (thread-safe sharded plan cache) and attempt the
    // whole check read-only. Concurrent with every other reader; excluded
    // only by a writer-lane occupant.
    std::shared_lock<std::shared_mutex> read_lock(data_mu_);
    plan = filter_->Prepare(req->update_text);
    tried_fast_path = !req->options.apply;
    std::optional<CheckReport> fast =
        filter_->TryCheckReadOnly(*plan, req->options, ctx);
    if (fast.has_value()) {
      ++fast_path_;
      return *std::move(fast);
    }
  }
  // Writer lane: one occupant at a time; the classic execute / rollback
  // protocol runs against a quiescent database.
  std::unique_lock<std::shared_mutex> write_lock(data_mu_);
  ++writer_lane_;
  if (tried_fast_path) ++escalations_;
  return filter_->Execute(*plan, req->options, ctx);
}

CheckServiceStats CheckService::Snapshot() const {
  CheckServiceStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.fast_path = fast_path_;
  s.writer_lane = writer_lane_;
  s.escalations = escalations_;
  s.shed = shed_;
  s.queue_high_water = queue_.high_water();
  s.plan_cache = filter_->plan_cache().counters();
  return s;
}

}  // namespace ufilter::service
