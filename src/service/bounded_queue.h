// A bounded MPMC (multi-producer / multi-consumer) queue: the admission
// queue of the check service. Bounded on purpose — when clients outrun the
// worker pool, Push blocks (backpressure) instead of letting the queue grow
// without limit; TryPush refuses instead, for callers that prefer shedding
// load; PushFor/PopFor give up at a deadline, for callers (the network
// front end, the drain path) that must never block forever. Close() drains:
// producers are refused, consumers keep popping until the queue is empty,
// then Pop returns false and workers exit.
//
// Close/race guarantees (regression-tested in
// tests/service/bounded_queue_test.cc):
//   - every push that reported success is popped by some consumer before
//     any consumer observes "closed and drained" — an admitted item is
//     never lost, even when Close() races the push;
//   - a push racing Close() either succeeds (item will be drained) or
//     reports failure (the item never entered the queue) — never both,
//     never neither.
#ifndef UFILTER_SERVICE_BOUNDED_QUEUE_H_
#define UFILTER_SERVICE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ufilter::service {

/// Outcome of a deadline-bounded queue wait.
enum class QueueWaitResult {
  kOk,        ///< pushed / popped
  kTimedOut,  ///< the deadline passed first (item untouched / no item)
  kClosed,    ///< push: queue refused; pop: closed *and* drained
};

template <typename T>
class BoundedQueue {
 public:
  using Clock = std::chrono::steady_clock;
  using SteadyTime = Clock::time_point;

  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// and drops `item` — only when the queue was closed.
  bool Push(T item) {
    return PushUntil(std::move(item), nullptr) == QueueWaitResult::kOk;
  }

  /// Non-blocking variant: false when full or closed (load shedding).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(Entry{std::move(item), Clock::now()});
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Deadline-bounded Push: waits for room until `deadline`, then gives up
  /// with kTimedOut (the caller still owns a meaningful decision — shed,
  /// retry, or answer the client). kClosed when the queue refused it.
  QueueWaitResult PushFor(T item, SteadyTime deadline) {
    return PushUntil(std::move(item), &deadline);
  }

  /// Blocks until an item arrives. False when the queue is closed *and*
  /// drained — the consumer's exit signal. When `pushed_at` is non-null it
  /// receives the steady-clock instant the item was pushed, so the
  /// consumer can attribute queue residency (the queue_wait histogram).
  bool Pop(T* out, SteadyTime* pushed_at = nullptr) {
    return PopUntil(out, nullptr, pushed_at) == QueueWaitResult::kOk;
  }

  /// Deadline-bounded Pop: kTimedOut when nothing arrived by `deadline`
  /// (the queue stays usable), kClosed when closed and drained. Lets a
  /// draining consumer re-check its own stop conditions instead of
  /// blocking forever on an empty-but-open queue.
  QueueWaitResult PopFor(T* out, SteadyTime deadline,
                         SteadyTime* pushed_at = nullptr) {
    return PopUntil(out, &deadline, pushed_at);
  }

  /// Refuses further pushes; consumers drain what is queued, then stop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  /// Deepest the queue has been (how close clients came to backpressure).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  // Shared push body; `deadline` null = wait forever. Loop-based rather
  // than predicate-wait so every wakeup re-evaluates closed/full under the
  // lock: a push that raced Close() is refused atomically (the item never
  // entered), and one that won the race has its item safely queued before
  // closed_ became visible — consumers drain it.
  QueueWaitResult PushUntil(T item, const SteadyTime* deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (closed_) return QueueWaitResult::kClosed;
      if (items_.size() < capacity_) break;
      if (deadline == nullptr) {
        not_full_.wait(lock);
      } else if (not_full_.wait_until(lock, *deadline) ==
                 std::cv_status::timeout) {
        // Re-check once under the lock: a slot/close that appeared at the
        // same instant as the timeout must win, or a caller could shed
        // while the queue had room.
        if (closed_) return QueueWaitResult::kClosed;
        if (items_.size() < capacity_) break;
        return QueueWaitResult::kTimedOut;
      }
    }
    items_.push_back(Entry{std::move(item), Clock::now()});
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return QueueWaitResult::kOk;
  }

  // Shared pop body; `deadline` null = wait forever. The close-vs-push
  // window: an item admitted before Close() makes items_ non-empty, and
  // closed_ is only ever set *after* such a push's critical section, so the
  // empty+closed exit condition can never be observed while an admitted
  // item is still queued — kClosed really means drained.
  QueueWaitResult PopUntil(T* out, const SteadyTime* deadline,
                           SteadyTime* pushed_at) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (!items_.empty()) break;
      if (closed_) return QueueWaitResult::kClosed;
      if (deadline == nullptr) {
        not_empty_.wait(lock);
      } else if (not_empty_.wait_until(lock, *deadline) ==
                 std::cv_status::timeout) {
        if (!items_.empty()) break;  // arrived with the timeout — take it
        return closed_ ? QueueWaitResult::kClosed : QueueWaitResult::kTimedOut;
      }
    }
    *out = std::move(items_.front().item);
    if (pushed_at != nullptr) *pushed_at = items_.front().pushed_at;
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return QueueWaitResult::kOk;
  }

  // Every entry is stamped at push so consumers can measure queue
  // residency (push -> pop) without the producer threading a timestamp
  // through T itself.
  struct Entry {
    T item;
    SteadyTime pushed_at;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Entry> items_;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace ufilter::service

#endif  // UFILTER_SERVICE_BOUNDED_QUEUE_H_
