// A bounded MPMC (multi-producer / multi-consumer) queue: the admission
// queue of the check service. Bounded on purpose — when clients outrun the
// worker pool, Push blocks (backpressure) instead of letting the queue grow
// without limit; TryPush refuses instead, for callers that prefer shedding
// load. Close() drains: producers are refused, consumers keep popping until
// the queue is empty, then Pop returns false and workers exit.
#ifndef UFILTER_SERVICE_BOUNDED_QUEUE_H_
#define UFILTER_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ufilter::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// and drops `item` — only when the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking variant: false when full or closed (load shedding).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives. False when the queue is closed *and*
  /// drained — the consumer's exit signal.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Refuses further pushes; consumers drain what is queued, then stop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  /// Deepest the queue has been (how close clients came to backpressure).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace ufilter::service

#endif  // UFILTER_SERVICE_BOUNDED_QUEUE_H_
