// One client of the check service. A session owns the per-client mutable
// scratch — its relational::ExecutionContext (temp tables, undo log) — plus
// its own outcome counters. Everything heavyweight (the compiled view, the
// plan cache, the base tables) is shared across sessions; a session is
// cheap enough to open per connection.
#ifndef UFILTER_SERVICE_SESSION_H_
#define UFILTER_SERVICE_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "relational/database.h"

namespace ufilter::service {

/// Per-session outcome tallies (relaxed atomics: any thread may read them
/// while the service runs).
struct SessionCounters {
  relational::RelaxedCounter submitted;
  relational::RelaxedCounter executed;        ///< outcome kExecuted
  relational::RelaxedCounter rejected;        ///< invalid / untranslatable
  relational::RelaxedCounter data_conflicts;  ///< outcome kDataConflict
};

class Session {
 public:
  Session(uint64_t id, std::string name,
          std::unique_ptr<relational::ExecutionContext> ctx)
      : id_(id), name_(std::move(name)), ctx_(std::move(ctx)) {}

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  /// The session's scratch. The service serializes all processing of one
  /// session's requests via processing_mutex() (the context carries the
  /// per-request snapshot pin and the writer lane mutates its temp tables /
  /// undo log, so two workers must never run the same session at once);
  /// direct use outside the service must be externally synchronized.
  relational::ExecutionContext* context() { return ctx_.get(); }

  /// Held by a worker for the whole processing of one of this session's
  /// requests. Requests of *different* sessions stay fully concurrent.
  std::mutex& processing_mutex() { return processing_mu_; }

  SessionCounters& counters() { return counters_; }
  const SessionCounters& counters() const { return counters_; }

 private:
  const uint64_t id_;
  const std::string name_;
  std::unique_ptr<relational::ExecutionContext> ctx_;
  std::mutex processing_mu_;
  SessionCounters counters_;
};

}  // namespace ufilter::service

#endif  // UFILTER_SERVICE_SESSION_H_
