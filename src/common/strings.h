// Small string helpers shared across modules.
#ifndef UFILTER_COMMON_STRINGS_H_
#define UFILTER_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ufilter {

/// FNV-1a, 64-bit. Mix strings into `seed` incrementally (a 0xff separator
/// is folded in after each string so field boundaries matter), or hash one
/// string with the default offset basis.
inline constexpr uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

inline uint64_t Fnv1aMix(uint64_t seed, const std::string& s) {
  for (char c : s) {
    seed ^= static_cast<unsigned char>(c);
    seed *= kFnv1aPrime;
  }
  seed ^= 0xff;
  seed *= kFnv1aPrime;
  return seed;
}

inline uint64_t Fnv1a(const std::string& s) {
  uint64_t h = kFnv1aOffsetBasis;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` at every occurrence of `sep` (no empty-token suppression).
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// ASCII lowercase copy.
std::string ToLower(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace ufilter

#endif  // UFILTER_COMMON_STRINGS_H_
