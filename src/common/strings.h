// Small string helpers shared across modules.
#ifndef UFILTER_COMMON_STRINGS_H_
#define UFILTER_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace ufilter {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` at every occurrence of `sep` (no empty-token suppression).
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// ASCII lowercase copy.
std::string ToLower(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace ufilter

#endif  // UFILTER_COMMON_STRINGS_H_
