// Result<T>: value-or-Status, the companion of status.h.
#ifndef UFILTER_COMMON_RESULT_H_
#define UFILTER_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ufilter {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result. Constructing from an OK status is a programming
/// error (asserted in debug builds, degraded to Internal status otherwise).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// OK when a value is held.
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `alt` when in error state.
  T ValueOr(T alt) const {
    return ok() ? *value_ : std::move(alt);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define UFILTER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define UFILTER_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define UFILTER_ASSIGN_OR_RETURN_NAME(a, b) UFILTER_ASSIGN_OR_RETURN_CONCAT(a, b)

#define UFILTER_ASSIGN_OR_RETURN(lhs, expr) \
  UFILTER_ASSIGN_OR_RETURN_IMPL(            \
      UFILTER_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace ufilter

#endif  // UFILTER_COMMON_RESULT_H_
