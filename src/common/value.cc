#include "common/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <functional>

namespace ufilter {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  if (is_null()) return ValueType::kNull;
  if (is_int()) return ValueType::kInt;
  if (is_double()) return ValueType::kDouble;
  return ValueType::kString;
}

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(AsInt());
  return AsDouble();
}

std::string Value::ToText() const {
  if (is_null()) return "";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[64];
    double d = AsDouble();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.2f", d);
    } else {
      std::snprintf(buf, sizeof(buf), "%g", d);
    }
    return buf;
  }
  return AsString();
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_string()) {
    std::string out = "'";
    for (char c : AsString()) {
      if (c == '\'') {
        out += "''";
      } else {
        out += c;
      }
    }
    out += "'";
    return out;
  }
  return ToText();
}

Result<Value> Value::FromText(const std::string& text, ValueType type) {
  if (text.empty() && type != ValueType::kString) return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kString:
      return Value::String(text);
    case ValueType::kInt: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::ParseError("'" + text + "' is not an integer");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size() || text.empty()) {
        return Status::ParseError("'" + text + "' is not a number");
      }
      return Value::Double(v);
    }
  }
  return Status::Internal("unreachable value type");
}

namespace {

// Total order rank: NULL(0) < numeric(1) < string(2).
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_string()) return 2;
  return 1;
}

}  // namespace

bool Value::operator==(const Value& other) const {
  // Typed fast path: both sides hold the same alternative (the common case
  // in index probes and hash-join rechecks) — compare directly via get_if,
  // skipping the rank dispatch and std::get's throw checks. Semantics are
  // unchanged: int/int still compares as double, like the mixed
  // int/double path below.
  if (rep_.index() == other.rep_.index()) {
    switch (rep_.index()) {
      case 0:
        return true;  // NULL == NULL under the total order
      case 1:
        return static_cast<double>(*std::get_if<int64_t>(&rep_)) ==
               static_cast<double>(*std::get_if<int64_t>(&other.rep_));
      case 2:
        return *std::get_if<double>(&rep_) == *std::get_if<double>(&other.rep_);
      default:
        return *std::get_if<std::string>(&rep_) ==
               *std::get_if<std::string>(&other.rep_);
    }
  }
  int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return false;
  // Mixed int/double: the only same-rank, different-alternative case.
  return AsNumber() == other.AsNumber();
}

bool Value::operator<(const Value& other) const {
  int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0:
      return false;
    case 1:
      return AsNumber() < other.AsNumber();
    default:
      return AsString() < other.AsString();
  }
}

size_t Value::Hash() const {
  // Dispatch on the variant index directly (one switch, get_if instead of
  // the rank computation plus std::get's throw checks). Numerics hash as
  // double so int 5 and double 5.0 collide, consistent with operator==.
  switch (rep_.index()) {
    case 0:
      return 0x9e3779b97f4a7c15ULL;
    case 1:
      return std::hash<double>()(
          static_cast<double>(*std::get_if<int64_t>(&rep_)));
    case 2:
      return std::hash<double>()(*std::get_if<double>(&rep_));
    default:
      return std::hash<std::string>()(*std::get_if<std::string>(&rep_));
  }
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return !(lhs == rhs);
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs < rhs || lhs == rhs;
    case CompareOp::kGt:
      return rhs < lhs;
    case CompareOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

}  // namespace ufilter
