#include "common/status.h"

namespace ufilter {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kInvalidUpdate:
      return "InvalidUpdate";
    case StatusCode::kUntranslatable:
      return "Untranslatable";
    case StatusCode::kDataConflict:
      return "DataConflict";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace ufilter
