// Status: lightweight error propagation for the U-Filter library.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status (or
// Result<T>, see result.h) instead of throwing. A Status is cheap to copy in
// the OK case and carries a code plus a human-readable message otherwise.
#ifndef UFILTER_COMMON_STATUS_H_
#define UFILTER_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace ufilter {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  /// Malformed input (bad XML, unparsable query, ...).
  kParseError,
  /// A name (table, column, variable, element tag) could not be resolved.
  kNotFound,
  /// An operation would violate a relational constraint (PK, UNIQUE, NOT
  /// NULL, CHECK, FK).
  kConstraintViolation,
  /// The view update is invalid w.r.t. the view schema (U-Filter step 1).
  kInvalidUpdate,
  /// The view update is valid but no correct translation exists (step 2).
  kUntranslatable,
  /// The view update conflicts with the current base data (step 3).
  kDataConflict,
  /// The caller used the API incorrectly.
  kInvalidArgument,
  /// An unsupported feature of the query language was encountered.
  kNotSupported,
  /// Internal invariant violation; indicates a library bug.
  kInternal,
  /// A deadline attached to the operation expired before it could run (or
  /// finish). The operation was NOT executed — deadline rejections happen
  /// at admission or before execution, never mid-apply — so retrying is
  /// always safe.
  kDeadlineExceeded,
  /// The service cannot take the request right now (overloaded and
  /// shedding, draining for shutdown, or the connection is gone). The
  /// request was not executed; transient by design.
  kUnavailable,
};

/// Returns a short stable name for a status code ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Result status of a fallible operation.
///
/// Instances are immutable. The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status InvalidUpdate(std::string msg) {
    return Status(StatusCode::kInvalidUpdate, std::move(msg));
  }
  static Status Untranslatable(std::string msg) {
    return Status(StatusCode::kUntranslatable, std::move(msg));
  }
  static Status DataConflict(std::string msg) {
    return Status(StatusCode::kDataConflict, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }
  bool IsInvalidUpdate() const { return code() == StatusCode::kInvalidUpdate; }
  bool IsUntranslatable() const {
    return code() == StatusCode::kUntranslatable;
  }
  bool IsDataConflict() const { return code() == StatusCode::kDataConflict; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Message supplied when the status was created. Empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message.
  /// No-op for OK.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<const Rep> rep_;
};

/// Propagates a non-OK status to the caller.
#define UFILTER_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::ufilter::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace ufilter

#endif  // UFILTER_COMMON_STATUS_H_
