// Typed values flowing between the relational engine, the XML layer and the
// checker. A Value is null, an integer, a double, or a string; DATE columns
// store their year as an integer (all the paper's predicates on dates compare
// years, e.g. $book/year > 1990).
#ifndef UFILTER_COMMON_VALUE_H_
#define UFILTER_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace ufilter {

/// Column/leaf domains understood by the engine and the view ASG.
enum class ValueType {
  kNull,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType t);

/// \brief A dynamically typed SQL value.
///
/// Comparison follows SQL semantics except that NULL compares equal to NULL
/// (the engine needs a total order for keys); predicate evaluation treats any
/// comparison against NULL as false, as SQL does.
class Value {
 public:
  /// Constructs NULL.
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  ValueType type() const;

  /// Requires the matching type.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: ints widen to double. Requires is_int() or is_double().
  double AsNumber() const;

  /// Renders the value as it would appear as XML text ("" for NULL).
  std::string ToText() const;

  /// Renders the value as a SQL literal (quoted strings, NULL keyword).
  std::string ToSqlLiteral() const;

  /// Parses `text` into a value of domain `type`. Empty text maps to NULL.
  static Result<Value> FromText(const std::string& text, ValueType type);

  /// Total order used by indexes: NULL < numbers < strings; numbers compare
  /// numerically across int/double.
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Hash consistent with operator==.
  size_t Hash() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

/// Comparison operators usable in predicates (theta in the paper).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);

/// Flips the operator for swapped operands (a < b  <=>  b > a).
CompareOp FlipCompareOp(CompareOp op);

/// SQL predicate semantics: three-valued logic with UNKNOWN collapsed to
/// false, so every comparison involving NULL is false — including
/// NULL = NULL and NULL != x. (This deliberately differs from the engine's
/// total order above, where NULL compares equal to NULL and sorts before
/// every non-NULL value: indexes and sorts need a total order, predicate
/// evaluation never applies it to NULLs.) Non-NULL operands of different
/// types follow the total order: numbers sort below strings, so e.g.
/// 5 < 'x' is true while 5 = 'x' is false.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

}  // namespace ufilter

#endif  // UFILTER_COMMON_VALUE_H_
