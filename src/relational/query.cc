#include "relational/query.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <unordered_map>

#include "common/strings.h"
#include "relational/columnar.h"
#include "relational/planner.h"

namespace ufilter::relational {

std::string SelectQuery::ToSql() const {
  std::vector<std::string> sel;
  for (const ColRef& c : selects) sel.push_back(c.ToString());
  std::vector<std::string> from;
  for (const TableRef& t : tables) {
    from.push_back(t.table == t.alias ? t.table : t.table + " AS " + t.alias);
  }
  std::vector<std::string> where;
  for (const JoinPredicate& j : joins) {
    where.push_back(j.a.ToString() + " " + CompareOpSymbol(j.op) + " " +
                    j.b.ToString());
  }
  for (const FilterPredicate& f : filters) {
    where.push_back(f.col.ToString() + " " + CompareOpSymbol(f.op) + " " +
                    f.literal.ToSqlLiteral());
  }
  std::string sql = "SELECT " + (sel.empty() ? "*" : Join(sel, ", ")) +
                    " FROM " + Join(from, ", ");
  if (!where.empty()) sql += " WHERE " + Join(where, " AND ");
  return sql;
}

std::string DisjunctiveQuery::ToSql() const {
  std::string sql = base.ToSql();
  if (branches.empty()) return sql;
  std::vector<std::string> ors;
  for (const std::vector<FilterPredicate>& branch : branches) {
    if (branch.empty()) {
      ors.push_back("(TRUE)");
      continue;
    }
    std::vector<std::string> conj;
    for (const FilterPredicate& f : branch) {
      conj.push_back(f.col.ToString() + " " + CompareOpSymbol(f.op) + " " +
                     f.literal.ToSqlLiteral());
    }
    ors.push_back("(" + Join(conj, " AND ") + ")");
  }
  bool base_has_where = !base.joins.empty() || !base.filters.empty();
  sql += (base_has_where ? " AND (" : " WHERE (") + Join(ors, " OR ") + ")";
  return sql;
}

QueryResult DisjunctiveResult::Extract(size_t b) const {
  QueryResult out;
  out.column_names = merged.column_names;
  if (b >= branch_rows.size()) return out;
  for (size_t i : branch_rows[b]) {
    out.rows.push_back(merged.rows[i]);
    out.row_ids.push_back(merged.row_ids[i]);
  }
  return out;
}

Result<QueryResult> QueryEvaluator::Execute(const SelectQuery& query) {
  UFILTER_ASSIGN_OR_RETURN(DisjunctiveResult result, ExecuteImpl(query, {}));
  return std::move(result.merged);
}

Result<DisjunctiveResult> QueryEvaluator::ExecuteDisjunctive(
    const DisjunctiveQuery& dq) {
  return ExecuteImpl(dq.base, dq.branches);
}

Result<DisjunctiveResult> QueryEvaluator::ExecuteImpl(
    const SelectQuery& query,
    const std::vector<std::vector<FilterPredicate>>& branches) {
  Planner planner(db_, ctx_);
  UFILTER_ASSIGN_OR_RETURN(PhysicalPlan plan,
                           planner.CompileDisjunctive(query, branches));
  return RunPlan(plan);
}

Result<DisjunctiveResult> QueryEvaluator::ExecutePlan(
    const PhysicalPlan& plan) {
  db_->stats().plan_replays += 1;
  return RunPlan(plan);
}

// ---------------------------------------------------------------------------
// Iterative compiled-plan executor
// ---------------------------------------------------------------------------

Result<DisjunctiveResult> QueryEvaluator::RunPlan(const PhysicalPlan& plan) {
  AtomicEngineStats* stats = &db_->stats();
  stats->queries_executed += 1;
  if (plan.branch_count > 0) {
    stats->batch_queries_executed += 1;
    stats->batch_branches_merged += plan.branch_count;
  }

  DisjunctiveResult out;
  out.branch_rows.resize(plan.branch_count);
  out.merged.column_names = plan.column_names;

  // Re-resolve tables by name once per execution (plans outlive temp-table
  // re-creations); the arity check rejects structurally stale plans.
  const size_t from_count = plan.table_names.size();
  std::vector<const Table*> tables(from_count);
  for (size_t i = 0; i < from_count; ++i) {
    UFILTER_ASSIGN_OR_RETURN(const Table* t,
                             db_->GetTable(ctx_, plan.table_names[i]));
    if (t->schema().columns().size() != plan.table_arities[i]) {
      return Status::InvalidArgument(
          "stale plan: table '" + plan.table_names[i] +
          "' was recreated with a different shape; recompile the query");
    }
    tables[i] = t;
  }
  const size_t depth = plan.levels.size();
  if (depth == 0) return out;

  // Per-level runtime state of the backtracking loop.
  struct LevelRt {
    std::vector<RowId> candidates;
    size_t cursor = 0;
    std::vector<char> alive;       ///< branch aliveness entering this level
    std::vector<char> next_alive;  ///< scratch for the current candidate
    bool hash_built = false;
    /// kHashJoin: one-shot build over this level's table, keyed by
    /// Value::Hash of the join column (built lazily, once per execution).
    std::unordered_multimap<size_t, RowId> hash;
    /// Columnar cache of this level's table version; null = row path.
    std::shared_ptr<const ColumnarTable> columnar;
    /// kScan + columnar: candidates were filled (once per execution) by the
    /// vectorized selection-vector pass and are reused on re-entry.
    bool scan_built = false;
    /// The vectorized pass already verified this level's literal filters,
    /// so ResidualsOk must not re-evaluate them (joins still are).
    bool filters_prechecked = false;
  };
  std::vector<LevelRt> rt(depth);
  for (LevelRt& level : rt) {
    level.alive.assign(plan.branch_count, 1);
    level.next_alive.assign(plan.branch_count, 0);
  }

  // Columnar eligibility is decided per execution, not per plan: cached
  // plans replay under pinned and unpinned contexts alike, and only base
  // tables resolved through a pinned snapshot are guaranteed immutable —
  // which is what makes lazily building and sharing a column cache safe.
  // Unpinned (live/dirty) reads and temp tables keep the row path.
  if (ctx_->read_snapshot() != nullptr) {
    for (size_t lvl = 0; lvl < depth; ++lvl) {
      const PlanLevel& spec = plan.levels[lvl];
      if (!spec.columnar) continue;
      const std::string& name =
          plan.table_names[static_cast<size_t>(spec.table_pos)];
      if (ctx_->IsTempTable(name)) continue;
      rt[lvl].columnar =
          tables[static_cast<size_t>(spec.table_pos)]->columnar(stats);
    }
  }

  std::vector<const Row*> rows(from_count, nullptr);
  std::vector<RowId> current(from_count, -1);
  // Per emitted row: which branches it satisfies (only with branches).
  std::vector<std::vector<char>> emitted_alive;

  // Fills rt[k].candidates for the current outer binding; rt[k].alive must
  // already hold the aliveness entering the level.
  auto EnterLevel = [&](size_t k) {
    const PlanLevel& spec = plan.levels[k];
    LevelRt& level = rt[k];
    level.cursor = 0;
    // Vectorized scan: evaluate every literal filter as a tight typed loop
    // over the columns, fusing the conjunction by compacting one shrinking
    // selection vector, and only then translate survivors to RowIds. The
    // result does not depend on outer bindings, so it is computed once per
    // execution and reused when the level is re-entered.
    if (spec.path == AccessPath::kScan && level.columnar != nullptr) {
      if (!level.scan_built) {
        level.scan_built = true;
        level.filters_prechecked = true;
        const ColumnarTable& col = *level.columnar;
        ColumnarTable::Sel sel;
        col.SelectAll(&sel);
        for (const CompiledFilter& f : spec.filters) {
          if (sel.empty()) break;
          col.FilterColumn(f.column, f.op, f.literal, &sel);
        }
        stats->columnar_scan_rows += col.row_count();
        stats->selection_vector_rows += sel.size();
        const std::vector<RowId>& ids = col.row_ids();
        level.candidates.reserve(sel.size());
        for (uint32_t pos : sel) level.candidates.push_back(ids[pos]);
      }
      return;
    }
    level.candidates.clear();
    const Table* table = tables[static_cast<size_t>(spec.table_pos)];
    switch (spec.path) {
      case AccessPath::kScan:
        level.candidates = table->AllRowIds();
        stats->rows_scanned += level.candidates.size();
        break;
      case AccessPath::kUniqueLookup:
      case AccessPath::kIndexLookup: {
        const Value& key =
            spec.key_is_literal
                ? spec.key_literal
                : (*rows[static_cast<size_t>(spec.key_src_table)])
                      [static_cast<size_t>(spec.key_src_column)];
        if (!key.is_null()) {  // NULL never joins or matches
          table->ProbeIndexEq(spec.key_column, key, &level.candidates, stats);
        }
        break;
      }
      case AccessPath::kInListUnion: {
        for (size_t b = 0; b < plan.branch_count; ++b) {
          if (!level.alive[b]) continue;  // dead branch: skip its lookup
          const CompiledFilter& pin = spec.branch_pins[b];
          if (pin.literal.is_null()) continue;
          table->ProbeIndexEq(pin.column, pin.literal, &level.candidates,
                              stats);
        }
        // Union, not concatenation: a row matching several branches must
        // appear once.
        std::sort(level.candidates.begin(), level.candidates.end());
        level.candidates.erase(
            std::unique(level.candidates.begin(), level.candidates.end()),
            level.candidates.end());
        break;
      }
      case AccessPath::kHashJoin: {
        if (!level.hash_built) {
          level.hash_built = true;
          stats->hash_join_builds += 1;
          level.hash.reserve(table->live_row_count());
          if (level.columnar != nullptr) {
            // Typed-array build: no GetRow, no Value dispatch per row.
            stats->columnar_scan_rows += level.columnar->row_count();
            level.columnar->HashJoinBuild(spec.key_column, &level.hash);
          } else {
            stats->rows_scanned += table->live_row_count();  // the build pass
            for (RowId id : table->AllRowIds()) {
              const Row* r = table->GetRow(id);
              if (r == nullptr) continue;
              const Value& v = (*r)[static_cast<size_t>(spec.key_column)];
              if (v.is_null()) continue;  // NULL never joins
              level.hash.emplace(v.Hash(), id);
            }
          }
        }
        const Value& probe = (*rows[static_cast<size_t>(spec.key_src_table)])
                                 [static_cast<size_t>(spec.key_src_column)];
        if (!probe.is_null()) {
          stats->hash_join_probes += 1;
          auto range = level.hash.equal_range(probe.Hash());
          for (auto it = range.first; it != range.second; ++it) {
            level.candidates.push_back(it->second);
          }
        }
        break;
      }
    }
  };

  // All predicates fully bound once level k's table binds. Joins assigned
  // to a level have both sides bound by construction; the hash-join driver
  // is rechecked here (hash matches by Value::Hash, collisions possible).
  auto ResidualsOk = [&](size_t k) {
    const PlanLevel& spec = plan.levels[k];
    if (!rt[k].filters_prechecked) {
      for (const CompiledFilter& f : spec.filters) {
        if (!EvalCompare((*rows[static_cast<size_t>(f.table)])
                             [static_cast<size_t>(f.column)],
                         f.op, f.literal)) {
          return false;
        }
      }
    }
    for (const CompiledJoin& j : spec.joins) {
      if (!EvalCompare((*rows[static_cast<size_t>(j.table_a)])
                           [static_cast<size_t>(j.column_a)],
                       j.op,
                       (*rows[static_cast<size_t>(j.table_b)])
                           [static_cast<size_t>(j.column_b)])) {
        return false;
      }
    }
    return true;
  };

  EnterLevel(0);
  size_t k = 0;
  while (true) {
    LevelRt& level = rt[k];
    const PlanLevel& spec = plan.levels[k];
    if (level.cursor >= level.candidates.size()) {
      rows[static_cast<size_t>(spec.table_pos)] = nullptr;
      current[static_cast<size_t>(spec.table_pos)] = -1;
      if (k == 0) break;
      --k;
      continue;
    }
    RowId id = level.candidates[level.cursor++];
    const Row* r = tables[static_cast<size_t>(spec.table_pos)]->GetRow(id);
    if (r == nullptr) continue;
    rows[static_cast<size_t>(spec.table_pos)] = r;
    current[static_cast<size_t>(spec.table_pos)] = id;
    if (!ResidualsOk(k)) continue;
    bool any_alive = plan.branch_count == 0;
    for (size_t b = 0; b < plan.branch_count; ++b) {
      char a = level.alive[b];
      if (a) {
        for (const CompiledFilter& f : spec.branch_filters[b]) {
          if (!EvalCompare((*rows[static_cast<size_t>(f.table)])
                               [static_cast<size_t>(f.column)],
                           f.op, f.literal)) {
            a = 0;
            break;
          }
        }
      }
      level.next_alive[b] = a;
      any_alive |= a != 0;
    }
    if (!any_alive) continue;  // no live branch can produce a result row
    if (k + 1 == depth) {
      Row row_out;
      row_out.reserve(plan.selects.size());
      for (auto [t, c] : plan.selects) {
        row_out.push_back(
            (*rows[static_cast<size_t>(t)])[static_cast<size_t>(c)]);
      }
      out.merged.rows.push_back(std::move(row_out));
      out.merged.row_ids.push_back(current);
      if (plan.branch_count > 0) emitted_alive.push_back(level.next_alive);
      continue;
    }
    rt[k + 1].alive = level.next_alive;
    ++k;
    EnterLevel(k);
  }

  // Restore the reference interpreter's deterministic output order:
  // lexicographic by contributing row ids in FROM order. (The reference
  // enumerates sorted candidate lists in FROM order, which produces exactly
  // this order; the compiled join order and unsorted index probes do not.)
  const size_t result_count = out.merged.rows.size();
  auto ids_less = [&](size_t a, size_t b) {
    return out.merged.row_ids[a] < out.merged.row_ids[b];
  };
  std::vector<size_t> perm(result_count);
  std::iota(perm.begin(), perm.end(), 0);
  if (!std::is_sorted(perm.begin(), perm.end(), ids_less)) {
    std::sort(perm.begin(), perm.end(), ids_less);
    std::vector<Row> sorted_rows;
    std::vector<std::vector<RowId>> sorted_ids;
    sorted_rows.reserve(result_count);
    sorted_ids.reserve(result_count);
    for (size_t i : perm) {
      sorted_rows.push_back(std::move(out.merged.rows[i]));
      sorted_ids.push_back(std::move(out.merged.row_ids[i]));
    }
    out.merged.rows = std::move(sorted_rows);
    out.merged.row_ids = std::move(sorted_ids);
  }
  for (size_t b = 0; b < plan.branch_count; ++b) {
    for (size_t i = 0; i < result_count; ++i) {
      if (emitted_alive[perm[i]][b]) out.branch_rows[b].push_back(i);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reference interpreter (pre-planner recursive evaluator)
// ---------------------------------------------------------------------------

namespace {

struct BoundTable {
  const Table* table;
  std::string alias;
};

}  // namespace

Result<DisjunctiveResult> QueryEvaluator::ExecuteReference(
    const SelectQuery& query,
    const std::vector<std::vector<FilterPredicate>>& query_branches) {
  // Resolve tables.
  std::vector<BoundTable> bound;
  std::map<std::string, int> alias_pos;
  for (const auto& tref : query.tables) {
    if (alias_pos.count(tref.alias) > 0) {
      return Status::InvalidArgument("duplicate alias '" + tref.alias + "'");
    }
    UFILTER_ASSIGN_OR_RETURN(const Table* t,
                             db_->GetTable(ctx_, tref.table));
    alias_pos[tref.alias] = static_cast<int>(bound.size());
    bound.push_back({t, tref.alias});
  }

  auto resolve = [&](const ColRef& ref) -> Result<std::pair<int, int>> {
    auto it = alias_pos.find(ref.alias);
    if (it == alias_pos.end()) {
      return Status::NotFound("unknown alias '" + ref.alias + "'");
    }
    int col = bound[static_cast<size_t>(it->second)]
                  .table->schema()
                  .ColumnIndex(ref.column);
    if (col < 0) {
      return Status::NotFound("no column '" + ref.column + "' in alias '" +
                              ref.alias + "'");
    }
    return std::make_pair(it->second, col);
  };

  // Pre-resolve predicates.
  struct RJoin {
    int ta, ca, tb, cb;
    CompareOp op;
  };
  struct RFilter {
    int t, c;
    CompareOp op;
    Value literal;
  };
  std::vector<RJoin> joins;
  for (const JoinPredicate& j : query.joins) {
    UFILTER_ASSIGN_OR_RETURN(auto a, resolve(j.a));
    UFILTER_ASSIGN_OR_RETURN(auto b, resolve(j.b));
    joins.push_back({a.first, a.second, b.first, b.second, j.op});
  }
  std::vector<RFilter> filters;
  for (const FilterPredicate& f : query.filters) {
    UFILTER_ASSIGN_OR_RETURN(auto c, resolve(f.col));
    filters.push_back({c.first, c.second, f.op, f.literal});
  }
  std::vector<std::vector<RFilter>> branches;
  for (const std::vector<FilterPredicate>& branch : query_branches) {
    std::vector<RFilter> rbranch;
    for (const FilterPredicate& f : branch) {
      UFILTER_ASSIGN_OR_RETURN(auto c, resolve(f.col));
      rbranch.push_back({c.first, c.second, f.op, f.literal});
    }
    branches.push_back(std::move(rbranch));
  }
  std::vector<std::pair<int, int>> selects;
  for (const ColRef& s : query.selects) {
    UFILTER_ASSIGN_OR_RETURN(auto c, resolve(s));
    selects.push_back(c);
  }

  DisjunctiveResult out;
  out.branch_rows.resize(branches.size());
  QueryResult& result = out.merged;
  for (const ColRef& s : query.selects) {
    result.column_names.push_back(s.ToString());
  }

  AtomicEngineStats* stats = &db_->stats();
  stats->queries_executed += 1;
  if (!branches.empty()) {
    stats->batch_queries_executed += 1;
    stats->batch_branches_merged += branches.size();
  }
  // Left-deep recursive join over tables in FROM order.
  std::vector<RowId> current(bound.size(), -1);
  std::vector<const Row*> rows(bound.size(), nullptr);

  // Evaluates all predicates fully bound once table `k` is added.
  auto PredsSatisfied = [&](size_t k) {
    for (const RFilter& f : filters) {
      if (static_cast<size_t>(f.t) == k) {
        if (!EvalCompare((*rows[k])[static_cast<size_t>(f.c)], f.op,
                         f.literal)) {
          return false;
        }
      }
    }
    for (const RJoin& j : joins) {
      size_t hi = static_cast<size_t>(std::max(j.ta, j.tb));
      if (hi != k) continue;
      const Row* ra = rows[static_cast<size_t>(j.ta)];
      const Row* rb = rows[static_cast<size_t>(j.tb)];
      if (ra == nullptr || rb == nullptr) continue;  // other side not yet bound
      if (!EvalCompare((*ra)[static_cast<size_t>(j.ca)], j.op,
                       (*rb)[static_cast<size_t>(j.cb)])) {
        return false;
      }
    }
    return true;
  };

  // Per-branch conjunct test for the predicates of branch `b` fully bound
  // once table `k` is added.
  auto BranchSatisfiedAt = [&](size_t b, size_t k) {
    for (const RFilter& f : branches[b]) {
      if (static_cast<size_t>(f.t) == k) {
        if (!EvalCompare((*rows[k])[static_cast<size_t>(f.c)], f.op,
                         f.literal)) {
          return false;
        }
      }
    }
    return true;
  };

  // `alive[b]` = branch b's conjuncts have held for every table bound so
  // far. A subtree with no live branch left cannot produce a result row.
  std::function<void(size_t, const std::vector<char>&)> Recurse =
      [&](size_t k, const std::vector<char>& alive) {
    if (k == bound.size()) {
      Row row_out;
      row_out.reserve(selects.size());
      for (auto [t, c] : selects) {
        row_out.push_back(
            (*rows[static_cast<size_t>(t)])[static_cast<size_t>(c)]);
      }
      for (size_t b = 0; b < branches.size(); ++b) {
        if (alive[b]) out.branch_rows[b].push_back(result.rows.size());
      }
      result.rows.push_back(std::move(row_out));
      result.row_ids.push_back(current);
      return;
    }
    const Table* table = bound[k].table;

    // Candidate generation: index lookup if an equality predicate binds an
    // indexed column of this table to an already-bound value or a literal.
    std::vector<RowId> candidates;
    bool used_index = false;
    // Literal equality filter on an indexed column.
    for (const RFilter& f : filters) {
      if (static_cast<size_t>(f.t) != k || f.op != CompareOp::kEq) continue;
      const std::string& col_name =
          table->schema().columns()[static_cast<size_t>(f.c)].name;
      if (!table->HasIndexOn(col_name)) continue;
      candidates = table->Find({{col_name, CompareOp::kEq, f.literal}}, stats);
      used_index = true;
      break;
    }
    // Join equality against an earlier table, new side indexed.
    if (!used_index) {
      for (const RJoin& j : joins) {
        int other = -1, my_col = -1;
        if (static_cast<size_t>(j.ta) == k &&
            static_cast<size_t>(j.tb) < k && j.op == CompareOp::kEq) {
          other = j.tb;
          my_col = j.ca;
        } else if (static_cast<size_t>(j.tb) == k &&
                   static_cast<size_t>(j.ta) < k && j.op == CompareOp::kEq) {
          other = j.ta;
          my_col = j.cb;
        } else {
          continue;
        }
        const std::string& col_name =
            table->schema().columns()[static_cast<size_t>(my_col)].name;
        if (!table->HasIndexOn(col_name)) continue;
        int other_col = (other == j.ta) ? j.ca : j.cb;
        const Value& v =
            (*rows[static_cast<size_t>(other)])[static_cast<size_t>(other_col)];
        if (v.is_null()) return;  // NULL joins nothing
        candidates = table->Find({{col_name, CompareOp::kEq, v}}, stats);
        used_index = true;
        break;
      }
    }
    // IN-list probe: every live branch pins this table with an equality on
    // an indexed column -> the scan becomes the union of index lookups (how
    // the merged probe of a batch keeps per-update index access).
    if (!used_index && !branches.empty()) {
      // First confirm every live branch has a pin (no lookups yet, so the
      // work counters never record discarded index probes), then union.
      std::vector<const RFilter*> pins(branches.size(), nullptr);
      bool all_pinned = true;
      for (size_t b = 0; b < branches.size() && all_pinned; ++b) {
        if (!alive[b]) continue;
        for (const RFilter& f : branches[b]) {
          if (static_cast<size_t>(f.t) != k || f.op != CompareOp::kEq) {
            continue;
          }
          const std::string& col_name =
              table->schema().columns()[static_cast<size_t>(f.c)].name;
          if (table->HasIndexOn(col_name)) {
            pins[b] = &f;
            break;
          }
        }
        if (pins[b] == nullptr) all_pinned = false;
      }
      if (all_pinned) {
        std::vector<RowId> merged_candidates;
        for (size_t b = 0; b < branches.size(); ++b) {
          if (pins[b] == nullptr) continue;  // dead branch
          const std::string& col_name =
              table->schema().columns()[static_cast<size_t>(pins[b]->c)].name;
          for (RowId id : table->Find(
                   {{col_name, CompareOp::kEq, pins[b]->literal}}, stats)) {
            merged_candidates.push_back(id);
          }
        }
        std::sort(merged_candidates.begin(), merged_candidates.end());
        merged_candidates.erase(
            std::unique(merged_candidates.begin(), merged_candidates.end()),
            merged_candidates.end());
        candidates = std::move(merged_candidates);
        used_index = true;
      }
    }
    if (!used_index) {
      candidates = table->AllRowIds();
      stats->rows_scanned += candidates.size();
    }

    std::vector<char> next_alive(branches.size());
    for (RowId id : candidates) {
      const Row* r = table->GetRow(id);
      if (r == nullptr) continue;
      rows[k] = r;
      current[k] = id;
      if (PredsSatisfied(k)) {
        bool any_alive = branches.empty();
        for (size_t b = 0; b < branches.size(); ++b) {
          next_alive[b] = alive[b] && BranchSatisfiedAt(b, k);
          any_alive |= next_alive[b] != 0;
        }
        if (any_alive) Recurse(k + 1, next_alive);
      }
      rows[k] = nullptr;
      current[k] = -1;
    }
  };

  if (!bound.empty()) {
    Recurse(0, std::vector<char>(branches.size(), 1));
  }
  return out;
}

Status QueryEvaluator::MaterializeInto(const SelectQuery& query,
                                       const std::string& temp_name) {
  UFILTER_ASSIGN_OR_RETURN(QueryResult res, Execute(query));
  const size_t cols = query.selects.size();
  // Column names keep only the column part; duplicate names get suffixes.
  std::vector<std::string> names;
  names.reserve(cols);
  std::map<std::string, int> seen;
  for (const ColRef& s : query.selects) {
    std::string name = s.column;
    int n = seen[name]++;
    if (n > 0) name += "_" + std::to_string(n);
    names.push_back(std::move(name));
  }
  // One pass over the result: each column's type is its first non-NULL
  // value's (fall back to string); resolved columns stop being examined.
  std::vector<ValueType> types(cols, ValueType::kString);
  std::vector<char> known(cols, 0);
  size_t unknown = cols;
  for (const Row& row : res.rows) {
    if (unknown == 0) break;
    for (size_t i = 0; i < cols; ++i) {
      if (known[i] || row[i].is_null()) continue;
      types[i] = row[i].type();
      known[i] = 1;
      --unknown;
    }
  }
  TableSchema schema(temp_name);
  for (size_t i = 0; i < cols; ++i) {
    schema.AddColumn(names[i], types[i]);
  }
  UFILTER_ASSIGN_OR_RETURN(Table * temp, ctx_->CreateTempTable(schema));
  (void)temp;
  // Temp tables are index-free and unconstrained: bulk-load with one
  // reserve instead of row-by-row FK/unique checking that can never trip.
  return ctx_->BulkLoadTemp(temp_name, std::move(res.rows));
}

}  // namespace ufilter::relational
