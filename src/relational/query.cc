#include "relational/query.h"

#include <algorithm>
#include <functional>
#include <map>

#include "common/strings.h"

namespace ufilter::relational {

std::string SelectQuery::ToSql() const {
  std::vector<std::string> sel;
  for (const ColRef& c : selects) sel.push_back(c.ToString());
  std::vector<std::string> from;
  for (const TableRef& t : tables) {
    from.push_back(t.table == t.alias ? t.table : t.table + " AS " + t.alias);
  }
  std::vector<std::string> where;
  for (const JoinPredicate& j : joins) {
    where.push_back(j.a.ToString() + " " + CompareOpSymbol(j.op) + " " +
                    j.b.ToString());
  }
  for (const FilterPredicate& f : filters) {
    where.push_back(f.col.ToString() + " " + CompareOpSymbol(f.op) + " " +
                    f.literal.ToSqlLiteral());
  }
  std::string sql = "SELECT " + (sel.empty() ? "*" : Join(sel, ", ")) +
                    " FROM " + Join(from, ", ");
  if (!where.empty()) sql += " WHERE " + Join(where, " AND ");
  return sql;
}

std::string DisjunctiveQuery::ToSql() const {
  std::string sql = base.ToSql();
  if (branches.empty()) return sql;
  std::vector<std::string> ors;
  for (const std::vector<FilterPredicate>& branch : branches) {
    if (branch.empty()) {
      ors.push_back("(TRUE)");
      continue;
    }
    std::vector<std::string> conj;
    for (const FilterPredicate& f : branch) {
      conj.push_back(f.col.ToString() + " " + CompareOpSymbol(f.op) + " " +
                     f.literal.ToSqlLiteral());
    }
    ors.push_back("(" + Join(conj, " AND ") + ")");
  }
  bool base_has_where = !base.joins.empty() || !base.filters.empty();
  sql += (base_has_where ? " AND (" : " WHERE (") + Join(ors, " OR ") + ")";
  return sql;
}

QueryResult DisjunctiveResult::Extract(size_t b) const {
  QueryResult out;
  out.column_names = merged.column_names;
  if (b >= branch_rows.size()) return out;
  for (size_t i : branch_rows[b]) {
    out.rows.push_back(merged.rows[i]);
    out.row_ids.push_back(merged.row_ids[i]);
  }
  return out;
}

namespace {

struct BoundTable {
  const Table* table;
  std::string alias;
};

}  // namespace

Result<QueryResult> QueryEvaluator::Execute(const SelectQuery& query) {
  UFILTER_ASSIGN_OR_RETURN(DisjunctiveResult result, ExecuteImpl(query, {}));
  return std::move(result.merged);
}

Result<DisjunctiveResult> QueryEvaluator::ExecuteDisjunctive(
    const DisjunctiveQuery& dq) {
  return ExecuteImpl(dq.base, dq.branches);
}

Result<DisjunctiveResult> QueryEvaluator::ExecuteImpl(
    const SelectQuery& query,
    const std::vector<std::vector<FilterPredicate>>& query_branches) {
  // Resolve tables.
  std::vector<BoundTable> bound;
  std::map<std::string, int> alias_pos;
  for (const auto& tref : query.tables) {
    if (alias_pos.count(tref.alias) > 0) {
      return Status::InvalidArgument("duplicate alias '" + tref.alias + "'");
    }
    UFILTER_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(tref.table));
    alias_pos[tref.alias] = static_cast<int>(bound.size());
    bound.push_back({t, tref.alias});
  }

  auto resolve = [&](const ColRef& ref) -> Result<std::pair<int, int>> {
    auto it = alias_pos.find(ref.alias);
    if (it == alias_pos.end()) {
      return Status::NotFound("unknown alias '" + ref.alias + "'");
    }
    int col = bound[static_cast<size_t>(it->second)]
                  .table->schema()
                  .ColumnIndex(ref.column);
    if (col < 0) {
      return Status::NotFound("no column '" + ref.column + "' in alias '" +
                              ref.alias + "'");
    }
    return std::make_pair(it->second, col);
  };

  // Pre-resolve predicates.
  struct RJoin {
    int ta, ca, tb, cb;
    CompareOp op;
  };
  struct RFilter {
    int t, c;
    CompareOp op;
    Value literal;
  };
  std::vector<RJoin> joins;
  for (const JoinPredicate& j : query.joins) {
    UFILTER_ASSIGN_OR_RETURN(auto a, resolve(j.a));
    UFILTER_ASSIGN_OR_RETURN(auto b, resolve(j.b));
    joins.push_back({a.first, a.second, b.first, b.second, j.op});
  }
  std::vector<RFilter> filters;
  for (const FilterPredicate& f : query.filters) {
    UFILTER_ASSIGN_OR_RETURN(auto c, resolve(f.col));
    filters.push_back({c.first, c.second, f.op, f.literal});
  }
  std::vector<std::vector<RFilter>> branches;
  for (const std::vector<FilterPredicate>& branch : query_branches) {
    std::vector<RFilter> rbranch;
    for (const FilterPredicate& f : branch) {
      UFILTER_ASSIGN_OR_RETURN(auto c, resolve(f.col));
      rbranch.push_back({c.first, c.second, f.op, f.literal});
    }
    branches.push_back(std::move(rbranch));
  }
  std::vector<std::pair<int, int>> selects;
  for (const ColRef& s : query.selects) {
    UFILTER_ASSIGN_OR_RETURN(auto c, resolve(s));
    selects.push_back(c);
  }

  DisjunctiveResult out;
  out.branch_rows.resize(branches.size());
  QueryResult& result = out.merged;
  for (const ColRef& s : query.selects) {
    result.column_names.push_back(s.ToString());
  }

  EngineStats* stats = &db_->stats();
  stats->queries_executed += 1;
  if (!branches.empty()) {
    stats->batch_queries_executed += 1;
    stats->batch_branches_merged += branches.size();
  }
  // Left-deep recursive join over tables in FROM order.
  std::vector<RowId> current(bound.size(), -1);
  std::vector<const Row*> rows(bound.size(), nullptr);

  // Evaluates all predicates fully bound once table `k` is added.
  auto PredsSatisfied = [&](size_t k) {
    for (const RFilter& f : filters) {
      if (static_cast<size_t>(f.t) == k) {
        if (!EvalCompare((*rows[k])[static_cast<size_t>(f.c)], f.op,
                         f.literal)) {
          return false;
        }
      }
    }
    for (const RJoin& j : joins) {
      size_t hi = static_cast<size_t>(std::max(j.ta, j.tb));
      if (hi != k) continue;
      const Row* ra = rows[static_cast<size_t>(j.ta)];
      const Row* rb = rows[static_cast<size_t>(j.tb)];
      if (ra == nullptr || rb == nullptr) continue;  // other side not yet bound
      if (!EvalCompare((*ra)[static_cast<size_t>(j.ca)], j.op,
                       (*rb)[static_cast<size_t>(j.cb)])) {
        return false;
      }
    }
    return true;
  };

  // Per-branch conjunct test for the predicates of branch `b` fully bound
  // once table `k` is added.
  auto BranchSatisfiedAt = [&](size_t b, size_t k) {
    for (const RFilter& f : branches[b]) {
      if (static_cast<size_t>(f.t) == k) {
        if (!EvalCompare((*rows[k])[static_cast<size_t>(f.c)], f.op,
                         f.literal)) {
          return false;
        }
      }
    }
    return true;
  };

  // `alive[b]` = branch b's conjuncts have held for every table bound so
  // far. A subtree with no live branch left cannot produce a result row.
  std::function<void(size_t, const std::vector<char>&)> Recurse =
      [&](size_t k, const std::vector<char>& alive) {
    if (k == bound.size()) {
      Row row_out;
      row_out.reserve(selects.size());
      for (auto [t, c] : selects) {
        row_out.push_back(
            (*rows[static_cast<size_t>(t)])[static_cast<size_t>(c)]);
      }
      for (size_t b = 0; b < branches.size(); ++b) {
        if (alive[b]) out.branch_rows[b].push_back(result.rows.size());
      }
      result.rows.push_back(std::move(row_out));
      result.row_ids.push_back(current);
      return;
    }
    const Table* table = bound[k].table;

    // Candidate generation: index lookup if an equality predicate binds an
    // indexed column of this table to an already-bound value or a literal.
    std::vector<RowId> candidates;
    bool used_index = false;
    // Literal equality filter on an indexed column.
    for (const RFilter& f : filters) {
      if (static_cast<size_t>(f.t) != k || f.op != CompareOp::kEq) continue;
      const std::string& col_name =
          table->schema().columns()[static_cast<size_t>(f.c)].name;
      if (!table->HasIndexOn(col_name)) continue;
      candidates = table->Find({{col_name, CompareOp::kEq, f.literal}}, stats);
      used_index = true;
      break;
    }
    // Join equality against an earlier table, new side indexed.
    if (!used_index) {
      for (const RJoin& j : joins) {
        int other = -1, my_col = -1;
        if (static_cast<size_t>(j.ta) == k &&
            static_cast<size_t>(j.tb) < k && j.op == CompareOp::kEq) {
          other = j.tb;
          my_col = j.ca;
        } else if (static_cast<size_t>(j.tb) == k &&
                   static_cast<size_t>(j.ta) < k && j.op == CompareOp::kEq) {
          other = j.ta;
          my_col = j.cb;
        } else {
          continue;
        }
        const std::string& col_name =
            table->schema().columns()[static_cast<size_t>(my_col)].name;
        if (!table->HasIndexOn(col_name)) continue;
        int other_col = (other == j.ta) ? j.ca : j.cb;
        const Value& v =
            (*rows[static_cast<size_t>(other)])[static_cast<size_t>(other_col)];
        if (v.is_null()) return;  // NULL joins nothing
        candidates = table->Find({{col_name, CompareOp::kEq, v}}, stats);
        used_index = true;
        break;
      }
    }
    // IN-list probe: every live branch pins this table with an equality on
    // an indexed column -> the scan becomes the union of index lookups (how
    // the merged probe of a batch keeps per-update index access).
    if (!used_index && !branches.empty()) {
      // First confirm every live branch has a pin (no lookups yet, so the
      // work counters never record discarded index probes), then union.
      std::vector<const RFilter*> pins(branches.size(), nullptr);
      bool all_pinned = true;
      for (size_t b = 0; b < branches.size() && all_pinned; ++b) {
        if (!alive[b]) continue;
        for (const RFilter& f : branches[b]) {
          if (static_cast<size_t>(f.t) != k || f.op != CompareOp::kEq) {
            continue;
          }
          const std::string& col_name =
              table->schema().columns()[static_cast<size_t>(f.c)].name;
          if (table->HasIndexOn(col_name)) {
            pins[b] = &f;
            break;
          }
        }
        if (pins[b] == nullptr) all_pinned = false;
      }
      if (all_pinned) {
        std::vector<RowId> merged_candidates;
        for (size_t b = 0; b < branches.size(); ++b) {
          if (pins[b] == nullptr) continue;  // dead branch
          const std::string& col_name =
              table->schema().columns()[static_cast<size_t>(pins[b]->c)].name;
          for (RowId id : table->Find(
                   {{col_name, CompareOp::kEq, pins[b]->literal}}, stats)) {
            merged_candidates.push_back(id);
          }
        }
        std::sort(merged_candidates.begin(), merged_candidates.end());
        merged_candidates.erase(
            std::unique(merged_candidates.begin(), merged_candidates.end()),
            merged_candidates.end());
        candidates = std::move(merged_candidates);
        used_index = true;
      }
    }
    if (!used_index) {
      candidates = table->AllRowIds();
      stats->rows_scanned += candidates.size();
    }

    std::vector<char> next_alive(branches.size());
    for (RowId id : candidates) {
      const Row* r = table->GetRow(id);
      if (r == nullptr) continue;
      rows[k] = r;
      current[k] = id;
      if (PredsSatisfied(k)) {
        bool any_alive = branches.empty();
        for (size_t b = 0; b < branches.size(); ++b) {
          next_alive[b] = alive[b] && BranchSatisfiedAt(b, k);
          any_alive |= next_alive[b] != 0;
        }
        if (any_alive) Recurse(k + 1, next_alive);
      }
      rows[k] = nullptr;
      current[k] = -1;
    }
  };

  if (!bound.empty()) {
    Recurse(0, std::vector<char>(branches.size(), 1));
  }
  return out;
}

Status QueryEvaluator::MaterializeInto(const SelectQuery& query,
                                       const std::string& temp_name) {
  UFILTER_ASSIGN_OR_RETURN(QueryResult res, Execute(query));
  TableSchema schema(temp_name);
  // Column names keep only the column part; duplicate names get suffixes.
  std::map<std::string, int> seen;
  for (const ColRef& s : query.selects) {
    std::string name = s.column;
    int n = seen[name]++;
    if (n > 0) name += "_" + std::to_string(n);
    schema.AddColumn(name, ValueType::kString);
  }
  // Infer column types from the first non-NULL value per column (fall back
  // to string).
  if (!res.rows.empty()) {
    TableSchema typed(temp_name);
    for (size_t i = 0; i < schema.columns().size(); ++i) {
      ValueType t = ValueType::kString;
      for (const Row& row : res.rows) {
        if (!row[i].is_null()) {
          t = row[i].type();
          break;
        }
      }
      typed.AddColumn(schema.columns()[i].name, t);
    }
    schema = typed;
  }
  UFILTER_ASSIGN_OR_RETURN(Table * temp, db_->CreateTempTable(schema));
  (void)temp;
  for (Row& row : res.rows) {
    UFILTER_RETURN_NOT_OK(db_->Insert(temp_name, std::move(row)).status());
  }
  return Status::OK();
}

}  // namespace ufilter::relational
