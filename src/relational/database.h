// In-memory relational database: tables with stable row ids, hash indexes on
// keys, constraint-enforcing insert/delete/update, FK delete policies
// (CASCADE / SET NULL / RESTRICT) and undo-log transactions with rollback.
//
// This is the "data storage / Oracle" box of Fig. 5: the substrate U-Filter
// issues probe queries and translated SQL updates against.
//
// Concurrency model (see docs/ARCHITECTURE.md): base tables are
// multiversioned. Every publish (commit) stamps a monotonically increasing
// commit epoch and freezes the current table versions into an immutable
// DatabaseVersion; `OpenSnapshot` pins the latest published version, and a
// context carrying a pinned Snapshot resolves every base-table read against
// it — no lock is held during probe evaluation, and a concurrent writer
// cannot perturb (or race with) the pinned tables because its first
// mutation of a published table copies it (copy-on-write) before touching
// it. Superseded table versions are retired by epoch-based GC once no
// snapshot pins an epoch that could still see them. All *mutable scratch* —
// temp tables and the undo log — lives in an ExecutionContext, one per
// client session. Work counters are relaxed atomics, safe to bump from any
// thread. Writers must still be mutually exclusive with each other (the
// service layer's writer lane); snapshot readers need no exclusion at all.
#ifndef UFILTER_RELATIONAL_DATABASE_H_
#define UFILTER_RELATIONAL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "relational/schema.h"

namespace ufilter::relational {

class ColumnarTable;  // relational/columnar.h

/// A tuple. Values are positional, aligned with TableSchema::columns().
using Row = std::vector<Value>;

/// Stable identifier of a row slot within its table (the engine's ROWID).
using RowId = int64_t;

/// Conjunct of a single-table filter: `column <op> literal`.
struct ColumnPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  std::string ToString() const {
    return column + " " + CompareOpSymbol(op) + " " + literal.ToSqlLiteral();
  }
};

/// A monotonically increasing work counter bumped from concurrent check
/// workers. All operations are relaxed: the counters are statistics, not
/// synchronization — the only guarantee needed is that concurrent `++` /
/// `+=` never lose increments (the read-modify-write races the old plain
/// uint64_t fields had).
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t v) : v_(v) {}  // NOLINT: implicit by design

  uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return load(); }

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }
  RelaxedCounter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  /// Undoes a premature increment (e.g. a submission counted before an
  /// admission-queue push that was then refused).
  RelaxedCounter& operator-=(uint64_t d) {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Cumulative work counters; benchmarks and tests read these to observe the
/// cost asymmetries the paper's figures rely on (index lookups vs. scans).
///
/// This plain struct is the *snapshot* type of the work-counter mechanism:
/// `Database::SnapshotWorkCounters()` returns one, `DiffSince` subtracts a
/// baseline. The live counters are an AtomicEngineStats (below) so that
/// concurrent check workers can bump them without data races.
struct EngineStats {
  uint64_t rows_scanned = 0;
  uint64_t index_lookups = 0;
  /// Physical plans compiled by the cost-based planner (one per ad-hoc
  /// Execute; prepared probes compile once and then only replay).
  uint64_t plans_compiled = 0;
  /// Executions of an already-compiled plan (zero name resolution).
  uint64_t plan_replays = 0;
  /// One-shot hash tables built for unindexed equi-join sides.
  uint64_t hash_join_builds = 0;
  /// Probes served by those hash tables (replaces per-outer-row scans).
  uint64_t hash_join_probes = 0;
  /// Columnar caches built (one per table version, on its first
  /// snapshot-pinned scan or hash-join build; see relational/columnar.h).
  uint64_t columnar_builds = 0;
  /// Rows fed through vectorized predicate loops or typed hash builds (the
  /// columnar counterpart of rows_scanned).
  uint64_t columnar_scan_rows = 0;
  /// Selection-vector entries surviving every fused scan predicate (the
  /// rows a vectorized scan actually hands to the join pipeline).
  uint64_t selection_vector_rows = 0;
  uint64_t rows_inserted = 0;
  uint64_t rows_deleted = 0;
  uint64_t rows_updated = 0;
  uint64_t undo_records = 0;
  /// SELECT evaluations issued against the engine (probe queries included).
  uint64_t queries_executed = 0;
  /// Merged OR-of-predicates probes evaluated (each counts once in
  /// queries_executed too).
  uint64_t batch_queries_executed = 0;
  /// Individual probe branches served by merged queries (savings =
  /// batch_branches_merged - batch_queries_executed).
  uint64_t batch_branches_merged = 0;
  /// U-Filter plan cache: Prepare calls answered from / missing the cache.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// Full compiles (parse + bind + validate) actually performed.
  uint64_t updates_compiled = 0;
  /// STAR dynamic-checking runs actually performed.
  uint64_t star_checks = 0;
  /// MVCC snapshots pinned via Database::OpenSnapshot.
  uint64_t snapshots_opened = 0;
  /// Superseded table versions released by epoch-based GC (each one was a
  /// copy-on-write clone source that no pinned snapshot can still see).
  uint64_t versions_retired = 0;
  /// WAL records appended (one per published commit epoch while durable).
  uint64_t wal_records = 0;
  /// fsync(2) calls issued by the WAL writer; with the group-commit policy
  /// wal_records / wal_fsyncs is the achieved batching factor.
  uint64_t wal_fsyncs = 0;
  /// Bytes appended to the WAL (framing included).
  uint64_t wal_bytes = 0;

  void Reset() { *this = EngineStats(); }

  /// Field-wise `*this - baseline` (counters are monotonic between resets).
  EngineStats DiffSince(const EngineStats& baseline) const {
    EngineStats d = *this;
    d.rows_scanned -= baseline.rows_scanned;
    d.index_lookups -= baseline.index_lookups;
    d.plans_compiled -= baseline.plans_compiled;
    d.plan_replays -= baseline.plan_replays;
    d.hash_join_builds -= baseline.hash_join_builds;
    d.hash_join_probes -= baseline.hash_join_probes;
    d.columnar_builds -= baseline.columnar_builds;
    d.columnar_scan_rows -= baseline.columnar_scan_rows;
    d.selection_vector_rows -= baseline.selection_vector_rows;
    d.rows_inserted -= baseline.rows_inserted;
    d.rows_deleted -= baseline.rows_deleted;
    d.rows_updated -= baseline.rows_updated;
    d.undo_records -= baseline.undo_records;
    d.queries_executed -= baseline.queries_executed;
    d.batch_queries_executed -= baseline.batch_queries_executed;
    d.batch_branches_merged -= baseline.batch_branches_merged;
    d.plan_cache_hits -= baseline.plan_cache_hits;
    d.plan_cache_misses -= baseline.plan_cache_misses;
    d.updates_compiled -= baseline.updates_compiled;
    d.star_checks -= baseline.star_checks;
    d.snapshots_opened -= baseline.snapshots_opened;
    d.versions_retired -= baseline.versions_retired;
    d.wal_records -= baseline.wal_records;
    d.wal_fsyncs -= baseline.wal_fsyncs;
    d.wal_bytes -= baseline.wal_bytes;
    return d;
  }
};

/// The live counters: same fields as EngineStats but each one a relaxed
/// atomic. Every `stats.field++` / `+= n` call site compiles unchanged; a
/// consistent plain-value copy is taken with Snapshot().
struct AtomicEngineStats {
  RelaxedCounter rows_scanned;
  RelaxedCounter index_lookups;
  RelaxedCounter plans_compiled;
  RelaxedCounter plan_replays;
  RelaxedCounter hash_join_builds;
  RelaxedCounter hash_join_probes;
  RelaxedCounter columnar_builds;
  RelaxedCounter columnar_scan_rows;
  RelaxedCounter selection_vector_rows;
  RelaxedCounter rows_inserted;
  RelaxedCounter rows_deleted;
  RelaxedCounter rows_updated;
  RelaxedCounter undo_records;
  RelaxedCounter queries_executed;
  RelaxedCounter batch_queries_executed;
  RelaxedCounter batch_branches_merged;
  RelaxedCounter plan_cache_hits;
  RelaxedCounter plan_cache_misses;
  RelaxedCounter updates_compiled;
  RelaxedCounter star_checks;
  RelaxedCounter snapshots_opened;
  RelaxedCounter versions_retired;
  RelaxedCounter wal_records;
  RelaxedCounter wal_fsyncs;
  RelaxedCounter wal_bytes;

  EngineStats Snapshot() const {
    EngineStats s;
    s.rows_scanned = rows_scanned;
    s.index_lookups = index_lookups;
    s.plans_compiled = plans_compiled;
    s.plan_replays = plan_replays;
    s.hash_join_builds = hash_join_builds;
    s.hash_join_probes = hash_join_probes;
    s.columnar_builds = columnar_builds;
    s.columnar_scan_rows = columnar_scan_rows;
    s.selection_vector_rows = selection_vector_rows;
    s.rows_inserted = rows_inserted;
    s.rows_deleted = rows_deleted;
    s.rows_updated = rows_updated;
    s.undo_records = undo_records;
    s.queries_executed = queries_executed;
    s.batch_queries_executed = batch_queries_executed;
    s.batch_branches_merged = batch_branches_merged;
    s.plan_cache_hits = plan_cache_hits;
    s.plan_cache_misses = plan_cache_misses;
    s.updates_compiled = updates_compiled;
    s.star_checks = star_checks;
    s.snapshots_opened = snapshots_opened;
    s.versions_retired = versions_retired;
    s.wal_records = wal_records;
    s.wal_fsyncs = wal_fsyncs;
    s.wal_bytes = wal_bytes;
    return s;
  }

  void Reset() {
    rows_scanned.Reset();
    index_lookups.Reset();
    plans_compiled.Reset();
    plan_replays.Reset();
    hash_join_builds.Reset();
    hash_join_probes.Reset();
    columnar_builds.Reset();
    columnar_scan_rows.Reset();
    selection_vector_rows.Reset();
    rows_inserted.Reset();
    rows_deleted.Reset();
    rows_updated.Reset();
    undo_records.Reset();
    queries_executed.Reset();
    batch_queries_executed.Reset();
    batch_branches_merged.Reset();
    plan_cache_hits.Reset();
    plan_cache_misses.Reset();
    updates_compiled.Reset();
    star_checks.Reset();
    snapshots_opened.Reset();
    versions_retired.Reset();
    wal_records.Reset();
    wal_fsyncs.Reset();
    wal_bytes.Reset();
  }
};

/// \brief One table's storage: tombstoned row slots plus hash indexes.
///
/// An index is built over the primary key (unique), over every UNIQUE column
/// (unique) and over every foreign-key column set (non-unique). Tables
/// created without keys (materialized probe results) have no indexes and are
/// always scanned.
class Table {
 public:
  explicit Table(const TableSchema* schema);

  /// Copy-on-write clone: copies storage and indexes but deliberately NOT
  /// the columnar cache — the clone is the new live (mutable) version, and
  /// stale columns must never be observable through it. Writers therefore
  /// never see (or pay for) columnar state.
  Table(const Table& other)
      : schema_(other.schema_),
        rows_(other.rows_),
        live_count_(other.live_count_),
        indexes_(other.indexes_) {}
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return *schema_; }
  size_t live_row_count() const { return live_count_; }
  /// Number of row slots (live + tombstoned). Slot-exact serialization
  /// (checkpoints, state fingerprints) iterates [0, SlotCount()) so a
  /// recovered table reproduces RowIds, tombstones included.
  size_t SlotCount() const { return rows_.size(); }

  /// Returns the row at `id` or nullptr when out of range / deleted.
  const Row* GetRow(RowId id) const;
  bool IsLive(RowId id) const { return GetRow(id) != nullptr; }

  /// All live row ids in insertion order.
  std::vector<RowId> AllRowIds() const;

  /// Row ids matching all `preds` (conjunction). Uses a unique/non-unique
  /// index when one covers an equality predicate (unique indexes preferred —
  /// most selective); otherwise scans. Results are sorted, except that the
  /// sort is skipped when a unique index yields at most one candidate.
  std::vector<RowId> Find(const std::vector<ColumnPredicate>& preds,
                          AtomicEngineStats* stats) const;

  /// True if an index exists whose leading column is `column`.
  bool HasIndexOn(const std::string& column) const;

  // --- Planner / compiled-executor API (slot-addressed, no name lookups) ---

  /// True if a single-column index covers column `column_idx`.
  bool HasIndexOnColumn(int column_idx) const;
  /// True if a single-column *unique* index covers column `column_idx`.
  bool HasUniqueIndexOnColumn(int column_idx) const;

  /// Planner cardinality estimate for an equality on `column_idx`: a unique
  /// index gives 1, a non-unique index gives the average bucket size
  /// (live rows / distinct keys), no index gives live_row_count().
  double EstimateEqMatches(int column_idx) const;
  /// Same, but with the literal known: the exact hash-bucket occupancy.
  double EstimateEqMatches(int column_idx, const Value& literal) const;

  /// Hash-index equality probe addressed by column index. Appends verified
  /// matches to `out` *unsorted* (the plan executor orders final results
  /// itself) and allocates no probe row. Requires HasIndexOnColumn.
  void ProbeIndexEq(int column_idx, const Value& v, std::vector<RowId>* out,
                    AtomicEngineStats* stats) const;

  /// Appends `rows` without per-row constraint machinery (storage +
  /// index maintenance only) after one up-front reserve. Callers are
  /// responsible for constraint checking and undo logging; the intended
  /// user is ExecutionContext::BulkLoadTemp for index-free temp tables.
  void BulkLoad(std::vector<Row> rows, std::vector<RowId>* ids);

  /// The lazily built columnar projection of this table version (see
  /// relational/columnar.h). Only valid on an *immutable* table — the
  /// executor calls it solely for base tables resolved through a pinned
  /// snapshot, which copy-on-write protection guarantees will never change
  /// underneath the cache. Thread-safe: concurrent readers of the same
  /// version build once and share; `stats` (nullable) counts the build.
  /// Implemented in columnar.cc.
  std::shared_ptr<const ColumnarTable> columnar(AtomicEngineStats* stats) const;

 private:
  friend class Database;
  friend class ExecutionContext;
  friend class OpDryRunner;

  struct Index {
    std::vector<int> column_idx;
    bool unique = false;
    std::unordered_multimap<size_t, RowId> map;
    /// Distinct key hashes currently present (maintained incrementally);
    /// the planner's bucket estimate is live rows / distinct keys.
    size_t distinct_keys = 0;
  };

  // Storage-level mutation; constraint checks live in Database.
  RowId AppendRow(Row row);
  void EraseRow(RowId id);
  void RestoreRow(RowId id, Row row);
  void OverwriteRow(RowId id, Row row);
  /// Recovery-only: places `row` at exactly slot `id` (growing the slot
  /// array with tombstones as needed) and maintains indexes/live count.
  /// The slot must currently be empty.
  void PutSlotForRecovery(RowId id, Row row);

  // Index-key helpers, shared with the read-only op validator
  // (relational/dryrun.cc) so overlay probes hash into exactly the same
  // buckets as the live indexes.
  static size_t HashRowValues(const Row& row, const std::vector<int>& cols);
  static bool RowValuesEqual(const Row& a, const Row& b,
                             const std::vector<int>& cols);
  static bool AnyValueNull(const Row& row, const std::vector<int>& cols);

  size_t IndexKeyHash(const Index& index, const Row& row) const;
  void IndexInsert(RowId id, const Row& row);
  void IndexErase(RowId id, const Row& row);
  /// Finds a unique-index collision for `row` (other than `self`), or -1.
  RowId FindUniqueConflict(const Row& row, RowId self) const;
  const Index* FindIndexFor(const std::string& column) const;
  const Index* FindIndexForColumn(int column_idx) const;

  const TableSchema* schema_;
  std::vector<std::optional<Row>> rows_;
  size_t live_count_ = 0;
  std::vector<Index> indexes_;

  /// Columnar cache (see columnar()). The version dies with the Table, so
  /// epoch GC reclaims columns together with their retired version. Mutable
  /// because building the cache is a logically-const read-path operation;
  /// the mutex only serializes the one-time build, never steady-state reads
  /// (callers hold their own shared_ptr once built).
  mutable std::mutex columnar_mu_;
  mutable std::shared_ptr<const ColumnarTable> columnar_;
};

/// Identifies one affected row of an executed update (used by tests and the
/// translation engine to report what happened).
struct AffectedRow {
  std::string table;
  RowId row_id;
};

/// Outcome of a delete: how many rows went away per table (cascades count).
struct DeleteOutcome {
  int64_t deleted_rows = 0;   ///< total rows removed across tables
  int64_t nulled_rows = 0;    ///< rows whose FK columns were SET NULL
  std::vector<AffectedRow> affected;
};

class Database;
class ExecutionContext;
class WalWriter;
struct DurabilityOptions;
struct WalRecord;       // wal.h
struct CheckpointImage;  // wal.h

/// One logical row-level redo operation destined for the WAL. Captured at
/// every base-table mutation site, right next to the matching undo record;
/// the pairing (`owner` context + `undo_mark` index into its undo log) lets
/// a rollback discard exactly the redo ops of the undone statement, so a
/// published WAL record only ever carries committed effects. Replay applies
/// ops verbatim by RowId — cascades, SET NULL rewrites and multi-table
/// sequences recover without re-running constraint logic.
struct RedoOp {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1, kUpdate = 2 };
  Kind kind = Kind::kInsert;
  std::string table;
  RowId row_id = 0;
  /// New row image for kInsert / kUpdate; empty for kDelete.
  Row row;
  /// Rollback pairing (not serialized): the context that logged the
  /// matching undo record, and that record's index in its undo log.
  /// Sealed (nullptr / -1) once the op can no longer be rolled back.
  const ExecutionContext* owner = nullptr;
  int64_t undo_mark = -1;
};

/// \brief One published, immutable state of all base tables.
///
/// A publish ("commit") freezes the current table versions under a fresh
/// commit epoch. The table pointers are shared with the live state until a
/// writer's first post-publish mutation copies the table (copy-on-write), so
/// publishing is O(#tables), not O(rows). Immutable after construction;
/// safe to read from any thread with no lock.
struct DatabaseVersion {
  uint64_t epoch = 0;
  /// Aligned with DatabaseSchema::tables().
  std::vector<std::shared_ptr<const Table>> tables;
};

/// \brief An RAII pin of one published DatabaseVersion.
///
/// While a Snapshot is alive, every table version it references is retained
/// (shared_ptr) and its epoch is excluded from garbage collection, so reads
/// through it are stable no matter how many commits happen concurrently.
/// Closing the snapshot (destruction) unpins the epoch and runs GC. The
/// Database must outlive all of its snapshots.
class Snapshot {
 public:
  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// The commit epoch this snapshot is pinned to.
  uint64_t epoch() const { return version_->epoch; }

  /// The pinned version of base table `idx` (schema order).
  const Table* TableAt(size_t idx) const { return version_->tables[idx].get(); }

  /// Resolves a *base* table by name at the pinned epoch (temp tables are
  /// per-context, never versioned). Null when no such base table exists.
  const Table* FindTable(const std::string& name) const;

 private:
  friend class Database;
  Snapshot(Database* db, std::shared_ptr<const DatabaseVersion> version)
      : db_(db), version_(std::move(version)) {}

  Database* db_;
  std::shared_ptr<const DatabaseVersion> version_;
};

/// \brief Per-session mutable scratch: temp tables and the undo log.
///
/// Everything a check session may create or rewind lives here, not in the
/// shared Database: materialized probe results (the paper's "TAB_book"),
/// savepoints, undo records. Two sessions holding separate contexts can
/// probe the same Database concurrently without sharing any mutable state;
/// one session's temp tables are invisible to another's queries.
///
/// The context is NOT internally synchronized: a session must not run two
/// mutating operations on its own context concurrently (the service layer's
/// writer lane guarantees this).
class ExecutionContext {
 public:
  explicit ExecutionContext(Database* db) : db_(db) {}
  /// Seals any redo ops still paired with this context's undo log (they
  /// can no longer be rolled back once the context is gone).
  ~ExecutionContext();
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  Database* database() const { return db_; }

  // --- Transactions (per-context undo log, nested savepoints) ---

  /// Marks a savepoint; returns its handle.
  size_t Begin() { return undo_log_.size(); }
  /// Releases savepoint `mark`, keeping the changes. Undo records are
  /// retained so an *outer* savepoint can still roll them back; call
  /// `Checkpoint` to discard the log once no savepoint is outstanding.
  void Commit(size_t mark) { (void)mark; }
  /// Undoes everything back to savepoint `mark`.
  void Rollback(size_t mark);
  /// Declares the current state rollback-free: clears the whole undo log
  /// (and seals the paired redo ops — they will publish with the next
  /// epoch's WAL record no matter what). Invalidates all savepoints.
  void Checkpoint();
  /// Number of undo records currently held (for tests).
  size_t undo_log_size() const { return undo_log_.size(); }

  // --- Temp tables (session-local, index-free scratch) ---

  /// Creates an index-free scratch table (materialized probe results). The
  /// name must not collide with a base table or another temp table of this
  /// context; other contexts' temp tables do not conflict.
  Result<Table*> CreateTempTable(TableSchema schema);

  /// Bulk-loads materialized probe rows into temp table `name`: one arity
  /// check per row, no FK/unique/domain machinery (index-free temp tables
  /// can never trip either), one storage reserve. Rows are still undo-logged
  /// so savepoint rollback removes them while the table is alive.
  Status BulkLoadTemp(const std::string& name, std::vector<Row> rows);
  Status DropTempTable(const std::string& name);
  bool IsTempTable(const std::string& name) const {
    return temp_tables_.count(name) > 0;
  }

  // --- Read snapshot (MVCC pin for check-only sessions) ---

  /// Pins `snapshot`: until cleared, every *base-table* read resolved
  /// through this context sees the snapshot's epoch, and every base-table
  /// mutation is refused (a pinned context is read-only by construction —
  /// this is what excludes lost updates / write skew from the snapshot
  /// path). Temp tables stay live: they are session-local scratch.
  void PinReadSnapshot(std::shared_ptr<const Snapshot> snapshot) {
    read_snapshot_ = std::move(snapshot);
  }
  void ClearReadSnapshot() { read_snapshot_.reset(); }
  const Snapshot* read_snapshot() const { return read_snapshot_.get(); }

 private:
  friend class Database;
  friend class OpDryRunner;

  enum class UndoKind { kInsert, kDelete, kUpdate };
  struct UndoRecord {
    UndoKind kind;
    std::string table;
    RowId row_id;
    Row old_row;  // for kDelete / kUpdate
  };

  Table* FindTempTable(const std::string& name) {
    auto it = temp_tables_.find(name);
    return it == temp_tables_.end() ? nullptr : it->second.get();
  }
  const Table* FindTempTable(const std::string& name) const {
    auto it = temp_tables_.find(name);
    return it == temp_tables_.end() ? nullptr : it->second.get();
  }

  Database* db_;
  // Reference stability matters: Table objects point into temp_schemas_.
  std::unordered_map<std::string, std::unique_ptr<Table>> temp_tables_;
  std::unordered_map<std::string, TableSchema> temp_schemas_;
  std::vector<UndoRecord> undo_log_;
  std::shared_ptr<const Snapshot> read_snapshot_;
};

/// \brief The database: schema + shared base tables + work counters.
///
/// All mutating calls are recorded in an ExecutionContext's undo log (the
/// context passed explicitly, or the database's built-in root context for
/// the single-session convenience API — every legacy call site keeps
/// working). This mirrors what the Fig. 14 baseline needs: blind
/// translation, side-effect detection, rollback.
class Database {
 public:
  /// Validates and adopts the schema, creating empty tables.
  static Result<std::unique_ptr<Database>> Create(DatabaseSchema schema);

  /// Best-effort drain of pending WAL records + final fsync.
  ~Database();

  const DatabaseSchema& schema() const { return schema_; }
  AtomicEngineStats& stats() const { return stats_; }

  /// Copy of the live work counters (see EngineStats for diffing).
  EngineStats SnapshotWorkCounters() const { return stats_.Snapshot(); }
  /// Zeroes all work counters; benchmarks call this between scenarios.
  void ResetWorkCounters() { stats_.Reset(); }

  /// The built-in context the single-session convenience API runs against.
  ExecutionContext* root_context() { return root_context_.get(); }
  /// A fresh context for a new session. The Database must outlive it.
  std::unique_ptr<ExecutionContext> CreateContext() {
    return std::make_unique<ExecutionContext>(this);
  }

  // --- MVCC: commit epochs, snapshots, garbage collection ---

  /// Largest publishable commit epoch (the last value is reserved so the
  /// counter can never wrap and reorder pinned epochs).
  static constexpr uint64_t kMaxCommitEpoch =
      std::numeric_limits<uint64_t>::max() - 1;

  /// Pins the latest published state. When unpublished mutations exist and
  /// no WriterGuard is active, they are published first, so a snapshot
  /// opened from quiescence always sees current data. Cheap: a mutex-guarded
  /// pointer copy — the returned snapshot is then read with **no lock**.
  std::shared_ptr<const Snapshot> OpenSnapshot();

  /// Publishes the live tables under the next commit epoch and retires what
  /// GC allows. Fails (and changes nothing) once the epoch space is
  /// exhausted (see kMaxCommitEpoch). Usually called through WriterGuard.
  Result<uint64_t> PublishVersion();

  /// Marks a writer transaction: while at least one guard is alive,
  /// OpenSnapshot will not auto-publish (snapshots must never observe a
  /// half-applied op sequence); the last guard to release publishes the
  /// accumulated mutations as one commit. Writers must already be mutually
  /// exclusive with each other (the service's writer lane).
  class WriterGuard {
   public:
    explicit WriterGuard(Database* db);
    ~WriterGuard();
    WriterGuard(const WriterGuard&) = delete;
    WriterGuard& operator=(const WriterGuard&) = delete;

    /// Declares that this transaction will leave no *net* change (e.g. the
    /// check-only execute/rollback protocol): on release the guard skips
    /// the publish and clears the dirty flag instead of committing a new
    /// epoch whose content is byte-identical to the previous one. Any
    /// copy-on-write clone made meanwhile simply becomes the live version
    /// (same content, so snapshots of the old version stay exact).
    void AbandonPublish() { abandon_publish_ = true; }

   private:
    Database* db_;
    bool abandon_publish_ = false;
  };

  /// Epoch of the latest published version.
  uint64_t commit_epoch() const;
  /// Smallest epoch any open snapshot pins (== commit_epoch() when none).
  uint64_t oldest_pinned_epoch() const;
  /// Superseded table versions still retained for pinned snapshots.
  size_t retained_version_count() const;
  /// Test hook for the overflow guard: jumps the epoch counter (e.g. to
  /// kMaxCommitEpoch) without publishing.
  void set_commit_epoch_for_testing(uint64_t epoch);

  /// Resolves `name` among base tables and `ctx`'s temp tables (null ctx =
  /// base tables only).
  Result<Table*> GetTable(const ExecutionContext* ctx,
                          const std::string& name);
  Result<const Table*> GetTable(const ExecutionContext* ctx,
                                const std::string& name) const;
  Result<Table*> GetTable(const std::string& name) {
    return GetTable(root_context_.get(), name);
  }
  Result<const Table*> GetTable(const std::string& name) const {
    return GetTable(root_context_.get(), name);
  }

  // --- Mutations (undo-logged into the given context) ---

  /// Inserts a row, enforcing NOT NULL, CHECK, PK/UNIQUE and FK existence.
  Result<RowId> Insert(ExecutionContext* ctx, const std::string& table,
                       Row row);
  Result<RowId> Insert(const std::string& table, Row row) {
    return Insert(root_context_.get(), table, std::move(row));
  }

  /// Inserts from a column-name/value mapping; missing columns become NULL.
  Result<RowId> InsertValues(ExecutionContext* ctx, const std::string& table,
                             const std::map<std::string, Value>& values);
  Result<RowId> InsertValues(const std::string& table,
                             const std::map<std::string, Value>& values) {
    return InsertValues(root_context_.get(), table, values);
  }

  /// Deletes all rows matching `preds`, honoring FK delete policies
  /// transitively. kRestrict aborts the whole delete with
  /// ConstraintViolation (nothing is applied thanks to the undo log).
  Result<DeleteOutcome> DeleteWhere(ExecutionContext* ctx,
                                    const std::string& table,
                                    const std::vector<ColumnPredicate>& preds);
  Result<DeleteOutcome> DeleteWhere(
      const std::string& table, const std::vector<ColumnPredicate>& preds) {
    return DeleteWhere(root_context_.get(), table, preds);
  }

  /// Deletes one row by id (same policy handling).
  Result<DeleteOutcome> DeleteRow(ExecutionContext* ctx,
                                  const std::string& table, RowId id);
  Result<DeleteOutcome> DeleteRow(const std::string& table, RowId id) {
    return DeleteRow(root_context_.get(), table, id);
  }

  /// Sets `assignments` on all rows matching `preds`; enforces the same
  /// constraints as Insert. Returns the number of rows updated.
  Result<int64_t> UpdateWhere(ExecutionContext* ctx, const std::string& table,
                              const std::map<std::string, Value>& assignments,
                              const std::vector<ColumnPredicate>& preds);
  Result<int64_t> UpdateWhere(const std::string& table,
                              const std::map<std::string, Value>& assignments,
                              const std::vector<ColumnPredicate>& preds) {
    return UpdateWhere(root_context_.get(), table, assignments, preds);
  }

  // --- Transactions on the root context (single-session convenience) ---

  size_t Begin() { return root_context_->Begin(); }
  void Commit(size_t mark) { root_context_->Commit(mark); }
  void Rollback(size_t mark) { root_context_->Rollback(mark); }
  void Checkpoint() { root_context_->Checkpoint(); }
  size_t undo_log_size() const { return root_context_->undo_log_size(); }

  // --- Temp tables on the root context (single-session convenience) ---

  Result<Table*> CreateTempTable(TableSchema schema) {
    return root_context_->CreateTempTable(std::move(schema));
  }
  Status BulkLoadTemp(const std::string& name, std::vector<Row> rows) {
    return root_context_->BulkLoadTemp(name, std::move(rows));
  }
  Status DropTempTable(const std::string& name) {
    return root_context_->DropTempTable(name);
  }
  bool IsTempTable(const std::string& name) const {
    return root_context_->IsTempTable(name);
  }

  /// Total live rows over all permanent tables (scale reporting in benches).
  size_t TotalRows() const;

  // --- Durability: write-ahead log, checkpoints, crash recovery ---
  // (implemented in wal.cc together with the file formats; see wal.h)

  /// Turns on WAL durability: from now on every published commit epoch
  /// appends one logical-redo record to `opts.wal_path` (created if
  /// missing, extended if present — e.g. right after RecoverFrom), fsynced
  /// per `opts.fsync_policy`. Mutations from *before* this call are not in
  /// the log; for a pre-populated database write a checkpoint right after
  /// enabling, or recovery will miss the seed data. Fails if durability is
  /// already enabled. Not concurrency-safe with in-flight writers: call it
  /// during setup, before the writer lane opens.
  Status EnableDurability(const DurabilityOptions& opts);
  bool durability_enabled() const {
    return wal_enabled_.load(std::memory_order_acquire);
  }
  /// First WAL append/fsync error, sticky (Status::OK while healthy).
  Status wal_status() const;
  /// Drains pending records and forces an fsync regardless of policy (the
  /// shutdown barrier). OK and a no-op when durability is off.
  Status SyncWal();

  /// Serializes the currently published version (publishing quiescent
  /// mutations first, like OpenSnapshot) atomically to `path` and returns
  /// its epoch. Recovery from {checkpoint, WAL} then replays only the WAL
  /// records with larger epochs. Reading the version is free — it is an
  /// immutable MVCC snapshot — so writers are never blocked by this.
  Result<uint64_t> WriteCheckpoint(const std::string& path);

  /// Rebuilds the last durable state into this (freshly created, empty,
  /// never-published) database: loads `opts.checkpoint_path` when set and
  /// present, then replays the WAL records of `opts.wal_path` with epochs
  /// past the checkpoint, in strictly increasing epoch order. A torn or
  /// corrupt WAL tail is discarded and physically truncated, so the
  /// database always lands on the last *fully published* epoch. Missing
  /// files mean an empty history (epoch 0). The schema must match what the
  /// log was written against. Call EnableDurability afterwards to resume
  /// appending to the same log.
  Status RecoverFrom(const DurabilityOptions& opts);
  Status RecoverFrom(const std::string& wal_path);

  /// Slot-exact fingerprint of the published tables (wal.h
  /// EncodeDatabaseState): two databases holding identical published data
  /// — e.g. one recovered, one live — compare byte-equal. Test oracle.
  Result<std::string> SerializePublishedState();

  // --- Replication (the follower's apply path; implemented in wal.cc) ---

  /// Bootstraps a freshly created, never-published database from a shipped
  /// state payload (wal.h EncodeDatabaseState) as of `epoch`: the wire twin
  /// of RecoverFrom's checkpoint phase. The loaded state is published under
  /// `epoch` through the normal MVCC path. Durability may already be
  /// enabled — the snapshot itself is never logged (the follower persists
  /// it as a local checkpoint file instead).
  Status LoadReplicatedSnapshot(uint64_t epoch,
                                const std::string& state_payload);

  /// Applies one shipped WAL record and publishes it under exactly
  /// `record.epoch` — Database::RecoverFrom running continuously. Records
  /// at or below the current commit epoch are skipped (idempotent
  /// resume-from-epoch after a reconnect). Requires writer quiescence
  /// (the follower serves check-only traffic; the service's writer lane
  /// serializes the applier with escalated check-only writers): a dirty
  /// live state or an active WriterGuard is an Internal error. When
  /// durability is enabled the record is also appended to the local WAL,
  /// so a restarted follower resumes from its own log. Any apply failure
  /// leaves the database poisoned for replication purposes — the follower
  /// must stop, not skip.
  Status ApplyReplicatedEpoch(const WalRecord& record);

  /// Drains pending WAL records into the log file *without* forcing an
  /// fsync (kGroup staging is flushed to the fd, the fsync schedule is
  /// untouched): makes every published record visible to a WalTailer (the
  /// replication source) at its poll cadence. No-op when durability is off.
  Status FlushWalToFile();

  /// Forwards to WalWriter::set_crash_after_bytes_for_testing (the kill -9
  /// fuzz harness's torn-tail injector). No-op when durability is off.
  void set_wal_crash_after_bytes_for_testing(int64_t n);

 private:
  friend class ExecutionContext;
  friend class OpDryRunner;
  friend class Snapshot;

  explicit Database(DatabaseSchema schema);

  Status CheckRowConstraints(const TableSchema& schema, const Row& row) const;
  Status CheckForeignKeysExist(const TableSchema& schema,
                               const Row& row) const;
  // Recursive policy-driven delete. Appends to outcome. `table` must be a
  // writable (copy-on-write-resolved) table. `writable` memoizes the
  // per-transaction copy-on-write resolution of referencing tables so the
  // cascade walk takes the global snapshot mutex once per table, not once
  // per cascaded row.
  Status DeleteRowInternal(ExecutionContext* ctx, Table* table, RowId id,
                           DeleteOutcome* outcome,
                           std::unordered_map<std::string, Table*>* writable);

  Table* TableByName(const ExecutionContext* ctx, const std::string& name);
  const Table* TableByName(const ExecutionContext* ctx,
                           const std::string& name) const;

  /// Error when `name` is a base table and `ctx` is pinned to a read
  /// snapshot (pinned contexts are read-only for base tables).
  Status RefuseIfPinned(const ExecutionContext* ctx,
                        const std::string& name) const;
  /// Mutation-side resolution: temp tables pass through; a base table is
  /// refused while `ctx` is pinned to a read snapshot, and otherwise
  /// copy-on-write-resolved so no published version is ever mutated.
  /// Mutators call this as late as possible — after their read-only
  /// constraint/match checks — so rejected and zero-effect requests never
  /// pay for a clone.
  Result<Table*> WritableTable(ExecutionContext* ctx, const std::string& name);
  /// The live version of base table `idx`, cloned first when any published
  /// version / snapshot still references it. Marks the live state dirty.
  Table* WritableBaseTable(size_t idx);

  /// Table versions reclaimed by GC, handed back to the caller so their
  /// deallocation (row storage + index multimaps, possibly huge) happens
  /// *after* snapshot_mu_ is released — freeing under the lock would stall
  /// every concurrent OpenSnapshot.
  using Graveyard = std::vector<std::shared_ptr<const Table>>;

  /// Freezes the live tables into a DatabaseVersion stamped `epoch` and
  /// makes it the published version (snapshot_mu_ held).
  void BuildVersionLocked(uint64_t epoch);
  /// Slot-exact restore of a checkpoint image into the (empty) live tables
  /// (snapshot_mu_ held; the RecoverFrom checkpoint phase and the wire
  /// bootstrap share this).
  Status ApplyCheckpointImageLocked(CheckpointImage&& image);
  /// Publish + GC with snapshot_mu_ held; reclaimed versions land in
  /// `graveyard`.
  Result<uint64_t> PublishLocked(Graveyard* graveyard);
  /// Guarantees published_ != nullptr with snapshot_mu_ held, even when the
  /// epoch space is already exhausted (terminal-epoch pin of the live
  /// state).
  void EnsurePublishedLocked(Graveyard* graveyard);
  /// Moves retired table versions we hold the last reference to (no pinned
  /// snapshot can still observe them) into `graveyard`.
  void CollectRetiredLocked(Graveyard* graveyard);

  // --- WAL internals (see wal.h for the file-format side) ---

  /// Records one redo op into the epoch-in-progress buffer (no-op while
  /// durability is off). Takes snapshot_mu_ so the append is ordered
  /// against any concurrent quiescent publish.
  void CaptureRedo(const ExecutionContext* ctx, RedoOp::Kind kind,
                   const std::string& table, RowId id, const Row* row);
  /// Rollback hook: discards the buffered redo ops whose paired undo
  /// records (owner `ctx`, index >= `mark`) are being undone.
  void DropRedoSince(const ExecutionContext* ctx, size_t mark);
  /// Context checkpoint/teardown hook: unpairs `ctx`'s buffered redo ops
  /// from its (about-to-vanish) undo log.
  void SealRedoFor(const ExecutionContext* ctx);
  /// snapshot_mu_ held: true when the caller should FlushWalPending()
  /// after releasing the lock.
  bool WalFlushNeededLocked() const {
    return wal_enabled_.load(std::memory_order_relaxed) &&
           !wal_pending_.empty();
  }
  /// Appends (and policy-fsyncs) every pending per-epoch record, FIFO.
  /// Takes wal_mu_ for the file I/O and re-takes snapshot_mu_ only for the
  /// brief queue pops — never the other way around, and never holding
  /// snapshot_mu_ across a write or fsync, so snapshot readers don't wait
  /// behind the disk.
  void FlushWalPending();

  DatabaseSchema schema_;
  /// Live (newest) table versions, aligned with schema_. shared_ptr so a
  /// published DatabaseVersion can share a table with the live state until
  /// a writer clones it; single-session flows without snapshots never pay
  /// for a clone and keep stable Table pointers.
  std::vector<std::shared_ptr<Table>> tables_;
  // GetTable sits on every probe's hot path: hashed lookups, not tree walks.
  std::unordered_map<std::string, size_t> table_index_;
  std::unique_ptr<ExecutionContext> root_context_;
  /// Bumped from concurrent workers; mutable so the whole read path stays
  /// const while still accounting its work.
  mutable AtomicEngineStats stats_;

  /// Guards the version state below: snapshot open/close, publish, the
  /// copy-on-write check-and-swap, and GC. Never held during probe
  /// evaluation — that is the whole point of the snapshot design.
  mutable std::mutex snapshot_mu_;
  /// Epoch of the latest published version; 0 until the first publish
  /// (publishing is lazy so snapshot-free single-session flows never pay
  /// for copy-on-write clones).
  uint64_t commit_epoch_ = 0;
  std::shared_ptr<const DatabaseVersion> published_;
  bool live_dirty_ = false;
  int writer_depth_ = 0;
  std::multiset<uint64_t> pinned_epochs_;
  struct RetiredVersion {
    /// Last published epoch that contained it (diagnostics only — GC is
    /// driven purely by the reference count, see CollectRetiredLocked).
    uint64_t superseded_epoch;
    std::shared_ptr<const Table> table;
  };
  std::vector<RetiredVersion> retired_;

  /// Durability switch; checked (acquire) on every mutation's capture path
  /// so a WAL-free database pays one relaxed-ish load and nothing else.
  std::atomic<bool> wal_enabled_{false};
  /// Redo ops of the epoch in progress (guarded by snapshot_mu_). Publish
  /// moves them into wal_pending_ under the epoch they commit as.
  std::vector<RedoOp> wal_redo_;
  /// Published-but-not-yet-appended records, FIFO (guarded by
  /// snapshot_mu_; drained by FlushWalPending outside it).
  std::deque<std::pair<uint64_t, std::vector<RedoOp>>> wal_pending_;

  /// Guards the WAL file writer and its sticky error status. Lock order:
  /// wal_mu_ before snapshot_mu_; code holding snapshot_mu_ must never
  /// take wal_mu_.
  mutable std::mutex wal_mu_;
  std::unique_ptr<WalWriter> wal_writer_;
  Status wal_status_;
};

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_DATABASE_H_
