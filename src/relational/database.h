// In-memory relational database: tables with stable row ids, hash indexes on
// keys, constraint-enforcing insert/delete/update, FK delete policies
// (CASCADE / SET NULL / RESTRICT) and undo-log transactions with rollback.
//
// This is the "data storage / Oracle" box of Fig. 5: the substrate U-Filter
// issues probe queries and translated SQL updates against.
#ifndef UFILTER_RELATIONAL_DATABASE_H_
#define UFILTER_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "relational/schema.h"

namespace ufilter::relational {

/// A tuple. Values are positional, aligned with TableSchema::columns().
using Row = std::vector<Value>;

/// Stable identifier of a row slot within its table (the engine's ROWID).
using RowId = int64_t;

/// Conjunct of a single-table filter: `column <op> literal`.
struct ColumnPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  std::string ToString() const {
    return column + " " + CompareOpSymbol(op) + " " + literal.ToSqlLiteral();
  }
};

/// Cumulative work counters; benchmarks and tests read these to observe the
/// cost asymmetries the paper's figures rely on (index lookups vs. scans).
///
/// The struct doubles as the *snapshot* type of the work-counter mechanism:
/// `Database::SnapshotWorkCounters()` returns a copy, `DiffSince` subtracts a
/// baseline, and `Database::ResetWorkCounters()` zeroes the live counters so
/// benchmark scenarios stop accumulating into each other.
///
/// The compile-side counters (queries, plan cache, prepares, STAR runs) are
/// incremented by the layers above (QueryEvaluator, UFilter); they live here
/// so one snapshot captures the whole pipeline's work.
struct EngineStats {
  uint64_t rows_scanned = 0;
  uint64_t index_lookups = 0;
  /// Physical plans compiled by the cost-based planner (one per ad-hoc
  /// Execute; prepared probes compile once and then only replay).
  uint64_t plans_compiled = 0;
  /// Executions of an already-compiled plan (zero name resolution).
  uint64_t plan_replays = 0;
  /// One-shot hash tables built for unindexed equi-join sides.
  uint64_t hash_join_builds = 0;
  /// Probes served by those hash tables (replaces per-outer-row scans).
  uint64_t hash_join_probes = 0;
  uint64_t rows_inserted = 0;
  uint64_t rows_deleted = 0;
  uint64_t rows_updated = 0;
  uint64_t undo_records = 0;
  /// SELECT evaluations issued against the engine (probe queries included).
  uint64_t queries_executed = 0;
  /// Merged OR-of-predicates probes evaluated (each counts once in
  /// queries_executed too).
  uint64_t batch_queries_executed = 0;
  /// Individual probe branches served by merged queries (savings =
  /// batch_branches_merged - batch_queries_executed).
  uint64_t batch_branches_merged = 0;
  /// U-Filter plan cache: Prepare calls answered from / missing the cache.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// Full compiles (parse + bind + validate) actually performed.
  uint64_t updates_compiled = 0;
  /// STAR dynamic-checking runs actually performed.
  uint64_t star_checks = 0;

  void Reset() { *this = EngineStats(); }

  /// Field-wise `*this - baseline` (counters are monotonic between resets).
  EngineStats DiffSince(const EngineStats& baseline) const {
    EngineStats d = *this;
    d.rows_scanned -= baseline.rows_scanned;
    d.index_lookups -= baseline.index_lookups;
    d.plans_compiled -= baseline.plans_compiled;
    d.plan_replays -= baseline.plan_replays;
    d.hash_join_builds -= baseline.hash_join_builds;
    d.hash_join_probes -= baseline.hash_join_probes;
    d.rows_inserted -= baseline.rows_inserted;
    d.rows_deleted -= baseline.rows_deleted;
    d.rows_updated -= baseline.rows_updated;
    d.undo_records -= baseline.undo_records;
    d.queries_executed -= baseline.queries_executed;
    d.batch_queries_executed -= baseline.batch_queries_executed;
    d.batch_branches_merged -= baseline.batch_branches_merged;
    d.plan_cache_hits -= baseline.plan_cache_hits;
    d.plan_cache_misses -= baseline.plan_cache_misses;
    d.updates_compiled -= baseline.updates_compiled;
    d.star_checks -= baseline.star_checks;
    return d;
  }
};

/// \brief One table's storage: tombstoned row slots plus hash indexes.
///
/// An index is built over the primary key (unique), over every UNIQUE column
/// (unique) and over every foreign-key column set (non-unique). Tables
/// created without keys (materialized probe results) have no indexes and are
/// always scanned.
class Table {
 public:
  explicit Table(const TableSchema* schema);

  const TableSchema& schema() const { return *schema_; }
  size_t live_row_count() const { return live_count_; }

  /// Returns the row at `id` or nullptr when out of range / deleted.
  const Row* GetRow(RowId id) const;
  bool IsLive(RowId id) const { return GetRow(id) != nullptr; }

  /// All live row ids in insertion order.
  std::vector<RowId> AllRowIds() const;

  /// Row ids matching all `preds` (conjunction). Uses a unique/non-unique
  /// index when one covers an equality predicate (unique indexes preferred —
  /// most selective); otherwise scans. Results are sorted, except that the
  /// sort is skipped when a unique index yields at most one candidate.
  std::vector<RowId> Find(const std::vector<ColumnPredicate>& preds,
                          EngineStats* stats) const;

  /// True if an index exists whose leading column is `column`.
  bool HasIndexOn(const std::string& column) const;

  // --- Planner / compiled-executor API (slot-addressed, no name lookups) ---

  /// True if a single-column index covers column `column_idx`.
  bool HasIndexOnColumn(int column_idx) const;
  /// True if a single-column *unique* index covers column `column_idx`.
  bool HasUniqueIndexOnColumn(int column_idx) const;

  /// Planner cardinality estimate for an equality on `column_idx`: a unique
  /// index gives 1, a non-unique index gives the average bucket size
  /// (live rows / distinct keys), no index gives live_row_count().
  double EstimateEqMatches(int column_idx) const;
  /// Same, but with the literal known: the exact hash-bucket occupancy.
  double EstimateEqMatches(int column_idx, const Value& literal) const;

  /// Hash-index equality probe addressed by column index. Appends verified
  /// matches to `out` *unsorted* (the plan executor orders final results
  /// itself) and allocates no probe row. Requires HasIndexOnColumn.
  void ProbeIndexEq(int column_idx, const Value& v, std::vector<RowId>* out,
                    EngineStats* stats) const;

  /// Appends `rows` without per-row constraint machinery (storage +
  /// index maintenance only) after one up-front reserve. Callers are
  /// responsible for constraint checking and undo logging; the intended
  /// user is Database::BulkLoadTemp for index-free temp tables.
  void BulkLoad(std::vector<Row> rows, std::vector<RowId>* ids);

 private:
  friend class Database;

  struct Index {
    std::vector<int> column_idx;
    bool unique = false;
    std::unordered_multimap<size_t, RowId> map;
    /// Distinct key hashes currently present (maintained incrementally);
    /// the planner's bucket estimate is live rows / distinct keys.
    size_t distinct_keys = 0;
  };

  // Storage-level mutation; constraint checks live in Database.
  RowId AppendRow(Row row);
  void EraseRow(RowId id);
  void RestoreRow(RowId id, Row row);
  void OverwriteRow(RowId id, Row row);

  size_t IndexKeyHash(const Index& index, const Row& row) const;
  void IndexInsert(RowId id, const Row& row);
  void IndexErase(RowId id, const Row& row);
  /// Finds a unique-index collision for `row` (other than `self`), or -1.
  RowId FindUniqueConflict(const Row& row, RowId self) const;
  const Index* FindIndexFor(const std::string& column) const;
  const Index* FindIndexForColumn(int column_idx) const;

  const TableSchema* schema_;
  std::vector<std::optional<Row>> rows_;
  size_t live_count_ = 0;
  std::vector<Index> indexes_;
};

/// Identifies one affected row of an executed update (used by tests and the
/// translation engine to report what happened).
struct AffectedRow {
  std::string table;
  RowId row_id;
};

/// Outcome of a delete: how many rows went away per table (cascades count).
struct DeleteOutcome {
  int64_t deleted_rows = 0;   ///< total rows removed across tables
  int64_t nulled_rows = 0;    ///< rows whose FK columns were SET NULL
  std::vector<AffectedRow> affected;
};

/// \brief The database: schema + tables + transaction log.
///
/// All mutating calls are recorded in the active transaction's undo log (a
/// transaction is always active; `Begin` marks a savepoint, `Rollback`
/// rewinds to the latest savepoint). This mirrors what the Fig. 14 baseline
/// needs: blind translation, side-effect detection, rollback.
class Database {
 public:
  /// Validates and adopts the schema, creating empty tables.
  static Result<std::unique_ptr<Database>> Create(DatabaseSchema schema);

  const DatabaseSchema& schema() const { return schema_; }
  EngineStats& stats() { return stats_; }

  /// Copy of the live work counters (see EngineStats for diffing).
  EngineStats SnapshotWorkCounters() const { return stats_; }
  /// Zeroes all work counters; benchmarks call this between scenarios.
  void ResetWorkCounters() { stats_.Reset(); }

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Inserts a row, enforcing NOT NULL, CHECK, PK/UNIQUE and FK existence.
  Result<RowId> Insert(const std::string& table, Row row);

  /// Inserts from a column-name/value mapping; missing columns become NULL.
  Result<RowId> InsertValues(const std::string& table,
                             const std::map<std::string, Value>& values);

  /// Deletes all rows matching `preds`, honoring FK delete policies
  /// transitively. kRestrict aborts the whole delete with
  /// ConstraintViolation (nothing is applied thanks to the undo log).
  Result<DeleteOutcome> DeleteWhere(const std::string& table,
                                    const std::vector<ColumnPredicate>& preds);

  /// Deletes one row by id (same policy handling).
  Result<DeleteOutcome> DeleteRow(const std::string& table, RowId id);

  /// Sets `assignments` on all rows matching `preds`; enforces the same
  /// constraints as Insert. Returns the number of rows updated.
  Result<int64_t> UpdateWhere(const std::string& table,
                              const std::map<std::string, Value>& assignments,
                              const std::vector<ColumnPredicate>& preds);

  // --- Transactions (single-writer, nested savepoints) ---

  /// Marks a savepoint; returns its handle.
  size_t Begin();
  /// Releases savepoint `mark`, keeping the changes. Undo records are
  /// retained so an *outer* savepoint can still roll them back; call
  /// `Checkpoint` to discard the log once no savepoint is outstanding.
  void Commit(size_t mark);
  /// Undoes everything back to savepoint `mark`.
  void Rollback(size_t mark);
  /// Declares the current state durable: clears the whole undo log.
  /// Invalidates all outstanding savepoints.
  void Checkpoint() { undo_log_.clear(); }
  /// Number of undo records currently held (for tests).
  size_t undo_log_size() const { return undo_log_.size(); }

  /// Creates an index-free scratch table (materialized probe results; the
  /// paper's "TAB_book"). The table lives until DropTempTable.
  Result<Table*> CreateTempTable(TableSchema schema);

  /// Bulk-loads materialized probe rows into temp table `name`: one arity
  /// check per row, no FK/unique/domain machinery (index-free temp tables
  /// can never trip either), one storage reserve. Rows are still undo-logged
  /// so savepoint rollback removes them while the table is alive.
  Status BulkLoadTemp(const std::string& name, std::vector<Row> rows);
  Status DropTempTable(const std::string& name);
  bool IsTempTable(const std::string& name) const {
    return temp_tables_.count(name) > 0;
  }

  /// Total live rows over all permanent tables (scale reporting in benches).
  size_t TotalRows() const;

 private:
  explicit Database(DatabaseSchema schema);

  enum class UndoKind { kInsert, kDelete, kUpdate };
  struct UndoRecord {
    UndoKind kind;
    std::string table;
    RowId row_id;
    Row old_row;  // for kDelete / kUpdate
  };

  Status CheckRowConstraints(const TableSchema& schema, const Row& row) const;
  Status CheckForeignKeysExist(const TableSchema& schema, const Row& row);
  // Recursive policy-driven delete. Appends to outcome.
  Status DeleteRowInternal(Table* table, RowId id, DeleteOutcome* outcome);

  Table* TableByName(const std::string& name);

  DatabaseSchema schema_;
  std::vector<Table> tables_;                       // aligned with schema_
  // GetTable sits on every probe's hot path: hashed lookups, not tree walks.
  // unordered_map also guarantees reference stability for the temp schemas
  // the Table objects point into.
  std::unordered_map<std::string, size_t> table_index_;
  std::unordered_map<std::string, std::unique_ptr<Table>> temp_tables_;
  std::unordered_map<std::string, TableSchema> temp_schemas_;
  std::vector<UndoRecord> undo_log_;
  EngineStats stats_;
};

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_DATABASE_H_
