// Read-only validation of a translated update sequence: simulates the ops
// against current data (plus a local overlay for intra-sequence effects)
// without touching the database, and reports whether executing them would
// succeed and how many rows they would affect.
//
// This is what lets check-only traffic run concurrently: a dry-run check
// (apply=false, outside strategy) validates its translation here against
// its context's pinned MVCC snapshot — no lock held, no execute/rollback
// in the writer lane. The simulation mirrors the engine's own constraint
// machinery (NOT NULL / CHECK / domain, FK existence, unique keys, FK
// delete policies) and produces the same failure statuses; sequences whose
// effects it cannot reproduce faithfully read-only are reported as
// *undecided*, and the caller falls back to execute-plus-rollback in the
// writer lane. Verdict equivalence with real execution is pinned by
// tests/service/concurrency_test.cc.
#ifndef UFILTER_RELATIONAL_DRYRUN_H_
#define UFILTER_RELATIONAL_DRYRUN_H_

#include <vector>

#include "relational/database.h"
#include "relational/sqlgen.h"

namespace ufilter::relational {

/// Outcome of a read-only op-sequence validation.
struct DryRunOutcome {
  /// False: the simulation could not guarantee equivalence with real
  /// execution (e.g. a delete/update following an insert in the same
  /// sequence); the caller must execute-and-rollback instead. The other
  /// fields are meaningless.
  bool decided = false;
  /// When decided: OK means executing the ops would succeed; otherwise the
  /// status real execution would have failed with.
  Status failure = Status::OK();
  /// When decided and OK: rows the ops would affect (cascades included),
  /// matching what ExecuteOps would have reported.
  int64_t rows_affected = 0;
};

/// Validates `ops` read-only against `db` (base tables) and `ctx` (temp
/// tables). Never mutates either.
DryRunOutcome DryRunOps(const Database& db, const ExecutionContext* ctx,
                        const std::vector<UpdateOp>& ops);

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_DRYRUN_H_
