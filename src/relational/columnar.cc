#include "relational/columnar.h"

#include <numeric>
#include <string_view>

namespace ufilter::relational {

// Table::columnar lives here rather than database.cc so the row-store layer
// keeps no compile-time dependency on the columnar module.
std::shared_ptr<const ColumnarTable> Table::columnar(
    AtomicEngineStats* stats) const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (columnar_ == nullptr) {
    columnar_ = ColumnarTable::Build(*this);
    if (stats != nullptr) stats->columnar_builds += 1;
  }
  return columnar_;
}

std::shared_ptr<const ColumnarTable> ColumnarTable::Build(const Table& table) {
  auto out = std::make_shared<ColumnarTable>();
  out->row_ids_ = table.AllRowIds();
  const size_t n = out->row_ids_.size();
  const auto& schema_cols = table.schema().columns();
  const size_t col_count = schema_cols.size();
  out->columns_.resize(col_count);
  const size_t bitmap_words = (n + 63) / 64;
  for (size_t c = 0; c < col_count; ++c) {
    Column& col = out->columns_[c];
    // Storage kind follows the schema domain, which base-table constraint
    // enforcement guarantees per cell: INT columns hold only ints, DOUBLE
    // columns hold ints or doubles (widened losslessly for predicate and
    // hash purposes — both are AsNumber/double-based), everything else is
    // pooled strings. NULLs go to the bitmap with a zero placeholder.
    col.type = schema_cols[c].type == ValueType::kInt     ? ValueType::kInt
               : schema_cols[c].type == ValueType::kDouble ? ValueType::kDouble
                                                           : ValueType::kString;
    col.nulls.assign(bitmap_words, 0);
    switch (col.type) {
      case ValueType::kInt:
        col.i64.reserve(n);
        break;
      case ValueType::kDouble:
        col.f64.reserve(n);
        break;
      default:
        col.str_offsets.reserve(n + 1);
        col.str_offsets.push_back(0);
        break;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const Row& row = *table.GetRow(out->row_ids_[i]);
    for (size_t c = 0; c < col_count; ++c) {
      Column& col = out->columns_[c];
      const Value& v = row[c];
      const bool null = v.is_null();
      if (null) {
        col.has_nulls = true;
        col.nulls[i >> 6] |= uint64_t{1} << (i & 63);
      }
      switch (col.type) {
        case ValueType::kInt:
          col.i64.push_back(null ? 0 : v.AsInt());
          break;
        case ValueType::kDouble:
          col.f64.push_back(null ? 0.0 : v.AsNumber());
          break;
        default:
          if (!null) col.pool.append(v.AsString());
          col.str_offsets.push_back(static_cast<uint32_t>(col.pool.size()));
          break;
      }
    }
  }
  for (Column& col : out->columns_) {
    if (!col.has_nulls) {
      col.nulls.clear();
      col.nulls.shrink_to_fit();
    }
  }
  return out;
}

void ColumnarTable::SelectAll(Sel* sel) const {
  sel->resize(row_ids_.size());
  std::iota(sel->begin(), sel->end(), 0u);
}

namespace {

/// EvalCompare outcome for a non-null column value against a non-null
/// literal of a *different* total-order rank (numeric=1 < string=2):
/// equality is impossible across ranks, order follows the ranks — the same
/// constant for every row, so cross-type filters never touch the data.
bool CrossRankMatch(CompareOp op, int col_rank, int lit_rank) {
  switch (op) {
    case CompareOp::kEq:
      return false;
    case CompareOp::kNe:
      return true;
    case CompareOp::kLt:
    case CompareOp::kLe:
      return col_rank < lit_rank;
    case CompareOp::kGt:
    case CompareOp::kGe:
      return lit_rank < col_rank;
  }
  return false;
}

inline bool BitSet(const std::vector<uint64_t>& bits, uint32_t pos) {
  return (bits[pos >> 6] >> (pos & 63)) & 1;
}

/// Compacts `sel` in place, keeping positions where `pred(pos)` holds and
/// the row is non-null. Branchless: every surviving slot is written
/// unconditionally and the write cursor advances only on keep — the shape
/// auto-vectorizers handle well.
template <typename Pred>
void CompactSel(const std::vector<uint64_t>& nulls, bool has_nulls, Pred pred,
                ColumnarTable::Sel* sel) {
  uint32_t* out = sel->data();
  size_t kept = 0;
  if (has_nulls) {
    for (uint32_t pos : *sel) {
      const bool keep = pred(pos) && !BitSet(nulls, pos);
      out[kept] = pos;
      kept += keep ? 1 : 0;
    }
  } else {
    for (uint32_t pos : *sel) {
      const bool keep = pred(pos);
      out[kept] = pos;
      kept += keep ? 1 : 0;
    }
  }
  sel->resize(kept);
}

/// Typed numeric filter: one tight loop per operator, comparing as double
/// exactly like the row path (Value::operator== / operator< both go through
/// AsNumber, so int columns must compare widened too; NaN outcomes also
/// match EvalCompare's `!(==)` / `< || ==` formulations).
template <typename T>
void FilterNumeric(const T* data, const std::vector<uint64_t>& nulls,
                   bool has_nulls, CompareOp op, double lit,
                   ColumnarTable::Sel* sel) {
  auto run = [&](auto cmp) {
    CompactSel(
        nulls, has_nulls,
        [data, lit, cmp](uint32_t pos) {
          return cmp(static_cast<double>(data[pos]), lit);
        },
        sel);
  };
  switch (op) {
    case CompareOp::kEq:
      run([](double a, double b) { return a == b; });
      break;
    case CompareOp::kNe:
      run([](double a, double b) { return a != b; });
      break;
    case CompareOp::kLt:
      run([](double a, double b) { return a < b; });
      break;
    case CompareOp::kLe:
      run([](double a, double b) { return a <= b; });
      break;
    case CompareOp::kGt:
      run([](double a, double b) { return a > b; });
      break;
    case CompareOp::kGe:
      run([](double a, double b) { return a >= b; });
      break;
  }
}

}  // namespace

void ColumnarTable::FilterColumn(int column, CompareOp op,
                                 const Value& literal, Sel* sel) const {
  if (sel->empty()) return;
  const Column& c = columns_[static_cast<size_t>(column)];
  if (literal.is_null()) {  // NULL matches nothing under any operator
    sel->clear();
    return;
  }
  const int col_rank = c.type == ValueType::kString ? 2 : 1;
  const int lit_rank = literal.is_string() ? 2 : 1;
  if (col_rank != lit_rank) {
    if (CrossRankMatch(op, col_rank, lit_rank)) {
      // Matches every non-null row: just strip NULLs.
      CompactSel(c.nulls, c.has_nulls, [](uint32_t) { return true; }, sel);
    } else {
      sel->clear();
    }
    return;
  }
  if (c.type == ValueType::kInt) {
    FilterNumeric(c.i64.data(), c.nulls, c.has_nulls, op, literal.AsNumber(),
                  sel);
  } else if (c.type == ValueType::kDouble) {
    FilterNumeric(c.f64.data(), c.nulls, c.has_nulls, op, literal.AsNumber(),
                  sel);
  } else {
    const std::string_view lit = literal.AsString();
    auto at = [&c](uint32_t pos) {
      return std::string_view(c.pool.data() + c.str_offsets[pos],
                              c.str_offsets[pos + 1] - c.str_offsets[pos]);
    };
    auto run = [&](auto cmp) {
      CompactSel(
          c.nulls, c.has_nulls,
          [&at, lit, cmp](uint32_t pos) { return cmp(at(pos), lit); }, sel);
    };
    switch (op) {
      case CompareOp::kEq:
        run([](std::string_view a, std::string_view b) { return a == b; });
        break;
      case CompareOp::kNe:
        run([](std::string_view a, std::string_view b) { return a != b; });
        break;
      case CompareOp::kLt:
        run([](std::string_view a, std::string_view b) { return a < b; });
        break;
      case CompareOp::kLe:
        run([](std::string_view a, std::string_view b) { return a <= b; });
        break;
      case CompareOp::kGt:
        run([](std::string_view a, std::string_view b) { return a > b; });
        break;
      case CompareOp::kGe:
        run([](std::string_view a, std::string_view b) { return a >= b; });
        break;
    }
  }
}

void ColumnarTable::HashJoinBuild(
    int column, std::unordered_multimap<size_t, RowId>* out) const {
  const Column& c = columns_[static_cast<size_t>(column)];
  const uint32_t n = static_cast<uint32_t>(row_ids_.size());
  // Hashes must stay consistent with Value::Hash so columnar-built tables
  // serve probes hashed from row-store Values: numerics hash as
  // hash<double>(AsNumber), strings as hash<string> — which C++17
  // guarantees equals hash<string_view> over the same characters.
  switch (c.type) {
    case ValueType::kInt: {
      const std::hash<double> h;
      for (uint32_t pos = 0; pos < n; ++pos) {
        if (c.has_nulls && BitSet(c.nulls, pos)) continue;  // NULL never joins
        out->emplace(h(static_cast<double>(c.i64[pos])), row_ids_[pos]);
      }
      break;
    }
    case ValueType::kDouble: {
      const std::hash<double> h;
      for (uint32_t pos = 0; pos < n; ++pos) {
        if (c.has_nulls && BitSet(c.nulls, pos)) continue;
        out->emplace(h(c.f64[pos]), row_ids_[pos]);
      }
      break;
    }
    default: {
      const std::hash<std::string_view> h;
      for (uint32_t pos = 0; pos < n; ++pos) {
        if (c.has_nulls && BitSet(c.nulls, pos)) continue;
        out->emplace(
            h(std::string_view(c.pool.data() + c.str_offsets[pos],
                               c.str_offsets[pos + 1] - c.str_offsets[pos])),
            row_ids_[pos]);
      }
      break;
    }
  }
}

}  // namespace ufilter::relational
