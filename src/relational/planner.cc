#include "relational/planner.h"

#include <unordered_map>
#include <utility>

namespace ufilter::relational {

const char* AccessPathName(AccessPath p) {
  switch (p) {
    case AccessPath::kUniqueLookup:
      return "unique-lookup";
    case AccessPath::kIndexLookup:
      return "index-lookup";
    case AccessPath::kInListUnion:
      return "in-list-union";
    case AccessPath::kHashJoin:
      return "hash-join";
    case AccessPath::kScan:
      return "scan";
  }
  return "?";
}

namespace {

/// Candidate access path for one table given the already-placed set.
struct AccessChoice {
  AccessPath path = AccessPath::kScan;
  double est = 0;
  int key_column = -1;
  bool key_is_literal = false;
  Value key_literal;
  int key_src_table = -1;
  int key_src_column = -1;
  int driver_filter = -1;  ///< index into filters when literal-driven
  int driver_join = -1;    ///< index into joins when join-driven
  std::vector<CompiledFilter> pins;  ///< kInListUnion per-branch pins
};

}  // namespace

Result<PhysicalPlan> Planner::Compile(const SelectQuery& query) {
  return CompileDisjunctive(query, {});
}

Result<PhysicalPlan> Planner::CompileDisjunctive(
    const SelectQuery& query,
    const std::vector<std::vector<FilterPredicate>>& query_branches) {
  PhysicalPlan plan;

  // ---- Name resolution: aliases and columns become integer slots. --------
  std::vector<const Table*> tables;
  std::unordered_map<std::string, int> alias_pos;
  for (const auto& tref : query.tables) {
    if (alias_pos.count(tref.alias) > 0) {
      return Status::InvalidArgument("duplicate alias '" + tref.alias + "'");
    }
    UFILTER_ASSIGN_OR_RETURN(const Table* t,
                             db_->GetTable(ctx_, tref.table));
    alias_pos[tref.alias] = static_cast<int>(tables.size());
    tables.push_back(t);
    plan.table_names.push_back(tref.table);
    plan.table_arities.push_back(t->schema().columns().size());
  }

  auto resolve = [&](const ColRef& ref) -> Result<std::pair<int, int>> {
    auto it = alias_pos.find(ref.alias);
    if (it == alias_pos.end()) {
      return Status::NotFound("unknown alias '" + ref.alias + "'");
    }
    int col = tables[static_cast<size_t>(it->second)]
                  ->schema()
                  .ColumnIndex(ref.column);
    if (col < 0) {
      return Status::NotFound("no column '" + ref.column + "' in alias '" +
                              ref.alias + "'");
    }
    return std::make_pair(it->second, col);
  };

  std::vector<CompiledJoin> joins;
  for (const JoinPredicate& j : query.joins) {
    UFILTER_ASSIGN_OR_RETURN(auto a, resolve(j.a));
    UFILTER_ASSIGN_OR_RETURN(auto b, resolve(j.b));
    joins.push_back({a.first, a.second, b.first, b.second, j.op});
  }
  std::vector<CompiledFilter> filters;
  for (const FilterPredicate& f : query.filters) {
    UFILTER_ASSIGN_OR_RETURN(auto c, resolve(f.col));
    filters.push_back({c.first, c.second, f.op, f.literal});
  }
  std::vector<std::vector<CompiledFilter>> branches;
  for (const std::vector<FilterPredicate>& branch : query_branches) {
    std::vector<CompiledFilter> rbranch;
    for (const FilterPredicate& f : branch) {
      UFILTER_ASSIGN_OR_RETURN(auto c, resolve(f.col));
      rbranch.push_back({c.first, c.second, f.op, f.literal});
    }
    branches.push_back(std::move(rbranch));
  }
  for (const ColRef& s : query.selects) {
    UFILTER_ASSIGN_OR_RETURN(auto c, resolve(s));
    plan.selects.push_back(c);
    plan.column_names.push_back(s.ToString());
  }
  plan.branch_count = branches.size();

  // ---- Greedy join ordering + per-level access-path selection. -----------
  const size_t table_count = tables.size();
  std::vector<char> placed(table_count, 0);

  // Best access path for `t` given the placed set, with its cardinality
  // estimate: unique-index equality => 1, non-unique index => bucket
  // estimate, else live_row_count (hash join or scan).
  auto ChooseAccess = [&](int t) {
    const Table* tab = tables[static_cast<size_t>(t)];
    const double live = static_cast<double>(tab->live_row_count());
    AccessChoice best;
    best.est = live;
    bool have_index_path = false;

    // Literal equality on an indexed column.
    for (size_t fi = 0; fi < filters.size(); ++fi) {
      const CompiledFilter& f = filters[fi];
      if (f.table != t || f.op != CompareOp::kEq) continue;
      if (!tab->HasIndexOnColumn(f.column)) continue;
      double est = tab->EstimateEqMatches(f.column, f.literal);
      if (have_index_path && est >= best.est) continue;
      best = AccessChoice{};
      best.path = tab->HasUniqueIndexOnColumn(f.column)
                      ? AccessPath::kUniqueLookup
                      : AccessPath::kIndexLookup;
      best.est = est;
      best.key_column = f.column;
      best.key_is_literal = true;
      best.key_literal = f.literal;
      best.driver_filter = static_cast<int>(fi);
      have_index_path = true;
    }
    // Equi-join against an already-placed table, this side indexed.
    for (size_t ji = 0; ji < joins.size(); ++ji) {
      const CompiledJoin& j = joins[ji];
      if (j.op != CompareOp::kEq) continue;
      int my_col, other_t, other_c;
      if (j.table_a == t && placed[static_cast<size_t>(j.table_b)]) {
        my_col = j.column_a;
        other_t = j.table_b;
        other_c = j.column_b;
      } else if (j.table_b == t && placed[static_cast<size_t>(j.table_a)]) {
        my_col = j.column_b;
        other_t = j.table_a;
        other_c = j.column_a;
      } else {
        continue;
      }
      if (!tab->HasIndexOnColumn(my_col)) continue;
      double est = tab->EstimateEqMatches(my_col);
      if (have_index_path && est >= best.est) continue;
      best = AccessChoice{};
      best.path = tab->HasUniqueIndexOnColumn(my_col)
                      ? AccessPath::kUniqueLookup
                      : AccessPath::kIndexLookup;
      best.est = est;
      best.key_column = my_col;
      best.key_src_table = other_t;
      best.key_src_column = other_c;
      best.driver_join = static_cast<int>(ji);
      have_index_path = true;
    }
    if (have_index_path) return best;

    // IN-list union: every branch pins this table with an equality on an
    // indexed column, so the scan becomes the union of the branches' index
    // lookups (how a merged probe keeps per-update index access).
    if (!branches.empty()) {
      std::vector<CompiledFilter> pins;
      pins.reserve(branches.size());
      double est = 0;
      bool all_pinned = true;
      for (const std::vector<CompiledFilter>& branch : branches) {
        const CompiledFilter* pin = nullptr;
        for (const CompiledFilter& f : branch) {
          if (f.table == t && f.op == CompareOp::kEq &&
              tab->HasIndexOnColumn(f.column)) {
            pin = &f;
            break;
          }
        }
        if (pin == nullptr) {
          all_pinned = false;
          break;
        }
        pins.push_back(*pin);
        est += tab->EstimateEqMatches(pin->column, pin->literal);
      }
      if (all_pinned) {
        best = AccessChoice{};
        best.path = AccessPath::kInListUnion;
        best.est = est;
        best.pins = std::move(pins);
        return best;
      }
    }

    // Hash join: equi-join to a placed table with no index on this side —
    // build a one-shot hash table over this table instead of re-scanning it
    // per outer row (the temp-table rescue).
    for (size_t ji = 0; ji < joins.size(); ++ji) {
      const CompiledJoin& j = joins[ji];
      if (j.op != CompareOp::kEq) continue;
      int my_col, other_t, other_c;
      if (j.table_a == t && placed[static_cast<size_t>(j.table_b)]) {
        my_col = j.column_a;
        other_t = j.table_b;
        other_c = j.column_b;
      } else if (j.table_b == t && placed[static_cast<size_t>(j.table_a)]) {
        my_col = j.column_b;
        other_t = j.table_a;
        other_c = j.column_a;
      } else {
        continue;
      }
      best = AccessChoice{};
      best.path = AccessPath::kHashJoin;
      best.est = live;
      best.key_column = my_col;
      best.key_src_table = other_t;
      best.key_src_column = other_c;
      best.driver_join = static_cast<int>(ji);
      return best;
    }

    return best;  // kScan, est = live_row_count
  };

  for (size_t step = 0; step < table_count; ++step) {
    int pick = -1;
    AccessChoice choice;
    for (size_t t = 0; t < table_count; ++t) {
      if (placed[t]) continue;
      AccessChoice c = ChooseAccess(static_cast<int>(t));
      if (pick < 0 || c.est < choice.est) {
        pick = static_cast<int>(t);
        choice = std::move(c);
      }
    }
    placed[static_cast<size_t>(pick)] = 1;

    PlanLevel level;
    level.table_pos = pick;
    level.path = choice.path;
    level.key_column = choice.key_column;
    level.key_is_literal = choice.key_is_literal;
    level.key_literal = choice.key_literal;
    level.key_src_table = choice.key_src_table;
    level.key_src_column = choice.key_src_column;
    level.branch_pins = std::move(choice.pins);
    level.estimated_rows = choice.est;
    level.columnar = (choice.path == AccessPath::kScan ||
                      choice.path == AccessPath::kHashJoin) &&
                     !ctx_->IsTempTable(
                         plan.table_names[static_cast<size_t>(pick)]);
    // Residual literal filters (probe-driving one excluded: verified).
    for (size_t fi = 0; fi < filters.size(); ++fi) {
      if (filters[fi].table != pick) continue;
      if (static_cast<int>(fi) == choice.driver_filter) continue;
      level.filters.push_back(filters[fi]);
    }
    // Joins whose later side binds here. The driving join of an index probe
    // is verified by the probe; a hash-join driver stays (collision check).
    for (size_t ji = 0; ji < joins.size(); ++ji) {
      const CompiledJoin& j = joins[ji];
      if (j.table_a != pick && j.table_b != pick) continue;
      int other = (j.table_a == pick) ? j.table_b : j.table_a;
      if (!placed[static_cast<size_t>(other)]) continue;
      if (static_cast<int>(ji) == choice.driver_join &&
          level.path != AccessPath::kHashJoin) {
        continue;
      }
      level.joins.push_back(j);
    }
    // All branch conjuncts on this table (pins included — IN-list
    // candidates are a cross-branch union, so membership is rechecked).
    level.branch_filters.resize(branches.size());
    for (size_t b = 0; b < branches.size(); ++b) {
      for (const CompiledFilter& f : branches[b]) {
        if (f.table == pick) level.branch_filters[b].push_back(f);
      }
    }
    plan.levels.push_back(std::move(level));
  }

  db_->stats().plans_compiled += 1;
  return plan;
}

}  // namespace ufilter::relational
