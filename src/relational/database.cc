#include "relational/database.h"

#include <algorithm>

#include "common/strings.h"
#include "relational/wal.h"

namespace ufilter::relational {

namespace {

size_t HashOneValue(const Value& v) {
  return static_cast<size_t>(0x345678) * 1000003 ^ v.Hash();
}

}  // namespace

size_t Table::HashRowValues(const Row& row, const std::vector<int>& cols) {
  size_t h = 0x345678;
  for (int c : cols) {
    h = h * 1000003 ^ row[static_cast<size_t>(c)].Hash();
  }
  return h;
}

bool Table::RowValuesEqual(const Row& a, const Row& b,
                           const std::vector<int>& cols) {
  for (int c : cols) {
    if (!(a[static_cast<size_t>(c)] == b[static_cast<size_t>(c)])) {
      return false;
    }
  }
  return true;
}

bool Table::AnyValueNull(const Row& row, const std::vector<int>& cols) {
  for (int c : cols) {
    if (row[static_cast<size_t>(c)].is_null()) return true;
  }
  return false;
}

// ---------------------------------------------------------------- Table ---

Table::Table(const TableSchema* schema) : schema_(schema) {
  // Unique index over the primary key.
  if (!schema_->primary_key().empty()) {
    Index idx;
    idx.unique = true;
    for (const std::string& c : schema_->primary_key()) {
      idx.column_idx.push_back(schema_->ColumnIndex(c));
    }
    indexes_.push_back(std::move(idx));
  }
  // Unique index per UNIQUE column.
  for (size_t i = 0; i < schema_->columns().size(); ++i) {
    if (schema_->columns()[i].unique) {
      Index idx;
      idx.unique = true;
      idx.column_idx.push_back(static_cast<int>(i));
      indexes_.push_back(std::move(idx));
    }
  }
  // Non-unique index per foreign key column set.
  for (const ForeignKey& fk : schema_->foreign_keys()) {
    Index idx;
    idx.unique = false;
    for (const std::string& c : fk.columns) {
      idx.column_idx.push_back(schema_->ColumnIndex(c));
    }
    // Skip if it duplicates the PK index column set.
    bool dup = false;
    for (const Index& existing : indexes_) {
      if (existing.column_idx == idx.column_idx) dup = true;
    }
    if (!dup) indexes_.push_back(std::move(idx));
  }
}

const Row* Table::GetRow(RowId id) const {
  if (id < 0 || static_cast<size_t>(id) >= rows_.size()) return nullptr;
  const auto& slot = rows_[static_cast<size_t>(id)];
  return slot.has_value() ? &*slot : nullptr;
}

std::vector<RowId> Table::AllRowIds() const {
  std::vector<RowId> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].has_value()) out.push_back(static_cast<RowId>(i));
  }
  return out;
}

const Table::Index* Table::FindIndexFor(const std::string& column) const {
  return FindIndexForColumn(schema_->ColumnIndex(column));
}

const Table::Index* Table::FindIndexForColumn(int column_idx) const {
  if (column_idx < 0) return nullptr;
  const Index* found = nullptr;
  for (const Index& idx : indexes_) {
    if (idx.column_idx.size() != 1 || idx.column_idx[0] != column_idx) {
      continue;
    }
    // Prefer unique indexes (most selective).
    if (idx.unique) return &idx;
    if (found == nullptr) found = &idx;
  }
  return found;
}

bool Table::HasIndexOn(const std::string& column) const {
  return FindIndexFor(column) != nullptr;
}

bool Table::HasIndexOnColumn(int column_idx) const {
  return FindIndexForColumn(column_idx) != nullptr;
}

bool Table::HasUniqueIndexOnColumn(int column_idx) const {
  const Index* idx = FindIndexForColumn(column_idx);
  return idx != nullptr && idx->unique;
}

double Table::EstimateEqMatches(int column_idx) const {
  const Index* idx = FindIndexForColumn(column_idx);
  if (idx == nullptr) return static_cast<double>(live_count_);
  if (idx->unique) return 1.0;
  if (idx->distinct_keys == 0) return 0.0;
  return static_cast<double>(idx->map.size()) /
         static_cast<double>(idx->distinct_keys);
}

double Table::EstimateEqMatches(int column_idx, const Value& literal) const {
  const Index* idx = FindIndexForColumn(column_idx);
  if (idx == nullptr) return static_cast<double>(live_count_);
  return static_cast<double>(idx->map.count(HashOneValue(literal)));
}

void Table::ProbeIndexEq(int column_idx, const Value& v,
                         std::vector<RowId>* out,
                         AtomicEngineStats* stats) const {
  const Index* idx = FindIndexForColumn(column_idx);
  if (idx == nullptr) return;
  if (stats != nullptr) stats->index_lookups++;
  auto range = idx->map.equal_range(HashOneValue(v));
  for (auto it = range.first; it != range.second; ++it) {
    const Row* row = GetRow(it->second);
    if (row != nullptr && (*row)[static_cast<size_t>(column_idx)] == v) {
      out->push_back(it->second);
    }
  }
}

std::vector<RowId> Table::Find(const std::vector<ColumnPredicate>& preds,
                               AtomicEngineStats* stats) const {
  // Drive with a single-column index on an equality predicate, preferring a
  // unique index (most selective: at most one candidate) over the first
  // non-unique hit.
  const Index* driver = nullptr;
  const ColumnPredicate* driver_pred = nullptr;
  for (const ColumnPredicate& p : preds) {
    if (p.op != CompareOp::kEq) continue;
    const Index* idx = FindIndexFor(p.column);
    if (idx == nullptr) continue;
    if (driver == nullptr || (idx->unique && !driver->unique)) {
      driver = idx;
      driver_pred = &p;
      if (driver->unique) break;
    }
  }

  std::vector<RowId> candidates;
  if (driver != nullptr) {
    if (stats != nullptr) stats->index_lookups++;
    // Single-column driver: hash the literal directly, no probe-row alloc.
    const size_t col = static_cast<size_t>(driver->column_idx[0]);
    auto range = driver->map.equal_range(HashOneValue(driver_pred->literal));
    for (auto it = range.first; it != range.second; ++it) {
      const Row* row = GetRow(it->second);
      if (row != nullptr && (*row)[col] == driver_pred->literal) {
        candidates.push_back(it->second);
      }
    }
  } else {
    candidates = AllRowIds();
    if (stats != nullptr) stats->rows_scanned += candidates.size();
  }

  std::vector<RowId> out;
  for (RowId id : candidates) {
    const Row* row = GetRow(id);
    if (row == nullptr) continue;
    bool match = true;
    for (const ColumnPredicate& p : preds) {
      int c = schema_->ColumnIndex(p.column);
      if (c < 0 ||
          !EvalCompare((*row)[static_cast<size_t>(c)], p.op, p.literal)) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(id);
  }
  // A unique driver yields at most one candidate — already in order.
  if (!(driver != nullptr && driver->unique && out.size() <= 1)) {
    std::sort(out.begin(), out.end());
  }
  return out;
}

void Table::BulkLoad(std::vector<Row> rows, std::vector<RowId>* ids) {
  rows_.reserve(rows_.size() + rows.size());
  if (ids != nullptr) ids->reserve(ids->size() + rows.size());
  for (Row& row : rows) {
    RowId id = AppendRow(std::move(row));
    if (ids != nullptr) ids->push_back(id);
  }
}

RowId Table::AppendRow(Row row) {
  rows_.emplace_back(std::move(row));
  RowId id = static_cast<RowId>(rows_.size() - 1);
  IndexInsert(id, *rows_.back());
  ++live_count_;
  return id;
}

void Table::EraseRow(RowId id) {
  auto& slot = rows_[static_cast<size_t>(id)];
  if (!slot.has_value()) return;
  IndexErase(id, *slot);
  slot.reset();
  --live_count_;
}

void Table::RestoreRow(RowId id, Row row) {
  auto& slot = rows_[static_cast<size_t>(id)];
  slot = std::move(row);
  IndexInsert(id, *slot);
  ++live_count_;
}

void Table::OverwriteRow(RowId id, Row row) {
  auto& slot = rows_[static_cast<size_t>(id)];
  if (slot.has_value()) IndexErase(id, *slot);
  slot = std::move(row);
  IndexInsert(id, *slot);
}

void Table::PutSlotForRecovery(RowId id, Row row) {
  const size_t slot_idx = static_cast<size_t>(id);
  if (slot_idx >= rows_.size()) rows_.resize(slot_idx + 1);
  auto& slot = rows_[slot_idx];
  if (slot.has_value()) return;  // caller validated; never clobber
  slot = std::move(row);
  IndexInsert(id, *slot);
  ++live_count_;
}

size_t Table::IndexKeyHash(const Index& index, const Row& row) const {
  return HashRowValues(row, index.column_idx);
}

void Table::IndexInsert(RowId id, const Row& row) {
  for (Index& idx : indexes_) {
    size_t h = IndexKeyHash(idx, row);
    if (idx.map.find(h) == idx.map.end()) ++idx.distinct_keys;
    idx.map.emplace(h, id);
  }
}

void Table::IndexErase(RowId id, const Row& row) {
  for (Index& idx : indexes_) {
    size_t h = IndexKeyHash(idx, row);
    auto range = idx.map.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == id) {
        idx.map.erase(it);
        break;
      }
    }
    if (idx.map.find(h) == idx.map.end() && idx.distinct_keys > 0) {
      --idx.distinct_keys;
    }
  }
}

RowId Table::FindUniqueConflict(const Row& row, RowId self) const {
  for (const Index& idx : indexes_) {
    if (!idx.unique) continue;
    if (AnyValueNull(row, idx.column_idx)) continue;  // NULL never conflicts
    auto range = idx.map.equal_range(HashRowValues(row, idx.column_idx));
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == self) continue;
      const Row* other = GetRow(it->second);
      if (other != nullptr && RowValuesEqual(*other, row, idx.column_idx)) {
        return it->second;
      }
    }
  }
  return -1;
}

// ------------------------------------------------------------- Database ---

Database::Database(DatabaseSchema schema) : schema_(std::move(schema)) {
  root_context_ = std::make_unique<ExecutionContext>(this);
  tables_.reserve(schema_.tables().size());
  for (size_t i = 0; i < schema_.tables().size(); ++i) {
    tables_.push_back(std::make_shared<Table>(&schema_.tables()[i]));
    table_index_[schema_.tables()[i].name()] = i;
  }
}

// ------------------------------------------------- MVCC: epochs/snapshots ---

Snapshot::~Snapshot() {
  // Reclaimed table versions are destroyed after the lock is released (a
  // big table's rows + indexes take a while to free; snapshot opens must
  // not wait behind that).
  Database::Graveyard graveyard;
  {
    std::lock_guard<std::mutex> lock(db_->snapshot_mu_);
    auto it = db_->pinned_epochs_.find(version_->epoch);
    if (it != db_->pinned_epochs_.end()) db_->pinned_epochs_.erase(it);
    // Drop the version reference before GC so use counts reflect the
    // unpin. (This frees at most the small DatabaseVersion struct: any
    // table it exclusively kept alive is held by retired_ too, and goes
    // through the graveyard.)
    version_.reset();
    db_->CollectRetiredLocked(&graveyard);
  }
}

const Table* Snapshot::FindTable(const std::string& name) const {
  auto it = db_->table_index_.find(name);
  if (it == db_->table_index_.end()) return nullptr;
  return version_->tables[it->second].get();
}

void Database::BuildVersionLocked(uint64_t epoch) {
  auto version = std::make_shared<DatabaseVersion>();
  version->epoch = epoch;
  version->tables.assign(tables_.begin(), tables_.end());
  published_ = std::move(version);
  live_dirty_ = false;
}

Result<uint64_t> Database::PublishLocked(Graveyard* graveyard) {
  if (commit_epoch_ >= kMaxCommitEpoch) {
    return Status::InvalidArgument(
        "commit epoch space exhausted (epoch " +
        std::to_string(commit_epoch_) +
        "); no further versions can be published");
  }
  ++commit_epoch_;
  BuildVersionLocked(commit_epoch_);
  if (wal_enabled_.load(std::memory_order_relaxed)) {
    // The epoch's redo ops become its WAL record. Only enqueued here — the
    // file write and fsync happen in FlushWalPending, after the publisher
    // releases snapshot_mu_, so no snapshot open ever waits on the disk.
    wal_pending_.emplace_back(commit_epoch_, std::move(wal_redo_));
    wal_redo_.clear();
  }
  CollectRetiredLocked(graveyard);
  return commit_epoch_;
}

void Database::CollectRetiredLocked(Graveyard* graveyard) {
  size_t kept = 0;
  for (RetiredVersion& retired : retired_) {
    // Reclaimable once the retention list holds the last reference: every
    // other reference — the published version that contained it, any
    // pinned snapshot's DatabaseVersion — is created and released under
    // snapshot_mu_, so use_count()==1 here proves no snapshot can still
    // reach it (raw Table pointers are only ever derived from a live pin).
    // This must NOT additionally wait for the pinned-epoch horizon: a
    // long-lived pin at epoch E only keeps epoch E's own tables alive, and
    // versions superseded after E would otherwise accumulate unboundedly
    // while that pin stays open.
    if (retired.table.use_count() == 1) {
      stats_.versions_retired++;
      graveyard->push_back(std::move(retired.table));
      continue;
    }
    retired_[kept++] = std::move(retired);
  }
  retired_.resize(kept);
}

void Database::EnsurePublishedLocked(Graveyard* graveyard) {
  if (published_ != nullptr) return;
  (void)PublishLocked(graveyard);
  if (published_ == nullptr) {
    // Epoch space exhausted before anything was ever published (reachable
    // only through the test hook): pin the live state under the terminal
    // epoch without consuming it. Ordering still holds — pins are <=
    // commit_epoch_ and later publishes keep failing.
    BuildVersionLocked(commit_epoch_);
  }
}

std::shared_ptr<const Snapshot> Database::OpenSnapshot() {
  Graveyard graveyard;  // declared first: destroyed after the lock releases
  std::shared_ptr<const Snapshot> snapshot;
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    const bool had_published = published_ != nullptr;
    const uint64_t epoch_before = commit_epoch_;
    EnsurePublishedLocked(&graveyard);
    if (live_dirty_ && writer_depth_ == 0) {
      // Publish-on-demand from quiescence so the snapshot sees current data.
      // On epoch exhaustion the snapshot pins the last published version.
      (void)PublishLocked(&graveyard);
    }
    // Flush only when this call itself published: a reader arriving in the
    // window between a writer's publish and the writer's flush must not be
    // drafted into paying for that writer's file write / fsync.
    flush = (!had_published || commit_epoch_ != epoch_before) &&
            WalFlushNeededLocked();
    pinned_epochs_.insert(published_->epoch);
    stats_.snapshots_opened++;
    snapshot = std::shared_ptr<const Snapshot>(new Snapshot(this, published_));
  }
  if (flush) FlushWalPending();
  return snapshot;
}

Result<uint64_t> Database::PublishVersion() {
  Graveyard graveyard;  // declared first: destroyed after the lock releases
  std::unique_lock<std::mutex> lock(snapshot_mu_);
  Result<uint64_t> result = PublishLocked(&graveyard);
  const bool flush = WalFlushNeededLocked();
  lock.unlock();
  if (flush) FlushWalPending();
  return result;
}

Database::WriterGuard::WriterGuard(Database* db) : db_(db) {
  Database::Graveyard graveyard;
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(db_->snapshot_mu_);
    // Pin down the pre-transaction state first: a snapshot opened while
    // this writer is mid-flight must never see a half-applied sequence, and
    // unpublished mutations from *before* the guard must be committed now —
    // otherwise an AbandonPublish release would silently discard them from
    // every future snapshot (its premise is "live == published at entry").
    db_->EnsurePublishedLocked(&graveyard);
    if (db_->writer_depth_ == 0 && db_->live_dirty_) {
      (void)db_->PublishLocked(&graveyard);
    }
    ++db_->writer_depth_;
    flush = db_->WalFlushNeededLocked();
  }
  if (flush) db_->FlushWalPending();
}

Database::WriterGuard::~WriterGuard() {
  Database::Graveyard graveyard;
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(db_->snapshot_mu_);
    if (--db_->writer_depth_ == 0 && db_->live_dirty_) {
      if (abandon_publish_) {
        // The transaction rolled everything back: the live tables are
        // byte-identical to the published version, so committing a new
        // epoch would only churn versions and GC for nothing.
        db_->live_dirty_ = false;
        db_->CollectRetiredLocked(&graveyard);
      } else {
        // Epoch exhaustion keeps the last published version pinned-readable;
        // mutations remain visible to live (writer-lane) reads only.
        (void)db_->PublishLocked(&graveyard);
      }
    }
    flush = db_->WalFlushNeededLocked();
  }
  if (flush) db_->FlushWalPending();
}

uint64_t Database::commit_epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return commit_epoch_;
}

uint64_t Database::oldest_pinned_epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return pinned_epochs_.empty() ? commit_epoch_ : *pinned_epochs_.begin();
}

size_t Database::retained_version_count() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return retired_.size();
}

void Database::set_commit_epoch_for_testing(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  commit_epoch_ = epoch;
}

Table* Database::WritableBaseTable(size_t idx) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  live_dirty_ = true;
  std::shared_ptr<Table>& live = tables_[idx];
  if (live.use_count() > 1) {
    // A published version / pinned snapshot still references this table
    // version: retire it and mutate a copy (copy-on-write). Snapshot
    // readers keep probing the old version lock-free.
    retired_.push_back({commit_epoch_, live});
    live = std::make_shared<Table>(*live);
  }
  return live.get();
}

Status Database::RefuseIfPinned(const ExecutionContext* ctx,
                                const std::string& name) const {
  if (ctx == nullptr || ctx->read_snapshot() == nullptr) return Status::OK();
  if (ctx->IsTempTable(name)) return Status::OK();  // session scratch
  if (table_index_.count(name) == 0) return Status::OK();  // NotFound later
  return Status::InvalidArgument(
      "base table '" + name +
      "' is read-only: the context is pinned to a snapshot (epoch " +
      std::to_string(ctx->read_snapshot()->epoch()) + ")");
}

Result<Table*> Database::WritableTable(ExecutionContext* ctx,
                                       const std::string& name) {
  if (ctx == nullptr) ctx = root_context_.get();
  Table* temp = ctx->FindTempTable(name);
  if (temp != nullptr) return temp;  // session-local, never versioned
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  UFILTER_RETURN_NOT_OK(RefuseIfPinned(ctx, name));
  return WritableBaseTable(it->second);
}

Result<std::unique_ptr<Database>> Database::Create(DatabaseSchema schema) {
  UFILTER_RETURN_NOT_OK(schema.Validate());
  return std::unique_ptr<Database>(new Database(std::move(schema)));
}

Table* Database::TableByName(const ExecutionContext* ctx,
                             const std::string& name) {
  auto it = table_index_.find(name);
  if (it != table_index_.end()) {
    if (ctx != nullptr && ctx->read_snapshot() != nullptr) {
      // Snapshot-pinned context: every base-table read resolves to the
      // pinned epoch's immutable version. Mutation paths never come through
      // here (WritableTable refuses pinned contexts), so handing back a
      // non-const pointer to callers that only read is safe.
      return const_cast<Table*>(ctx->read_snapshot()->TableAt(it->second));
    }
    return tables_[it->second].get();
  }
  if (ctx != nullptr) {
    // Sessions only read their own temp tables; the const_cast hands the
    // session back mutable access to a table it created itself.
    return const_cast<Table*>(ctx->FindTempTable(name));
  }
  return nullptr;
}

const Table* Database::TableByName(const ExecutionContext* ctx,
                                   const std::string& name) const {
  return const_cast<Database*>(this)->TableByName(ctx, name);
}

Result<Table*> Database::GetTable(const ExecutionContext* ctx,
                                  const std::string& name) {
  Table* t = TableByName(ctx, name);
  if (t == nullptr) return Status::NotFound("no table '" + name + "'");
  return t;
}

Result<const Table*> Database::GetTable(const ExecutionContext* ctx,
                                        const std::string& name) const {
  const Table* t = TableByName(ctx, name);
  if (t == nullptr) return Status::NotFound("no table '" + name + "'");
  return t;
}

Status Database::CheckRowConstraints(const TableSchema& schema,
                                     const Row& row) const {
  if (row.size() != schema.columns().size()) {
    return Status::InvalidArgument(
        "row arity mismatch for table '" + schema.name() + "': got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema.columns().size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema.columns()[i];
    const Value& v = row[i];
    if (col.not_null && v.is_null()) {
      return Status::ConstraintViolation("column '" + schema.name() + "." +
                                         col.name + "' is NOT NULL");
    }
    if (!v.is_null()) {
      // Domain check: strings into numeric columns are rejected; ints widen
      // into double columns.
      bool domain_ok = true;
      switch (col.type) {
        case ValueType::kInt:
          domain_ok = v.is_int();
          break;
        case ValueType::kDouble:
          domain_ok = v.is_int() || v.is_double();
          break;
        case ValueType::kString:
          domain_ok = v.is_string();
          break;
        case ValueType::kNull:
          domain_ok = false;
          break;
      }
      if (!domain_ok) {
        return Status::ConstraintViolation(
            "value " + v.ToSqlLiteral() + " out of domain " +
            ValueTypeName(col.type) + " for '" + schema.name() + "." +
            col.name + "'");
      }
    }
    for (const CheckPredicate& chk : col.checks) {
      if (!chk.Admits(v)) {
        return Status::ConstraintViolation(
            "CHECK (" + chk.ToString(schema.name() + "." + col.name) +
            ") violated by " + v.ToSqlLiteral());
      }
    }
  }
  return Status::OK();
}

Status Database::CheckForeignKeysExist(const TableSchema& schema,
                                       const Row& row) const {
  for (const ForeignKey& fk : schema.foreign_keys()) {
    std::vector<ColumnPredicate> preds;
    bool any_null = false;
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      int c = schema.ColumnIndex(fk.columns[i]);
      const Value& v = row[static_cast<size_t>(c)];
      if (v.is_null()) {
        any_null = true;
        break;
      }
      preds.push_back({fk.ref_columns[i], CompareOp::kEq, v});
    }
    if (any_null) continue;  // NULL FKs reference nothing
    UFILTER_ASSIGN_OR_RETURN(const Table* ref, GetTable(fk.ref_table));
    if (ref->Find(preds, &stats_).empty()) {
      std::vector<std::string> vals;
      for (const auto& p : preds) vals.push_back(p.literal.ToSqlLiteral());
      return Status::ConstraintViolation(
          "FK violation: " + schema.name() + " -> " + fk.ref_table + " (" +
          Join(vals, ", ") + ") has no referenced row");
    }
  }
  return Status::OK();
}

Result<RowId> Database::Insert(ExecutionContext* ctx,
                               const std::string& table, Row row) {
  if (ctx == nullptr) ctx = root_context_.get();
  UFILTER_RETURN_NOT_OK(RefuseIfPinned(ctx, table));
  // Constraint checks run against the live (read-resolved) table; the
  // copy-on-write resolution is deferred until the row is actually
  // appended, so a rejected insert never clones anything.
  UFILTER_ASSIGN_OR_RETURN(const Table* probe, GetTable(ctx, table));
  UFILTER_RETURN_NOT_OK(CheckRowConstraints(probe->schema(), row));
  if (!ctx->IsTempTable(table)) {
    UFILTER_RETURN_NOT_OK(CheckForeignKeysExist(probe->schema(), row));
  }
  RowId conflict = probe->FindUniqueConflict(row, -1);
  if (conflict >= 0) {
    return Status::ConstraintViolation("unique key violation on table '" +
                                       table + "'");
  }
  UFILTER_ASSIGN_OR_RETURN(Table * t, WritableTable(ctx, table));
  RowId id = t->AppendRow(std::move(row));
  ctx->undo_log_.push_back(
      {ExecutionContext::UndoKind::kInsert, table, id, {}});
  stats_.rows_inserted++;
  stats_.undo_records++;
  if (!ctx->IsTempTable(table)) {
    CaptureRedo(ctx, RedoOp::Kind::kInsert, table, id, t->GetRow(id));
  }
  return id;
}

Result<RowId> Database::InsertValues(
    ExecutionContext* ctx, const std::string& table,
    const std::map<std::string, Value>& values) {
  UFILTER_ASSIGN_OR_RETURN(Table * t, GetTable(ctx, table));
  Row row(t->schema().columns().size());
  for (const auto& [name, value] : values) {
    int c = t->schema().ColumnIndex(name);
    if (c < 0) {
      return Status::NotFound("no column '" + name + "' in '" + table + "'");
    }
    row[static_cast<size_t>(c)] = value;
  }
  return Insert(ctx, table, std::move(row));
}

Status Database::DeleteRowInternal(
    ExecutionContext* ctx, Table* table, RowId id, DeleteOutcome* outcome,
    std::unordered_map<std::string, Table*>* writable) {
  // Per-transaction memo of copy-on-write resolutions: the writable pointer
  // is stable once resolved, and re-taking the global snapshot mutex per
  // cascaded row would contend with concurrent snapshot opens.
  auto writable_ref = [&](const std::string& name) -> Result<Table*> {
    auto cached = writable->find(name);
    if (cached != writable->end()) return cached->second;
    UFILTER_ASSIGN_OR_RETURN(Table * t, WritableTable(ctx, name));
    writable->emplace(name, t);
    return t;
  };
  const Row* row_ptr = table->GetRow(id);
  if (row_ptr == nullptr) return Status::OK();
  Row row = *row_ptr;  // copy before erasing
  const std::string& table_name = table->schema().name();

  // Handle referencing tables first (policy-driven).
  for (const TableSchema& other : schema_.tables()) {
    for (const ForeignKey& fk : other.foreign_keys()) {
      if (fk.ref_table != table_name) continue;
      std::vector<ColumnPredicate> preds;
      bool any_null = false;
      for (size_t i = 0; i < fk.columns.size(); ++i) {
        int rc = table->schema().ColumnIndex(fk.ref_columns[i]);
        const Value& v = row[static_cast<size_t>(rc)];
        if (v.is_null()) any_null = true;
        preds.push_back({fk.columns[i], CompareOp::kEq, v});
      }
      if (any_null) continue;
      // Find runs against the live version; the clone (if any) happens only
      // when a policy branch below actually mutates the referencing table —
      // the kRestrict rejection must not copy-on-write anything.
      UFILTER_ASSIGN_OR_RETURN(Table * probe_table,
                               GetTable(ctx, other.name()));
      std::vector<RowId> referencing = probe_table->Find(preds, &stats_);
      if (referencing.empty()) continue;
      switch (fk.on_delete) {
        case DeletePolicy::kRestrict:
          return Status::ConstraintViolation(
              "delete from '" + table_name + "' restricted: referenced by '" +
              other.name() + "'");
        case DeletePolicy::kCascade: {
          UFILTER_ASSIGN_OR_RETURN(Table * ref_table,
                                   writable_ref(other.name()));
          for (RowId rid : referencing) {
            UFILTER_RETURN_NOT_OK(
                DeleteRowInternal(ctx, ref_table, rid, outcome, writable));
          }
          break;
        }
        case DeletePolicy::kSetNull: {
          UFILTER_ASSIGN_OR_RETURN(Table * ref_table,
                                   writable_ref(other.name()));
          for (RowId rid : referencing) {
            const Row* old = ref_table->GetRow(rid);
            if (old == nullptr) continue;
            Row updated = *old;
            bool possible = true;
            for (const std::string& c : fk.columns) {
              int ci = other.ColumnIndex(c);
              if (other.columns()[static_cast<size_t>(ci)].not_null) {
                possible = false;
              }
              updated[static_cast<size_t>(ci)] = Value::Null();
            }
            if (!possible) {
              // SET NULL impossible on NOT NULL FK; fall back to cascade to
              // preserve integrity.
              UFILTER_RETURN_NOT_OK(
                  DeleteRowInternal(ctx, ref_table, rid, outcome, writable));
              continue;
            }
            ctx->undo_log_.push_back(
                {ExecutionContext::UndoKind::kUpdate, other.name(), rid,
                 *old});
            stats_.undo_records++;
            ref_table->OverwriteRow(rid, std::move(updated));
            stats_.rows_updated++;
            outcome->nulled_rows++;
            // Referencing tables are always base tables (schema-declared
            // FKs), so every SET NULL rewrite is redo-logged.
            CaptureRedo(ctx, RedoOp::Kind::kUpdate, other.name(), rid,
                        ref_table->GetRow(rid));
          }
          break;
        }
      }
    }
  }

  // The row may have been cascade-deleted through a cycle; re-check.
  if (table->GetRow(id) == nullptr) return Status::OK();
  ctx->undo_log_.push_back(
      {ExecutionContext::UndoKind::kDelete, table_name, id, row});
  stats_.undo_records++;
  if (!ctx->IsTempTable(table_name)) {
    CaptureRedo(ctx, RedoOp::Kind::kDelete, table_name, id, nullptr);
  }
  table->EraseRow(id);
  stats_.rows_deleted++;
  outcome->deleted_rows++;
  outcome->affected.push_back({table_name, id});
  return Status::OK();
}

Result<DeleteOutcome> Database::DeleteWhere(
    ExecutionContext* ctx, const std::string& table,
    const std::vector<ColumnPredicate>& preds) {
  if (ctx == nullptr) ctx = root_context_.get();
  UFILTER_RETURN_NOT_OK(RefuseIfPinned(ctx, table));
  // Match against the live table first: a delete that hits nothing must
  // not copy-on-write anything (RowIds survive the clone below).
  UFILTER_ASSIGN_OR_RETURN(const Table* probe, GetTable(ctx, table));
  std::vector<RowId> matches = probe->Find(preds, &stats_);
  DeleteOutcome outcome;
  if (matches.empty()) return outcome;
  UFILTER_ASSIGN_OR_RETURN(Table * t, WritableTable(ctx, table));
  std::unordered_map<std::string, Table*> writable{{table, t}};
  size_t mark = ctx->Begin();
  for (RowId id : matches) {
    Status st = DeleteRowInternal(ctx, t, id, &outcome, &writable);
    if (!st.ok()) {
      ctx->Rollback(mark);
      return st;
    }
  }
  ctx->Commit(mark);
  return outcome;
}

Result<DeleteOutcome> Database::DeleteRow(ExecutionContext* ctx,
                                          const std::string& table, RowId id) {
  if (ctx == nullptr) ctx = root_context_.get();
  UFILTER_RETURN_NOT_OK(RefuseIfPinned(ctx, table));
  UFILTER_ASSIGN_OR_RETURN(const Table* probe, GetTable(ctx, table));
  DeleteOutcome outcome;
  if (probe->GetRow(id) == nullptr) return outcome;  // nothing to delete
  UFILTER_ASSIGN_OR_RETURN(Table * t, WritableTable(ctx, table));
  std::unordered_map<std::string, Table*> writable{{table, t}};
  size_t mark = ctx->Begin();
  Status st = DeleteRowInternal(ctx, t, id, &outcome, &writable);
  if (!st.ok()) {
    ctx->Rollback(mark);
    return st;
  }
  ctx->Commit(mark);
  return outcome;
}

Result<int64_t> Database::UpdateWhere(
    ExecutionContext* ctx, const std::string& table,
    const std::map<std::string, Value>& assignments,
    const std::vector<ColumnPredicate>& preds) {
  if (ctx == nullptr) ctx = root_context_.get();
  UFILTER_RETURN_NOT_OK(RefuseIfPinned(ctx, table));
  UFILTER_ASSIGN_OR_RETURN(const Table* probe, GetTable(ctx, table));
  const TableSchema& schema = probe->schema();
  for (const auto& [name, value] : assignments) {
    (void)value;
    if (!schema.HasColumn(name)) {
      return Status::NotFound("no column '" + name + "' in '" + table + "'");
    }
  }
  // Zero-match updates clone nothing (RowIds survive the clone below).
  std::vector<RowId> matches = probe->Find(preds, &stats_);
  if (matches.empty()) return 0;
  UFILTER_ASSIGN_OR_RETURN(Table * t, WritableTable(ctx, table));
  int64_t updated = 0;
  size_t mark = ctx->Begin();
  for (RowId id : matches) {
    const Row* old = t->GetRow(id);
    if (old == nullptr) continue;
    Row next = *old;
    for (const auto& [name, value] : assignments) {
      next[static_cast<size_t>(schema.ColumnIndex(name))] = value;
    }
    Status st = CheckRowConstraints(schema, next);
    if (st.ok() && !ctx->IsTempTable(table)) {
      st = CheckForeignKeysExist(schema, next);
    }
    if (st.ok()) {
      RowId conflict = t->FindUniqueConflict(next, id);
      if (conflict >= 0) {
        st = Status::ConstraintViolation("unique key violation on table '" +
                                         table + "'");
      }
    }
    if (!st.ok()) {
      ctx->Rollback(mark);
      return st;
    }
    ctx->undo_log_.push_back(
        {ExecutionContext::UndoKind::kUpdate, table, id, *old});
    stats_.undo_records++;
    t->OverwriteRow(id, std::move(next));
    stats_.rows_updated++;
    if (!ctx->IsTempTable(table)) {
      CaptureRedo(ctx, RedoOp::Kind::kUpdate, table, id, t->GetRow(id));
    }
    ++updated;
  }
  ctx->Commit(mark);
  return updated;
}

void Database::CaptureRedo(const ExecutionContext* ctx, RedoOp::Kind kind,
                           const std::string& table, RowId id,
                           const Row* row) {
  if (!wal_enabled_.load(std::memory_order_acquire)) return;
  RedoOp op;
  op.kind = kind;
  op.table = table;
  op.row_id = id;
  if (row != nullptr) op.row = *row;
  op.owner = ctx;
  // The matching undo record was just pushed; pairing by index lets a
  // rollback to any savepoint discard exactly the right redo suffix.
  op.undo_mark = static_cast<int64_t>(ctx->undo_log_.size()) - 1;
  // Under snapshot_mu_ so the append is ordered against a concurrent
  // quiescent publish (OpenSnapshot) packaging wal_redo_ into a record.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  wal_redo_.push_back(std::move(op));
}

void Database::DropRedoSince(const ExecutionContext* ctx, size_t mark) {
  if (!wal_enabled_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  wal_redo_.erase(
      std::remove_if(wal_redo_.begin(), wal_redo_.end(),
                     [&](const RedoOp& op) {
                       return op.owner == ctx &&
                              op.undo_mark >= static_cast<int64_t>(mark);
                     }),
      wal_redo_.end());
}

void Database::SealRedoFor(const ExecutionContext* ctx) {
  if (!wal_enabled_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  for (RedoOp& op : wal_redo_) {
    if (op.owner == ctx) {
      op.owner = nullptr;
      op.undo_mark = -1;
    }
  }
}

ExecutionContext::~ExecutionContext() { db_->SealRedoFor(this); }

void ExecutionContext::Checkpoint() {
  // The undo records are about to vanish, so the paired redo ops become
  // un-rollbackable: seal them — they publish with the next epoch's WAL
  // record no matter what this context does afterwards.
  db_->SealRedoFor(this);
  undo_log_.clear();
}

void ExecutionContext::Rollback(size_t mark) {
  // Discard the redo ops of the statements being undone first: the undo
  // walk below rewrites rows directly (bypassing the capture sites), so
  // after it the net effect of [mark, end) is zero on both logs.
  db_->DropRedoSince(this, mark);
  // Base tables resolve through the copy-on-write gate: rolling back must
  // never rewrite a version a snapshot still pins. (A context doing a
  // rollback is by construction not snapshot-pinned — pinned contexts
  // cannot have accumulated undo records.) The resolution is memoized per
  // table: the writable pointer is stable for the rest of the transaction,
  // and re-checking it per undo record would hammer the global snapshot
  // mutex on large rollbacks.
  std::unordered_map<std::string, Table*> writable;
  while (undo_log_.size() > mark) {
    UndoRecord rec = std::move(undo_log_.back());
    undo_log_.pop_back();
    Table* t = FindTempTable(rec.table);
    if (t == nullptr) {
      auto cached = writable.find(rec.table);
      if (cached != writable.end()) {
        t = cached->second;
      } else {
        auto it = db_->table_index_.find(rec.table);
        if (it != db_->table_index_.end()) {
          t = db_->WritableBaseTable(it->second);
        }
        writable.emplace(rec.table, t);
      }
    }
    if (t == nullptr) continue;  // temp table dropped meanwhile
    switch (rec.kind) {
      case UndoKind::kInsert:
        t->EraseRow(rec.row_id);
        break;
      case UndoKind::kDelete:
        t->RestoreRow(rec.row_id, std::move(rec.old_row));
        break;
      case UndoKind::kUpdate:
        t->OverwriteRow(rec.row_id, std::move(rec.old_row));
        break;
    }
  }
}

Result<Table*> ExecutionContext::CreateTempTable(TableSchema schema) {
  std::string name = schema.name();
  if (db_->table_index_.count(name) > 0 || temp_tables_.count(name) > 0) {
    return Status::InvalidArgument("table '" + name + "' already exists");
  }
  temp_schemas_[name] = std::move(schema);
  auto table = std::make_unique<Table>(&temp_schemas_[name]);
  Table* raw = table.get();
  temp_tables_[name] = std::move(table);
  return raw;
}

Status ExecutionContext::BulkLoadTemp(const std::string& name,
                                      std::vector<Row> rows) {
  Table* t = FindTempTable(name);
  if (t == nullptr) {
    return Status::InvalidArgument("'" + name +
                                   "' is not a temp table (BulkLoadTemp "
                                   "bypasses constraint checking)");
  }
  const size_t arity = t->schema().columns().size();
  for (const Row& row : rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument(
          "row arity mismatch for temp table '" + name + "': got " +
          std::to_string(row.size()) + ", want " + std::to_string(arity));
    }
  }
  std::vector<RowId> ids;
  t->BulkLoad(std::move(rows), &ids);
  undo_log_.reserve(undo_log_.size() + ids.size());
  for (RowId id : ids) {
    undo_log_.push_back({UndoKind::kInsert, name, id, {}});
  }
  db_->stats_.rows_inserted += ids.size();
  db_->stats_.undo_records += ids.size();
  return Status::OK();
}

Status ExecutionContext::DropTempTable(const std::string& name) {
  if (temp_tables_.erase(name) == 0) {
    return Status::NotFound("no temp table '" + name + "'");
  }
  temp_schemas_.erase(name);
  return Status::OK();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->live_row_count();
  return total;
}

}  // namespace ufilter::relational
