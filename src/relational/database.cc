#include "relational/database.h"

#include <algorithm>

#include "common/strings.h"

namespace ufilter::relational {

namespace {

size_t HashOneValue(const Value& v) {
  return static_cast<size_t>(0x345678) * 1000003 ^ v.Hash();
}

}  // namespace

size_t Table::HashRowValues(const Row& row, const std::vector<int>& cols) {
  size_t h = 0x345678;
  for (int c : cols) {
    h = h * 1000003 ^ row[static_cast<size_t>(c)].Hash();
  }
  return h;
}

bool Table::RowValuesEqual(const Row& a, const Row& b,
                           const std::vector<int>& cols) {
  for (int c : cols) {
    if (!(a[static_cast<size_t>(c)] == b[static_cast<size_t>(c)])) {
      return false;
    }
  }
  return true;
}

bool Table::AnyValueNull(const Row& row, const std::vector<int>& cols) {
  for (int c : cols) {
    if (row[static_cast<size_t>(c)].is_null()) return true;
  }
  return false;
}

// ---------------------------------------------------------------- Table ---

Table::Table(const TableSchema* schema) : schema_(schema) {
  // Unique index over the primary key.
  if (!schema_->primary_key().empty()) {
    Index idx;
    idx.unique = true;
    for (const std::string& c : schema_->primary_key()) {
      idx.column_idx.push_back(schema_->ColumnIndex(c));
    }
    indexes_.push_back(std::move(idx));
  }
  // Unique index per UNIQUE column.
  for (size_t i = 0; i < schema_->columns().size(); ++i) {
    if (schema_->columns()[i].unique) {
      Index idx;
      idx.unique = true;
      idx.column_idx.push_back(static_cast<int>(i));
      indexes_.push_back(std::move(idx));
    }
  }
  // Non-unique index per foreign key column set.
  for (const ForeignKey& fk : schema_->foreign_keys()) {
    Index idx;
    idx.unique = false;
    for (const std::string& c : fk.columns) {
      idx.column_idx.push_back(schema_->ColumnIndex(c));
    }
    // Skip if it duplicates the PK index column set.
    bool dup = false;
    for (const Index& existing : indexes_) {
      if (existing.column_idx == idx.column_idx) dup = true;
    }
    if (!dup) indexes_.push_back(std::move(idx));
  }
}

const Row* Table::GetRow(RowId id) const {
  if (id < 0 || static_cast<size_t>(id) >= rows_.size()) return nullptr;
  const auto& slot = rows_[static_cast<size_t>(id)];
  return slot.has_value() ? &*slot : nullptr;
}

std::vector<RowId> Table::AllRowIds() const {
  std::vector<RowId> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].has_value()) out.push_back(static_cast<RowId>(i));
  }
  return out;
}

const Table::Index* Table::FindIndexFor(const std::string& column) const {
  return FindIndexForColumn(schema_->ColumnIndex(column));
}

const Table::Index* Table::FindIndexForColumn(int column_idx) const {
  if (column_idx < 0) return nullptr;
  const Index* found = nullptr;
  for (const Index& idx : indexes_) {
    if (idx.column_idx.size() != 1 || idx.column_idx[0] != column_idx) {
      continue;
    }
    // Prefer unique indexes (most selective).
    if (idx.unique) return &idx;
    if (found == nullptr) found = &idx;
  }
  return found;
}

bool Table::HasIndexOn(const std::string& column) const {
  return FindIndexFor(column) != nullptr;
}

bool Table::HasIndexOnColumn(int column_idx) const {
  return FindIndexForColumn(column_idx) != nullptr;
}

bool Table::HasUniqueIndexOnColumn(int column_idx) const {
  const Index* idx = FindIndexForColumn(column_idx);
  return idx != nullptr && idx->unique;
}

double Table::EstimateEqMatches(int column_idx) const {
  const Index* idx = FindIndexForColumn(column_idx);
  if (idx == nullptr) return static_cast<double>(live_count_);
  if (idx->unique) return 1.0;
  if (idx->distinct_keys == 0) return 0.0;
  return static_cast<double>(idx->map.size()) /
         static_cast<double>(idx->distinct_keys);
}

double Table::EstimateEqMatches(int column_idx, const Value& literal) const {
  const Index* idx = FindIndexForColumn(column_idx);
  if (idx == nullptr) return static_cast<double>(live_count_);
  return static_cast<double>(idx->map.count(HashOneValue(literal)));
}

void Table::ProbeIndexEq(int column_idx, const Value& v,
                         std::vector<RowId>* out,
                         AtomicEngineStats* stats) const {
  const Index* idx = FindIndexForColumn(column_idx);
  if (idx == nullptr) return;
  if (stats != nullptr) stats->index_lookups++;
  auto range = idx->map.equal_range(HashOneValue(v));
  for (auto it = range.first; it != range.second; ++it) {
    const Row* row = GetRow(it->second);
    if (row != nullptr && (*row)[static_cast<size_t>(column_idx)] == v) {
      out->push_back(it->second);
    }
  }
}

std::vector<RowId> Table::Find(const std::vector<ColumnPredicate>& preds,
                               AtomicEngineStats* stats) const {
  // Drive with a single-column index on an equality predicate, preferring a
  // unique index (most selective: at most one candidate) over the first
  // non-unique hit.
  const Index* driver = nullptr;
  const ColumnPredicate* driver_pred = nullptr;
  for (const ColumnPredicate& p : preds) {
    if (p.op != CompareOp::kEq) continue;
    const Index* idx = FindIndexFor(p.column);
    if (idx == nullptr) continue;
    if (driver == nullptr || (idx->unique && !driver->unique)) {
      driver = idx;
      driver_pred = &p;
      if (driver->unique) break;
    }
  }

  std::vector<RowId> candidates;
  if (driver != nullptr) {
    if (stats != nullptr) stats->index_lookups++;
    // Single-column driver: hash the literal directly, no probe-row alloc.
    const size_t col = static_cast<size_t>(driver->column_idx[0]);
    auto range = driver->map.equal_range(HashOneValue(driver_pred->literal));
    for (auto it = range.first; it != range.second; ++it) {
      const Row* row = GetRow(it->second);
      if (row != nullptr && (*row)[col] == driver_pred->literal) {
        candidates.push_back(it->second);
      }
    }
  } else {
    candidates = AllRowIds();
    if (stats != nullptr) stats->rows_scanned += candidates.size();
  }

  std::vector<RowId> out;
  for (RowId id : candidates) {
    const Row* row = GetRow(id);
    if (row == nullptr) continue;
    bool match = true;
    for (const ColumnPredicate& p : preds) {
      int c = schema_->ColumnIndex(p.column);
      if (c < 0 ||
          !EvalCompare((*row)[static_cast<size_t>(c)], p.op, p.literal)) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(id);
  }
  // A unique driver yields at most one candidate — already in order.
  if (!(driver != nullptr && driver->unique && out.size() <= 1)) {
    std::sort(out.begin(), out.end());
  }
  return out;
}

void Table::BulkLoad(std::vector<Row> rows, std::vector<RowId>* ids) {
  rows_.reserve(rows_.size() + rows.size());
  if (ids != nullptr) ids->reserve(ids->size() + rows.size());
  for (Row& row : rows) {
    RowId id = AppendRow(std::move(row));
    if (ids != nullptr) ids->push_back(id);
  }
}

RowId Table::AppendRow(Row row) {
  rows_.emplace_back(std::move(row));
  RowId id = static_cast<RowId>(rows_.size() - 1);
  IndexInsert(id, *rows_.back());
  ++live_count_;
  return id;
}

void Table::EraseRow(RowId id) {
  auto& slot = rows_[static_cast<size_t>(id)];
  if (!slot.has_value()) return;
  IndexErase(id, *slot);
  slot.reset();
  --live_count_;
}

void Table::RestoreRow(RowId id, Row row) {
  auto& slot = rows_[static_cast<size_t>(id)];
  slot = std::move(row);
  IndexInsert(id, *slot);
  ++live_count_;
}

void Table::OverwriteRow(RowId id, Row row) {
  auto& slot = rows_[static_cast<size_t>(id)];
  if (slot.has_value()) IndexErase(id, *slot);
  slot = std::move(row);
  IndexInsert(id, *slot);
}

size_t Table::IndexKeyHash(const Index& index, const Row& row) const {
  return HashRowValues(row, index.column_idx);
}

void Table::IndexInsert(RowId id, const Row& row) {
  for (Index& idx : indexes_) {
    size_t h = IndexKeyHash(idx, row);
    if (idx.map.find(h) == idx.map.end()) ++idx.distinct_keys;
    idx.map.emplace(h, id);
  }
}

void Table::IndexErase(RowId id, const Row& row) {
  for (Index& idx : indexes_) {
    size_t h = IndexKeyHash(idx, row);
    auto range = idx.map.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == id) {
        idx.map.erase(it);
        break;
      }
    }
    if (idx.map.find(h) == idx.map.end() && idx.distinct_keys > 0) {
      --idx.distinct_keys;
    }
  }
}

RowId Table::FindUniqueConflict(const Row& row, RowId self) const {
  for (const Index& idx : indexes_) {
    if (!idx.unique) continue;
    if (AnyValueNull(row, idx.column_idx)) continue;  // NULL never conflicts
    auto range = idx.map.equal_range(HashRowValues(row, idx.column_idx));
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == self) continue;
      const Row* other = GetRow(it->second);
      if (other != nullptr && RowValuesEqual(*other, row, idx.column_idx)) {
        return it->second;
      }
    }
  }
  return -1;
}

// ------------------------------------------------------------- Database ---

Database::Database(DatabaseSchema schema) : schema_(std::move(schema)) {
  root_context_ = std::make_unique<ExecutionContext>(this);
  tables_.reserve(schema_.tables().size());
  for (size_t i = 0; i < schema_.tables().size(); ++i) {
    tables_.emplace_back(&schema_.tables()[i]);
    table_index_[schema_.tables()[i].name()] = i;
  }
}

Result<std::unique_ptr<Database>> Database::Create(DatabaseSchema schema) {
  UFILTER_RETURN_NOT_OK(schema.Validate());
  return std::unique_ptr<Database>(new Database(std::move(schema)));
}

Table* Database::TableByName(const ExecutionContext* ctx,
                             const std::string& name) {
  auto it = table_index_.find(name);
  if (it != table_index_.end()) return &tables_[it->second];
  if (ctx != nullptr) {
    // Sessions only read their own temp tables; the const_cast hands the
    // session back mutable access to a table it created itself.
    return const_cast<Table*>(ctx->FindTempTable(name));
  }
  return nullptr;
}

const Table* Database::TableByName(const ExecutionContext* ctx,
                                   const std::string& name) const {
  return const_cast<Database*>(this)->TableByName(ctx, name);
}

Result<Table*> Database::GetTable(const ExecutionContext* ctx,
                                  const std::string& name) {
  Table* t = TableByName(ctx, name);
  if (t == nullptr) return Status::NotFound("no table '" + name + "'");
  return t;
}

Result<const Table*> Database::GetTable(const ExecutionContext* ctx,
                                        const std::string& name) const {
  const Table* t = TableByName(ctx, name);
  if (t == nullptr) return Status::NotFound("no table '" + name + "'");
  return t;
}

Status Database::CheckRowConstraints(const TableSchema& schema,
                                     const Row& row) const {
  if (row.size() != schema.columns().size()) {
    return Status::InvalidArgument(
        "row arity mismatch for table '" + schema.name() + "': got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema.columns().size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema.columns()[i];
    const Value& v = row[i];
    if (col.not_null && v.is_null()) {
      return Status::ConstraintViolation("column '" + schema.name() + "." +
                                         col.name + "' is NOT NULL");
    }
    if (!v.is_null()) {
      // Domain check: strings into numeric columns are rejected; ints widen
      // into double columns.
      bool domain_ok = true;
      switch (col.type) {
        case ValueType::kInt:
          domain_ok = v.is_int();
          break;
        case ValueType::kDouble:
          domain_ok = v.is_int() || v.is_double();
          break;
        case ValueType::kString:
          domain_ok = v.is_string();
          break;
        case ValueType::kNull:
          domain_ok = false;
          break;
      }
      if (!domain_ok) {
        return Status::ConstraintViolation(
            "value " + v.ToSqlLiteral() + " out of domain " +
            ValueTypeName(col.type) + " for '" + schema.name() + "." +
            col.name + "'");
      }
    }
    for (const CheckPredicate& chk : col.checks) {
      if (!chk.Admits(v)) {
        return Status::ConstraintViolation(
            "CHECK (" + chk.ToString(schema.name() + "." + col.name) +
            ") violated by " + v.ToSqlLiteral());
      }
    }
  }
  return Status::OK();
}

Status Database::CheckForeignKeysExist(const TableSchema& schema,
                                       const Row& row) const {
  for (const ForeignKey& fk : schema.foreign_keys()) {
    std::vector<ColumnPredicate> preds;
    bool any_null = false;
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      int c = schema.ColumnIndex(fk.columns[i]);
      const Value& v = row[static_cast<size_t>(c)];
      if (v.is_null()) {
        any_null = true;
        break;
      }
      preds.push_back({fk.ref_columns[i], CompareOp::kEq, v});
    }
    if (any_null) continue;  // NULL FKs reference nothing
    UFILTER_ASSIGN_OR_RETURN(const Table* ref, GetTable(fk.ref_table));
    if (ref->Find(preds, &stats_).empty()) {
      std::vector<std::string> vals;
      for (const auto& p : preds) vals.push_back(p.literal.ToSqlLiteral());
      return Status::ConstraintViolation(
          "FK violation: " + schema.name() + " -> " + fk.ref_table + " (" +
          Join(vals, ", ") + ") has no referenced row");
    }
  }
  return Status::OK();
}

Result<RowId> Database::Insert(ExecutionContext* ctx,
                               const std::string& table, Row row) {
  UFILTER_ASSIGN_OR_RETURN(Table * t, GetTable(ctx, table));
  UFILTER_RETURN_NOT_OK(CheckRowConstraints(t->schema(), row));
  if (!ctx->IsTempTable(table)) {
    UFILTER_RETURN_NOT_OK(CheckForeignKeysExist(t->schema(), row));
  }
  RowId conflict = t->FindUniqueConflict(row, -1);
  if (conflict >= 0) {
    return Status::ConstraintViolation("unique key violation on table '" +
                                       table + "'");
  }
  RowId id = t->AppendRow(std::move(row));
  ctx->undo_log_.push_back(
      {ExecutionContext::UndoKind::kInsert, table, id, {}});
  stats_.rows_inserted++;
  stats_.undo_records++;
  return id;
}

Result<RowId> Database::InsertValues(
    ExecutionContext* ctx, const std::string& table,
    const std::map<std::string, Value>& values) {
  UFILTER_ASSIGN_OR_RETURN(Table * t, GetTable(ctx, table));
  Row row(t->schema().columns().size());
  for (const auto& [name, value] : values) {
    int c = t->schema().ColumnIndex(name);
    if (c < 0) {
      return Status::NotFound("no column '" + name + "' in '" + table + "'");
    }
    row[static_cast<size_t>(c)] = value;
  }
  return Insert(ctx, table, std::move(row));
}

Status Database::DeleteRowInternal(ExecutionContext* ctx, Table* table,
                                   RowId id, DeleteOutcome* outcome) {
  const Row* row_ptr = table->GetRow(id);
  if (row_ptr == nullptr) return Status::OK();
  Row row = *row_ptr;  // copy before erasing
  const std::string& table_name = table->schema().name();

  // Handle referencing tables first (policy-driven).
  for (const TableSchema& other : schema_.tables()) {
    for (const ForeignKey& fk : other.foreign_keys()) {
      if (fk.ref_table != table_name) continue;
      std::vector<ColumnPredicate> preds;
      bool any_null = false;
      for (size_t i = 0; i < fk.columns.size(); ++i) {
        int rc = table->schema().ColumnIndex(fk.ref_columns[i]);
        const Value& v = row[static_cast<size_t>(rc)];
        if (v.is_null()) any_null = true;
        preds.push_back({fk.columns[i], CompareOp::kEq, v});
      }
      if (any_null) continue;
      UFILTER_ASSIGN_OR_RETURN(Table * ref_table,
                               GetTable(ctx, other.name()));
      std::vector<RowId> referencing = ref_table->Find(preds, &stats_);
      if (referencing.empty()) continue;
      switch (fk.on_delete) {
        case DeletePolicy::kRestrict:
          return Status::ConstraintViolation(
              "delete from '" + table_name + "' restricted: referenced by '" +
              other.name() + "'");
        case DeletePolicy::kCascade:
          for (RowId rid : referencing) {
            UFILTER_RETURN_NOT_OK(
                DeleteRowInternal(ctx, ref_table, rid, outcome));
          }
          break;
        case DeletePolicy::kSetNull: {
          for (RowId rid : referencing) {
            const Row* old = ref_table->GetRow(rid);
            if (old == nullptr) continue;
            Row updated = *old;
            bool possible = true;
            for (const std::string& c : fk.columns) {
              int ci = other.ColumnIndex(c);
              if (other.columns()[static_cast<size_t>(ci)].not_null) {
                possible = false;
              }
              updated[static_cast<size_t>(ci)] = Value::Null();
            }
            if (!possible) {
              // SET NULL impossible on NOT NULL FK; fall back to cascade to
              // preserve integrity.
              UFILTER_RETURN_NOT_OK(
                  DeleteRowInternal(ctx, ref_table, rid, outcome));
              continue;
            }
            ctx->undo_log_.push_back(
                {ExecutionContext::UndoKind::kUpdate, other.name(), rid,
                 *old});
            stats_.undo_records++;
            ref_table->OverwriteRow(rid, std::move(updated));
            stats_.rows_updated++;
            outcome->nulled_rows++;
          }
          break;
        }
      }
    }
  }

  // The row may have been cascade-deleted through a cycle; re-check.
  if (table->GetRow(id) == nullptr) return Status::OK();
  ctx->undo_log_.push_back(
      {ExecutionContext::UndoKind::kDelete, table_name, id, row});
  stats_.undo_records++;
  table->EraseRow(id);
  stats_.rows_deleted++;
  outcome->deleted_rows++;
  outcome->affected.push_back({table_name, id});
  return Status::OK();
}

Result<DeleteOutcome> Database::DeleteWhere(
    ExecutionContext* ctx, const std::string& table,
    const std::vector<ColumnPredicate>& preds) {
  UFILTER_ASSIGN_OR_RETURN(Table * t, GetTable(ctx, table));
  DeleteOutcome outcome;
  size_t mark = ctx->Begin();
  for (RowId id : t->Find(preds, &stats_)) {
    Status st = DeleteRowInternal(ctx, t, id, &outcome);
    if (!st.ok()) {
      ctx->Rollback(mark);
      return st;
    }
  }
  ctx->Commit(mark);
  return outcome;
}

Result<DeleteOutcome> Database::DeleteRow(ExecutionContext* ctx,
                                          const std::string& table, RowId id) {
  UFILTER_ASSIGN_OR_RETURN(Table * t, GetTable(ctx, table));
  DeleteOutcome outcome;
  size_t mark = ctx->Begin();
  Status st = DeleteRowInternal(ctx, t, id, &outcome);
  if (!st.ok()) {
    ctx->Rollback(mark);
    return st;
  }
  ctx->Commit(mark);
  return outcome;
}

Result<int64_t> Database::UpdateWhere(
    ExecutionContext* ctx, const std::string& table,
    const std::map<std::string, Value>& assignments,
    const std::vector<ColumnPredicate>& preds) {
  UFILTER_ASSIGN_OR_RETURN(Table * t, GetTable(ctx, table));
  const TableSchema& schema = t->schema();
  for (const auto& [name, value] : assignments) {
    (void)value;
    if (!schema.HasColumn(name)) {
      return Status::NotFound("no column '" + name + "' in '" + table + "'");
    }
  }
  int64_t updated = 0;
  size_t mark = ctx->Begin();
  for (RowId id : t->Find(preds, &stats_)) {
    const Row* old = t->GetRow(id);
    if (old == nullptr) continue;
    Row next = *old;
    for (const auto& [name, value] : assignments) {
      next[static_cast<size_t>(schema.ColumnIndex(name))] = value;
    }
    Status st = CheckRowConstraints(schema, next);
    if (st.ok() && !ctx->IsTempTable(table)) {
      st = CheckForeignKeysExist(schema, next);
    }
    if (st.ok()) {
      RowId conflict = t->FindUniqueConflict(next, id);
      if (conflict >= 0) {
        st = Status::ConstraintViolation("unique key violation on table '" +
                                         table + "'");
      }
    }
    if (!st.ok()) {
      ctx->Rollback(mark);
      return st;
    }
    ctx->undo_log_.push_back(
        {ExecutionContext::UndoKind::kUpdate, table, id, *old});
    stats_.undo_records++;
    t->OverwriteRow(id, std::move(next));
    stats_.rows_updated++;
    ++updated;
  }
  ctx->Commit(mark);
  return updated;
}

void ExecutionContext::Rollback(size_t mark) {
  while (undo_log_.size() > mark) {
    UndoRecord rec = std::move(undo_log_.back());
    undo_log_.pop_back();
    Table* t = db_->TableByName(this, rec.table);
    if (t == nullptr) continue;  // temp table dropped meanwhile
    switch (rec.kind) {
      case UndoKind::kInsert:
        t->EraseRow(rec.row_id);
        break;
      case UndoKind::kDelete:
        t->RestoreRow(rec.row_id, std::move(rec.old_row));
        break;
      case UndoKind::kUpdate:
        t->OverwriteRow(rec.row_id, std::move(rec.old_row));
        break;
    }
  }
}

Result<Table*> ExecutionContext::CreateTempTable(TableSchema schema) {
  std::string name = schema.name();
  if (db_->table_index_.count(name) > 0 || temp_tables_.count(name) > 0) {
    return Status::InvalidArgument("table '" + name + "' already exists");
  }
  temp_schemas_[name] = std::move(schema);
  auto table = std::make_unique<Table>(&temp_schemas_[name]);
  Table* raw = table.get();
  temp_tables_[name] = std::move(table);
  return raw;
}

Status ExecutionContext::BulkLoadTemp(const std::string& name,
                                      std::vector<Row> rows) {
  Table* t = FindTempTable(name);
  if (t == nullptr) {
    return Status::InvalidArgument("'" + name +
                                   "' is not a temp table (BulkLoadTemp "
                                   "bypasses constraint checking)");
  }
  const size_t arity = t->schema().columns().size();
  for (const Row& row : rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument(
          "row arity mismatch for temp table '" + name + "': got " +
          std::to_string(row.size()) + ", want " + std::to_string(arity));
    }
  }
  std::vector<RowId> ids;
  t->BulkLoad(std::move(rows), &ids);
  undo_log_.reserve(undo_log_.size() + ids.size());
  for (RowId id : ids) {
    undo_log_.push_back({UndoKind::kInsert, name, id, {}});
  }
  db_->stats_.rows_inserted += ids.size();
  db_->stats_.undo_records += ids.size();
  return Status::OK();
}

Status ExecutionContext::DropTempTable(const std::string& name) {
  if (temp_tables_.erase(name) == 0) {
    return Status::NotFound("no temp table '" + name + "'");
  }
  temp_schemas_.erase(name);
  return Status::OK();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const Table& t : tables_) total += t.live_row_count();
  return total;
}

}  // namespace ufilter::relational
