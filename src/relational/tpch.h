// Deterministic TPC-H-like data generator. Reproduces the 5-relation chain
// the paper's evaluation nests into views:
//   REGION <- NATION <- CUSTOMER <- ORDERS <- LINEITEM
// (arrow = foreign key pointing left). The scale factor controls row counts
// with the standard cardinality ratios; generation is seeded and repeatable.
#ifndef UFILTER_RELATIONAL_TPCH_H_
#define UFILTER_RELATIONAL_TPCH_H_

#include <memory>

#include "common/result.h"
#include "relational/database.h"

namespace ufilter::relational::tpch {

/// Row counts produced for a given scale.
struct TpchCardinalities {
  int regions = 5;
  int nations_per_region = 5;
  int customers = 0;   ///< derived from scale
  int orders_per_customer = 10;
  int lineitems_per_order = 4;
};

/// Generation parameters. `scale` = 1.0 produces ~150 customers, 1500
/// orders, 6000 lineitems (a laptop-scale stand-in for the paper's MB-scale
/// databases; benches sweep `scale`).
struct TpchOptions {
  double scale = 1.0;
  uint64_t seed = 42;
  DeletePolicy delete_policy = DeletePolicy::kCascade;
};

/// Returns the TPC-H-like schema (keys, FKs with `policy` on delete).
DatabaseSchema MakeSchema(DeletePolicy policy = DeletePolicy::kCascade);

/// Creates and populates a database.
Result<std::unique_ptr<Database>> MakeDatabase(const TpchOptions& options);

/// Cardinalities implied by `scale`.
TpchCardinalities CardinalitiesFor(double scale);

}  // namespace ufilter::relational::tpch

#endif  // UFILTER_RELATIONAL_TPCH_H_
