// Write-ahead log + checkpoint persistence for the MVCC database.
//
// Durability model (see docs/ARCHITECTURE.md, "Durability & recovery"):
// every *published commit epoch* appends exactly one WAL record carrying
// the logical row-level redo ops of that transaction (captured next to the
// undo log on the writer lane, so a rolled-back op never reaches the WAL).
// A record is framed as
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// after an 8-byte file magic; the payload is the epoch plus the op list.
// Recovery replays complete, checksum-valid records in epoch order and
// truncates the file at the first torn/corrupt frame, so a kill -9 mid-write
// always lands the database on a fully published epoch — never a partial
// transaction. Epoch-based checkpoints (an immutable DatabaseVersion
// serialized slot-exactly, tombstones included) bound replay: recovery
// loads the checkpoint and replays only the WAL suffix with larger epochs.
//
// Fsync scheduling is policy-driven: kAlways syncs per record, kGroup
// batches syncs across consecutive commits of the (serial) writer lane —
// the group-commit knob — and kNever leaves flushing to the OS. All file
// I/O happens under its own wal mutex, never under the database's snapshot
// mutex, so snapshot readers never wait behind an fsync.
#ifndef UFILTER_RELATIONAL_WAL_H_
#define UFILTER_RELATIONAL_WAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace ufilter::relational {

/// When WAL appends are fsynced to stable storage.
enum class FsyncPolicy {
  kNever,   ///< never fsync (page cache only; fastest, weakest)
  kGroup,   ///< fsync once per `group_commit_size` appended records
  kAlways,  ///< fsync after every record (strongest, slowest)
};

const char* FsyncPolicyName(FsyncPolicy p);

/// Configuration for Database::EnableDurability / Database::RecoverFrom.
struct DurabilityOptions {
  /// WAL file path; empty means durability stays off.
  std::string wal_path;
  FsyncPolicy fsync_policy = FsyncPolicy::kGroup;
  /// kGroup: fsync once this many records accumulated unsynced.
  size_t group_commit_size = 8;
  /// Optional checkpoint file path (see Database::WriteCheckpoint).
  std::string checkpoint_path;
};

/// One WAL record: the redo ops published under one commit epoch.
struct WalRecord {
  uint64_t epoch = 0;
  std::vector<RedoOp> ops;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `n` bytes.
uint32_t Crc32(const void* data, size_t n);

/// Serializes / parses one record payload (epoch + ops; no framing).
std::string EncodeWalPayload(const WalRecord& record);
Result<WalRecord> DecodeWalPayload(const std::string& payload);

/// \brief Append-only WAL file writer (POSIX fd, explicit fsync control).
///
/// Not internally synchronized: the Database serializes all calls under its
/// wal mutex (appends come off the serial writer lane anyway).
class WalWriter {
 public:
  /// Opens `path` for appending, writing the file magic when the file is
  /// new and validating it when it already exists (e.g. after recovery).
  /// `stats`, when non-null, receives wal_records/wal_fsyncs/wal_bytes.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 FsyncPolicy policy,
                                                 size_t group_commit_size,
                                                 AtomicEngineStats* stats);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frames, checksums and appends one record, then fsyncs per policy.
  /// Under kGroup the frame is staged in a user-space buffer and reaches
  /// the file in one write()+fsync per group — callers that want the live
  /// file to reflect every append must Sync() first.
  Status Append(const WalRecord& record);

  /// Forces an fsync of any unsynced appends (any policy). No-op when
  /// everything appended is already synced.
  Status Sync();

  /// Pushes any kGroup-staged frames into the file *without* fsyncing, so
  /// a concurrent WalTailer (the replication source) sees every appended
  /// record immediately while the group-commit fsync schedule stays
  /// untouched. No-op for kNever/kAlways (nothing is ever staged).
  Status Flush();

  uint64_t records_appended() const { return records_; }
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t bytes_written() const { return total_bytes_; }

  /// Crash-injection hook for the kill -9 fuzz harness: once the writer has
  /// emitted `n` total bytes (file magic included), the next write stops at
  /// exactly that offset and the process raises SIGKILL — producing a torn
  /// record at a controlled byte position. Negative disables.
  void set_crash_after_bytes_for_testing(int64_t n) {
    crash_after_bytes_ = n;
  }

 private:
  WalWriter(int fd, FsyncPolicy policy, size_t group_commit_size,
            AtomicEngineStats* stats)
      : fd_(fd), policy_(policy), group_size_(group_commit_size),
        stats_(stats) {}

  Status WriteRaw(const char* data, size_t n);

  int fd_ = -1;
  FsyncPolicy policy_ = FsyncPolicy::kGroup;
  size_t group_size_ = 8;
  AtomicEngineStats* stats_ = nullptr;
  uint64_t records_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t unsynced_records_ = 0;
  // kGroup staging area: frames accumulate here and hit the file as one
  // write() at the group boundary, so a group costs one syscall + one
  // fsync instead of group_size_ syscalls + one fsync.
  std::string group_buf_;
  int64_t crash_after_bytes_ = -1;
};

/// Result of scanning a WAL file.
struct WalReadResult {
  /// Complete, checksum-valid records in file order.
  std::vector<WalRecord> records;
  /// Byte length of the valid prefix (the truncation point for a torn
  /// tail). At least the file-magic length for a well-formed file.
  uint64_t valid_bytes = 0;
  /// Bytes exist past the valid prefix: a torn/corrupt tail record.
  bool tail_truncated = false;
};

/// Scans `path`, tolerating a torn or corrupt tail: parsing stops at the
/// first incomplete frame, checksum mismatch or undecodable payload, and
/// everything before it is returned. Missing file is NotFound (callers
/// treat that as an empty log); a present file with a wrong magic is
/// InvalidArgument.
Result<WalReadResult> ReadWal(const std::string& path);

/// \brief Incremental reader over a *live* WAL file: the replication feed.
///
/// Keeps a byte offset into the log and, on each Poll(), returns every
/// record frame that has become complete since the last call. An
/// incomplete tail (the writer is mid-append) is simply "no more records
/// yet" — but a complete-length frame with a CRC or decode failure is real
/// corruption and a permanent error, because an append-only writer never
/// leaves bad bytes *behind* the tail it is extending.
///
/// Not internally synchronized; one tailer per subscriber thread.
class WalTailer {
 public:
  /// One record that became complete in the file.
  struct TailedRecord {
    uint64_t epoch = 0;
    /// EncodeWalPayload bytes (epoch + ops), ready for the wire.
    std::string payload;
    /// File offset just past this record's frame.
    uint64_t end_offset = 0;
  };

  explicit WalTailer(std::string path) : path_(std::move(path)) {}
  ~WalTailer();
  WalTailer(const WalTailer&) = delete;
  WalTailer& operator=(const WalTailer&) = delete;

  /// Reads forward from the current offset; stops early once the batch
  /// holds >= max_batch_bytes of payload. A missing file yields an empty
  /// batch (the writer has not created the log yet).
  Result<std::vector<TailedRecord>> Poll(size_t max_batch_bytes);

  /// Bytes fully consumed (magic + complete frames handed out).
  uint64_t offset() const { return offset_; }

  /// Total file bytes observed so far (consumed + a possibly-incomplete
  /// tail). The shipped-vs-total pair is the subscriber's byte lag.
  uint64_t known_file_bytes() const { return offset_ + pending_.size(); }

 private:
  std::string path_;
  int fd_ = -1;
  bool magic_checked_ = false;
  uint64_t offset_ = 0;
  /// Bytes read past offset_ that do not yet form a complete frame.
  std::string pending_;
};

/// A parsed checkpoint: one immutable DatabaseVersion, slot-exact.
struct CheckpointImage {
  uint64_t epoch = 0;
  /// Per table (schema order at write time): name + the full row-slot
  /// array, tombstones included, so recovered RowIds match exactly.
  std::vector<std::pair<std::string, std::vector<std::optional<Row>>>> tables;
};

/// Serializes a pinned snapshot's tables slot-exactly (no epoch, no
/// framing). Also the state-equality fingerprint the durability tests
/// compare recovered databases with (Database::SerializePublishedState).
std::string EncodeDatabaseState(const DatabaseSchema& schema,
                                const Snapshot& snapshot);

/// Parses an EncodeDatabaseState payload into a CheckpointImage stamped
/// with `epoch` — the wire-bootstrap path (kReplSnapshot); checkpoint
/// *files* go through ReadCheckpointFile, which validates magic + CRC
/// before delegating here.
Result<CheckpointImage> DecodeDatabaseState(uint64_t epoch,
                                            const std::string& state_payload);

/// Full checkpoint file image: magic + CRC frame around epoch + state.
std::string EncodeCheckpointFile(uint64_t epoch,
                                 const std::string& state_payload);
/// Strict parse (checkpoints are written atomically; any damage is fatal).
Result<CheckpointImage> ReadCheckpointFile(const std::string& path);

/// Writes `contents` via temp file + fsync + rename so a crash mid-write
/// never leaves a half-written file at `path`.
Status WriteFileAtomicSynced(const std::string& path,
                             const std::string& contents);

/// Crash-injection hook for the recovery crash-fuzz: a nonzero point makes
/// RecoverFrom raise SIGKILL at a chosen step of the torn-tail truncation
/// (1 = after ftruncate, before the log fsync — the window where a
/// non-durable truncation could resurrect the torn tail). 0 disables.
void SetRecoveryCrashPointForTesting(int point);

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_WAL_H_
