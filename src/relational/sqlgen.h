// Rendering of translated relational updates as SQL text. The translation
// engine produces structured UpdateOp values; this module prints them the
// way the paper shows them (U1, U2, U3, ...). Useful for logging, examples
// and tests that assert on the emitted SQL.
#ifndef UFILTER_RELATIONAL_SQLGEN_H_
#define UFILTER_RELATIONAL_SQLGEN_H_

#include <map>
#include <string>
#include <vector>

#include "relational/database.h"

namespace ufilter::relational {

/// Kind of a translated relational update statement.
enum class UpdateOpKind { kInsert, kDelete, kUpdate };

/// \brief One translated relational update statement.
///
/// A sequence of UpdateOp is what the update translation engine emits for a
/// translatable view update (the `U` of Definition 1).
struct UpdateOp {
  UpdateOpKind kind = UpdateOpKind::kInsert;
  std::string table;
  /// kInsert: full column->value map. kUpdate: SET assignments.
  std::map<std::string, Value> values;
  /// kDelete / kUpdate: conjunctive WHERE clause.
  std::vector<ColumnPredicate> where;

  /// SQL text for this statement.
  std::string ToSql() const;
};

/// Renders a whole update sequence, one statement per line.
std::string UpdateSequenceToSql(const std::vector<UpdateOp>& ops);

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_SQLGEN_H_
