#include "relational/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

namespace ufilter::relational {

namespace {

constexpr char kWalMagic[8] = {'U', 'F', 'W', 'A', 'L', '0', '0', '1'};
constexpr char kCheckpointMagic[8] = {'U', 'F', 'C', 'K', 'P', '0', '0', '1'};
constexpr size_t kMagicLen = sizeof(kWalMagic);
/// [u32 payload_len][u32 crc32] prefix of every frame.
constexpr size_t kFrameHeaderLen = 8;

// ---- little-endian byte codec (shared by WAL records and checkpoints) ----

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Value wire tags (part of the on-disk format — never renumber).
enum : uint8_t {
  kTagNull = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagString = 3,
};

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, kTagNull);
  } else if (v.is_int()) {
    PutU8(out, kTagInt);
    PutU64(out, static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_double()) {
    PutU8(out, kTagDouble);
    double d = v.AsDouble();
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    PutU64(out, bits);
  } else {
    PutU8(out, kTagString);
    PutString(out, v.AsString());
  }
}

void PutRow(std::string* out, const Row& row) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(out, v);
}

/// Bounds-checked reader over an encoded buffer; any overrun or bad tag
/// trips `ok` and makes every later read a no-op.
struct ByteReader {
  const std::string& buf;
  size_t pos = 0;
  bool ok = true;

  explicit ByteReader(const std::string& b) : buf(b) {}

  bool Need(size_t n) {
    if (!ok || buf.size() - pos < n) ok = false;
    return ok;
  }
  uint8_t ReadU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(buf[pos++]);
  }
  uint32_t ReadU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[pos++])) << (8 * i);
    }
    return v;
  }
  uint64_t ReadU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[pos++])) << (8 * i);
    }
    return v;
  }
  std::string ReadString() {
    uint32_t len = ReadU32();
    if (!Need(len)) return {};
    std::string s = buf.substr(pos, len);
    pos += len;
    return s;
  }
  Value ReadValue() {
    switch (ReadU8()) {
      case kTagNull:
        return Value::Null();
      case kTagInt:
        return Value::Int(static_cast<int64_t>(ReadU64()));
      case kTagDouble: {
        uint64_t bits = ReadU64();
        double d = 0;
        std::memcpy(&d, &bits, sizeof d);
        return Value::Double(d);
      }
      case kTagString:
        return Value::String(ReadString());
      default:
        ok = false;
        return Value::Null();
    }
  }
  Row ReadRow() {
    uint32_t n = ReadU32();
    // Sanity cap: a row needs >= 1 byte per value, so n can never exceed
    // the remaining buffer — reject early instead of reserving garbage.
    if (!Need(n)) return {};
    Row row;
    row.reserve(n);
    for (uint32_t i = 0; i < n && ok; ++i) row.push_back(ReadValue());
    return row;
  }
};

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// fsyncs the directory holding `path` so a rename/create/truncate of the
/// entry itself is durable. Best-effort by design: some filesystems refuse
/// directory fsync, and the file-level fsync already happened.
void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

/// See SetRecoveryCrashPointForTesting.
int g_recovery_crash_point = 0;

Status ReadFileContents(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file '" + path + "'");
    return ErrnoStatus("open '" + path + "'");
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read '" + path + "'");
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kGroup:
      return "group";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

uint32_t Crc32(const void* data, size_t n) {
  // Table-based CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320),
  // generated once — no zlib dependency.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeWalPayload(const WalRecord& record) {
  std::string out;
  PutU64(&out, record.epoch);
  PutU32(&out, static_cast<uint32_t>(record.ops.size()));
  for (const RedoOp& op : record.ops) {
    PutU8(&out, static_cast<uint8_t>(op.kind));
    PutString(&out, op.table);
    PutU64(&out, static_cast<uint64_t>(op.row_id));
    if (op.kind != RedoOp::Kind::kDelete) PutRow(&out, op.row);
  }
  return out;
}

Result<WalRecord> DecodeWalPayload(const std::string& payload) {
  ByteReader r(payload);
  WalRecord record;
  record.epoch = r.ReadU64();
  uint32_t n = r.ReadU32();
  if (!r.Need(n)) {
    return Status::InvalidArgument("wal payload: implausible op count");
  }
  record.ops.reserve(n);
  for (uint32_t i = 0; i < n && r.ok; ++i) {
    RedoOp op;
    uint8_t kind = r.ReadU8();
    if (kind > static_cast<uint8_t>(RedoOp::Kind::kUpdate)) {
      return Status::InvalidArgument("wal payload: bad op kind");
    }
    op.kind = static_cast<RedoOp::Kind>(kind);
    op.table = r.ReadString();
    op.row_id = static_cast<RowId>(r.ReadU64());
    if (op.kind != RedoOp::Kind::kDelete) op.row = r.ReadRow();
    record.ops.push_back(std::move(op));
  }
  if (!r.ok || r.pos != payload.size()) {
    return Status::InvalidArgument("wal payload: truncated or trailing bytes");
  }
  return record;
}

// ---------------------------------------------------------- WalWriter ---

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   FsyncPolicy policy,
                                                   size_t group_commit_size,
                                                   AtomicEngineStats* stats) {
  if (policy == FsyncPolicy::kGroup && group_commit_size == 0) {
    return Status::InvalidArgument("group_commit_size must be >= 1");
  }
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open wal '" + path + "'");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat wal '" + path + "'");
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(fd, policy, group_commit_size, stats));
  if (st.st_size == 0) {
    UFILTER_RETURN_NOT_OK(writer->WriteRaw(kWalMagic, kMagicLen));
  } else {
    // Appending to an existing log (the post-recovery resume path):
    // insist on an intact magic so we never extend a foreign file.
    if (static_cast<size_t>(st.st_size) < kMagicLen) {
      return Status::InvalidArgument("wal '" + path +
                                     "': shorter than the file magic "
                                     "(recover first to truncate it)");
    }
    int rd = ::open(path.c_str(), O_RDONLY);
    if (rd < 0) return ErrnoStatus("open wal '" + path + "'");
    char magic[kMagicLen];
    ssize_t n = ::pread(rd, magic, kMagicLen, 0);
    ::close(rd);
    if (n != static_cast<ssize_t>(kMagicLen) ||
        std::memcmp(magic, kWalMagic, kMagicLen) != 0) {
      return Status::InvalidArgument("'" + path + "' is not a ufilter WAL");
    }
    writer->total_bytes_ = static_cast<uint64_t>(st.st_size);
  }
  return writer;
}

WalWriter::~WalWriter() {
  // Best-effort drain of any staged kGroup frames: a clean close keeps
  // kNever-grade durability (bytes in the page cache survive a process
  // death); only a crash mid-group loses the staged tail.
  if (fd_ >= 0 && !group_buf_.empty()) {
    (void)WriteRaw(group_buf_.data(), group_buf_.size());
    group_buf_.clear();
  }
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::WriteRaw(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    size_t chunk = n - off;
    if (crash_after_bytes_ >= 0) {
      const uint64_t threshold = static_cast<uint64_t>(crash_after_bytes_);
      const uint64_t budget =
          threshold > total_bytes_ ? threshold - total_bytes_ : 0;
      if (chunk > budget) {
        // Crash injection: emit exactly up to the requested byte offset,
        // then die the hard way — the parent test sees a torn record at a
        // deterministic position.
        size_t partial = static_cast<size_t>(budget);
        size_t done = 0;
        while (done < partial) {
          ssize_t w = ::write(fd_, data + off + done, partial - done);
          if (w < 0) {
            if (errno == EINTR) continue;
            break;
          }
          done += static_cast<size_t>(w);
        }
        std::raise(SIGKILL);
        _exit(137);  // unreachable unless SIGKILL is somehow blocked
      }
    }
    ssize_t w = ::write(fd_, data + off, chunk);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write wal");
    }
    off += static_cast<size_t>(w);
    total_bytes_ += static_cast<uint64_t>(w);
  }
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  std::string payload = EncodeWalPayload(record);
  std::string frame;
  frame.reserve(kFrameHeaderLen + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  if (policy_ == FsyncPolicy::kGroup) {
    // Stage in user space; the whole group reaches the file as a single
    // write() inside Sync() at the group boundary.
    group_buf_ += frame;
  } else {
    UFILTER_RETURN_NOT_OK(WriteRaw(frame.data(), frame.size()));
  }
  ++records_;
  ++unsynced_records_;
  if (stats_ != nullptr) {
    stats_->wal_records++;
    stats_->wal_bytes += frame.size();
  }
  if (policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kGroup && unsynced_records_ >= group_size_)) {
    return Sync();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (unsynced_records_ == 0) return Status::OK();
  if (!group_buf_.empty()) {
    UFILTER_RETURN_NOT_OK(WriteRaw(group_buf_.data(), group_buf_.size()));
    group_buf_.clear();
  }
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync wal");
  unsynced_records_ = 0;
  ++fsyncs_;
  if (stats_ != nullptr) stats_->wal_fsyncs++;
  return Status::OK();
}

Status WalWriter::Flush() {
  if (group_buf_.empty()) return Status::OK();
  UFILTER_RETURN_NOT_OK(WriteRaw(group_buf_.data(), group_buf_.size()));
  group_buf_.clear();
  return Status::OK();
}

// ------------------------------------------------------------ ReadWal ---

Result<WalReadResult> ReadWal(const std::string& path) {
  std::string contents;
  UFILTER_RETURN_NOT_OK(ReadFileContents(path, &contents));
  WalReadResult result;
  if (contents.size() < kMagicLen) {
    // A crash can tear even the magic write of a brand-new log; an empty
    // or magic-less file simply holds zero durable epochs.
    result.valid_bytes = 0;
    result.tail_truncated = !contents.empty();
    return result;
  }
  if (std::memcmp(contents.data(), kWalMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a ufilter WAL");
  }
  size_t pos = kMagicLen;
  result.valid_bytes = pos;
  while (contents.size() - pos >= kFrameHeaderLen) {
    ByteReader header(contents);
    header.pos = pos;
    const uint32_t len = header.ReadU32();
    const uint32_t crc = header.ReadU32();
    if (len > contents.size() - pos - kFrameHeaderLen) break;  // torn tail
    std::string payload = contents.substr(pos + kFrameHeaderLen, len);
    if (Crc32(payload.data(), payload.size()) != crc) break;  // corrupt
    Result<WalRecord> record = DecodeWalPayload(payload);
    if (!record.ok()) break;  // checksum ok but undecodable: treat as torn
    result.records.push_back(std::move(*record));
    pos += kFrameHeaderLen + len;
    result.valid_bytes = pos;
  }
  result.tail_truncated = result.valid_bytes < contents.size();
  return result;
}

// ---------------------------------------------------------- WalTailer ---

WalTailer::~WalTailer() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::vector<WalTailer::TailedRecord>> WalTailer::Poll(
    size_t max_batch_bytes) {
  std::vector<TailedRecord> batch;
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_RDONLY);
    if (fd_ < 0) {
      if (errno == ENOENT) return batch;  // log not created yet
      return ErrnoStatus("open wal '" + path_ + "'");
    }
  }
  // Pull everything new past (offset_ + pending_) into the pending buffer.
  for (;;) {
    char buf[1 << 16];
    ssize_t n = ::pread(fd_, buf, sizeof buf,
                        static_cast<off_t>(offset_ + pending_.size()));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread wal '" + path_ + "'");
    }
    if (n == 0) break;
    pending_.append(buf, static_cast<size_t>(n));
    if (pending_.size() > max_batch_bytes + (64u << 10)) break;  // plenty
  }
  size_t pos = 0;
  if (!magic_checked_) {
    if (pending_.size() < kMagicLen) return batch;  // magic still torn
    if (std::memcmp(pending_.data(), kWalMagic, kMagicLen) != 0) {
      return Status::InvalidArgument("'" + path_ + "' is not a ufilter WAL");
    }
    magic_checked_ = true;
    pos = kMagicLen;
  }
  size_t batch_bytes = 0;
  while (pending_.size() - pos >= kFrameHeaderLen &&
         batch_bytes < max_batch_bytes) {
    ByteReader header(pending_);
    header.pos = pos;
    const uint32_t len = header.ReadU32();
    const uint32_t crc = header.ReadU32();
    if (len > pending_.size() - pos - kFrameHeaderLen) break;  // mid-append
    std::string payload = pending_.substr(pos + kFrameHeaderLen, len);
    // Bytes *behind* a complete frame came from finished append calls, so
    // unlike ReadWal's tolerant tail scan this is permanent corruption.
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Internal("wal '" + path_ + "': CRC mismatch at offset " +
                              std::to_string(offset_ + pos));
    }
    Result<WalRecord> record = DecodeWalPayload(payload);
    if (!record.ok()) {
      return Status::Internal("wal '" + path_ + "': undecodable record at " +
                              std::to_string(offset_ + pos) + ": " +
                              record.status().message());
    }
    pos += kFrameHeaderLen + len;
    TailedRecord out;
    out.epoch = record->epoch;
    out.payload = std::move(payload);
    out.end_offset = offset_ + pos;
    batch_bytes += out.payload.size();
    batch.push_back(std::move(out));
  }
  if (pos > 0) {
    pending_.erase(0, pos);
    offset_ += pos;
  }
  return batch;
}

// -------------------------------------------------------- Checkpoints ---

std::string EncodeDatabaseState(const DatabaseSchema& schema,
                                const Snapshot& snapshot) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(schema.tables().size()));
  for (size_t i = 0; i < schema.tables().size(); ++i) {
    const Table* table = snapshot.TableAt(i);
    PutString(&out, schema.tables()[i].name());
    // Interior tombstones are kept (later WAL records address rows by
    // slot), but *trailing* dead slots are trimmed: a rolled-back insert
    // grows the live slot array without ever reaching the log, so replay
    // cannot reproduce the trailing tombstone — and has no need to, since
    // nothing can ever reference it.
    size_t slots = table->SlotCount();
    while (slots > 0 &&
           table->GetRow(static_cast<RowId>(slots - 1)) == nullptr) {
      --slots;
    }
    PutU64(&out, slots);
    for (size_t slot = 0; slot < slots; ++slot) {
      const Row* row = table->GetRow(static_cast<RowId>(slot));
      PutU8(&out, row != nullptr ? 1 : 0);
      if (row != nullptr) PutRow(&out, *row);
    }
  }
  return out;
}

std::string EncodeCheckpointFile(uint64_t epoch,
                                 const std::string& state_payload) {
  std::string payload;
  payload.reserve(8 + state_payload.size());
  PutU64(&payload, epoch);
  payload += state_payload;
  std::string out(kCheckpointMagic, kMagicLen);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

Result<CheckpointImage> ReadCheckpointFile(const std::string& path) {
  std::string contents;
  UFILTER_RETURN_NOT_OK(ReadFileContents(path, &contents));
  if (contents.size() < kMagicLen + kFrameHeaderLen ||
      std::memcmp(contents.data(), kCheckpointMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a ufilter checkpoint");
  }
  ByteReader header(contents);
  header.pos = kMagicLen;
  const uint32_t len = header.ReadU32();
  const uint32_t crc = header.ReadU32();
  if (len != contents.size() - kMagicLen - kFrameHeaderLen) {
    return Status::InvalidArgument("checkpoint '" + path +
                                   "': length mismatch");
  }
  std::string payload = contents.substr(kMagicLen + kFrameHeaderLen, len);
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::InvalidArgument("checkpoint '" + path +
                                   "': checksum mismatch");
  }
  ByteReader epoch_reader(payload);
  const uint64_t epoch = epoch_reader.ReadU64();
  if (!epoch_reader.ok) {
    return Status::InvalidArgument("checkpoint '" + path + "': truncated");
  }
  Result<CheckpointImage> image =
      DecodeDatabaseState(epoch, payload.substr(8));
  if (!image.ok()) {
    return Status::InvalidArgument("checkpoint '" + path +
                                   "': " + image.status().message());
  }
  return image;
}

Result<CheckpointImage> DecodeDatabaseState(uint64_t epoch,
                                            const std::string& state_payload) {
  ByteReader r(state_payload);
  CheckpointImage image;
  image.epoch = epoch;
  uint32_t ntables = r.ReadU32();
  for (uint32_t t = 0; t < ntables && r.ok; ++t) {
    std::string name = r.ReadString();
    uint64_t slots = r.ReadU64();
    if (!r.Need(slots)) {  // >= 1 presence byte per slot
      return Status::InvalidArgument("state payload: implausible slot count");
    }
    std::vector<std::optional<Row>> rows;
    rows.reserve(static_cast<size_t>(slots));
    for (uint64_t s = 0; s < slots && r.ok; ++s) {
      if (r.ReadU8() != 0) {
        rows.emplace_back(r.ReadRow());
      } else {
        rows.emplace_back(std::nullopt);
      }
    }
    image.tables.emplace_back(std::move(name), std::move(rows));
  }
  if (!r.ok || r.pos != state_payload.size()) {
    return Status::InvalidArgument("state payload: truncated or trailing bytes");
  }
  return image;
}

Status WriteFileAtomicSynced(const std::string& path,
                             const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("open '" + tmp + "'");
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t w = ::write(fd, contents.data() + off, contents.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("write '" + tmp + "'");
    }
    off += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync '" + tmp + "'");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename '" + tmp + "' -> '" + path + "'");
  }
  // Make the rename itself durable.
  FsyncParentDir(path);
  return Status::OK();
}

void SetRecoveryCrashPointForTesting(int point) {
  g_recovery_crash_point = point;
}

// ------------------------------------------ Database durability glue ---

Database::~Database() {
  // Best-effort shutdown barrier: drain the pending queue and sync. Errors
  // are unreportable here; tests that care call SyncWal explicitly.
  if (durability_enabled()) {
    FlushWalPending();
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (wal_writer_ != nullptr) (void)wal_writer_->Sync();
  }
  wal_enabled_.store(false, std::memory_order_release);
  // The root context's teardown hook must run while the wal state above is
  // still alive (members are destroyed in reverse declaration order).
  root_context_.reset();
}

Status Database::EnableDurability(const DurabilityOptions& opts) {
  if (opts.wal_path.empty()) {
    return Status::InvalidArgument("EnableDurability: wal_path is empty");
  }
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_writer_ != nullptr) {
    return Status::InvalidArgument("durability is already enabled");
  }
  UFILTER_ASSIGN_OR_RETURN(
      wal_writer_, WalWriter::Open(opts.wal_path, opts.fsync_policy,
                                   opts.group_commit_size, &stats_));
  wal_status_ = Status::OK();
  wal_enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Database::wal_status() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_status_;
}

void Database::FlushWalPending() {
  if (!wal_enabled_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> wal_lock(wal_mu_);
  if (wal_writer_ == nullptr) return;
  for (;;) {
    WalRecord record;
    bool have = false;
    {
      // Brief re-lock just to pop; never hold snapshot_mu_ across the
      // write/fsync below. Lock order is always wal_mu_ -> snapshot_mu_.
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      if (!wal_pending_.empty()) {
        record.epoch = wal_pending_.front().first;
        record.ops = std::move(wal_pending_.front().second);
        wal_pending_.pop_front();
        have = true;
      }
    }
    if (!have) break;
    Status st = wal_writer_->Append(record);
    if (!st.ok()) {
      if (wal_status_.ok()) wal_status_ = st;  // sticky first failure
      break;
    }
  }
}

Status Database::SyncWal() {
  if (!durability_enabled()) return Status::OK();
  FlushWalPending();
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_writer_ == nullptr) return Status::OK();
  Status st = wal_writer_->Sync();
  if (!st.ok() && wal_status_.ok()) wal_status_ = st;
  return st.ok() ? wal_status_ : st;
}

void Database::set_wal_crash_after_bytes_for_testing(int64_t n) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_writer_ != nullptr) wal_writer_->set_crash_after_bytes_for_testing(n);
}

Result<std::string> Database::SerializePublishedState() {
  std::shared_ptr<const Snapshot> snapshot = OpenSnapshot();
  return EncodeDatabaseState(schema_, *snapshot);
}

Result<uint64_t> Database::WriteCheckpoint(const std::string& path) {
  // An MVCC snapshot makes the serialization free of coordination: writers
  // keep committing while we stream an immutable version to disk.
  std::shared_ptr<const Snapshot> snapshot = OpenSnapshot();
  const std::string state = EncodeDatabaseState(schema_, *snapshot);
  UFILTER_RETURN_NOT_OK(
      WriteFileAtomicSynced(path, EncodeCheckpointFile(snapshot->epoch(), state)));
  return snapshot->epoch();
}

Status Database::RecoverFrom(const std::string& wal_path) {
  DurabilityOptions opts;
  opts.wal_path = wal_path;
  return RecoverFrom(opts);
}

Status Database::RecoverFrom(const DurabilityOptions& opts) {
  if (opts.wal_path.empty()) {
    return Status::InvalidArgument("RecoverFrom: wal_path is empty");
  }
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    if (wal_writer_ != nullptr) {
      return Status::InvalidArgument(
          "RecoverFrom: durability already enabled (recover first, then "
          "EnableDurability)");
    }
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (commit_epoch_ != 0 || published_ != nullptr || live_dirty_) {
    return Status::InvalidArgument(
        "RecoverFrom requires a freshly created database");
  }
  for (const auto& table : tables_) {
    if (table->SlotCount() != 0) {
      return Status::InvalidArgument(
          "RecoverFrom requires a freshly created database (table '" +
          table->schema().name() + "' is not empty)");
    }
  }

  uint64_t recovered_epoch = 0;

  // Phase 1: the checkpoint (when configured and present) restores one full
  // published version, slot-exactly.
  if (!opts.checkpoint_path.empty()) {
    Result<CheckpointImage> image = ReadCheckpointFile(opts.checkpoint_path);
    if (!image.ok() && image.status().IsNotFound()) {
      // No checkpoint yet: replay the whole WAL below.
    } else if (!image.ok()) {
      return image.status();
    } else {
      recovered_epoch = image->epoch;
      UFILTER_RETURN_NOT_OK(ApplyCheckpointImageLocked(std::move(*image)));
    }
  }

  // Phase 2: replay the WAL suffix — complete, checksum-valid records with
  // epochs past the checkpoint, in strictly increasing order.
  Result<WalReadResult> wal = ReadWal(opts.wal_path);
  bool wal_file_exists = true;
  if (!wal.ok()) {
    if (!wal.status().IsNotFound()) return wal.status();
    wal_file_exists = false;  // nothing ever logged: empty history
  }
  if (wal_file_exists) {
    uint64_t last_seen = 0;
    for (WalRecord& record : wal->records) {
      if (record.epoch <= last_seen) {
        return Status::Internal("wal '" + opts.wal_path +
                                "': epochs out of order");
      }
      last_seen = record.epoch;
      if (record.epoch <= recovered_epoch) continue;  // checkpoint covers it
      for (RedoOp& op : record.ops) {
        auto it = table_index_.find(op.table);
        if (it == table_index_.end()) {
          return Status::InvalidArgument("wal references unknown table '" +
                                         op.table + "'");
        }
        Table* table = tables_[it->second].get();
        switch (op.kind) {
          case RedoOp::Kind::kInsert:
            if (op.row.size() != table->schema().columns().size()) {
              return Status::Internal("wal row arity mismatch in '" +
                                      op.table + "'");
            }
            if (table->GetRow(op.row_id) != nullptr) {
              return Status::Internal("wal replay: insert into live slot");
            }
            table->PutSlotForRecovery(op.row_id, std::move(op.row));
            break;
          case RedoOp::Kind::kDelete:
            if (table->GetRow(op.row_id) == nullptr) {
              return Status::Internal("wal replay: delete of a dead slot");
            }
            table->EraseRow(op.row_id);
            break;
          case RedoOp::Kind::kUpdate:
            if (op.row.size() != table->schema().columns().size()) {
              return Status::Internal("wal row arity mismatch in '" +
                                      op.table + "'");
            }
            if (table->GetRow(op.row_id) == nullptr) {
              return Status::Internal("wal replay: update of a dead slot");
            }
            table->OverwriteRow(op.row_id, std::move(op.row));
            break;
        }
      }
      recovered_epoch = record.epoch;
    }
    if (wal->tail_truncated) {
      // Physically discard the torn tail so a later EnableDurability
      // appends after the last complete record, not after garbage. The
      // truncation itself must be durable: without the fd fsync (and the
      // parent-directory fsync for the metadata change) a crash right here
      // could resurrect the torn tail on the *next* recovery, after new
      // records were already appended past the truncation point.
      int fd = ::open(opts.wal_path.c_str(), O_WRONLY);
      if (fd < 0) return ErrnoStatus("open wal '" + opts.wal_path + "'");
      if (::ftruncate(fd, static_cast<off_t>(wal->valid_bytes)) != 0) {
        ::close(fd);
        return ErrnoStatus("ftruncate wal '" + opts.wal_path + "'");
      }
      if (g_recovery_crash_point == 1) {
        // Crash-fuzz window: truncation issued but not yet durable.
        std::raise(SIGKILL);
        _exit(137);
      }
      if (::fsync(fd) != 0) {
        ::close(fd);
        return ErrnoStatus("fsync wal '" + opts.wal_path + "'");
      }
      ::close(fd);
      FsyncParentDir(opts.wal_path);
    }
  }

  commit_epoch_ = recovered_epoch;
  if (recovered_epoch > 0) BuildVersionLocked(recovered_epoch);
  return Status::OK();
}

Status Database::ApplyCheckpointImageLocked(CheckpointImage&& image) {
  for (auto& [name, slots] : image.tables) {
    auto it = table_index_.find(name);
    if (it == table_index_.end()) {
      return Status::InvalidArgument(
          "checkpoint table '" + name + "' is not in the schema");
    }
    Table* table = tables_[it->second].get();
    const size_t arity = table->schema().columns().size();
    for (size_t slot = 0; slot < slots.size(); ++slot) {
      if (!slots[slot].has_value()) {
        // Tombstone: materialize the empty slot so later AppendRows
        // (and WAL-replayed inserts) land on the same RowIds.
        if (table->SlotCount() <= slot) {
          table->rows_.resize(slot + 1);
        }
        continue;
      }
      if (slots[slot]->size() != arity) {
        return Status::Internal("checkpoint row arity mismatch in '" + name +
                                "'");
      }
      table->PutSlotForRecovery(static_cast<RowId>(slot),
                                std::move(*slots[slot]));
    }
  }
  return Status::OK();
}

// ------------------------------------------------- Replication apply ---

Status Database::LoadReplicatedSnapshot(uint64_t epoch,
                                        const std::string& state_payload) {
  Result<CheckpointImage> image = DecodeDatabaseState(epoch, state_payload);
  if (!image.ok()) return image.status();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (commit_epoch_ != 0 || published_ != nullptr || live_dirty_) {
    return Status::InvalidArgument(
        "LoadReplicatedSnapshot requires a freshly created database");
  }
  for (const auto& table : tables_) {
    if (table->SlotCount() != 0) {
      return Status::InvalidArgument(
          "LoadReplicatedSnapshot requires a freshly created database "
          "(table '" + table->schema().name() + "' is not empty)");
    }
  }
  UFILTER_RETURN_NOT_OK(ApplyCheckpointImageLocked(std::move(*image)));
  commit_epoch_ = epoch;
  if (epoch > 0) BuildVersionLocked(epoch);
  return Status::OK();
}

Status Database::ApplyReplicatedEpoch(const WalRecord& record) {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (record.epoch <= commit_epoch_) {
      // Resume-from-epoch duplicate (the primary re-ships from the
      // follower's last durable epoch after a reconnect): already applied.
      return Status::OK();
    }
    if (live_dirty_ || writer_depth_ > 0) {
      return Status::Internal(
          "ApplyReplicatedEpoch: local writer activity on a follower "
          "(dirty=" + std::to_string(live_dirty_) +
          " depth=" + std::to_string(writer_depth_) + ")");
    }
    // Hold writer_depth_ while ops land so OpenSnapshot's
    // publish-on-demand can never pin a half-applied epoch.
    ++writer_depth_;
  }
  auto fail = [this](Status st) {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    --writer_depth_;
    // live_dirty_ may remain set: the database is poisoned for
    // replication purposes and the follower must stop.
    return st;
  };
  const bool log_locally = wal_enabled_.load(std::memory_order_acquire);
  std::vector<RedoOp> local_ops;
  if (log_locally) local_ops.reserve(record.ops.size());
  for (const RedoOp& op : record.ops) {
    auto it = table_index_.find(op.table);
    if (it == table_index_.end()) {
      return fail(Status::InvalidArgument(
          "replicated record references unknown table '" + op.table + "'"));
    }
    // Copy-on-write keeps every pinned snapshot byte-stable while the
    // record lands — the same guarantee local writers get.
    Table* table = WritableBaseTable(it->second);
    switch (op.kind) {
      case RedoOp::Kind::kInsert:
        if (op.row.size() != table->schema().columns().size()) {
          return fail(Status::Internal("replicated row arity mismatch in '" +
                                       op.table + "'"));
        }
        if (table->GetRow(op.row_id) != nullptr) {
          return fail(
              Status::Internal("replicated apply: insert into live slot"));
        }
        table->PutSlotForRecovery(op.row_id, op.row);
        break;
      case RedoOp::Kind::kDelete:
        if (table->GetRow(op.row_id) == nullptr) {
          return fail(
              Status::Internal("replicated apply: delete of a dead slot"));
        }
        table->EraseRow(op.row_id);
        break;
      case RedoOp::Kind::kUpdate:
        if (op.row.size() != table->schema().columns().size()) {
          return fail(Status::Internal("replicated row arity mismatch in '" +
                                       op.table + "'"));
        }
        if (table->GetRow(op.row_id) == nullptr) {
          return fail(
              Status::Internal("replicated apply: update of a dead slot"));
        }
        table->OverwriteRow(op.row_id, op.row);
        break;
    }
    if (log_locally) {
      // Re-log into the follower's own WAL (sealed: no undo pairing), so a
      // restarted follower resumes from its local log instead of
      // re-bootstrapping. Published below under exactly record.epoch.
      RedoOp copy;
      copy.kind = op.kind;
      copy.table = op.table;
      copy.row_id = op.row_id;
      copy.row = op.row;
      local_ops.push_back(std::move(copy));
    }
  }
  Graveyard graveyard;
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    --writer_depth_;
    commit_epoch_ = record.epoch;
    BuildVersionLocked(record.epoch);
    if (log_locally) {
      wal_pending_.emplace_back(record.epoch, std::move(local_ops));
    }
    CollectRetiredLocked(&graveyard);
    flush = WalFlushNeededLocked();
  }
  if (flush) FlushWalPending();
  return Status::OK();
}

Status Database::FlushWalToFile() {
  if (!durability_enabled()) return Status::OK();
  FlushWalPending();
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_writer_ == nullptr) return Status::OK();
  Status st = wal_writer_->Flush();
  if (!st.ok() && wal_status_.ok()) wal_status_ = st;
  return st;
}

}  // namespace ufilter::relational
