// Cost-based probe planner: compiles a SelectQuery/DisjunctiveQuery once
// into a PhysicalPlan — all alias/column names resolved to integer slots, a
// join order chosen greedily by estimated cardinality, and a per-level
// access path picked from {unique/non-unique index lookup, IN-list union,
// hash join, scan}. The compiled plan is replayed by the QueryEvaluator's
// iterative executor with zero name resolution, which is what makes probe
// checking cheap relative to execute-detect-rollback (the paper's whole
// argument, Figs. 13-17): prepared probes compile once and only replay.
//
// The hash-join path is what rescues the outside strategy's temp-table
// joins (the paper's "TAB_book", Section 6): an index-free materialization
// joined against a base table no longer degrades to an O(n*m) nested-loop
// scan — the unindexed side is loaded into a one-shot hash table and probed
// per outer row instead.
#ifndef UFILTER_RELATIONAL_PLANNER_H_
#define UFILTER_RELATIONAL_PLANNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "relational/query.h"

namespace ufilter::relational {

/// How one join level obtains its candidate rows.
enum class AccessPath {
  kUniqueLookup,  ///< equality probe into a unique index (<= 1 candidate)
  kIndexLookup,   ///< equality probe into a non-unique index
  kInListUnion,   ///< union of per-branch index lookups (merged probes)
  kHashJoin,      ///< one-shot hash table on this (unindexed) equi-join side
  kScan,          ///< full table scan
};

const char* AccessPathName(AccessPath p);

/// A literal filter with every name resolved to slots. `table` is the
/// position in the *original* FROM list, `column` the column index within
/// that table's schema.
struct CompiledFilter {
  int table = -1;
  int column = -1;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// A join predicate with both sides resolved to slots.
struct CompiledJoin {
  int table_a = -1;
  int column_a = -1;
  int table_b = -1;
  int column_b = -1;
  CompareOp op = CompareOp::kEq;
};

/// One level of the chosen join order: which table binds here, how its
/// candidate rows are produced, and which predicates become fully bound
/// once it binds (and are therefore checked here).
struct PlanLevel {
  int table_pos = -1;  ///< position in the original FROM list
  AccessPath path = AccessPath::kScan;

  // Probe key for kUniqueLookup / kIndexLookup / kHashJoin. The key column
  // belongs to *this* table; the probe value is either a literal or the
  // bound value of an earlier level's column.
  int key_column = -1;
  bool key_is_literal = false;
  Value key_literal;
  int key_src_table = -1;   ///< FROM position of the already-bound side
  int key_src_column = -1;

  /// kInListUnion: per-branch indexed equality pin (size == branch count).
  std::vector<CompiledFilter> branch_pins;

  /// Residual literal filters on this table (the probe-driving filter, when
  /// any, is excluded: the index probe already verified it).
  std::vector<CompiledFilter> filters;
  /// Join predicates whose *later* side binds at this level. For kHashJoin
  /// the driving join stays here: the hash matches by Value::Hash and the
  /// recheck rules out collisions.
  std::vector<CompiledJoin> joins;
  /// Per-branch conjuncts on this table (outer index = branch). All branch
  /// conjuncts are rechecked — IN-list candidates are a union across
  /// branches, so membership per branch must be re-established.
  std::vector<std::vector<CompiledFilter>> branch_filters;

  /// The planner's cardinality estimate for this level (diagnostics).
  double estimated_rows = 0;

  /// True when this level's table was a *base* table at compile time and
  /// its access path can serve from the columnar cache (kScan: vectorized
  /// selection-vector filtering; kHashJoin: typed-array build). Recorded in
  /// the plan so replays are stable, but the executor still gates at
  /// runtime on the context being snapshot-pinned — only pinned reads see
  /// immutable versions — so one cached plan replays correctly under
  /// pinned and unpinned contexts alike (unpublished/dirty live tables and
  /// temp tables always take the row path).
  bool columnar = false;
};

/// \brief A compiled physical plan: replayable any number of times with
/// zero name resolution. Tables are re-resolved by name per execution (temp
/// tables may be recreated between runs); `table_arities` guards against
/// replaying a plan against a structurally different re-creation.
struct PhysicalPlan {
  std::vector<std::string> table_names;   ///< original FROM order
  std::vector<size_t> table_arities;      ///< column counts at compile time
  std::vector<std::string> column_names;  ///< "alias.column" output header
  /// Output projection: (FROM position, column index) per select.
  std::vector<std::pair<int, int>> selects;
  std::vector<PlanLevel> levels;          ///< chosen join order
  size_t branch_count = 0;
};

/// \brief Compiles SPJ queries into physical plans against a Database.
///
/// Join order is greedy by estimated cardinality given the already-placed
/// tables: unique-index equality => 1, non-unique index => bucket estimate
/// (live rows / distinct keys, or the literal's exact bucket occupancy),
/// else live_row_count. Access paths are picked per level in that cost
/// order, falling back to IN-list union (every branch pins this table with
/// an indexed equality), then hash join (equi-join to a bound table with no
/// index on this side), then scan.
class Planner {
 public:
  /// Plans against `db`'s base tables plus `ctx`'s temp tables; a null
  /// `ctx` means the database's root context.
  explicit Planner(Database* db, ExecutionContext* ctx = nullptr)
      : db_(db), ctx_(ctx != nullptr ? ctx : db->root_context()) {}

  /// Compiles a conjunctive query.
  Result<PhysicalPlan> Compile(const SelectQuery& query);

  /// Compiles a merged multi-predicate probe (base AND (b0 OR b1 OR ...)).
  Result<PhysicalPlan> CompileDisjunctive(
      const SelectQuery& base,
      const std::vector<std::vector<FilterPredicate>>& branches);

 private:
  Database* db_;
  ExecutionContext* ctx_;
};

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_PLANNER_H_
