#include "relational/dryrun.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace ufilter::relational {

namespace {

bool RowMatches(const Row& row, const TableSchema& schema,
                const std::vector<ColumnPredicate>& preds) {
  for (const ColumnPredicate& p : preds) {
    int c = schema.ColumnIndex(p.column);
    if (c < 0 ||
        !EvalCompare(row[static_cast<size_t>(c)], p.op, p.literal)) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// \brief The simulation state: per-table overlay of deleted row ids,
/// updated row images and inserted rows, layered over the live tables.
///
/// Friend of Database/Table/ExecutionContext so it can mirror the private
/// constraint machinery (unique-index scans, FK policy walks) read-only.
class OpDryRunner {
 public:
  OpDryRunner(const Database& db, const ExecutionContext* ctx)
      : db_(db), ctx_(ctx) {}

  DryRunOutcome Run(const std::vector<UpdateOp>& ops) {
    DryRunOutcome out;
    for (const UpdateOp& op : ops) {
      Status st;
      switch (op.kind) {
        case UpdateOpKind::kInsert:
          st = SimulateInsert(op, &out);
          break;
        case UpdateOpKind::kDelete:
          st = SimulateDelete(op, &out);
          break;
        case UpdateOpKind::kUpdate:
          st = SimulateUpdate(op, &out);
          break;
      }
      if (undecided_) {
        out.decided = false;
        return out;
      }
      if (!st.ok()) {
        // Real execution stops at the first failing op.
        out.decided = true;
        out.failure = st;
        return out;
      }
    }
    out.decided = true;
    return out;
  }

 private:
  struct TableOverlay {
    std::unordered_set<RowId> deleted;
    std::unordered_map<RowId, Row> updated;  ///< current simulated image
    std::vector<Row> inserted;
  };

  TableOverlay& OverlayFor(const std::string& table) {
    return overlays_[table];
  }
  const TableOverlay* FindOverlay(const std::string& table) const {
    auto it = overlays_.find(table);
    return it == overlays_.end() ? nullptr : &it->second;
  }

  Result<const Table*> ResolveTable(const std::string& name) const {
    return db_.GetTable(ctx_, name);
  }

  bool IsDeleted(const std::string& table, RowId id) const {
    const TableOverlay* ov = FindOverlay(table);
    return ov != nullptr && ov->deleted.count(id) > 0;
  }

  /// The row's current simulated image: the overlay's updated image when one
  /// exists, else the stored row. Null when stored-dead or overlay-deleted.
  const Row* EffectiveRow(const Table& t, const std::string& table,
                          RowId id) const {
    if (IsDeleted(table, id)) return nullptr;
    const TableOverlay* ov = FindOverlay(table);
    if (ov != nullptr) {
      auto it = ov->updated.find(id);
      if (it != ov->updated.end()) return &it->second;
    }
    return t.GetRow(id);
  }

  /// Find over the effective state: base index/scan candidates, minus
  /// overlay-deleted rows, predicates re-verified against updated images.
  /// Two overlay shapes break the equivalence and mark the run undecided:
  /// rows *inserted* earlier in the sequence (they carry no RowId to
  /// enumerate), and rows rewritten by an earlier *update op* (their new
  /// image may match predicates the base indexes cannot surface). SET-NULL
  /// images from the delete walk are safe — nulling columns only removes
  /// equality matches, never adds them.
  std::vector<RowId> EffectiveFind(
      const Table& t, const std::string& table,
      const std::vector<ColumnPredicate>& preds) {
    const TableOverlay* ov = FindOverlay(table);
    if ((ov != nullptr && !ov->inserted.empty()) ||
        updated_by_op_.count(table) > 0) {
      undecided_ = true;
      return {};
    }
    std::vector<RowId> out;
    for (RowId id : t.Find(preds, &db_.stats_)) {
      const Row* row = EffectiveRow(t, table, id);
      if (row != nullptr && RowMatches(*row, t.schema(), preds)) {
        out.push_back(id);
      }
    }
    return out;
  }

  /// Mirrors Table::FindUniqueConflict plus the overlay: conflicts against
  /// live base rows (skipping deleted / re-reading updated images) and
  /// against rows inserted or updated earlier in the sequence.
  bool HasUniqueConflict(const Table& t, const std::string& table,
                         const Row& row, RowId self) const {
    const TableOverlay* ov = FindOverlay(table);
    for (const Table::Index& idx : t.indexes_) {
      if (!idx.unique) continue;
      if (Table::AnyValueNull(row, idx.column_idx)) continue;  // NULL never conflicts
      auto range =
          idx.map.equal_range(Table::HashRowValues(row, idx.column_idx));
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == self) continue;
        const Row* other = EffectiveRow(t, table, it->second);
        if (other != nullptr &&
            Table::RowValuesEqual(*other, row, idx.column_idx)) {
          return true;
        }
      }
      if (ov == nullptr) continue;
      // Rows whose simulated image left the base index buckets (skipping
      // any that a later op in the sequence deleted).
      for (const auto& [id, image] : ov->updated) {
        if (id == self || ov->deleted.count(id) > 0) continue;
        if (Table::RowValuesEqual(image, row, idx.column_idx)) return true;
      }
      for (const Row& inserted : ov->inserted) {
        if (!Table::AnyValueNull(inserted, idx.column_idx) &&
            Table::RowValuesEqual(inserted, row, idx.column_idx)) {
          return true;
        }
      }
    }
    return false;
  }

  /// Mirrors Database::CheckForeignKeysExist over the effective state.
  Status CheckForeignKeysExist(const TableSchema& schema, const Row& row) {
    for (const ForeignKey& fk : schema.foreign_keys()) {
      std::vector<ColumnPredicate> preds;
      bool any_null = false;
      for (size_t i = 0; i < fk.columns.size(); ++i) {
        int c = schema.ColumnIndex(fk.columns[i]);
        const Value& v = row[static_cast<size_t>(c)];
        if (v.is_null()) {
          any_null = true;
          break;
        }
        preds.push_back({fk.ref_columns[i], CompareOp::kEq, v});
      }
      if (any_null) continue;  // NULL FKs reference nothing
      auto ref = ResolveTable(fk.ref_table);
      if (!ref.ok()) return ref.status();
      bool exists = false;
      for (RowId id : (*ref)->Find(preds, &db_.stats_)) {
        const Row* r = EffectiveRow(**ref, fk.ref_table, id);
        if (r != nullptr && RowMatches(*r, (*ref)->schema(), preds)) {
          exists = true;
          break;
        }
      }
      if (!exists) {
        const TableOverlay* ov = FindOverlay(fk.ref_table);
        if (ov != nullptr) {
          for (const Row& ins : ov->inserted) {
            if (RowMatches(ins, (*ref)->schema(), preds)) {
              exists = true;
              break;
            }
          }
          // Images rewritten earlier in the sequence may satisfy the FK
          // even though their stored (indexed) values do not.
          for (const auto& [id, image] : ov->updated) {
            if (exists) break;
            if (!IsDeleted(fk.ref_table, id) &&
                RowMatches(image, (*ref)->schema(), preds)) {
              exists = true;
            }
          }
        }
      }
      if (!exists) {
        std::vector<std::string> vals;
        for (const auto& p : preds) vals.push_back(p.literal.ToSqlLiteral());
        return Status::ConstraintViolation(
            "FK violation: " + schema.name() + " -> " + fk.ref_table + " (" +
            Join(vals, ", ") + ") has no referenced row");
      }
    }
    return Status::OK();
  }

  Status SimulateInsert(const UpdateOp& op, DryRunOutcome* out) {
    auto table = ResolveTable(op.table);
    if (!table.ok()) return table.status();
    const Table& t = **table;
    Row row(t.schema().columns().size());
    for (const auto& [name, value] : op.values) {
      int c = t.schema().ColumnIndex(name);
      if (c < 0) {
        return Status::NotFound("no column '" + name + "' in '" + op.table +
                                "'");
      }
      row[static_cast<size_t>(c)] = value;
    }
    UFILTER_RETURN_NOT_OK(db_.CheckRowConstraints(t.schema(), row));
    bool is_temp = ctx_ != nullptr && ctx_->IsTempTable(op.table);
    if (!is_temp) {
      UFILTER_RETURN_NOT_OK(CheckForeignKeysExist(t.schema(), row));
    }
    if (HasUniqueConflict(t, op.table, row, -1)) {
      return Status::ConstraintViolation("unique key violation on table '" +
                                         op.table + "'");
    }
    OverlayFor(op.table).inserted.push_back(std::move(row));
    out->rows_affected += 1;
    return Status::OK();
  }

  /// Mirrors Database::DeleteRowInternal: the recursive FK-policy walk,
  /// marking rows deleted / SET-NULLed in the overlay instead of mutating.
  Status SimulateDeleteRow(const Table& t, const std::string& table_name,
                           RowId id, int64_t* deleted_rows) {
    const Row* row_ptr = EffectiveRow(t, table_name, id);
    if (row_ptr == nullptr) return Status::OK();
    Row row = *row_ptr;  // copy: the overlay may reallocate during the walk

    for (const TableSchema& other : db_.schema_.tables()) {
      for (const ForeignKey& fk : other.foreign_keys()) {
        if (fk.ref_table != table_name) continue;
        std::vector<ColumnPredicate> preds;
        bool any_null = false;
        for (size_t i = 0; i < fk.columns.size(); ++i) {
          int rc = t.schema().ColumnIndex(fk.ref_columns[i]);
          const Value& v = row[static_cast<size_t>(rc)];
          if (v.is_null()) any_null = true;
          preds.push_back({fk.columns[i], CompareOp::kEq, v});
        }
        if (any_null) continue;
        auto ref = ResolveTable(other.name());
        if (!ref.ok()) return ref.status();
        std::vector<RowId> referencing =
            EffectiveFind(**ref, other.name(), preds);
        if (undecided_) return Status::OK();
        if (referencing.empty()) continue;
        switch (fk.on_delete) {
          case DeletePolicy::kRestrict:
            return Status::ConstraintViolation(
                "delete from '" + table_name +
                "' restricted: referenced by '" + other.name() + "'");
          case DeletePolicy::kCascade:
            for (RowId rid : referencing) {
              UFILTER_RETURN_NOT_OK(
                  SimulateDeleteRow(**ref, other.name(), rid, deleted_rows));
              if (undecided_) return Status::OK();
            }
            break;
          case DeletePolicy::kSetNull: {
            for (RowId rid : referencing) {
              const Row* old = EffectiveRow(**ref, other.name(), rid);
              if (old == nullptr) continue;
              Row updated = *old;
              bool possible = true;
              for (const std::string& c : fk.columns) {
                int ci = other.ColumnIndex(c);
                if (other.columns()[static_cast<size_t>(ci)].not_null) {
                  possible = false;
                }
                updated[static_cast<size_t>(ci)] = Value::Null();
              }
              if (!possible) {
                // SET NULL impossible on NOT NULL FK; the engine falls back
                // to cascade to preserve integrity.
                UFILTER_RETURN_NOT_OK(SimulateDeleteRow(
                    **ref, other.name(), rid, deleted_rows));
                if (undecided_) return Status::OK();
                continue;
              }
              OverlayFor(other.name()).updated[rid] = std::move(updated);
            }
            break;
          }
        }
      }
    }

    // The row may have been cascade-deleted through a cycle; re-check.
    if (EffectiveRow(t, table_name, id) == nullptr) return Status::OK();
    OverlayFor(table_name).deleted.insert(id);
    ++*deleted_rows;
    return Status::OK();
  }

  Status SimulateDelete(const UpdateOp& op, DryRunOutcome* out) {
    auto table = ResolveTable(op.table);
    if (!table.ok()) return table.status();
    int64_t deleted_rows = 0;
    for (RowId id : EffectiveFind(**table, op.table, op.where)) {
      if (undecided_) return Status::OK();
      UFILTER_RETURN_NOT_OK(
          SimulateDeleteRow(**table, op.table, id, &deleted_rows));
      if (undecided_) return Status::OK();
    }
    out->rows_affected += deleted_rows;
    return Status::OK();
  }

  Status SimulateUpdate(const UpdateOp& op, DryRunOutcome* out) {
    auto table = ResolveTable(op.table);
    if (!table.ok()) return table.status();
    const Table& t = **table;
    const TableSchema& schema = t.schema();
    for (const auto& [name, value] : op.values) {
      (void)value;
      if (!schema.HasColumn(name)) {
        return Status::NotFound("no column '" + name + "' in '" + op.table +
                                "'");
      }
    }
    bool is_temp = ctx_ != nullptr && ctx_->IsTempTable(op.table);
    for (RowId id : EffectiveFind(t, op.table, op.where)) {
      if (undecided_) return Status::OK();
      const Row* old = EffectiveRow(t, op.table, id);
      if (old == nullptr) continue;
      Row next = *old;
      for (const auto& [name, value] : op.values) {
        next[static_cast<size_t>(schema.ColumnIndex(name))] = value;
      }
      UFILTER_RETURN_NOT_OK(db_.CheckRowConstraints(schema, next));
      if (!is_temp) {
        UFILTER_RETURN_NOT_OK(CheckForeignKeysExist(schema, next));
      }
      if (HasUniqueConflict(t, op.table, next, id)) {
        return Status::ConstraintViolation("unique key violation on table '" +
                                           op.table + "'");
      }
      OverlayFor(op.table).updated[id] = std::move(next);
      updated_by_op_.insert(op.table);
      out->rows_affected += 1;
    }
    return Status::OK();
  }

  const Database& db_;
  const ExecutionContext* ctx_;
  std::unordered_map<std::string, TableOverlay> overlays_;
  /// Tables whose rows were rewritten by an update *op* (EffectiveFind on
  /// them is no longer equivalence-preserving, unlike SET-NULL images).
  std::unordered_set<std::string> updated_by_op_;
  bool undecided_ = false;
};

DryRunOutcome DryRunOps(const Database& db, const ExecutionContext* ctx,
                        const std::vector<UpdateOp>& ops) {
  return OpDryRunner(db, ctx).Run(ops);
}

}  // namespace ufilter::relational
