// Columnar projection of one immutable table version, and the vectorized
// predicate kernels that run over it.
//
// Row-store tables (std::vector<Value> rows behind std::optional slots) pay
// per-row variant dispatch and heap chasing on every full-scan predicate and
// every hash-join build — exactly the probe shapes U-Filter's anchor /
// victim / wide checks issue constantly. Since PR 5 every check reads an
// *immutable* epoch-stamped table version, which is the ideal substrate for
// a column cache: a ColumnarTable is built once (lazily, on the first
// snapshot-pinned scan) from a published Table version and is then shared by
// every reader of that version; it dies with the version when epoch GC
// retires it (the cache lives on the Table object, and copy-on-write clones
// deliberately do not inherit it — writers never see columns).
//
// Layout: one typed contiguous array per column — int64_t for INT columns,
// double for DOUBLE columns (INT values stored in DOUBLE columns are
// widened, which is lossless for predicate purposes: the engine's numeric
// comparisons and Value::Hash are AsNumber()/double-based), and a string
// pool (one concatenated byte buffer + n+1 offsets) for STRING columns —
// plus a packed null bitmap per column, elided entirely when the column has
// no NULLs.
//
// Execution model: a scan starts from the full selection vector (all live
// row positions) and applies each conjunct as a tight typed loop that
// compacts the selection vector in place — no virtual dispatch, no Value
// materialization, branchless keep/drop — so a conjunction is "fused" by
// filtering the shrinking vector predicate by predicate. Only positions that
// survive every predicate are translated back to RowIds, and row values are
// then fetched from the row store (the Table is still pinned by the same
// snapshot), which keeps results byte-identical to the row path.
#ifndef UFILTER_RELATIONAL_COLUMNAR_H_
#define UFILTER_RELATIONAL_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "relational/database.h"

namespace ufilter::relational {

/// \brief Per-column typed arrays + null bitmaps for one immutable Table.
///
/// Positions (uint32_t) index the live rows in slot order; row_ids() maps a
/// position back to the engine RowId. Immutable after Build; safe to share
/// across threads with no lock.
class ColumnarTable {
 public:
  /// A selection vector: positions into [0, row_count()), strictly
  /// increasing. Filters compact it in place.
  using Sel = std::vector<uint32_t>;

  /// Builds the columnar projection of `table` (all live rows, slot order).
  /// The table must not be mutated afterwards — callers only build from
  /// published (snapshot-pinned) versions, which copy-on-write protects.
  static std::shared_ptr<const ColumnarTable> Build(const Table& table);

  size_t row_count() const { return row_ids_.size(); }
  /// Position -> RowId map (live rows in slot order).
  const std::vector<RowId>& row_ids() const { return row_ids_; }

  /// Resets `sel` to the full selection [0, row_count()).
  void SelectAll(Sel* sel) const;

  /// Filters `sel` in place, keeping positions whose `column` value
  /// satisfies `column <op> literal` under exact EvalCompare semantics:
  /// NULL on either side never matches, numerics compare as double
  /// (AsNumber), and cross-type comparisons follow the total-order ranks
  /// (numbers sort below strings), same as the row path.
  void FilterColumn(int column, CompareOp op, const Value& literal,
                    Sel* sel) const;

  /// True when `column` is NULL at `pos`.
  bool IsNull(int column, uint32_t pos) const {
    const Column& c = columns_[static_cast<size_t>(column)];
    return c.has_nulls && GetBit(c.nulls, pos);
  }

  /// Hash-join build over typed storage: appends (Value::Hash-consistent
  /// hash, RowId) to `out` for every non-NULL row of `column`, in slot
  /// order — the columnar replacement for the per-row GetRow + Value::Hash
  /// build loop.
  void HashJoinBuild(int column,
                     std::unordered_multimap<size_t, RowId>* out) const;

 private:
  struct Column {
    ValueType type = ValueType::kString;  ///< storage kind (never kNull)
    std::vector<int64_t> i64;             ///< kInt
    std::vector<double> f64;              ///< kDouble (ints widened)
    std::string pool;                     ///< kString: concatenated bytes
    std::vector<uint32_t> str_offsets;    ///< kString: n+1 pool offsets
    std::vector<uint64_t> nulls;          ///< packed bitmap; empty if none
    bool has_nulls = false;
  };

  static bool GetBit(const std::vector<uint64_t>& bits, uint32_t pos) {
    return (bits[pos >> 6] >> (pos & 63)) & 1;
  }

  std::vector<RowId> row_ids_;
  std::vector<Column> columns_;
};

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_COLUMNAR_H_
