#include "relational/tpch.h"

#include <cmath>
#include <string>

namespace ufilter::relational::tpch {

namespace {

/// xorshift64* PRNG: deterministic across platforms, no <random> variance.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b9) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  int64_t Uniform(int64_t lo, int64_t hi) {  // inclusive
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                  hi - lo + 1));
  }

  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(Next() >> 11) /
                             9007199254740992.0);
  }

 private:
  uint64_t state_;
};

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};

}  // namespace

TpchCardinalities CardinalitiesFor(double scale) {
  TpchCardinalities c;
  c.customers = std::max(1, static_cast<int>(std::lround(150 * scale)));
  return c;
}

DatabaseSchema MakeSchema(DeletePolicy policy) {
  DatabaseSchema schema;

  TableSchema region("region");
  region.AddColumn("r_regionkey", ValueType::kInt, true)
      .AddColumn("r_name", ValueType::kString, true)
      .AddColumn("r_comment", ValueType::kString)
      .SetPrimaryKey({"r_regionkey"});
  (void)schema.AddTable(std::move(region));

  TableSchema nation("nation");
  nation.AddColumn("n_nationkey", ValueType::kInt, true)
      .AddColumn("n_name", ValueType::kString, true)
      .AddColumn("n_regionkey", ValueType::kInt)
      .AddColumn("n_comment", ValueType::kString)
      .SetPrimaryKey({"n_nationkey"})
      .AddForeignKey({{"n_regionkey"}, "region", {"r_regionkey"}, policy});
  (void)schema.AddTable(std::move(nation));

  TableSchema customer("customer");
  customer.AddColumn("c_custkey", ValueType::kInt, true)
      .AddColumn("c_name", ValueType::kString, true)
      .AddColumn("c_nationkey", ValueType::kInt)
      .AddColumn("c_acctbal", ValueType::kDouble)
      .AddColumn("c_mktsegment", ValueType::kString)
      .SetPrimaryKey({"c_custkey"})
      .AddForeignKey({{"c_nationkey"}, "nation", {"n_nationkey"}, policy});
  (void)schema.AddTable(std::move(customer));

  TableSchema orders("orders");
  orders.AddColumn("o_orderkey", ValueType::kInt, true)
      .AddColumn("o_custkey", ValueType::kInt)
      .AddColumn("o_totalprice", ValueType::kDouble)
      .AddColumn("o_orderstatus", ValueType::kString)
      .AddColumn("o_orderyear", ValueType::kInt)
      .SetPrimaryKey({"o_orderkey"})
      .AddForeignKey({{"o_custkey"}, "customer", {"c_custkey"}, policy});
  orders.AddCheck("o_totalprice", CompareOp::kGt, Value::Double(0.0));
  (void)schema.AddTable(std::move(orders));

  TableSchema lineitem("lineitem");
  lineitem.AddColumn("l_orderkey", ValueType::kInt, true)
      .AddColumn("l_linenumber", ValueType::kInt, true)
      .AddColumn("l_quantity", ValueType::kInt)
      .AddColumn("l_extendedprice", ValueType::kDouble)
      .AddColumn("l_shipmode", ValueType::kString)
      .SetPrimaryKey({"l_orderkey", "l_linenumber"})
      .AddForeignKey({{"l_orderkey"}, "orders", {"o_orderkey"}, policy});
  lineitem.AddCheck("l_quantity", CompareOp::kGt, Value::Int(0));
  (void)schema.AddTable(std::move(lineitem));

  return schema;
}

Result<std::unique_ptr<Database>> MakeDatabase(const TpchOptions& options) {
  UFILTER_ASSIGN_OR_RETURN(
      std::unique_ptr<Database> db,
      Database::Create(MakeSchema(options.delete_policy)));
  Rng rng(options.seed);
  TpchCardinalities card = CardinalitiesFor(options.scale);

  for (int r = 0; r < card.regions; ++r) {
    UFILTER_RETURN_NOT_OK(
        db->Insert("region", {Value::Int(r), Value::String(kRegionNames[r % 5]),
                              Value::String("region comment " +
                                            std::to_string(r))})
            .status());
  }
  int nations = card.regions * card.nations_per_region;
  for (int n = 0; n < nations; ++n) {
    UFILTER_RETURN_NOT_OK(
        db->Insert("nation",
                   {Value::Int(n), Value::String("NATION_" + std::to_string(n)),
                    Value::Int(n % card.regions),
                    Value::String("nation comment")})
            .status());
  }
  for (int c = 0; c < card.customers; ++c) {
    UFILTER_RETURN_NOT_OK(
        db->Insert("customer",
                   {Value::Int(c),
                    Value::String("Customer#" + std::to_string(c)),
                    Value::Int(rng.Uniform(0, nations - 1)),
                    Value::Double(rng.UniformDouble(-999.0, 9999.0)),
                    Value::String(c % 2 == 0 ? "BUILDING" : "MACHINERY")})
            .status());
  }
  int order_key = 0;
  for (int c = 0; c < card.customers; ++c) {
    for (int o = 0; o < card.orders_per_customer; ++o) {
      int my_order = order_key++;
      UFILTER_RETURN_NOT_OK(
          db->Insert("orders",
                     {Value::Int(my_order), Value::Int(c),
                      Value::Double(rng.UniformDouble(10.0, 500000.0)),
                      Value::String(my_order % 3 == 0 ? "F" : "O"),
                      Value::Int(rng.Uniform(1992, 1998))})
              .status());
      for (int l = 0; l < card.lineitems_per_order; ++l) {
        UFILTER_RETURN_NOT_OK(
            db->Insert("lineitem",
                       {Value::Int(my_order), Value::Int(l + 1),
                        Value::Int(rng.Uniform(1, 50)),
                        Value::Double(rng.UniformDouble(1.0, 100000.0)),
                        Value::String(l % 2 == 0 ? "AIR" : "TRUCK")})
                .status());
      }
    }
  }
  // Everything generated so far is baseline data, not transaction work.
  db->Checkpoint();
  return db;
}

}  // namespace ufilter::relational::tpch
