#include "relational/sqlgen.h"

#include "common/strings.h"

namespace ufilter::relational {

std::string UpdateOp::ToSql() const {
  switch (kind) {
    case UpdateOpKind::kInsert: {
      std::vector<std::string> cols, vals;
      for (const auto& [name, value] : values) {
        cols.push_back(name);
        vals.push_back(value.ToSqlLiteral());
      }
      return "INSERT INTO " + table + " (" + Join(cols, ", ") + ") VALUES (" +
             Join(vals, ", ") + ")";
    }
    case UpdateOpKind::kDelete: {
      std::string sql = "DELETE FROM " + table;
      if (!where.empty()) {
        std::vector<std::string> preds;
        for (const ColumnPredicate& p : where) preds.push_back(p.ToString());
        sql += " WHERE " + Join(preds, " AND ");
      }
      return sql;
    }
    case UpdateOpKind::kUpdate: {
      std::vector<std::string> sets;
      for (const auto& [name, value] : values) {
        sets.push_back(name + " = " + value.ToSqlLiteral());
      }
      std::string sql = "UPDATE " + table + " SET " + Join(sets, ", ");
      if (!where.empty()) {
        std::vector<std::string> preds;
        for (const ColumnPredicate& p : where) preds.push_back(p.ToString());
        sql += " WHERE " + Join(preds, " AND ");
      }
      return sql;
    }
  }
  return "";
}

std::string UpdateSequenceToSql(const std::vector<UpdateOp>& ops) {
  std::vector<std::string> lines;
  for (const UpdateOp& op : ops) lines.push_back(op.ToSql() + ";");
  return Join(lines, "\n");
}

}  // namespace ufilter::relational
