// Conjunctive select-project-join queries and their evaluator. This is the
// fragment U-Filter needs: view queries compose into SPJ probe queries
// (Section 6.1), which the engine evaluates with index-backed left-deep
// joins. Materialization of probe results into temp tables is supported for
// the outside strategy (the paper's "TAB_book").
#ifndef UFILTER_RELATIONAL_QUERY_H_
#define UFILTER_RELATIONAL_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace ufilter::relational {

/// `alias.column` reference into a query's FROM list.
struct ColRef {
  std::string alias;
  std::string column;

  std::string ToString() const { return alias + "." + column; }
  bool operator==(const ColRef& o) const {
    return alias == o.alias && column == o.column;
  }
};

/// Equi/theta join between two aliases: `a <op> b`.
struct JoinPredicate {
  ColRef a;
  CompareOp op = CompareOp::kEq;
  ColRef b;
};

/// Filter against a literal: `col <op> literal`.
struct FilterPredicate {
  ColRef col;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// \brief A conjunctive SPJ query: SELECT selects FROM tables WHERE
/// joins AND filters.
struct SelectQuery {
  struct TableRef {
    std::string table;  ///< table name in the database
    std::string alias;  ///< unique alias within the query
  };

  std::vector<ColRef> selects;
  std::vector<TableRef> tables;
  std::vector<JoinPredicate> joins;
  std::vector<FilterPredicate> filters;

  /// SQL text rendering of this query.
  std::string ToSql() const;
};

/// \brief Evaluation output: projected rows plus, per result row, the row id
/// of each participating table (needed to translate updates to ROWIDs).
struct QueryResult {
  std::vector<std::string> column_names;  ///< "alias.column"
  std::vector<Row> rows;
  /// row_ids[i][j] = RowId in tables[j] contributing to rows[i].
  std::vector<std::vector<RowId>> row_ids;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }
};

/// \brief A merged multi-predicate probe: one SPJ base (FROM/joins/shared
/// filters) plus N predicate *branches*, evaluated as
/// `base AND (branch_0 OR branch_1 OR ...)`.
///
/// This is how U-Filter's CheckBatch folds the per-update probe queries of N
/// updates that target the same relation chain into a single engine query:
/// the base is the shared view chain, each branch carries one update's WHERE
/// conjuncts. A result row belongs to every branch whose conjuncts it
/// satisfies (demultiplexed in DisjunctiveResult). An empty branch list
/// degenerates to the plain SelectQuery.
struct DisjunctiveQuery {
  SelectQuery base;
  std::vector<std::vector<FilterPredicate>> branches;

  std::string ToSql() const;
};

/// \brief Merged probe output: the union result plus the per-branch
/// demultiplexing map.
struct DisjunctiveResult {
  QueryResult merged;
  /// branch_rows[b] = indexes into merged.rows satisfying branch b.
  std::vector<std::vector<size_t>> branch_rows;

  /// Extracts branch `b` as a standalone QueryResult (copies its rows).
  QueryResult Extract(size_t b) const;
};

struct PhysicalPlan;  // relational/planner.h

/// \brief Evaluates SPJ queries against a Database.
///
/// Every query is compiled by the cost-based Planner (relational/planner.h)
/// into a PhysicalPlan — names resolved to slots, join order chosen by
/// estimated cardinality, per-level access paths picked from
/// {unique/non-unique index lookup, IN-list union, hash join, scan} — and
/// run by an iterative executor. Callers holding a long-lived query replay
/// a cached plan through ExecutePlan with zero name resolution. Result rows
/// are ordered lexicographically by contributing row ids in FROM order
/// (identical to the retained reference interpreter).
class QueryEvaluator {
 public:
  /// Evaluates against `db`'s base tables plus `ctx`'s temp tables; a null
  /// `ctx` means the database's root context (single-session convenience).
  /// Temp tables created by MaterializeInto land in that context.
  explicit QueryEvaluator(Database* db, ExecutionContext* ctx = nullptr)
      : db_(db), ctx_(ctx != nullptr ? ctx : db->root_context()) {}

  Result<QueryResult> Execute(const SelectQuery& query);

  /// Evaluates a merged multi-predicate probe in one pass. Candidate
  /// generation can still use indexes: when every branch constrains a table
  /// with an equality on an indexed column, the scan is replaced by the
  /// union of the branches' index lookups (an IN-list probe).
  Result<DisjunctiveResult> ExecuteDisjunctive(const DisjunctiveQuery& query);

  /// Replays a previously compiled plan (counts as a plan replay: zero
  /// name resolution or planning happens here). Tables are re-resolved by
  /// name, so a plan stays valid across temp-table re-creations as long as
  /// the arities still match.
  Result<DisjunctiveResult> ExecutePlan(const PhysicalPlan& plan);

  /// The pre-planner recursive interpreter (left-deep in FROM order),
  /// retained as the semantic reference for differential testing and as
  /// the interpreted baseline in bench_planner. Produces identical rows /
  /// row_ids / branch demux as the compiled executor.
  Result<DisjunctiveResult> ExecuteReference(
      const SelectQuery& base,
      const std::vector<std::vector<FilterPredicate>>& branches);

  /// Executes `query` and materializes the full result (all selected
  /// columns) into a temp table named `temp_name` with no indexes. Column
  /// types are inferred in one pass over the result; rows are bulk-loaded.
  Status MaterializeInto(const SelectQuery& query,
                         const std::string& temp_name);

 private:
  /// Shared core: compile `base` (+ optional OR of predicate branches)
  /// into a PhysicalPlan and run it.
  Result<DisjunctiveResult> ExecuteImpl(
      const SelectQuery& base,
      const std::vector<std::vector<FilterPredicate>>& branches);

  /// The iterative compiled-plan executor (no replay counting).
  Result<DisjunctiveResult> RunPlan(const PhysicalPlan& plan);

  Database* db_;
  ExecutionContext* ctx_;
};

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_QUERY_H_
