// Relational schema model: columns, constraints (PRIMARY KEY, UNIQUE,
// NOT NULL, CHECK, FOREIGN KEY with delete policies) and table/database
// schema containers. This is the `{(R1..Rn), F}` of the paper's Section 2.
#ifndef UFILTER_RELATIONAL_SCHEMA_H_
#define UFILTER_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace ufilter::relational {

/// One conjunct of a column CHECK constraint: `column <op> literal`.
/// CHECK (price > 0.00) becomes {kGt, 0.00}.
struct CheckPredicate {
  CompareOp op;
  Value literal;

  /// True if `v` satisfies this conjunct (NULL satisfies any CHECK, per SQL).
  bool Admits(const Value& v) const {
    return v.is_null() || EvalCompare(v, op, literal);
  }

  std::string ToString(const std::string& column_name) const;
};

/// Column definition with its local constraints.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
  bool not_null = false;
  bool unique = false;  ///< standalone UNIQUE constraint
  /// Conjunction of CHECK predicates over this column.
  std::vector<CheckPredicate> checks;
};

/// Action taken on referencing rows when a referenced row is deleted.
enum class DeletePolicy {
  kCascade,
  kSetNull,
  kRestrict,
};

const char* DeletePolicyName(DeletePolicy p);

/// FOREIGN KEY (columns) REFERENCES ref_table (ref_columns).
struct ForeignKey {
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
  DeletePolicy on_delete = DeletePolicy::kCascade;
};

/// \brief Schema of one relation.
class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Adds a column; returns *this for fluent construction.
  TableSchema& AddColumn(Column column);
  TableSchema& AddColumn(const std::string& name, ValueType type,
                         bool not_null = false);
  /// Declares the primary key (columns must exist). PK columns become
  /// NOT NULL implicitly.
  TableSchema& SetPrimaryKey(std::vector<std::string> columns);
  TableSchema& AddForeignKey(ForeignKey fk);
  /// Appends a CHECK conjunct to an existing column.
  TableSchema& AddCheck(const std::string& column, CompareOp op, Value literal);
  /// Marks an existing column UNIQUE (and NOT NULL if `not_null`).
  TableSchema& SetUnique(const std::string& column);

  /// Index of `column` or -1.
  int ColumnIndex(const std::string& column) const;
  bool HasColumn(const std::string& column) const {
    return ColumnIndex(column) >= 0;
  }
  Result<const Column*> FindColumn(const std::string& column) const;

  /// True if `column` alone is a unique identifier of this relation: it is
  /// the (single-column) primary key or carries a UNIQUE constraint. Used by
  /// STAR Rule 1's "proper Join" test.
  bool IsUniqueIdentifier(const std::string& column) const;

  /// True if `column` participates in the primary key.
  bool IsKeyColumn(const std::string& column) const;

  /// CREATE TABLE rendering (for docs/examples/debugging).
  std::string ToCreateSql() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::string> primary_key_;
  std::vector<ForeignKey> foreign_keys_;
};

/// \brief Schema of a relational database: named tables plus the global
/// constraint set implied by their foreign keys.
class DatabaseSchema {
 public:
  /// Adds a table schema; fails on duplicate names or dangling FK targets
  /// (FKs may reference tables added later; validated by `Validate`).
  Status AddTable(TableSchema table);

  const std::vector<TableSchema>& tables() const { return tables_; }
  Result<const TableSchema*> FindTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Checks FK targets exist with matching arity.
  Status Validate() const;

  /// Tables holding a foreign key that references `table` (direct, one hop).
  std::vector<std::string> ReferencingTables(const std::string& table) const;

  /// extend(R) of the paper (Section 5.1, Rule 2): relations that refer to R
  /// through foreign key constraint(s), transitively, **including R itself**.
  /// Under kCascade every FK hop propagates. Under kSetNull a hop propagates
  /// only when the FK columns are declared NOT NULL (SET NULL would be
  /// impossible, so the row must go away); nullable-FK referencers survive
  /// the delete. Under kRestrict nothing beyond R is affected (the delete is
  /// rejected instead).
  std::vector<std::string> Extend(const std::string& table) const;

 private:
  std::vector<TableSchema> tables_;
  std::map<std::string, size_t> by_name_;
};

}  // namespace ufilter::relational

#endif  // UFILTER_RELATIONAL_SCHEMA_H_
