#include "relational/schema.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace ufilter::relational {

std::string CheckPredicate::ToString(const std::string& column_name) const {
  return column_name + " " + CompareOpSymbol(op) + " " + literal.ToText();
}

const char* DeletePolicyName(DeletePolicy p) {
  switch (p) {
    case DeletePolicy::kCascade:
      return "CASCADE";
    case DeletePolicy::kSetNull:
      return "SET NULL";
    case DeletePolicy::kRestrict:
      return "RESTRICT";
  }
  return "?";
}

TableSchema& TableSchema::AddColumn(Column column) {
  columns_.push_back(std::move(column));
  return *this;
}

TableSchema& TableSchema::AddColumn(const std::string& name, ValueType type,
                                    bool not_null) {
  Column c;
  c.name = name;
  c.type = type;
  c.not_null = not_null;
  return AddColumn(std::move(c));
}

TableSchema& TableSchema::SetPrimaryKey(std::vector<std::string> columns) {
  primary_key_ = std::move(columns);
  for (const std::string& pk : primary_key_) {
    int idx = ColumnIndex(pk);
    if (idx >= 0) columns_[idx].not_null = true;
  }
  return *this;
}

TableSchema& TableSchema::AddForeignKey(ForeignKey fk) {
  foreign_keys_.push_back(std::move(fk));
  return *this;
}

TableSchema& TableSchema::AddCheck(const std::string& column, CompareOp op,
                                   Value literal) {
  int idx = ColumnIndex(column);
  if (idx >= 0) columns_[idx].checks.push_back({op, std::move(literal)});
  return *this;
}

TableSchema& TableSchema::SetUnique(const std::string& column) {
  int idx = ColumnIndex(column);
  if (idx >= 0) columns_[idx].unique = true;
  return *this;
}

int TableSchema::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

Result<const Column*> TableSchema::FindColumn(const std::string& column) const {
  int idx = ColumnIndex(column);
  if (idx < 0) {
    return Status::NotFound("no column '" + column + "' in table '" + name_ +
                            "'");
  }
  return &columns_[idx];
}

bool TableSchema::IsUniqueIdentifier(const std::string& column) const {
  if (primary_key_.size() == 1 && primary_key_[0] == column) return true;
  int idx = ColumnIndex(column);
  return idx >= 0 && columns_[idx].unique;
}

bool TableSchema::IsKeyColumn(const std::string& column) const {
  return std::find(primary_key_.begin(), primary_key_.end(), column) !=
         primary_key_.end();
}

std::string TableSchema::ToCreateSql() const {
  std::vector<std::string> items;
  for (const Column& c : columns_) {
    std::string line = c.name + " " + ValueTypeName(c.type);
    if (c.not_null) line += " NOT NULL";
    if (c.unique) line += " UNIQUE";
    for (const CheckPredicate& chk : c.checks) {
      line += " CHECK (" + chk.ToString(c.name) + ")";
    }
    items.push_back(line);
  }
  if (!primary_key_.empty()) {
    items.push_back("PRIMARY KEY (" + Join(primary_key_, ", ") + ")");
  }
  for (const ForeignKey& fk : foreign_keys_) {
    items.push_back("FOREIGN KEY (" + Join(fk.columns, ", ") + ") REFERENCES " +
                    fk.ref_table + " (" + Join(fk.ref_columns, ", ") +
                    ") ON DELETE " + DeletePolicyName(fk.on_delete));
  }
  return "CREATE TABLE " + name_ + " (\n  " + Join(items, ",\n  ") + "\n)";
}

Status DatabaseSchema::AddTable(TableSchema table) {
  if (by_name_.count(table.name()) > 0) {
    return Status::InvalidArgument("duplicate table '" + table.name() + "'");
  }
  by_name_[table.name()] = tables_.size();
  tables_.push_back(std::move(table));
  return Status::OK();
}

Result<const TableSchema*> DatabaseSchema::FindTable(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return &tables_[it->second];
}

bool DatabaseSchema::HasTable(const std::string& name) const {
  return by_name_.count(name) > 0;
}

Status DatabaseSchema::Validate() const {
  for (const TableSchema& t : tables_) {
    for (const ForeignKey& fk : t.foreign_keys()) {
      auto ref = FindTable(fk.ref_table);
      if (!ref.ok()) {
        return Status::InvalidArgument("table '" + t.name() +
                                       "' references missing table '" +
                                       fk.ref_table + "'");
      }
      if (fk.columns.size() != fk.ref_columns.size() || fk.columns.empty()) {
        return Status::InvalidArgument("malformed foreign key on '" +
                                       t.name() + "'");
      }
      for (const std::string& c : fk.columns) {
        if (!t.HasColumn(c)) {
          return Status::InvalidArgument("FK column '" + c +
                                         "' missing in '" + t.name() + "'");
        }
      }
      for (const std::string& c : fk.ref_columns) {
        if (!(*ref)->HasColumn(c)) {
          return Status::InvalidArgument("FK target column '" + c +
                                         "' missing in '" + fk.ref_table +
                                         "'");
        }
      }
    }
  }
  return Status::OK();
}

std::vector<std::string> DatabaseSchema::ReferencingTables(
    const std::string& table) const {
  std::vector<std::string> out;
  for (const TableSchema& t : tables_) {
    for (const ForeignKey& fk : t.foreign_keys()) {
      if (fk.ref_table == table) {
        out.push_back(t.name());
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> DatabaseSchema::Extend(
    const std::string& table) const {
  std::set<std::string> reached = {table};
  std::vector<std::string> frontier = {table};
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    for (const TableSchema& t : tables_) {
      if (reached.count(t.name()) > 0) continue;
      for (const ForeignKey& fk : t.foreign_keys()) {
        if (fk.ref_table != current) continue;
        bool propagates = false;
        switch (fk.on_delete) {
          case DeletePolicy::kCascade:
            propagates = true;
            break;
          case DeletePolicy::kSetNull: {
            // SET NULL only destroys the referencing row if the FK column
            // is NOT NULL (then the policy is inapplicable and the row must
            // be removed to preserve integrity).
            for (const std::string& c : fk.columns) {
              auto col = t.FindColumn(c);
              if (col.ok() && (*col)->not_null) propagates = true;
            }
            break;
          }
          case DeletePolicy::kRestrict:
            propagates = false;
            break;
        }
        if (propagates) {
          reached.insert(t.name());
          frontier.push_back(t.name());
          break;
        }
      }
    }
  }
  return {reached.begin(), reached.end()};
}

}  // namespace ufilter::relational
