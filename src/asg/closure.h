// Closures (Section 5.1.2): the nested leaf-name structure describing what
// an update on a node affects. `1`/`?` cardinalities are inlined, `+`/`*`
// become starred subgroups annotated with their join condition. Closures are
// kept canonical (sorted) so ≡ is structural equality and ⊆ is "appears in".
#ifndef UFILTER_ASG_CLOSURE_H_
#define UFILTER_ASG_CLOSURE_H_

#include <string>
#include <vector>

namespace ufilter::asg {

/// \brief A canonical closure: inline leaf names plus starred subgroups.
///
/// Example (Fig. 8): closure(vC1) =
///   {book.bookid, book.title, book.price, publisher.pubid,
///    publisher.pubname, (review.reviewid, review.comment)*cond}.
struct ClosureStarred;

struct Closure {
  std::vector<std::string> leaves;  ///< sorted R.a names (inline, card 1/?)
  using Starred = ClosureStarred;
  std::vector<ClosureStarred> starred;  ///< sorted by serialization

  /// Restores canonical form after mutation.
  void Normalize();

  /// Canonical serialization, e.g. "{a.x,b.y,(c.z)*[a.x=c.w]}".
  std::string Serialize() const;

  /// Structural equality (requires both normalized).
  bool Equals(const Closure& other) const;

  /// `this ⊆ other`: this closure equals `other` or appears as a nested
  /// starred group of `other` (any depth), or this closure's members all
  /// appear at `other`'s top level.
  bool ContainedIn(const Closure& other) const;

  /// ⊔ : merges `other`'s top level into this one, deduplicating leaves and
  /// structurally equal subgroups.
  void UnionWith(const Closure& other);

  bool empty() const { return leaves.empty() && starred.empty(); }
};

/// A starred subgroup of a closure: `(group)*[condition]`.
struct ClosureStarred {
  Closure group;
  std::string condition;  ///< normalized join condition label ("" if none)
};

/// Appends every leaf name occurring anywhere in `c` (any depth) to `out`
/// (the paper's getNodes()).
void CollectClosureLeaves(const Closure& c, std::vector<std::string>* out);

/// Normalizes a join-condition label: "R.a = S.b" with sides sorted so the
/// same join written either way compares equal. Non-equality conditions keep
/// their operator between the sorted sides.
std::string NormalizeCondition(const std::string& lhs, const std::string& op,
                               const std::string& rhs);

}  // namespace ufilter::asg

#endif  // UFILTER_ASG_CLOSURE_H_
