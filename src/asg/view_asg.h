// Annotated Schema Graphs (Section 3): the view ASG models the view's
// hierarchical structure with node/edge annotations (name, type, property,
// check; UCBinding/UPBinding; cardinality + join condition); the base ASG is
// the DAG of relations referenced by the view, connected by foreign keys.
// Both carry everything the schema-level checking steps (1 and 2) need.
#ifndef UFILTER_ASG_VIEW_ASG_H_
#define UFILTER_ASG_VIEW_ASG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "asg/closure.h"
#include "common/result.h"
#include "relational/schema.h"
#include "view/analyzed_view.h"

namespace ufilter::asg {

/// Node kinds of the view ASG (Section 3.2): root vR, internal vC, tag vS,
/// leaf vL.
enum class NodeKind { kRoot, kComplex, kTag, kLeaf };

const char* NodeKindName(NodeKind k);

/// Edge cardinality annotation. `+` collapses into `*` (closure convention).
enum class Cardinality { kOne, kOpt, kStar };

const char* CardinalityName(Cardinality c);

/// STAR marks (Section 5.1): update context (safe/unsafe per op) and update
/// point (clean/dirty).
struct StarMark {
  bool safe_delete = true;
  bool safe_insert = true;
  bool clean = true;
  std::string unsafe_delete_reason;
  std::string unsafe_insert_reason;

  std::string ToString() const;
};

/// \brief One node of the view ASG with its annotations.
struct ViewNode {
  int id = -1;
  NodeKind kind = NodeKind::kComplex;
  std::string tag;  ///< name annotation (element/attribute tag)

  // Leaf annotation (kLeaf): relational provenance + local constraints.
  std::string relation;
  std::string attr;
  std::string variable;  ///< view-query variable the projection came from
  ValueType type = ValueType::kString;
  bool not_null = false;
  std::vector<relational::CheckPredicate> checks;  ///< DB CHECKs + query preds

  // Global-structure annotations.
  std::vector<std::string> uc_binding;  ///< sorted UCBinding relation names
  std::vector<std::string> up_binding;  ///< sorted UPBinding relation names

  int parent = -1;
  std::vector<int> children;
  /// Incoming edge annotations.
  Cardinality card = Cardinality::kOne;
  std::vector<view::ResolvedCondition> edge_conditions;

  /// Link back to the analyzed-view node this ASG node models (null for
  /// synthesized leaf nodes).
  const view::AvNode* av = nullptr;

  StarMark mark;

  bool is_internal() const { return kind == NodeKind::kComplex; }
};

/// \brief The view ASG GV.
class ViewAsg {
 public:
  /// Builds GV from an analyzed view. Leaf checks merge the relational CHECK
  /// constraints with the view query's non-correlation predicates on the
  /// same attribute (e.g. Fig. 8's {0.00 < value < 50.00} on book.price).
  static Result<std::unique_ptr<ViewAsg>> Build(
      const view::AnalyzedView& view);

  const std::vector<ViewNode>& nodes() const { return nodes_; }
  std::vector<ViewNode>& mutable_nodes() { return nodes_; }
  const ViewNode& root() const { return nodes_[0]; }
  const ViewNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  ViewNode& mutable_node(int id) { return nodes_[static_cast<size_t>(id)]; }

  /// ASG node for an analyzed-view element, or null.
  const ViewNode* NodeForAv(const view::AvNode* av) const;

  /// Current Relations CR(v) = UCBinding(v) - UCBinding(parent element).
  std::vector<std::string> CurrentRelations(int id) const;

  /// True if `maybe_descendant` lies in the subtree rooted at `id`
  /// (inclusive).
  bool IsDescendant(int id, int maybe_descendant) const;

  /// True when no `*` edge occurs on the path root -> node's parent, i.e.
  /// the node's parent has exactly one instance per view.
  bool ParentIsSingleInstance(int id) const;

  /// Closure v+ of the node (Section 5.1.2).
  Closure NodeClosure(int id) const;

  /// All leaf nodes (ids) of the subtree rooted at `id`.
  std::vector<int> SubtreeLeaves(int id) const;

  /// Human-readable annotation tables (Fig. 8 style).
  std::string ToString() const;

  const view::AnalyzedView& analyzed_view() const { return *view_; }

  /// Builder hook: records the analyzed-view provenance of a node.
  void RegisterAv(const view::AvNode* av, int id) { av_to_node_[av] = id; }

 private:
  ViewAsg() = default;

  std::vector<ViewNode> nodes_;
  std::map<const view::AvNode*, int> av_to_node_;
  const view::AnalyzedView* view_ = nullptr;
};

/// \brief The base ASG GD (Fig. 9): relations referenced by view leaves,
/// linked by the foreign keys among them.
class BaseAsg {
 public:
  /// Builds GD from the analyzed view and the relational schema. Closure
  /// propagation across FK edges honors each FK's delete policy (Section
  /// 5.1.2: "the policy used affects only the closure definitions of the
  /// base ASG").
  static BaseAsg Build(const view::AnalyzedView& view);

  /// Relations included in GD.
  const std::vector<std::string>& relations() const { return relations_; }
  bool HasRelation(const std::string& name) const;

  /// View-referenced leaf attrs ("R.a") of one relation, sorted.
  const std::vector<std::string>& RelationLeaves(
      const std::string& relation) const;

  /// Closure n+ of a relation node (policy-aware FK descent).
  Closure RelationClosure(const std::string& relation) const;

  /// All relations reachable inside RelationClosure(relation) (excluding
  /// `relation` itself).
  std::vector<std::string> NestedRelations(const std::string& relation) const;

  /// Mapping closure N+ of a set of base leaf names with the ⊔ dedup
  /// (Section 5.1.2).
  Closure MappingClosure(const std::vector<std::string>& leaf_names) const;

  /// Fig. 9-style dump.
  std::string ToString() const;

 private:
  struct Rel {
    std::vector<std::string> leaves;  ///< "R.a", sorted
    /// FK children (referencing relations) with normalized join condition
    /// and whether deletion propagates there under the FK's policy.
    struct Child {
      std::string relation;
      std::string condition;
      bool propagates = true;
    };
    std::vector<Child> children;
  };

  Closure ClosureOf(const std::string& relation,
                    std::vector<std::string>* visiting) const;

  std::vector<std::string> relations_;
  std::map<std::string, Rel> rels_;
  const relational::DatabaseSchema* schema_ = nullptr;
};

}  // namespace ufilter::asg

#endif  // UFILTER_ASG_VIEW_ASG_H_
