#include "asg/closure.h"

#include <algorithm>
#include <set>

namespace ufilter::asg {

void Closure::Normalize() {
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  for (Starred& s : starred) s.group.Normalize();
  std::sort(starred.begin(), starred.end(),
            [](const Starred& a, const Starred& b) {
              return a.group.Serialize() + a.condition <
                     b.group.Serialize() + b.condition;
            });
}

std::string Closure::Serialize() const {
  std::string out = "{";
  bool first = true;
  for (const std::string& l : leaves) {
    if (!first) out += ",";
    out += l;
    first = false;
  }
  for (const Starred& s : starred) {
    if (!first) out += ",";
    out += "(" + s.group.Serialize() + ")*";
    if (!s.condition.empty()) out += "[" + s.condition + "]";
    first = false;
  }
  out += "}";
  return out;
}

bool Closure::Equals(const Closure& other) const {
  return Serialize() == other.Serialize();
}

bool Closure::ContainedIn(const Closure& other) const {
  if (Equals(other)) return true;
  // Appears as a nested starred group?
  for (const Starred& s : other.starred) {
    if (ContainedIn(s.group)) return true;
  }
  // All members appear at other's top level?
  if (!leaves.empty() || !starred.empty()) {
    std::set<std::string> other_leaves(other.leaves.begin(),
                                       other.leaves.end());
    for (const std::string& l : leaves) {
      if (other_leaves.count(l) == 0) return false;
    }
    for (const Starred& s : starred) {
      bool found = false;
      for (const Starred& os : other.starred) {
        if (s.group.Equals(os.group) && s.condition == os.condition) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }
  return false;
}

void Closure::UnionWith(const Closure& other) {
  for (const std::string& l : other.leaves) leaves.push_back(l);
  for (const Starred& s : other.starred) {
    bool dup = false;
    for (const Starred& mine : starred) {
      if (mine.group.Equals(s.group) && mine.condition == s.condition) {
        dup = true;
        break;
      }
    }
    if (!dup) starred.push_back(s);
  }
  Normalize();
}

void CollectClosureLeaves(const Closure& c, std::vector<std::string>* out) {
  for (const std::string& l : c.leaves) out->push_back(l);
  for (const Closure::Starred& s : c.starred) {
    CollectClosureLeaves(s.group, out);
  }
}

std::string NormalizeCondition(const std::string& lhs, const std::string& op,
                               const std::string& rhs) {
  if (op == "=") {
    return lhs < rhs ? lhs + "=" + rhs : rhs + "=" + lhs;
  }
  return lhs + op + rhs;
}

}  // namespace ufilter::asg
