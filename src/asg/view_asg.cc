#include "asg/view_asg.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace ufilter::asg {

using view::AnalyzedView;
using view::AvNode;
using view::ResolvedCondition;
using view::Scope;

const char* NodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::kRoot:
      return "root";
    case NodeKind::kComplex:
      return "internal";
    case NodeKind::kTag:
      return "tag";
    case NodeKind::kLeaf:
      return "leaf";
  }
  return "?";
}

const char* CardinalityName(Cardinality c) {
  switch (c) {
    case Cardinality::kOne:
      return "1";
    case Cardinality::kOpt:
      return "?";
    case Cardinality::kStar:
      return "*";
  }
  return "?";
}

std::string StarMark::ToString() const {
  std::string out = clean ? "clean" : "dirty";
  out += " | ";
  out += safe_delete ? "safe-delete" : "unsafe-delete";
  out += ", ";
  out += safe_insert ? "safe-insert" : "unsafe-insert";
  return out;
}

namespace {

/// Normalized label of the conjunction of edge conditions.
std::string ConditionLabel(const std::vector<ResolvedCondition>& conds) {
  std::vector<std::string> labels;
  for (const ResolvedCondition& c : conds) {
    if (!c.is_correlation) continue;
    labels.push_back(NormalizeCondition(c.lhs.ToString(),
                                        CompareOpSymbol(c.op),
                                        c.rhs.ToString()));
  }
  std::sort(labels.begin(), labels.end());
  return Join(labels, " AND ");
}

class ViewAsgBuilder {
 public:
  explicit ViewAsgBuilder(const AnalyzedView& view) : view_(view) {}

  Result<std::unique_ptr<ViewAsg>> Run(std::unique_ptr<ViewAsg> asg) {
    asg_ = asg.get();
    // Root node.
    ViewNode root;
    root.id = 0;
    root.kind = NodeKind::kRoot;
    root.tag = view_.root().tag;
    root.av = &view_.root();
    root.uc_binding = {};
    asg_->mutable_nodes().push_back(std::move(root));
    RegisterAv(&view_.root(), 0);
    UFILTER_RETURN_NOT_OK(BuildChildren(view_.root(), 0));
    ComputeUpBindings(0);
    return asg;
  }

 private:
  void RegisterAv(const AvNode* av, int id) { asg_->RegisterAv(av, id); }

  Status BuildChildren(const AvNode& av, int parent_id) {
    for (const auto& child : av.children) {
      if (child->kind == AvNode::Kind::kGroup) {
        for (const auto& grand : child->children) {
          UFILTER_RETURN_NOT_OK(
              BuildElement(*grand, parent_id, Cardinality::kStar,
                           child->scope->conditions));
        }
      } else {
        UFILTER_RETURN_NOT_OK(
            BuildElement(*child, parent_id, Cardinality::kOne, {}));
      }
    }
    return Status::OK();
  }

  Status BuildElement(const AvNode& av, int parent_id, Cardinality card,
                      const std::vector<ResolvedCondition>& edge_conds) {
    if (av.kind == AvNode::Kind::kSimple) {
      return BuildSimple(av, parent_id, card, edge_conds);
    }
    if (av.kind != AvNode::Kind::kComplex) {
      return Status::Internal("unexpected analyzed node kind under element");
    }
    int id = NewNode();
    ViewNode& node = asg_->mutable_node(id);
    node.kind = NodeKind::kComplex;
    node.tag = av.tag;
    node.av = &av;
    node.uc_binding = av.scope->AllRelations();
    AttachChild(parent_id, id, card, edge_conds);
    RegisterAv(&av, id);
    return BuildChildren(av, id);
  }

  Status BuildSimple(const AvNode& av, int parent_id, Cardinality card,
                     const std::vector<ResolvedCondition>& edge_conds) {
    UFILTER_ASSIGN_OR_RETURN(const relational::TableSchema* table,
                             view_.schema().FindTable(av.relation));
    UFILTER_ASSIGN_OR_RETURN(const relational::Column* column,
                             table->FindColumn(av.attr));

    // Tag node vS.
    int tag_id = NewNode();
    {
      ViewNode& tag = asg_->mutable_node(tag_id);
      tag.kind = NodeKind::kTag;
      tag.tag = av.tag;
      tag.av = &av;
      tag.relation = av.relation;
      tag.attr = av.attr;
      tag.variable = av.variable;
      tag.uc_binding = av.scope->AllRelations();
      Cardinality tag_card = card;
      if (tag_card == Cardinality::kOne && !column->not_null) {
        tag_card = Cardinality::kOpt;  // NULL renders as absent element
      }
      AttachChild(parent_id, tag_id, tag_card, edge_conds);
      RegisterAv(&av, tag_id);
    }

    // Leaf node vL with the local-constraint annotations.
    int leaf_id = NewNode();
    ViewNode& leaf = asg_->mutable_node(leaf_id);
    leaf.kind = NodeKind::kLeaf;
    leaf.tag = "text()";
    leaf.relation = av.relation;
    leaf.attr = av.attr;
    leaf.variable = av.variable;
    leaf.type = column->type;
    leaf.not_null = column->not_null;
    leaf.checks = column->checks;
    // Merge the view query's non-correlation predicates on this projection's
    // variable+attribute (walking the scope chain).
    for (const Scope* s = av.scope; s != nullptr; s = s->parent) {
      for (const ResolvedCondition& cond : s->conditions) {
        if (cond.is_correlation) continue;
        if (cond.lhs.variable == av.variable && cond.lhs.attr == av.attr) {
          leaf.checks.push_back({cond.op, cond.literal});
        }
      }
    }
    AttachChild(tag_id, leaf_id, Cardinality::kOne, {});
    return Status::OK();
  }

  int NewNode() {
    int id = static_cast<int>(asg_->mutable_nodes().size());
    ViewNode node;
    node.id = id;
    asg_->mutable_nodes().push_back(std::move(node));
    return id;
  }

  void AttachChild(int parent_id, int child_id, Cardinality card,
                   const std::vector<ResolvedCondition>& conds) {
    ViewNode& child = asg_->mutable_node(child_id);
    child.parent = parent_id;
    child.card = card;
    child.edge_conditions = conds;
    asg_->mutable_node(parent_id).children.push_back(child_id);
  }

  /// Post-order. UPBinding holds the relations used in *constructing* the
  /// node (its own projection sources and its descendants'), which is NOT
  /// a superset of UCBinding: in Fig. 8 UPBinding(vC3) = {review} although
  /// UCBinding(vC3) = {book, publisher, review}.
  void ComputeUpBindings(int id) {
    ViewNode& node = asg_->mutable_node(id);
    std::set<std::string> up;
    if (!node.relation.empty()) up.insert(node.relation);
    for (int child : node.children) {
      ComputeUpBindings(child);
      const ViewNode& c = asg_->node(child);
      up.insert(c.up_binding.begin(), c.up_binding.end());
      // Tag/leaf nodes contribute their source relation.
      if (!c.relation.empty()) up.insert(c.relation);
    }
    node.up_binding.assign(up.begin(), up.end());
  }

  const AnalyzedView& view_;
  ViewAsg* asg_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<ViewAsg>> ViewAsg::Build(const AnalyzedView& view) {
  auto asg = std::unique_ptr<ViewAsg>(new ViewAsg());
  asg->view_ = &view;
  ViewAsgBuilder builder(view);
  return builder.Run(std::move(asg));
}

const ViewNode* ViewAsg::NodeForAv(const view::AvNode* av) const {
  auto it = av_to_node_.find(av);
  return it == av_to_node_.end() ? nullptr : &nodes_[static_cast<size_t>(it->second)];
}

std::vector<std::string> ViewAsg::CurrentRelations(int id) const {
  const ViewNode& node = nodes_[static_cast<size_t>(id)];
  // Find the parent *element* (tag nodes hang off elements directly, so the
  // immediate parent works for kComplex/kTag; leaf's parent is its tag).
  std::set<std::string> parent_ucb;
  if (node.parent >= 0) {
    const ViewNode& parent = nodes_[static_cast<size_t>(node.parent)];
    parent_ucb.insert(parent.uc_binding.begin(), parent.uc_binding.end());
  }
  std::vector<std::string> out;
  for (const std::string& r : node.uc_binding) {
    if (parent_ucb.count(r) == 0) out.push_back(r);
  }
  return out;
}

bool ViewAsg::IsDescendant(int id, int maybe_descendant) const {
  for (int n = maybe_descendant; n >= 0;
       n = nodes_[static_cast<size_t>(n)].parent) {
    if (n == id) return true;
  }
  return false;
}

bool ViewAsg::ParentIsSingleInstance(int id) const {
  int n = nodes_[static_cast<size_t>(id)].parent;
  while (n >= 0) {
    const ViewNode& node = nodes_[static_cast<size_t>(n)];
    if (node.card == Cardinality::kStar) return false;
    n = node.parent;
  }
  return true;
}

Closure ViewAsg::NodeClosure(int id) const {
  const ViewNode& node = nodes_[static_cast<size_t>(id)];
  Closure out;
  if (node.kind == NodeKind::kLeaf) {
    out.leaves.push_back(node.relation + "." + node.attr);
    return out;
  }
  if (node.kind == NodeKind::kTag) {
    out.leaves.push_back(node.relation + "." + node.attr);
    return out;
  }
  for (int child_id : node.children) {
    const ViewNode& child = nodes_[static_cast<size_t>(child_id)];
    Closure cc = NodeClosure(child_id);
    if (child.card == Cardinality::kStar) {
      out.starred.push_back({cc, ConditionLabel(child.edge_conditions)});
    } else {
      out.UnionWith(cc);
    }
  }
  out.Normalize();
  return out;
}

std::vector<int> ViewAsg::SubtreeLeaves(int id) const {
  std::vector<int> out;
  std::vector<int> stack = {id};
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    const ViewNode& node = nodes_[static_cast<size_t>(n)];
    if (node.kind == NodeKind::kLeaf) out.push_back(n);
    for (int c : node.children) stack.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ViewAsg::ToString() const {
  std::string out = "View ASG:\n";
  for (const ViewNode& n : nodes_) {
    out += "  [" + std::to_string(n.id) + "] " + NodeKindName(n.kind) + " <" +
           n.tag + ">";
    if (n.parent >= 0) {
      out += " parent=" + std::to_string(n.parent);
      out += " card=" + std::string(CardinalityName(n.card));
    }
    if (!n.relation.empty()) out += " src=" + n.relation + "." + n.attr;
    if (n.kind == NodeKind::kLeaf) {
      out += n.not_null ? " NOT NULL" : "";
      for (const auto& c : n.checks) out += " CHECK(" + c.ToString("value") + ")";
    }
    if (n.kind == NodeKind::kComplex || n.kind == NodeKind::kRoot) {
      out += " UCB={" + Join(n.uc_binding, ",") + "}";
      out += " UPB={" + Join(n.up_binding, ",") + "}";
      out += " mark=(" + n.mark.ToString() + ")";
    }
    if (!n.edge_conditions.empty()) {
      out += " cond=" + ConditionLabel(n.edge_conditions);
    }
    out += "\n";
  }
  return out;
}

// -------------------------------------------------------------- BaseAsg ---

BaseAsg BaseAsg::Build(const view::AnalyzedView& view) {
  BaseAsg out;
  out.schema_ = &view.schema();
  // Collect the view-referenced leaves per relation, plus the attributes the
  // view joins on (used below for SET NULL propagation: a nulled FK column
  // that feeds a view join removes the row from the joined view even though
  // the row survives).
  std::map<std::string, std::set<std::string>> leaves;
  std::set<std::string> join_attrs;
  std::vector<const AvNode*> stack = {&view.root()};
  while (!stack.empty()) {
    const AvNode* n = stack.back();
    stack.pop_back();
    if (n->kind == AvNode::Kind::kSimple) {
      leaves[n->relation].insert(n->relation + "." + n->attr);
    }
    if (n->kind == AvNode::Kind::kGroup && n->scope != nullptr) {
      for (const view::ResolvedCondition& cond : n->scope->conditions) {
        if (!cond.is_correlation) continue;
        join_attrs.insert(cond.lhs.relation + "." + cond.lhs.attr);
        join_attrs.insert(cond.rhs.relation + "." + cond.rhs.attr);
      }
    }
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  for (const auto& [rel, attrs] : leaves) {
    out.relations_.push_back(rel);
    out.rels_[rel].leaves.assign(attrs.begin(), attrs.end());
  }
  // FK edges among included relations: edge (referenced -> referencing).
  for (const std::string& rel : out.relations_) {
    auto table = view.schema().FindTable(rel);
    if (!table.ok()) continue;
    for (const relational::ForeignKey& fk : (*table)->foreign_keys()) {
      if (out.rels_.count(fk.ref_table) == 0) continue;
      std::vector<std::string> conds;
      for (size_t i = 0; i < fk.columns.size(); ++i) {
        conds.push_back(NormalizeCondition(rel + "." + fk.columns[i], "=",
                                           fk.ref_table + "." +
                                               fk.ref_columns[i]));
      }
      std::sort(conds.begin(), conds.end());
      bool propagates = false;
      switch (fk.on_delete) {
        case relational::DeletePolicy::kCascade:
          propagates = true;
          break;
        case relational::DeletePolicy::kSetNull: {
          // Propagates if SET NULL is impossible (NOT NULL FK column) or the
          // nulled column feeds a view join (view impact survives the row).
          for (const std::string& c : fk.columns) {
            auto col = (*table)->FindColumn(c);
            if (col.ok() && (*col)->not_null) propagates = true;
            if (join_attrs.count(rel + "." + c) > 0) propagates = true;
          }
          break;
        }
        case relational::DeletePolicy::kRestrict:
          propagates = false;
          break;
      }
      out.rels_[fk.ref_table].children.push_back(
          {rel, Join(conds, " AND "), propagates});
    }
  }
  return out;
}

bool BaseAsg::HasRelation(const std::string& name) const {
  return rels_.count(name) > 0;
}

const std::vector<std::string>& BaseAsg::RelationLeaves(
    const std::string& relation) const {
  static const std::vector<std::string> kEmpty;
  auto it = rels_.find(relation);
  return it == rels_.end() ? kEmpty : it->second.leaves;
}

Closure BaseAsg::ClosureOf(const std::string& relation,
                           std::vector<std::string>* visiting) const {
  Closure out;
  auto it = rels_.find(relation);
  if (it == rels_.end()) return out;
  if (std::find(visiting->begin(), visiting->end(), relation) !=
      visiting->end()) {
    return out;  // FK cycle guard
  }
  visiting->push_back(relation);
  out.leaves = it->second.leaves;
  for (const Rel::Child& child : it->second.children) {
    if (!child.propagates) continue;
    Closure cc = ClosureOf(child.relation, visiting);
    out.starred.push_back({cc, child.condition});
  }
  visiting->pop_back();
  out.Normalize();
  return out;
}

Closure BaseAsg::RelationClosure(const std::string& relation) const {
  std::vector<std::string> visiting;
  return ClosureOf(relation, &visiting);
}

std::vector<std::string> BaseAsg::NestedRelations(
    const std::string& relation) const {
  std::set<std::string> seen;
  std::vector<std::string> frontier = {relation};
  std::vector<std::string> out;
  while (!frontier.empty()) {
    std::string r = frontier.back();
    frontier.pop_back();
    auto it = rels_.find(r);
    if (it == rels_.end()) continue;
    for (const Rel::Child& child : it->second.children) {
      if (!child.propagates) continue;
      if (seen.insert(child.relation).second) {
        out.push_back(child.relation);
        frontier.push_back(child.relation);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Closure BaseAsg::MappingClosure(
    const std::vector<std::string>& leaf_names) const {
  // Relations owning the given leaves.
  std::set<std::string> rel_set;
  for (const std::string& leaf : leaf_names) {
    size_t dot = leaf.find('.');
    if (dot != std::string::npos) rel_set.insert(leaf.substr(0, dot));
  }
  // ⊔ dedup: drop R when R is nested inside the closure of another R'.
  std::set<std::string> keep = rel_set;
  for (const std::string& r : rel_set) {
    for (const std::string& other : rel_set) {
      if (other == r) continue;
      std::vector<std::string> nested = NestedRelations(other);
      if (std::find(nested.begin(), nested.end(), r) != nested.end()) {
        keep.erase(r);
        break;
      }
    }
  }
  Closure out;
  for (const std::string& r : keep) {
    out.UnionWith(RelationClosure(r));
  }
  out.Normalize();
  return out;
}

std::string BaseAsg::ToString() const {
  std::string out = "Base ASG:\n";
  for (const std::string& rel : relations_) {
    const Rel& r = rels_.at(rel);
    out += "  " + rel + " leaves={" + Join(r.leaves, ",") + "}";
    for (const Rel::Child& c : r.children) {
      out += " ->" + c.relation + "[" + c.condition + "]" +
             (c.propagates ? "" : " (no-propagate)");
    }
    out += "\n";
  }
  return out;
}

}  // namespace ufilter::asg
