#include "asg/dot.h"

#include "common/strings.h"

namespace ufilter::asg {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ViewAsgToDot(const ViewAsg& gv) {
  std::string out = "digraph ViewASG {\n  rankdir=TB;\n  node [fontsize=10];\n";
  for (const ViewNode& n : gv.nodes()) {
    std::string shape = "box";
    std::string label = n.tag;
    switch (n.kind) {
      case NodeKind::kRoot:
        shape = "doubleoctagon";
        break;
      case NodeKind::kComplex:
        shape = "box";
        label += "\\n(" + n.mark.ToString() + ")";
        label += "\\nUCB={" + Join(n.uc_binding, ",") + "}";
        label += "\\nUPB={" + Join(n.up_binding, ",") + "}";
        break;
      case NodeKind::kTag:
        shape = "ellipse";
        break;
      case NodeKind::kLeaf:
        shape = "plaintext";
        label = n.relation + "." + n.attr;
        if (n.not_null) label += "\\nNOT NULL";
        for (const auto& chk : n.checks) {
          label += "\\nCHECK " + chk.ToString("value");
        }
        break;
    }
    out += "  n" + std::to_string(n.id) + " [shape=" + shape + ", label=\"" +
           Escape(label) + "\"];\n";
  }
  for (const ViewNode& n : gv.nodes()) {
    if (n.parent < 0) continue;
    std::string elabel = CardinalityName(n.card);
    std::vector<std::string> conds;
    for (const auto& c : n.edge_conditions) {
      if (c.is_correlation) conds.push_back(c.ToString());
    }
    if (!conds.empty()) elabel += "\\n" + Join(conds, " AND ");
    out += "  n" + std::to_string(n.parent) + " -> n" +
           std::to_string(n.id) + " [label=\"" + Escape(elabel) + "\"];\n";
  }
  out += "}\n";
  return out;
}

std::string BaseAsgToDot(const BaseAsg& gd) {
  std::string out = "digraph BaseASG {\n  rankdir=TB;\n  node [shape=record, fontsize=10];\n";
  for (const std::string& rel : gd.relations()) {
    std::string label = rel + "|" + Join(gd.RelationLeaves(rel), "\\n");
    out += "  " + rel + " [label=\"{" + Escape(label) + "}\"];\n";
  }
  for (const std::string& rel : gd.relations()) {
    Closure c = gd.RelationClosure(rel);
    (void)c;
    for (const std::string& child : gd.NestedRelations(rel)) {
      // Draw only direct edges: child directly nested under rel.
      bool direct = true;
      for (const std::string& mid : gd.NestedRelations(rel)) {
        if (mid == child) continue;
        auto nested = gd.NestedRelations(mid);
        for (const std::string& n : nested) {
          if (n == child) direct = false;
        }
      }
      if (direct) out += "  " + rel + " -> " + child + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ufilter::asg
