// Graphviz DOT export of the annotated schema graphs, for documentation and
// debugging (renders the Fig. 8 / Fig. 9 pictures).
#ifndef UFILTER_ASG_DOT_H_
#define UFILTER_ASG_DOT_H_

#include <string>

#include "asg/view_asg.h"

namespace ufilter::asg {

/// DOT rendering of the view ASG: node shape by kind, STAR marks and
/// UCBinding/UPBinding in the labels, edge labels = cardinality + condition.
std::string ViewAsgToDot(const ViewAsg& gv);

/// DOT rendering of the base ASG: one node per relation with its leaves,
/// FK edges labeled with their join condition.
std::string BaseAsgToDot(const BaseAsg& gd);

}  // namespace ufilter::asg

#endif  // UFILTER_ASG_DOT_H_
