// AST for the XQuery fragment U-Filter handles:
//  - view queries: nested FLWR expressions with element constructors and
//    `$var/path` projections (Fig. 3a),
//  - view updates: the Tatarinov-style `FOR ... WHERE ... UPDATE $v { ... }`
//    statements (Fig. 4 / Fig. 10).
#ifndef UFILTER_XQUERY_AST_H_
#define UFILTER_XQUERY_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/value.h"
#include "xml/node.h"

namespace ufilter::xq {

/// A path expression: either rooted at document("..."), or at a variable.
/// `steps` are child element steps; `text_fn` marks a trailing /text().
struct Path {
  bool from_document = false;
  std::string document;   ///< when from_document
  std::string variable;   ///< when !from_document
  std::vector<std::string> steps;
  bool text_fn = false;

  std::string ToString() const;
};

/// One side of a comparison: a path or a literal.
struct Operand {
  enum class Kind { kPath, kLiteral };
  Kind kind = Kind::kLiteral;
  Path path;
  Value literal;

  bool is_path() const { return kind == Kind::kPath; }
  std::string ToString() const;
};

/// `lhs <op> rhs` conjunct of a WHERE clause.
struct Condition {
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;

  /// A correlation predicate compares two paths; a non-correlation predicate
  /// compares a path with a literal (Section 3.1).
  bool IsCorrelation() const { return lhs.is_path() && rhs.is_path(); }
  std::string ToString() const;
};

/// `$var IN path` (or `$var = path` in updates).
struct ForBinding {
  std::string variable;
  Path path;
};

struct Flwr;
using FlwrPtr = std::unique_ptr<Flwr>;

struct ElementCtor;
using ElementCtorPtr = std::unique_ptr<ElementCtor>;

/// One piece of RETURN content: a projection path, a literal element
/// constructor, or a nested FLWR.
struct Content {
  enum class Kind { kProjection, kElement, kFlwr };
  Kind kind = Kind::kProjection;
  Path projection;
  ElementCtorPtr element;
  FlwrPtr flwr;
};

/// `<tag> content, content, ... </tag>`.
struct ElementCtor {
  std::string tag;
  std::vector<Content> children;
};

/// FOR bindings WHERE conditions RETURN { contents }.
struct Flwr {
  std::vector<ForBinding> bindings;
  std::vector<Condition> conditions;
  std::vector<Content> contents;
};

/// \brief A parsed view query: root tag wrapping top-level FLWRs.
///
/// A bare FLWR view query gets the dummy root tag "root" (Section 3.2:
/// "we would simply add a dummy root node").
struct ViewQuery {
  std::string root_tag;
  std::vector<FlwrPtr> flwrs;
};

/// Kind of view update operation.
enum class UpdateOpType { kInsert, kDelete, kReplace };

const char* UpdateOpTypeName(UpdateOpType t);

/// One operation of an UPDATE block: INSERT <payload>,
/// DELETE $var/path[/text()], or REPLACE $var/path WITH <payload>.
struct UpdateAction {
  UpdateOpType op = UpdateOpType::kInsert;
  /// INSERT / REPLACE: the new element.
  xml::NodePtr payload;
  /// DELETE / REPLACE: victim path (rooted at a bound variable).
  Path victim;
};

/// \brief A parsed view update statement.
///
/// `FOR bindings WHERE conditions UPDATE $target { action, action, ... }` —
/// the update language of Tatarinov et al. allows several comma-separated
/// operations per UPDATE block; U-Filter checks them atomically (the whole
/// statement is rejected if any action is). The first action is mirrored in
/// `op`/`payload`/`victim` for the common single-action case.
struct UpdateStmt {
  std::vector<ForBinding> bindings;
  std::vector<Condition> conditions;
  std::string target_variable;
  /// All actions of the UPDATE block, in source order (size >= 1).
  std::vector<UpdateAction> actions;
  // Mirrors of actions[0] (payload is non-owning; actions own theirs):
  UpdateOpType op = UpdateOpType::kInsert;
  const xml::Node* payload = nullptr;
  Path victim;

  /// Refreshes the actions[0] mirrors (parser calls this once).
  void SyncMirrors() {
    if (actions.empty()) return;
    op = actions[0].op;
    payload = actions[0].payload.get();
    victim = actions[0].victim;
  }
};

}  // namespace ufilter::xq

#endif  // UFILTER_XQUERY_AST_H_
