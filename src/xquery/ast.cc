#include "xquery/ast.h"

namespace ufilter::xq {

std::string Path::ToString() const {
  std::string out = from_document ? ("document(\"" + document + "\")")
                                  : ("$" + variable);
  for (const std::string& s : steps) out += "/" + s;
  if (text_fn) out += "/text()";
  return out;
}

std::string Operand::ToString() const {
  return is_path() ? path.ToString() : literal.ToSqlLiteral();
}

std::string Condition::ToString() const {
  return lhs.ToString() + " " + CompareOpSymbol(op) + " " + rhs.ToString();
}

const char* UpdateOpTypeName(UpdateOpType t) {
  switch (t) {
    case UpdateOpType::kInsert:
      return "INSERT";
    case UpdateOpType::kDelete:
      return "DELETE";
    case UpdateOpType::kReplace:
      return "REPLACE";
  }
  return "?";
}

}  // namespace ufilter::xq
