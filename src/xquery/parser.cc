#include "xquery/parser.h"

#include <cctype>

#include "common/strings.h"
#include "xml/parser.h"
#include "xquery/lexer.h"

namespace ufilter::xq {

namespace {

bool IsKeyword(const Token& t, const char* kw) {
  return t.kind == TokenKind::kIdent && ToLower(t.text) == ToLower(kw);
}

/// Strips surrounding double quotes from payload text nodes: the paper
/// writes <bookid>"98004"</bookid> for string values.
void NormalizePayload(xml::Node* node) {
  if (node->is_text()) {
    std::string t = Trim(node->label());
    if (t.size() >= 2 && t.front() == '"' && t.back() == '"') {
      t = Trim(t.substr(1, t.size() - 2));
    }
    node->set_label(t);
    return;
  }
  for (const xml::NodePtr& c : node->children()) NormalizePayload(c.get());
}

class Parser {
 public:
  explicit Parser(const std::string& source) : lexer_(source) {}

  Result<ViewQuery> ParseViewQuery() {
    UFILTER_RETURN_NOT_OK(lexer_.status());
    ViewQuery query;
    if (Peek().kind == TokenKind::kLess) {
      // Root wrapper <Tag> flwr, flwr, ... </Tag>
      Advance();
      UFILTER_ASSIGN_OR_RETURN(query.root_tag, ExpectIdent("root tag"));
      UFILTER_RETURN_NOT_OK(Expect(TokenKind::kGreater, ">"));
      while (!(Peek().kind == TokenKind::kLess &&
               Peek(1).kind == TokenKind::kSlash)) {
        UFILTER_ASSIGN_OR_RETURN(FlwrPtr flwr, ParseFlwr());
        query.flwrs.push_back(std::move(flwr));
        if (Peek().kind == TokenKind::kComma) Advance();
      }
      Advance();  // <
      Advance();  // /
      UFILTER_ASSIGN_OR_RETURN(std::string close, ExpectIdent("close tag"));
      if (close != query.root_tag) {
        return Status::ParseError("mismatched root tags <" + query.root_tag +
                                  "> ... </" + close + ">");
      }
      UFILTER_RETURN_NOT_OK(Expect(TokenKind::kGreater, ">"));
    } else {
      query.root_tag = "root";
      while (IsKeyword(Peek(), "FOR")) {
        UFILTER_ASSIGN_OR_RETURN(FlwrPtr flwr, ParseFlwr());
        query.flwrs.push_back(std::move(flwr));
        if (Peek().kind == TokenKind::kComma) Advance();
      }
    }
    if (query.flwrs.empty()) {
      return Status::ParseError("view query has no FLWR expression");
    }
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kEnd, "end of input"));
    return query;
  }

  Result<UpdateStmt> ParseUpdateStmt() {
    UFILTER_RETURN_NOT_OK(lexer_.status());
    UpdateStmt stmt;
    if (!IsKeyword(Peek(), "FOR")) {
      return Status::ParseError("update must start with FOR");
    }
    Advance();
    while (true) {
      ForBinding binding;
      UFILTER_ASSIGN_OR_RETURN(binding.variable, ExpectVariable());
      // 'IN' or '='
      if (IsKeyword(Peek(), "IN")) {
        Advance();
      } else if (Peek().kind == TokenKind::kEquals) {
        Advance();
      } else {
        return Status::ParseError("expected IN or = in FOR binding");
      }
      UFILTER_ASSIGN_OR_RETURN(binding.path, ParsePath());
      stmt.bindings.push_back(std::move(binding));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (IsKeyword(Peek(), "WHERE")) {
      Advance();
      UFILTER_RETURN_NOT_OK(ParseConditionList(&stmt.conditions));
    }
    if (!IsKeyword(Peek(), "UPDATE")) {
      return Status::ParseError("expected UPDATE clause");
    }
    Advance();
    UFILTER_ASSIGN_OR_RETURN(stmt.target_variable, ExpectVariable());
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "{"));
    // One or more comma-separated actions per UPDATE block.
    while (true) {
      UpdateAction action;
      if (IsKeyword(Peek(), "INSERT")) {
        Advance();
        action.op = UpdateOpType::kInsert;
        UFILTER_ASSIGN_OR_RETURN(action.payload, ParseRawXml());
      } else if (IsKeyword(Peek(), "DELETE")) {
        Advance();
        action.op = UpdateOpType::kDelete;
        UFILTER_ASSIGN_OR_RETURN(action.victim, ParsePath());
      } else if (IsKeyword(Peek(), "REPLACE")) {
        Advance();
        action.op = UpdateOpType::kReplace;
        UFILTER_ASSIGN_OR_RETURN(action.victim, ParsePath());
        if (!IsKeyword(Peek(), "WITH")) {
          return Status::ParseError("expected WITH in REPLACE");
        }
        Advance();
        UFILTER_ASSIGN_OR_RETURN(action.payload, ParseRawXml());
      } else {
        return Status::ParseError("expected INSERT, DELETE or REPLACE");
      }
      stmt.actions.push_back(std::move(action));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    stmt.SyncMirrors();
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "}"));
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kEnd, "end of input"));
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= lexer_.tokens().size()) i = lexer_.tokens().size() - 1;
    return lexer_.tokens()[i];
  }
  const Token& Advance() { return lexer_.tokens()[pos_++]; }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::ParseError(std::string("expected ") + what +
                                " at offset " + std::to_string(Peek().offset) +
                                ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError(std::string("expected ") + what +
                                " at offset " + std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Result<std::string> ExpectVariable() {
    if (Peek().kind != TokenKind::kVariable) {
      return Status::ParseError("expected $variable at offset " +
                                std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Result<Path> ParsePath() {
    Path path;
    if (IsKeyword(Peek(), "document")) {
      Advance();
      UFILTER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
      if (Peek().kind != TokenKind::kString) {
        return Status::ParseError("expected document name string");
      }
      path.from_document = true;
      path.document = Advance().text;
      UFILTER_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
    } else if (Peek().kind == TokenKind::kVariable) {
      path.variable = Advance().text;
    } else {
      return Status::ParseError("expected path at offset " +
                                std::to_string(Peek().offset));
    }
    while (Peek().kind == TokenKind::kSlash) {
      Advance();
      if (IsKeyword(Peek(), "text") && Peek(1).kind == TokenKind::kLParen &&
          Peek(2).kind == TokenKind::kRParen) {
        Advance();
        Advance();
        Advance();
        path.text_fn = true;
        break;
      }
      UFILTER_ASSIGN_OR_RETURN(std::string step, ExpectIdent("path step"));
      path.steps.push_back(step);
    }
    return path;
  }

  Result<Operand> ParseOperand() {
    Operand op;
    if (Peek().kind == TokenKind::kVariable || IsKeyword(Peek(), "document")) {
      op.kind = Operand::Kind::kPath;
      UFILTER_ASSIGN_OR_RETURN(op.path, ParsePath());
      return op;
    }
    if (Peek().kind == TokenKind::kString) {
      op.kind = Operand::Kind::kLiteral;
      op.literal = Value::String(Trim(Advance().text));
      return op;
    }
    if (Peek().kind == TokenKind::kNumber) {
      op.kind = Operand::Kind::kLiteral;
      std::string num = Advance().text;
      if (num.find('.') != std::string::npos) {
        UFILTER_ASSIGN_OR_RETURN(op.literal,
                                 Value::FromText(num, ValueType::kDouble));
      } else {
        UFILTER_ASSIGN_OR_RETURN(op.literal,
                                 Value::FromText(num, ValueType::kInt));
      }
      return op;
    }
    return Status::ParseError("expected operand at offset " +
                              std::to_string(Peek().offset));
  }

  Result<CompareOp> ParseCompareOp() {
    switch (Peek().kind) {
      case TokenKind::kEquals:
        Advance();
        return CompareOp::kEq;
      case TokenKind::kBang:
        Advance();
        UFILTER_RETURN_NOT_OK(Expect(TokenKind::kEquals, "= after !"));
        return CompareOp::kNe;
      case TokenKind::kLess:
        Advance();
        if (Peek().kind == TokenKind::kEquals) {
          Advance();
          return CompareOp::kLe;
        }
        if (Peek().kind == TokenKind::kGreater) {  // <> alias for !=
          Advance();
          return CompareOp::kNe;
        }
        return CompareOp::kLt;
      case TokenKind::kGreater:
        Advance();
        if (Peek().kind == TokenKind::kEquals) {
          Advance();
          return CompareOp::kGe;
        }
        return CompareOp::kGt;
      default:
        return Status::ParseError("expected comparison operator at offset " +
                                  std::to_string(Peek().offset));
    }
  }

  Result<Condition> ParseCondition() {
    bool parens = false;
    if (Peek().kind == TokenKind::kLParen) {
      parens = true;
      Advance();
    }
    Condition cond;
    UFILTER_ASSIGN_OR_RETURN(cond.lhs, ParseOperand());
    UFILTER_ASSIGN_OR_RETURN(cond.op, ParseCompareOp());
    UFILTER_ASSIGN_OR_RETURN(cond.rhs, ParseOperand());
    if (parens) UFILTER_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
    return cond;
  }

  Status ParseConditionList(std::vector<Condition>* out) {
    while (true) {
      UFILTER_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
      out->push_back(std::move(cond));
      if (IsKeyword(Peek(), "AND")) {
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<FlwrPtr> ParseFlwr() {
    if (!IsKeyword(Peek(), "FOR")) {
      return Status::ParseError("expected FOR at offset " +
                                std::to_string(Peek().offset));
    }
    Advance();
    auto flwr = std::make_unique<Flwr>();
    while (true) {
      ForBinding binding;
      UFILTER_ASSIGN_OR_RETURN(binding.variable, ExpectVariable());
      if (!IsKeyword(Peek(), "IN")) {
        return Status::ParseError("expected IN in FOR binding");
      }
      Advance();
      UFILTER_ASSIGN_OR_RETURN(binding.path, ParsePath());
      flwr->bindings.push_back(std::move(binding));
      if (Peek().kind == TokenKind::kComma &&
          Peek(1).kind == TokenKind::kVariable) {
        Advance();
        continue;
      }
      break;
    }
    if (IsKeyword(Peek(), "WHERE")) {
      Advance();
      UFILTER_RETURN_NOT_OK(ParseConditionList(&flwr->conditions));
    }
    if (!IsKeyword(Peek(), "RETURN")) {
      return Status::ParseError("expected RETURN at offset " +
                                std::to_string(Peek().offset));
    }
    Advance();
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "{"));
    UFILTER_RETURN_NOT_OK(
        ParseContentList(TokenKind::kRBrace, &flwr->contents));
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "}"));
    return flwr;
  }

  /// Parses content items until `terminator` (not consumed). Inside an
  /// element constructor the terminator is the '</' of the close tag.
  Status ParseContentList(TokenKind terminator, std::vector<Content>* out) {
    while (true) {
      const Token& t = Peek();
      if (t.kind == terminator) break;
      if (t.kind == TokenKind::kLess && Peek(1).kind == TokenKind::kSlash) {
        break;  // close tag of enclosing constructor
      }
      Content content;
      if (t.kind == TokenKind::kVariable) {
        content.kind = Content::Kind::kProjection;
        UFILTER_ASSIGN_OR_RETURN(content.projection, ParsePath());
      } else if (IsKeyword(t, "FOR")) {
        content.kind = Content::Kind::kFlwr;
        UFILTER_ASSIGN_OR_RETURN(content.flwr, ParseFlwr());
      } else if (t.kind == TokenKind::kLess) {
        content.kind = Content::Kind::kElement;
        UFILTER_ASSIGN_OR_RETURN(content.element, ParseElementCtor());
      } else {
        return Status::ParseError("unexpected content at offset " +
                                  std::to_string(t.offset));
      }
      out->push_back(std::move(content));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      // Allow missing commas between constructor siblings.
      continue;
    }
    return Status::OK();
  }

  Result<ElementCtorPtr> ParseElementCtor() {
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kLess, "<"));
    auto ctor = std::make_unique<ElementCtor>();
    UFILTER_ASSIGN_OR_RETURN(ctor->tag, ExpectIdent("element tag"));
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kGreater, ">"));
    UFILTER_RETURN_NOT_OK(ParseContentList(TokenKind::kEnd, &ctor->children));
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kLess, "<"));
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kSlash, "/"));
    UFILTER_ASSIGN_OR_RETURN(std::string close, ExpectIdent("close tag"));
    if (close != ctor->tag) {
      return Status::ParseError("mismatched constructor tags <" + ctor->tag +
                                "> ... </" + close + ">");
    }
    UFILTER_RETURN_NOT_OK(Expect(TokenKind::kGreater, ">"));
    return ctor;
  }

  /// Slices the raw XML element starting at the current '<' token out of the
  /// source, parses it with the XML parser, and skips past its tokens.
  Result<xml::NodePtr> ParseRawXml() {
    if (Peek().kind != TokenKind::kLess) {
      return Status::ParseError("expected XML element at offset " +
                                std::to_string(Peek().offset));
    }
    const std::string& src = lexer_.source();
    size_t start = Peek().offset;
    // Scan for the end of the element: track tag nesting depth.
    size_t i = start;
    int depth = 0;
    size_t end = std::string::npos;
    while (i < src.size()) {
      if (src[i] == '<') {
        if (i + 1 < src.size() && src[i + 1] == '/') {
          // close tag
          size_t gt = src.find('>', i);
          if (gt == std::string::npos) break;
          --depth;
          i = gt + 1;
          if (depth == 0) {
            end = i;
            break;
          }
          continue;
        }
        size_t gt = src.find('>', i);
        if (gt == std::string::npos) break;
        bool self_closing = gt > 0 && src[gt - 1] == '/';
        if (!self_closing) {
          ++depth;
        } else if (depth == 0) {
          end = gt + 1;
          break;
        }
        i = gt + 1;
        continue;
      }
      ++i;
    }
    if (end == std::string::npos) {
      return Status::ParseError("unterminated XML payload at offset " +
                                std::to_string(start));
    }
    UFILTER_ASSIGN_OR_RETURN(xml::NodePtr payload,
                             xml::Parse(src.substr(start, end - start)));
    NormalizePayload(payload.get());
    // Skip tokens covered by the payload.
    while (Peek().kind != TokenKind::kEnd && Peek().offset < end) Advance();
    return payload;
  }

  Lexer lexer_;
  size_t pos_ = 0;
};

}  // namespace

Result<ViewQuery> ParseViewQuery(const std::string& source) {
  Parser parser(source);
  return parser.ParseViewQuery();
}

Result<UpdateStmt> ParseUpdate(const std::string& source) {
  Parser parser(source);
  return parser.ParseUpdateStmt();
}

}  // namespace ufilter::xq
