// Recursive-descent parser for view queries (FLWR) and view update
// statements. See ast.h for the grammar covered.
#ifndef UFILTER_XQUERY_PARSER_H_
#define UFILTER_XQUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "xquery/ast.h"

namespace ufilter::xq {

/// Parses a view query, e.g. the BookView XQuery of Fig. 3(a).
Result<ViewQuery> ParseViewQuery(const std::string& source);

/// Parses a view update statement, e.g. u1..u13 of Figs. 4 and 10.
Result<UpdateStmt> ParseUpdate(const std::string& source);

}  // namespace ufilter::xq

#endif  // UFILTER_XQUERY_PARSER_H_
