// Character-level tokenizer for the XQuery fragment. Keeps <, >, =, !, /
// as single-character tokens; the parser combines them contextually (so
// `$b/price<50` lexes correctly and `<book>` can start a constructor).
#ifndef UFILTER_XQUERY_LEXER_H_
#define UFILTER_XQUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace ufilter::xq {

enum class TokenKind {
  kIdent,     // FOR, IN, WHERE, book, text (keywords resolved by parser)
  kVariable,  // $book (text() excludes the $)
  kString,    // "..."
  kNumber,    // 50.00, 1990
  kLess,      // <
  kGreater,   // >
  kEquals,    // =
  kBang,      // !
  kSlash,     // /
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // ident name, variable name, string content, number
  size_t offset = 0;  // into the source
};

/// \brief Tokenizer with raw-source access (the parser slices raw XML
/// payloads for INSERT/REPLACE directly out of the source).
class Lexer {
 public:
  explicit Lexer(std::string source);

  const std::string& source() const { return source_; }
  const std::vector<Token>& tokens() const { return tokens_; }
  const Status& status() const { return status_; }

 private:
  void Tokenize();

  std::string source_;
  std::vector<Token> tokens_;
  Status status_;
};

}  // namespace ufilter::xq

#endif  // UFILTER_XQUERY_LEXER_H_
