// Update-template normalization: the canonical text form used as the
// U-Filter plan-cache key. Two update strings that differ only in
// insignificant whitespace (indentation, line breaks, runs of spaces outside
// string literals) normalize to the same template and therefore share one
// prepared plan.
#ifndef UFILTER_XQUERY_NORMALIZE_H_
#define UFILTER_XQUERY_NORMALIZE_H_

#include <cstdint>
#include <string>

namespace ufilter::xq {

/// Canonicalizes `source`: trims the ends and collapses every run of
/// whitespace outside string literals (double- or single-quoted, matching
/// the lexer) to a single space. Quoted literals are preserved
/// byte-for-byte, so two distinct updates can never collide through
/// normalization. Never fails; unlexable text is simply canonicalized as-is
/// (it will fail in the parser with the original error text).
std::string NormalizeUpdateText(const std::string& source);

/// FNV-1a hash of a normalized template, for cheap cache bucketing.
uint64_t HashUpdateTemplate(const std::string& normalized);

}  // namespace ufilter::xq

#endif  // UFILTER_XQUERY_NORMALIZE_H_
