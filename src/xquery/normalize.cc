#include "xquery/normalize.h"

#include <cctype>

#include "common/strings.h"

namespace ufilter::xq {

std::string NormalizeUpdateText(const std::string& source) {
  std::string out;
  out.reserve(source.size());
  char in_string = 0;  // the open quote character ('"' or '\''), or 0
  bool pending_space = false;
  for (char c : source) {
    if (in_string != 0) {
      out.push_back(c);
      if (c == in_string) in_string = 0;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      // Collapse the run; emit one space only if content follows.
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '"' || c == '\'') in_string = c;
  }
  return out;
}

uint64_t HashUpdateTemplate(const std::string& normalized) {
  return Fnv1a(normalized);
}

}  // namespace ufilter::xq
