#include "xquery/lexer.h"

#include <cctype>
#include <cstdio>

namespace ufilter::xq {

namespace {

/// Renders a rejected byte printably: update text arrives off the wire, so
/// error messages must stay readable for NULs, control bytes and non-ASCII
/// instead of embedding the raw byte.
std::string DescribeByte(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  if (std::isprint(u)) return std::string("'") + c + "'";
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%02X", u);
  return std::string("byte ") + buf;
}

}  // namespace

Lexer::Lexer(std::string source) : source_(std::move(source)) { Tokenize(); }

void Lexer::Tokenize() {
  size_t i = 0;
  const std::string& s = source_;
  auto Push = [&](TokenKind kind, std::string text, size_t offset) {
    tokens_.push_back({kind, std::move(text), offset});
  };
  while (i < s.size()) {
    char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '$') {
      ++i;
      std::string name;
      while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                              s[i] == '_')) {
        name += s[i++];
      }
      if (name.empty()) {
        status_ = Status::ParseError("lone '$' at offset " +
                                     std::to_string(start));
        return;
      }
      Push(TokenKind::kVariable, name, start);
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string text;
      while (i < s.size() && s[i] != quote) text += s[i++];
      if (i >= s.size()) {
        status_ = Status::ParseError("unterminated string at offset " +
                                     std::to_string(start));
        return;
      }
      ++i;  // closing quote
      Push(TokenKind::kString, text, start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      std::string num;
      if (c == '-') num += s[i++];
      bool saw_dot = false;
      while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                              (s[i] == '.' && !saw_dot))) {
        if (s[i] == '.') saw_dot = true;
        num += s[i++];
      }
      Push(TokenKind::kNumber, num, start);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                              s[i] == '_' || s[i] == '-')) {
        ident += s[i++];
      }
      Push(TokenKind::kIdent, ident, start);
      continue;
    }
    switch (c) {
      case '<':
        Push(TokenKind::kLess, "<", start);
        break;
      case '>':
        Push(TokenKind::kGreater, ">", start);
        break;
      case '=':
        Push(TokenKind::kEquals, "=", start);
        break;
      case '!':
        Push(TokenKind::kBang, "!", start);
        break;
      case '/':
        Push(TokenKind::kSlash, "/", start);
        break;
      case '(':
        Push(TokenKind::kLParen, "(", start);
        break;
      case ')':
        Push(TokenKind::kRParen, ")", start);
        break;
      case '{':
        Push(TokenKind::kLBrace, "{", start);
        break;
      case '}':
        Push(TokenKind::kRBrace, "}", start);
        break;
      case ',':
        Push(TokenKind::kComma, ",", start);
        break;
      case '&':
      case ';':
      case '.':
      case ':':
      case '*':
      case '@':
      case '-':
      case '?':
        // Punctuation that only occurs inside raw XML payload regions
        // (INSERT <...>); the parser skips those tokens wholesale, so they
        // only need to lex without error.
        Push(TokenKind::kIdent, std::string(1, c), start);
        break;
      default:
        status_ = Status::ParseError("unexpected " + DescribeByte(c) +
                                     " at offset " + std::to_string(start));
        return;
    }
    ++i;
  }
  tokens_.push_back({TokenKind::kEnd, "", s.size()});
}

}  // namespace ufilter::xq
