// DOM-like XML tree used for materialized views, default views (Fig. 2) and
// update payloads. Elements own their children; text lives in text nodes.
#ifndef UFILTER_XML_NODE_H_
#define UFILTER_XML_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace ufilter::xml {

class Node;
using NodePtr = std::unique_ptr<Node>;

/// \brief An XML node: element (tag + children) or text (content).
class Node {
 public:
  enum class Kind { kElement, kText };

  static NodePtr Element(std::string tag) {
    return NodePtr(new Node(Kind::kElement, std::move(tag)));
  }
  static NodePtr Text(std::string content) {
    return NodePtr(new Node(Kind::kText, std::move(content)));
  }
  /// Convenience: <tag>text</tag>.
  static NodePtr SimpleElement(std::string tag, std::string text);

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Tag name for elements, content for text nodes.
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  const std::vector<NodePtr>& children() const { return children_; }
  Node* parent() const { return parent_; }

  /// Appends a child and returns a raw pointer to it.
  Node* AddChild(NodePtr child);
  /// Removes the child at `index`; returns ownership.
  NodePtr RemoveChild(size_t index);
  /// Removes `child` (by identity); returns ownership or nullptr.
  NodePtr RemoveChild(Node* child);

  /// First child element with tag `tag`, or nullptr.
  Node* FindChild(const std::string& tag) const;
  /// All child elements with tag `tag`.
  std::vector<Node*> FindChildren(const std::string& tag) const;
  /// Child elements in order.
  std::vector<Node*> ElementChildren() const;

  /// Concatenated text of all descendant text nodes.
  std::string TextContent() const;
  /// Text of the child element `tag` ("" when absent).
  std::string ChildText(const std::string& tag) const;

  /// Deep copy (parent pointer of the copy is null).
  NodePtr Clone() const;

  /// Structural equality: same kind, label, and recursively equal children
  /// (order-sensitive, as XML is ordered).
  bool Equals(const Node& other) const;

  /// Number of element nodes in this subtree (including this one if element).
  size_t CountElements() const;

 private:
  Node(Kind kind, std::string label) : kind_(kind), label_(std::move(label)) {}

  Kind kind_;
  std::string label_;
  std::vector<NodePtr> children_;
  Node* parent_ = nullptr;
};

}  // namespace ufilter::xml

#endif  // UFILTER_XML_NODE_H_
