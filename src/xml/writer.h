// XML serialization with entity escaping and optional pretty-printing.
#ifndef UFILTER_XML_WRITER_H_
#define UFILTER_XML_WRITER_H_

#include <string>

#include "xml/node.h"

namespace ufilter::xml {

struct WriteOptions {
  bool pretty = true;
  int indent_width = 2;
};

/// Serializes `node` (and its subtree) to XML text.
std::string ToString(const Node& node, const WriteOptions& options = {});

/// Escapes &, <, >, ", ' for use in XML text content.
std::string EscapeText(const std::string& text);

}  // namespace ufilter::xml

#endif  // UFILTER_XML_WRITER_H_
