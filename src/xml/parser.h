// Minimal XML parser for the fragment the library emits and consumes:
// elements, text, entities, comments. No attributes/namespaces/CDATA (the
// paper's views and update payloads use none).
#ifndef UFILTER_XML_PARSER_H_
#define UFILTER_XML_PARSER_H_

#include <string>

#include "common/result.h"
#include "xml/node.h"

namespace ufilter::xml {

/// Parses `text` into a single root element.
Result<NodePtr> Parse(const std::string& text);

}  // namespace ufilter::xml

#endif  // UFILTER_XML_PARSER_H_
