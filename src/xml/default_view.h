// The "default XML view" of Fig. 2: a canonical one-to-one XML image of a
// relational database (<DB><table><row><col>value</col>...</row>...</table>).
#ifndef UFILTER_XML_DEFAULT_VIEW_H_
#define UFILTER_XML_DEFAULT_VIEW_H_

#include "relational/database.h"
#include "xml/node.h"

namespace ufilter::xml {

/// Builds the default XML view of `db` (all permanent tables, rows in
/// row-id order).
NodePtr DefaultView(const relational::Database& db);

}  // namespace ufilter::xml

#endif  // UFILTER_XML_DEFAULT_VIEW_H_
