#include "xml/node.h"

namespace ufilter::xml {

NodePtr Node::SimpleElement(std::string tag, std::string text) {
  NodePtr el = Element(std::move(tag));
  el->AddChild(Text(std::move(text)));
  return el;
}

Node* Node::AddChild(NodePtr child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

NodePtr Node::RemoveChild(size_t index) {
  if (index >= children_.size()) return nullptr;
  NodePtr out = std::move(children_[index]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  out->parent_ = nullptr;
  return out;
}

NodePtr Node::RemoveChild(Node* child) {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == child) return RemoveChild(i);
  }
  return nullptr;
}

Node* Node::FindChild(const std::string& tag) const {
  for (const NodePtr& c : children_) {
    if (c->is_element() && c->label() == tag) return c.get();
  }
  return nullptr;
}

std::vector<Node*> Node::FindChildren(const std::string& tag) const {
  std::vector<Node*> out;
  for (const NodePtr& c : children_) {
    if (c->is_element() && c->label() == tag) out.push_back(c.get());
  }
  return out;
}

std::vector<Node*> Node::ElementChildren() const {
  std::vector<Node*> out;
  for (const NodePtr& c : children_) {
    if (c->is_element()) out.push_back(c.get());
  }
  return out;
}

std::string Node::TextContent() const {
  if (is_text()) return label_;
  std::string out;
  for (const NodePtr& c : children_) out += c->TextContent();
  return out;
}

std::string Node::ChildText(const std::string& tag) const {
  Node* c = FindChild(tag);
  return c != nullptr ? c->TextContent() : "";
}

NodePtr Node::Clone() const {
  NodePtr copy(new Node(kind_, label_));
  for (const NodePtr& c : children_) copy->AddChild(c->Clone());
  return copy;
}

bool Node::Equals(const Node& other) const {
  if (kind_ != other.kind_ || label_ != other.label_) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

size_t Node::CountElements() const {
  size_t n = is_element() ? 1 : 0;
  for (const NodePtr& c : children_) n += c->CountElements();
  return n;
}

}  // namespace ufilter::xml
