#include "xml/default_view.h"

namespace ufilter::xml {

NodePtr DefaultView(const relational::Database& db) {
  NodePtr root = Node::Element("DB");
  for (const relational::TableSchema& schema : db.schema().tables()) {
    auto table = db.GetTable(schema.name());
    if (!table.ok()) continue;
    Node* table_el = root->AddChild(Node::Element(schema.name()));
    for (relational::RowId id : (*table)->AllRowIds()) {
      const relational::Row* row = (*table)->GetRow(id);
      Node* row_el = table_el->AddChild(Node::Element("row"));
      for (size_t i = 0; i < schema.columns().size(); ++i) {
        row_el->AddChild(Node::SimpleElement(schema.columns()[i].name,
                                             (*row)[i].ToText()));
      }
    }
  }
  return root;
}

}  // namespace ufilter::xml
