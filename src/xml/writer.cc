#include "xml/writer.h"

namespace ufilter::xml {

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

bool HasElementChild(const Node& node) {
  for (const NodePtr& c : node.children()) {
    if (c->is_element()) return true;
  }
  return false;
}

void WriteNode(const Node& node, const WriteOptions& options, int depth,
               std::string* out) {
  std::string pad =
      options.pretty ? std::string(static_cast<size_t>(depth) *
                                       static_cast<size_t>(options.indent_width),
                                   ' ')
                     : "";
  if (node.is_text()) {
    *out += pad + EscapeText(node.label());
    if (options.pretty) *out += "\n";
    return;
  }
  if (node.children().empty()) {
    *out += pad + "<" + node.label() + "/>";
    if (options.pretty) *out += "\n";
    return;
  }
  // Element with only text children renders inline.
  if (!HasElementChild(node)) {
    *out += pad + "<" + node.label() + ">" +
            EscapeText(node.TextContent()) + "</" + node.label() + ">";
    if (options.pretty) *out += "\n";
    return;
  }
  *out += pad + "<" + node.label() + ">";
  if (options.pretty) *out += "\n";
  for (const NodePtr& c : node.children()) {
    WriteNode(*c, options, depth + 1, out);
  }
  *out += pad + "</" + node.label() + ">";
  if (options.pretty) *out += "\n";
}

}  // namespace

std::string ToString(const Node& node, const WriteOptions& options) {
  std::string out;
  WriteNode(node, options, 0, &out);
  return out;
}

}  // namespace ufilter::xml
