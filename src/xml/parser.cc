#include "xml/parser.h"

#include <cctype>

#include "common/strings.h"

namespace ufilter::xml {

namespace {

/// Element-nesting ceiling: ParseElement recurses per level, so without a
/// cap a hostile document ("<a><a><a>..." — a few hundred KB is enough)
/// overflows the stack instead of returning Status. Far above any real
/// view document, far below any stack limit.
constexpr int kMaxElementDepth = 256;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<NodePtr> ParseDocument() {
    SkipProlog();
    UFILTER_ASSIGN_OR_RETURN(NodePtr root, ParseElement(/*depth=*/0));
    SkipWhitespaceAndComments();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing content after root element at " +
                                std::to_string(pos_));
    }
    return root;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_.compare(pos_, 4, "<!--") == 0) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = (end == std::string::npos) ? text_.size() : end + 3;
      } else {
        break;
      }
    }
  }

  void SkipProlog() {
    SkipWhitespaceAndComments();
    if (text_.compare(pos_, 5, "<?xml") == 0) {
      size_t end = text_.find("?>", pos_);
      pos_ = (end == std::string::npos) ? text_.size() : end + 2;
    }
    SkipWhitespaceAndComments();
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected name at offset " +
                                std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> DecodeText(const std::string& raw) {
    std::string out;
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string::npos) {
        return Status::ParseError("unterminated entity");
      }
      std::string ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out += '&';
      } else if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else {
        return Status::ParseError("unknown entity '&" + ent + ";'");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<NodePtr> ParseElement(int depth) {
    if (depth >= kMaxElementDepth) {
      return Status::ParseError("element nesting deeper than " +
                                std::to_string(kMaxElementDepth) +
                                " at offset " + std::to_string(pos_));
    }
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::ParseError("expected '<' at offset " +
                                std::to_string(pos_));
    }
    ++pos_;
    UFILTER_ASSIGN_OR_RETURN(std::string tag, ParseName());
    // Skip (and ignore) whitespace before '>' or '/>'.
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (text_.compare(pos_, 2, "/>") == 0) {
      pos_ += 2;
      return Node::Element(tag);
    }
    if (pos_ >= text_.size() || text_[pos_] != '>') {
      return Status::ParseError("malformed start tag <" + tag + ">");
    }
    ++pos_;

    NodePtr element = Node::Element(tag);
    std::string text_run;
    auto FlushText = [&]() -> Status {
      std::string trimmed = Trim(text_run);
      text_run.clear();
      if (trimmed.empty()) return Status::OK();
      UFILTER_ASSIGN_OR_RETURN(std::string decoded, DecodeText(trimmed));
      element->AddChild(Node::Text(decoded));
      return Status::OK();
    };

    while (true) {
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated element <" + tag + ">");
      }
      if (text_.compare(pos_, 4, "<!--") == 0) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = (end == std::string::npos) ? text_.size() : end + 3;
        continue;
      }
      if (text_.compare(pos_, 2, "</") == 0) {
        UFILTER_RETURN_NOT_OK(FlushText());
        pos_ += 2;
        UFILTER_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != tag) {
          return Status::ParseError("mismatched close tag </" + close +
                                    "> for <" + tag + ">");
        }
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::ParseError("malformed close tag </" + tag + ">");
        }
        ++pos_;
        return element;
      }
      if (text_[pos_] == '<') {
        UFILTER_RETURN_NOT_OK(FlushText());
        UFILTER_ASSIGN_OR_RETURN(NodePtr child, ParseElement(depth + 1));
        element->AddChild(std::move(child));
        continue;
      }
      text_run += text_[pos_++];
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace ufilter::xml
