#include "ufilter/checker.h"

#include <chrono>

#include "ufilter/update_binding.h"
#include "ufilter/validation.h"

namespace ufilter::check {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* CheckOutcomeName(CheckOutcome o) {
  switch (o) {
    case CheckOutcome::kInvalid:
      return "invalid";
    case CheckOutcome::kUntranslatable:
      return "untranslatable";
    case CheckOutcome::kDataConflict:
      return "data conflict";
    case CheckOutcome::kExecuted:
      return "executed";
  }
  return "?";
}

std::string CheckReport::Describe() const {
  std::string out = CheckOutcomeName(outcome);
  if (outcome == CheckOutcome::kExecuted) {
    out += " (" + std::string(TranslatabilityName(star_class));
    if (!condition.empty()) out += ", condition: " + condition;
    out += "), " + std::to_string(rows_affected) + " row(s) affected";
    if (zero_tuple_warning) out += " [warning: zero tuples matched]";
    if (!translation.empty()) {
      out += "\n" + relational::UpdateSequenceToSql(translation);
    }
  } else {
    out += ": " + error.ToString();
  }
  return out;
}

Result<std::unique_ptr<UFilter>> UFilter::Create(
    relational::Database* db, const std::string& view_query) {
  auto uf = std::unique_ptr<UFilter>(new UFilter());
  uf->db_ = db;
  UFILTER_ASSIGN_OR_RETURN(uf->query_, xq::ParseViewQuery(view_query));
  UFILTER_ASSIGN_OR_RETURN(
      uf->view_, view::AnalyzedView::Analyze(uf->query_, &db->schema()));
  UFILTER_ASSIGN_OR_RETURN(uf->gv_, asg::ViewAsg::Build(*uf->view_));
  uf->gd_ = asg::BaseAsg::Build(*uf->view_);
  double t0 = Now();
  UFILTER_RETURN_NOT_OK(MarkViewAsg(uf->gv_.get(), uf->gd_));
  uf->marking_seconds_ = Now() - t0;
  return uf;
}

CheckReport UFilter::Check(const std::string& update_text,
                           const CheckOptions& options) {
  auto stmt = xq::ParseUpdate(update_text);
  if (!stmt.ok()) {
    CheckReport report;
    report.outcome = CheckOutcome::kInvalid;
    report.error = stmt.status();
    return report;
  }
  return CheckParsed(*stmt, options);
}

CheckReport UFilter::CheckParsed(const xq::UpdateStmt& stmt,
                                 const CheckOptions& options) {
  if (stmt.actions.size() > 1) {
    // Multi-action UPDATE block: check and apply atomically — every action
    // must pass or nothing is applied.
    CheckReport combined;
    size_t savepoint = db_->Begin();
    for (const xq::UpdateAction& action : stmt.actions) {
      CheckOptions per_action = options;
      per_action.apply = true;  // applied inside the outer savepoint
      CheckReport r = CheckAction(stmt, action, per_action);
      combined.step1_seconds += r.step1_seconds;
      combined.step2_seconds += r.step2_seconds;
      combined.step3_seconds += r.step3_seconds;
      if (r.outcome != CheckOutcome::kExecuted) {
        db_->Rollback(savepoint);
        r.step1_seconds = combined.step1_seconds;
        r.step2_seconds = combined.step2_seconds;
        r.step3_seconds = combined.step3_seconds;
        return r;
      }
      // Keep the weakest classification across actions (conditional beats
      // unconditional).
      if (static_cast<int>(r.star_class) <
          static_cast<int>(combined.star_class)) {
        combined.star_class = r.star_class;
      }
      if (!r.condition.empty()) {
        if (!combined.condition.empty()) combined.condition += " + ";
        combined.condition += r.condition;
      }
      combined.rows_affected += r.rows_affected;
      combined.zero_tuple_warning |= r.zero_tuple_warning;
      for (auto& op : r.translation) combined.translation.push_back(op);
      for (auto& p : r.probes) combined.probes.push_back(p);
    }
    if (options.apply) {
      db_->Commit(savepoint);
    } else {
      db_->Rollback(savepoint);
    }
    combined.outcome = CheckOutcome::kExecuted;
    return combined;
  }
  if (stmt.actions.empty()) {
    CheckReport report;
    report.outcome = CheckOutcome::kInvalid;
    report.error = Status::InvalidUpdate("update statement has no action");
    return report;
  }
  return CheckAction(stmt, stmt.actions[0], options);
}

CheckReport UFilter::CheckAction(const xq::UpdateStmt& stmt,
                                 const xq::UpdateAction& action,
                                 const CheckOptions& options) {
  CheckReport report;

  // ---- Step 1: update validation -----------------------------------------
  double t0 = Now();
  auto bound = BindUpdateAction(*view_, *gv_, stmt, action);
  if (!bound.ok()) {
    report.outcome = CheckOutcome::kInvalid;
    report.error = bound.status();
    report.step1_seconds = Now() - t0;
    return report;
  }
  Status valid = ValidateUpdate(*gv_, *bound);
  report.step1_seconds = Now() - t0;
  if (!valid.ok()) {
    report.outcome = CheckOutcome::kInvalid;
    report.error = valid;
    return report;
  }

  // ---- Step 2: schema-driven translatability reasoning (STAR) ------------
  StarVerdict verdict;
  if (options.run_star) {
    t0 = Now();
    verdict = CheckStar(*gv_, bound->target_node, bound->op);
    report.step2_seconds = Now() - t0;
    report.star_class = verdict.result;
    report.condition = verdict.condition;
    if (verdict.result == Translatability::kUntranslatable) {
      report.outcome = CheckOutcome::kUntranslatable;
      report.error = Status::Untranslatable(verdict.reason);
      return report;
    }
  }
  if (!options.run_data_check) {
    report.outcome = CheckOutcome::kExecuted;
    return report;
  }

  // ---- Step 3: data-driven translatability checking + translation --------
  t0 = Now();
  DataChecker checker(db_, view_.get(), gv_.get());
  auto data = checker.CheckAndExecute(*bound, verdict, options.strategy,
                                      options.apply);
  report.step3_seconds = Now() - t0;
  if (!data.ok()) {
    report.outcome = CheckOutcome::kDataConflict;
    report.error = data.status();
    return report;
  }
  report.translation = data->translation;
  report.rows_affected = data->rows_affected;
  report.zero_tuple_warning = data->zero_tuple_warning;
  report.probes = data->probes;
  if (!data->passed) {
    report.outcome = CheckOutcome::kDataConflict;
    report.error = data->failure;
    return report;
  }
  report.outcome = CheckOutcome::kExecuted;
  return report;
}

Result<xml::NodePtr> UFilter::MaterializeView() {
  view::Materializer materializer(db_);
  return materializer.Materialize(*view_);
}

}  // namespace ufilter::check
