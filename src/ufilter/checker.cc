#include "ufilter/checker.h"

#include <chrono>
#include <map>
#include <utility>

#include "relational/planner.h"
#include "ufilter/translator.h"
#include "ufilter/update_binding.h"
#include "ufilter/validation.h"
#include "xquery/normalize.h"

namespace ufilter::check {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Whether executing `action` under `options` would run step 3 (the only
/// phase that touches data). Shared by TryCheckReadOnly's punt decision and
/// CheckBatch's probe-merge planning so neither can drift from
/// ExecuteAction's actual gating.
bool ReachesStep3(const PreparedAction& action, const CheckOptions& options) {
  return action.bound_ok && options.run_data_check &&
         !(options.run_star && action.star_computed &&
           action.star.result == Translatability::kUntranslatable);
}

}  // namespace

const char* CheckOutcomeName(CheckOutcome o) {
  switch (o) {
    case CheckOutcome::kNotRun:
      return "not run";
    case CheckOutcome::kInvalid:
      return "invalid";
    case CheckOutcome::kUntranslatable:
      return "untranslatable";
    case CheckOutcome::kDataConflict:
      return "data conflict";
    case CheckOutcome::kExecuted:
      return "executed";
    case CheckOutcome::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "?";
}

std::string CheckReport::Describe() const {
  std::string out = CheckOutcomeName(outcome);
  if (outcome == CheckOutcome::kNotRun) return out;
  if (outcome == CheckOutcome::kExecuted) {
    out += " (" + std::string(TranslatabilityName(star_class));
    if (!condition.empty()) out += ", condition: " + condition;
    out += "), " + std::to_string(rows_affected) + " row(s) affected";
    if (zero_tuple_warning) out += " [warning: zero tuples matched]";
    if (!translation.empty()) {
      out += "\n" + relational::UpdateSequenceToSql(translation);
    }
  } else {
    out += ": " + error.ToString();
  }
  return out;
}

Result<std::unique_ptr<UFilter>> UFilter::Create(
    relational::Database* db, const std::string& view_query) {
  auto uf = std::unique_ptr<UFilter>(new UFilter());
  uf->db_ = db;
  UFILTER_ASSIGN_OR_RETURN(uf->query_, xq::ParseViewQuery(view_query));
  UFILTER_ASSIGN_OR_RETURN(
      uf->view_, view::AnalyzedView::Analyze(uf->query_, &db->schema()));
  UFILTER_ASSIGN_OR_RETURN(uf->gv_, asg::ViewAsg::Build(*uf->view_));
  uf->gd_ = asg::BaseAsg::Build(*uf->view_);
  double t0 = Now();
  UFILTER_RETURN_NOT_OK(MarkViewAsg(uf->gv_.get(), uf->gd_));
  uf->marking_seconds_ = Now() - t0;
  uf->view_signature_ = uf->view_->Signature();
  return uf;
}

// ---------------------------------------------------------------------------
// Compile phase (steps 1-2, schema-level only)
// ---------------------------------------------------------------------------

void UFilter::CompileActions(const xq::UpdateStmt& stmt, bool compute_star,
                             std::vector<PreparedAction>* actions,
                             double* step1_seconds, double* step2_seconds,
                             relational::ExecutionContext* ctx) {
  db_->stats().updates_compiled += 1;
  // Probe composition is schema-only, but probe *planning* reads table
  // statistics — scope both to `ctx` so a snapshot-pinned compile touches
  // no live table state.
  Translator translator(db_, view_.get(), gv_.get(), ctx);
  relational::Planner planner(db_, ctx);
  // Composes one step-3 probe and compiles it to a physical plan. A compose
  // failure leaves the slot absent (the checker recomposes — and surfaces
  // the same error — at execute time); a planning failure keeps the query
  // but no plan (the checker plans on demand).
  auto compile_probe = [&](Result<relational::SelectQuery> query,
                           CompiledProbe* out) {
    if (!query.ok()) return;
    out->present = true;
    out->query = std::move(*query);
    out->sql = out->query.ToSql();
    if (out->query.tables.empty()) return;  // trivial probe, nothing to plan
    auto plan = planner.Compile(out->query);
    if (plan.ok()) {
      out->plan = std::make_shared<const relational::PhysicalPlan>(
          std::move(*plan));
    }
  };
  for (const xq::UpdateAction& action : stmt.actions) {
    PreparedAction pa;

    // ---- Step 1: update validation --------------------------------------
    double t0 = Now();
    auto bound = BindUpdateAction(*view_, *gv_, stmt, action);
    if (!bound.ok()) {
      pa.step1_error = bound.status();
      *step1_seconds += Now() - t0;
      actions->push_back(std::move(pa));
      continue;
    }
    pa.bound = *bound;
    Status valid = ValidateUpdate(*gv_, pa.bound);
    *step1_seconds += Now() - t0;
    if (!valid.ok()) {
      pa.step1_error = valid;
      actions->push_back(std::move(pa));
      continue;
    }
    pa.bound_ok = true;

    // ---- Step 2: schema-driven translatability reasoning (STAR) ---------
    if (compute_star) {
      t0 = Now();
      pa.star = CheckStar(*gv_, pa.bound.target_node, pa.bound.op);
      pa.star_computed = true;
      db_->stats().star_checks += 1;
      *step2_seconds += Now() - t0;
    }

    // ---- Physical probe plans (replayed by step 3, zero name lookups) ----
    // Composed even for STAR-untranslatable actions: a run_star=false
    // execution of this plan still reaches step 3. The cost lands in the
    // caller's prepare_seconds, not the step-1 (validation) bucket.
    compile_probe(translator.ComposeAnchorProbe(pa.bound), &pa.probes.anchor);
    if (pa.bound.op == xq::UpdateOpType::kDelete ||
        pa.bound.op == xq::UpdateOpType::kReplace) {
      compile_probe(translator.ComposeVictimProbe(pa.bound),
                    &pa.probes.victim);
    }
    if (pa.bound.op == xq::UpdateOpType::kDelete ||
        pa.bound.op == xq::UpdateOpType::kInsert) {
      compile_probe(translator.ComposeWideProbe(pa.bound), &pa.probes.wide);
    }
    actions->push_back(std::move(pa));
  }
}

std::shared_ptr<PreparedUpdate> UFilter::CompileUpdate(
    const std::string& update_text, const std::string& normalized,
    bool compute_star, relational::ExecutionContext* ctx) {
  auto plan = std::shared_ptr<PreparedUpdate>(new PreparedUpdate());
  plan->normalized_text_ = normalized;
  plan->owner_ = this;
  plan->view_signature_ = view_signature_;
  double t0 = Now();
  auto stmt = xq::ParseUpdate(update_text);
  plan->step1_seconds_ = Now() - t0;
  if (!stmt.ok()) {
    plan->parse_error_ = stmt.status();
    return plan;
  }
  plan->stmt_ = std::make_unique<xq::UpdateStmt>(std::move(*stmt));
  CompileActions(*plan->stmt_, compute_star, &plan->actions_,
                 &plan->step1_seconds_, &plan->step2_seconds_, ctx);
  return plan;
}

std::shared_ptr<const PreparedUpdate> UFilter::Prepare(
    const std::string& update_text, bool* cache_hit,
    relational::ExecutionContext* ctx, obs::TraceContext* trace) {
  std::string normalized;
  std::shared_ptr<const PreparedUpdate> hit;
  {
    obs::ScopedSpan span(trace, obs::Stage::kPlanCache);
    normalized = xq::NormalizeUpdateText(update_text);
    hit = plan_cache_.Lookup(normalized);
  }
  if (hit != nullptr) {
    db_->stats().plan_cache_hits += 1;
    if (cache_hit != nullptr) *cache_hit = true;
    return hit;
  }
  db_->stats().plan_cache_misses += 1;
  if (cache_hit != nullptr) *cache_hit = false;
  // Cached plans always carry STAR: a later Execute with run_star=true must
  // be able to consume this plan.
  obs::ScopedSpan span(trace, obs::Stage::kCompile);
  std::shared_ptr<PreparedUpdate> plan =
      CompileUpdate(update_text, normalized, /*compute_star=*/true, ctx);
  plan_cache_.Insert(normalized, plan);
  return plan;
}

// ---------------------------------------------------------------------------
// Execute phase (step 3 + translation)
// ---------------------------------------------------------------------------

std::optional<CheckReport> UFilter::RejectUnusablePlan(
    const PreparedUpdate& prepared) const {
  CheckReport report;
  if (prepared.owner() != this ||
      prepared.view_signature() != view_signature_) {
    report.outcome = CheckOutcome::kInvalid;
    report.error = Status::InvalidUpdate(
        "prepared update was compiled against a different UFilter/view; "
        "re-Prepare it against this instance");
    return report;
  }
  if (!prepared.parsed()) {
    report.outcome = CheckOutcome::kInvalid;
    report.error = prepared.parse_error();
    return report;
  }
  return std::nullopt;
}

CheckReport UFilter::Execute(const PreparedUpdate& prepared,
                             const CheckOptions& options,
                             relational::ExecutionContext* ctx) {
  if (ctx == nullptr) ctx = db_->root_context();
  if (std::optional<CheckReport> rejected = RejectUnusablePlan(prepared)) {
    return *rejected;
  }
  return ExecuteActions(prepared.actions(), options, ctx);
}

std::optional<CheckReport> UFilter::TryCheckReadOnly(
    const PreparedUpdate& prepared, const CheckOptions& options,
    relational::ExecutionContext* ctx) {
  if (options.apply) return std::nullopt;  // applies go to the writer lane
  if (ctx == nullptr) ctx = db_->root_context();
  if (std::optional<CheckReport> rejected = RejectUnusablePlan(prepared)) {
    return rejected;
  }
  const std::vector<PreparedAction>& actions = prepared.actions();
  if (actions.empty()) {
    // Data is never touched: serve the same report ExecuteActions builds.
    return ExecuteActions(actions, options, ctx);
  }
  // The multi-action protocol checks each action against the state left by
  // the previous ones (inside a savepoint) — inherently execute-and-rollback.
  if (actions.size() > 1) return std::nullopt;
  const PreparedAction& action = actions[0];
  // Only the outside strategy checks before executing; hybrid/internal rely
  // on engine execution to surface conflicts, so they cannot run read-only.
  if (ReachesStep3(action, options) &&
      options.strategy != DataCheckStrategy::kOutside) {
    return std::nullopt;
  }
  bool undecided = false;
  CheckReport report =
      ExecuteAction(action, options, ctx, nullptr, &undecided);
  if (undecided) return std::nullopt;
  return report;
}

CheckReport UFilter::ExecuteActions(const std::vector<PreparedAction>& actions,
                                    const CheckOptions& options,
                                    relational::ExecutionContext* ctx) {
  if (actions.empty()) {
    CheckReport report;
    report.outcome = CheckOutcome::kInvalid;
    report.error = Status::InvalidUpdate("update statement has no action");
    return report;
  }
  if (actions.size() == 1) {
    return ExecuteAction(actions[0], options, ctx);
  }
  // Multi-action UPDATE block: check and apply atomically — every action
  // must pass or nothing is applied.
  CheckReport combined;
  if (options.run_star) {
    combined.star_class = Translatability::kUnconditionallyTranslatable;
  }
  size_t savepoint = ctx->Begin();
  for (const PreparedAction& action : actions) {
    CheckOptions per_action = options;
    per_action.apply = true;  // applied inside the outer savepoint
    CheckReport r = ExecuteAction(action, per_action, ctx);
    combined.step3_seconds += r.step3_seconds;
    if (r.outcome != CheckOutcome::kExecuted) {
      ctx->Rollback(savepoint);
      r.step3_seconds = combined.step3_seconds;
      return r;
    }
    // Keep the weakest classification across actions (conditional beats
    // unconditional).
    if (r.star_class != Translatability::kUnclassified &&
        static_cast<int>(r.star_class) <
            static_cast<int>(combined.star_class)) {
      combined.star_class = r.star_class;
    }
    if (!r.condition.empty()) {
      if (!combined.condition.empty()) combined.condition += " + ";
      combined.condition += r.condition;
    }
    combined.rows_affected += r.rows_affected;
    combined.zero_tuple_warning |= r.zero_tuple_warning;
    for (auto& op : r.translation) combined.translation.push_back(op);
    for (auto& p : r.probes) combined.probes.push_back(p);
  }
  if (options.apply) {
    ctx->Commit(savepoint);
  } else {
    ctx->Rollback(savepoint);
  }
  combined.outcome = CheckOutcome::kExecuted;
  return combined;
}

CheckReport UFilter::ExecuteAction(const PreparedAction& action,
                                   const CheckOptions& options,
                                   relational::ExecutionContext* ctx,
                                   const InjectedProbes* injected,
                                   bool* read_only_undecided) {
  if (read_only_undecided != nullptr) *read_only_undecided = false;
  CheckReport report;
  if (!action.bound_ok) {
    report.outcome = CheckOutcome::kInvalid;
    report.error = action.step1_error;
    return report;
  }

  // Step 2's verdict was precomputed at Prepare; apply its gate here. A
  // plan compiled without STAR (cache-bypassing run_star=false compile)
  // that is nevertheless executed with the gate on classifies on the fly.
  StarVerdict verdict;  // defaults to unconditionally translatable
  if (options.run_star) {
    if (action.star_computed) {
      verdict = action.star;
    } else {
      double t0 = Now();
      verdict = CheckStar(*gv_, action.bound.target_node, action.bound.op);
      db_->stats().star_checks += 1;
      report.step2_seconds += Now() - t0;
    }
    report.star_class = verdict.result;
    report.condition = verdict.condition;
    if (verdict.result == Translatability::kUntranslatable) {
      report.outcome = CheckOutcome::kUntranslatable;
      report.error = Status::Untranslatable(verdict.reason);
      return report;
    }
  }
  if (!options.run_data_check) {
    report.outcome = CheckOutcome::kExecuted;
    return report;
  }

  // ---- Step 3: data-driven translatability checking + translation --------
  double t0 = Now();
  DataChecker checker(db_, ctx, view_.get(), gv_.get());
  ApplyMode mode = read_only_undecided != nullptr
                       ? ApplyMode::kReadOnly
                       : (options.apply ? ApplyMode::kApply
                                        : ApplyMode::kDryRun);
  auto data = checker.CheckAndExecute(action.bound, verdict, options.strategy,
                                      mode, injected, &action.probes);
  report.step3_seconds = Now() - t0;
  if (data.ok() && data->undecided) {
    // Read-only validation punted; the caller re-runs via Execute.
    if (read_only_undecided != nullptr) *read_only_undecided = true;
    return report;
  }
  if (!data.ok()) {
    report.outcome = CheckOutcome::kDataConflict;
    report.error = data.status();
    return report;
  }
  report.translation = data->translation;
  report.rows_affected = data->rows_affected;
  report.zero_tuple_warning = data->zero_tuple_warning;
  report.probes = data->probes;
  if (!data->passed) {
    report.outcome = CheckOutcome::kDataConflict;
    report.error = data->failure;
    return report;
  }
  report.outcome = CheckOutcome::kExecuted;
  return report;
}

// ---------------------------------------------------------------------------
// Compatibility shim and batch front ends
// ---------------------------------------------------------------------------

CheckReport UFilter::Check(const std::string& update_text,
                           const CheckOptions& options,
                           relational::ExecutionContext* ctx) {
  double t0 = Now();
  bool hit = false;
  std::shared_ptr<const PreparedUpdate> plan;
  if (options.use_plan_cache) {
    plan = Prepare(update_text, &hit, ctx);
  } else {
    plan = CompileUpdate(update_text, xq::NormalizeUpdateText(update_text),
                         options.run_star, ctx);
  }
  double prepare_seconds = Now() - t0;
  CheckReport report = Execute(*plan, options, ctx);
  report.prepare_seconds = prepare_seconds;
  report.from_plan_cache = hit;
  if (!hit) {
    // This call actually compiled: attribute the compile cost to steps 1-2.
    report.step1_seconds += plan->compile_step1_seconds();
    if (options.run_star) {
      report.step2_seconds += plan->compile_step2_seconds();
    }
  }
  return report;
}

CheckReport UFilter::CheckParsed(const xq::UpdateStmt& stmt,
                                 const CheckOptions& options,
                                 relational::ExecutionContext* ctx) {
  if (ctx == nullptr) ctx = db_->root_context();
  std::vector<PreparedAction> actions;
  double step1_seconds = 0;
  double step2_seconds = 0;
  CompileActions(stmt, options.run_star, &actions, &step1_seconds,
                 &step2_seconds, ctx);
  CheckReport report = ExecuteActions(actions, options, ctx);
  report.step1_seconds += step1_seconds;
  if (options.run_star) report.step2_seconds += step2_seconds;
  return report;
}

std::vector<CheckReport> UFilter::CheckBatch(
    const std::vector<std::string>& updates, const CheckOptions& options,
    relational::ExecutionContext* ctx) {
  if (ctx == nullptr) ctx = db_->root_context();
  const size_t n = updates.size();
  std::vector<CheckReport> reports(n);

  // Phase 1: prepare every update (through the plan cache).
  std::vector<std::shared_ptr<const PreparedUpdate>> plans(n);
  std::vector<char> hits(n, 0);
  std::vector<double> prepare_seconds(n, 0);
  for (size_t i = 0; i < n; ++i) {
    double t0 = Now();
    if (options.use_plan_cache) {
      bool hit = false;
      plans[i] = Prepare(updates[i], &hit, ctx);
      hits[i] = hit ? 1 : 0;
    } else {
      plans[i] = CompileUpdate(updates[i], xq::NormalizeUpdateText(updates[i]),
                               options.run_star, ctx);
    }
    prepare_seconds[i] = Now() - t0;
  }

  // Phase 2: classify. Updates that reach step 3 with a single action get
  // their anchor/victim probes composed (schema work only — no queries yet);
  // everything else resolves immediately or falls back to Execute.
  enum class Mode { kDone, kFallback, kPending };
  struct Pending {
    size_t index = 0;
    const PreparedAction* action = nullptr;
    bool merge_anchor = false;
    relational::SelectQuery anchor_query;
    bool merge_victim = false;
    relational::SelectQuery victim_query;
    InjectedProbes probes;
  };
  std::vector<Mode> modes(n, Mode::kDone);
  std::vector<Pending> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const PreparedUpdate& plan = *plans[i];
    if (!plan.parsed()) {
      reports[i].outcome = CheckOutcome::kInvalid;
      reports[i].error = plan.parse_error();
      continue;
    }
    if (plan.actions().size() != 1) {
      // Multi-action blocks keep the atomic savepoint protocol unbatched.
      modes[i] = Mode::kFallback;
      continue;
    }
    const PreparedAction& action = plan.actions()[0];
    if (!ReachesStep3(action, options)) {
      reports[i] = ExecuteAction(action, options, ctx);
      continue;
    }
    // The probe queries were composed (and physically compiled) at Prepare
    // time; an absent slot means composition failed there, and the
    // unbatched path will surface the same error.
    Pending p;
    p.index = i;
    p.action = &action;
    if (!action.probes.anchor.present) {
      modes[i] = Mode::kFallback;
      continue;
    }
    p.merge_anchor = !action.probes.anchor.query.tables.empty();
    if (p.merge_anchor) p.anchor_query = action.probes.anchor.query;
    if (action.bound.op == xq::UpdateOpType::kDelete ||
        action.bound.op == xq::UpdateOpType::kReplace) {
      if (!action.probes.victim.present) {
        modes[i] = Mode::kFallback;
        continue;
      }
      p.merge_victim = true;
      p.victim_query = action.probes.victim.query;
    }
    modes[i] = Mode::kPending;
    pending.push_back(std::move(p));
  }

  // Phase 3: group probes sharing a base shape (selects + tables + joins —
  // i.e. the same target relation chain) and issue one merged
  // OR-of-predicates query per group, demultiplexing rows per update.
  auto ShapeKey = [](const relational::SelectQuery& q) {
    std::string key;
    for (const relational::ColRef& s : q.selects) key += s.ToString() + ",";
    key += "#";
    for (const auto& t : q.tables) key += t.table + " " + t.alias + ",";
    key += "#";
    for (const relational::JoinPredicate& j : q.joins) {
      key += j.a.ToString() + CompareOpSymbol(j.op) + j.b.ToString() + ",";
    }
    return key;
  };
  struct Group {
    relational::SelectQuery base;  // group shape, filters cleared
    std::vector<std::vector<relational::FilterPredicate>> branches;
    std::vector<std::pair<Pending*, bool /*is_victim*/>> members;
  };
  std::map<std::string, Group> groups;
  auto AddMember = [&](Pending* p, const relational::SelectQuery& query,
                       bool is_victim) {
    std::string key = (is_victim ? "victim:" : "anchor:") + ShapeKey(query);
    Group& group = groups[key];
    if (group.members.empty()) {
      group.base = query;
      group.base.filters.clear();
    }
    group.branches.push_back(query.filters);
    group.members.push_back({p, is_victim});
  };
  for (Pending& p : pending) {
    if (p.merge_anchor) AddMember(&p, p.anchor_query, false);
    if (p.merge_victim) AddMember(&p, p.victim_query, true);
  }
  relational::QueryEvaluator evaluator(db_, ctx);
  for (auto& [key, group] : groups) {
    relational::DisjunctiveQuery dq;
    dq.base = group.base;
    dq.branches = group.branches;
    auto merged = evaluator.ExecuteDisjunctive(dq);
    if (!merged.ok()) {
      // Engine-level failure: let each member re-probe individually.
      for (auto& [p, is_victim] : group.members) {
        modes[p->index] = Mode::kFallback;
      }
      continue;
    }
    std::string sql = dq.ToSql();
    for (size_t b = 0; b < group.members.size(); ++b) {
      auto& [p, is_victim] = group.members[b];
      if (modes[p->index] != Mode::kPending) continue;
      if (is_victim) {
        p->probes.has_victim = true;
        p->probes.victim_query = p->victim_query;
        p->probes.victims = merged->Extract(b);
        p->probes.victim_sql = sql;
      } else {
        p->probes.has_anchor = true;
        p->probes.anchor_query = p->anchor_query;
        p->probes.anchors = merged->Extract(b);
        p->probes.anchor_sql = sql;
      }
    }
  }

  // Phase 4: execute every update in batch order against the demultiplexed
  // probe rows (pending) or through the unbatched path (fallback).
  std::vector<Pending*> pending_by_index(n, nullptr);
  for (Pending& p : pending) pending_by_index[p.index] = &p;
  for (size_t i = 0; i < n; ++i) {
    switch (modes[i]) {
      case Mode::kDone:
        break;
      case Mode::kFallback:
        reports[i] = Execute(*plans[i], options, ctx);
        break;
      case Mode::kPending: {
        Pending* p = pending_by_index[i];
        reports[i] = ExecuteAction(*p->action, options, ctx, &p->probes);
        break;
      }
    }
    reports[i].prepare_seconds = prepare_seconds[i];
    reports[i].from_plan_cache = hits[i] != 0;
    if (hits[i] == 0) {
      reports[i].step1_seconds += plans[i]->compile_step1_seconds();
      if (options.run_star) {
        reports[i].step2_seconds += plans[i]->compile_step2_seconds();
      }
    }
  }
  return reports;
}

Result<xml::NodePtr> UFilter::MaterializeView() {
  view::Materializer materializer(db_);
  return materializer.Materialize(*view_);
}

}  // namespace ufilter::check
