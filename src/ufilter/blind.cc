#include "ufilter/blind.h"

#include <chrono>

#include "relational/query.h"
#include "ufilter/translator.h"
#include "ufilter/update_binding.h"
#include "ufilter/xml_apply.h"
#include "view/diff.h"
#include "view/materializer.h"

namespace ufilter::check {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<BlindResult> BlindExecute(UFilter* uf, const xq::UpdateStmt& stmt) {
  BlindResult result;
  relational::Database* db = uf->database();
  const view::AnalyzedView& view = uf->analyzed_view();
  const asg::ViewAsg& gv = uf->view_asg();

  // Expected view: materialize now and apply the update with XML semantics.
  double t0 = Now();
  view::Materializer materializer(db);
  UFILTER_ASSIGN_OR_RETURN(xml::NodePtr expected, materializer.Materialize(view));
  UFILTER_RETURN_NOT_OK(ApplyUpdateToXml(expected.get(), stmt).status());
  result.detect_seconds += Now() - t0;

  // Blind translation: no validation, no STAR, no minimization.
  t0 = Now();
  UFILTER_ASSIGN_OR_RETURN(BoundUpdate bound, BindUpdate(view, gv, stmt));
  Translator translator(db, &view, &gv);
  relational::QueryEvaluator evaluator(db);
  std::vector<relational::UpdateOp> ops;
  switch (bound.op) {
    case xq::UpdateOpType::kDelete: {
      UFILTER_ASSIGN_OR_RETURN(relational::SelectQuery victim_query,
                               translator.ComposeVictimProbe(bound));
      UFILTER_ASSIGN_OR_RETURN(relational::QueryResult victims,
                               evaluator.Execute(victim_query));
      UFILTER_ASSIGN_OR_RETURN(
          ops, translator.TranslateDelete(bound, victim_query, victims,
                                          /*minimize=*/false));
      break;
    }
    case xq::UpdateOpType::kInsert: {
      UFILTER_ASSIGN_OR_RETURN(relational::SelectQuery anchor_query,
                               translator.ComposeAnchorProbe(bound));
      relational::QueryResult anchors;
      if (!anchor_query.tables.empty()) {
        UFILTER_ASSIGN_OR_RETURN(anchors, evaluator.Execute(anchor_query));
      }
      UFILTER_ASSIGN_OR_RETURN(
          ops, translator.TranslateInsert(bound, anchor_query, anchors));
      break;
    }
    case xq::UpdateOpType::kReplace:
      return Status::NotSupported("blind baseline covers insert/delete");
  }
  result.translate_seconds = Now() - t0;

  // Execute.
  t0 = Now();
  size_t savepoint = db->Begin();
  Status exec = Status::OK();
  for (const relational::UpdateOp& op : ops) {
    switch (op.kind) {
      case relational::UpdateOpKind::kInsert: {
        auto r = db->InsertValues(op.table, op.values);
        if (!r.ok()) exec = r.status();
        break;
      }
      case relational::UpdateOpKind::kDelete: {
        auto r = db->DeleteWhere(op.table, op.where);
        if (!r.ok()) {
          exec = r.status();
        } else {
          result.rows_affected += r->deleted_rows;
        }
        break;
      }
      case relational::UpdateOpKind::kUpdate: {
        auto r = db->UpdateWhere(op.table, op.values, op.where);
        if (!r.ok()) exec = r.status();
        break;
      }
    }
    if (!exec.ok()) break;
  }
  result.execute_seconds = Now() - t0;

  if (!exec.ok()) {
    t0 = Now();
    db->Rollback(savepoint);
    result.rollback_seconds = Now() - t0;
    result.side_effect = true;
    return result;
  }

  // Detect side effects: materialize and compare with the expected view.
  t0 = Now();
  UFILTER_ASSIGN_OR_RETURN(xml::NodePtr actual, materializer.Materialize(view));
  bool equal = view::TreesEqual(*expected, *actual);
  result.detect_seconds += Now() - t0;

  if (!equal) {
    t0 = Now();
    db->Rollback(savepoint);
    result.rollback_seconds = Now() - t0;
    result.side_effect = true;
  } else {
    db->Commit(savepoint);
    result.applied = true;
  }
  return result;
}

}  // namespace ufilter::check
