// Binds a parsed view update statement to the analyzed view / view ASG:
// resolves its FOR variables to view elements, its WHERE predicates to
// relational attributes, and its target (victim or insert payload anchor) to
// an ASG node. Everything downstream (validation, STAR, data checks,
// translation) works on the BoundUpdate.
#ifndef UFILTER_UFILTER_UPDATE_BINDING_H_
#define UFILTER_UFILTER_UPDATE_BINDING_H_

#include <map>
#include <string>
#include <vector>

#include "asg/view_asg.h"
#include "common/result.h"
#include "view/analyzed_view.h"
#include "xquery/ast.h"

namespace ufilter::check {

/// A WHERE conjunct of the update, resolved against the view: the attribute
/// the compared view leaf projects, plus the literal.
struct BoundPredicate {
  view::AttrRef attr;
  CompareOp op = CompareOp::kEq;
  Value literal;

  std::string ToString() const;
};

/// \brief An update statement resolved against a specific view.
struct BoundUpdate {
  xq::UpdateOpType op = xq::UpdateOpType::kInsert;

  /// Element the UPDATE clause is anchored at ($target).
  const view::AvNode* context = nullptr;
  /// For delete/replace: the element (or simple element for /text()) being
  /// removed. For insert: the view element type the payload instantiates
  /// (child of `context` matching the payload's root tag).
  const view::AvNode* target = nullptr;
  /// ASG node id of `target` (tag node for simple elements).
  int target_node = -1;
  /// True when the victim path ended in /text() (leaf value deletion).
  bool text_only = false;

  /// Update WHERE conjuncts resolved to relational attributes.
  std::vector<BoundPredicate> predicates;

  /// Insert/replace payload (owned by the statement).
  const xml::Node* payload = nullptr;

  /// The original statement (not owned).
  const xq::UpdateStmt* stmt = nullptr;
};

/// Resolves `stmt`'s first action against the view. Fails with
/// InvalidUpdate when the statement references elements the view does not
/// have (structural conflicts surface here, e.g. inserting a <review> into
/// <publisher>).
Result<BoundUpdate> BindUpdate(const view::AnalyzedView& view,
                               const asg::ViewAsg& gv,
                               const xq::UpdateStmt& stmt);

/// Resolves one specific action of a (possibly multi-action) statement.
Result<BoundUpdate> BindUpdateAction(const view::AnalyzedView& view,
                                     const asg::ViewAsg& gv,
                                     const xq::UpdateStmt& stmt,
                                     const xq::UpdateAction& action);

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_UPDATE_BINDING_H_
