#include "ufilter/xml_apply.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

namespace ufilter::check {

namespace {

using xml::Node;

/// Nodes reached from `from` by the element steps of `path` (not including
/// text()); one hop can fan out to several children with the same tag.
std::vector<Node*> NavigateSteps(Node* from,
                                 const std::vector<std::string>& steps) {
  std::vector<Node*> current = {from};
  for (const std::string& step : steps) {
    std::vector<Node*> next;
    for (Node* n : current) {
      for (Node* c : n->FindChildren(step)) next.push_back(c);
    }
    current = std::move(next);
  }
  return current;
}

/// Evaluates a comparison between a node text and a literal, numeric when
/// the literal is numeric.
bool CompareText(const std::string& text, CompareOp op, const Value& literal) {
  Value lhs;
  if (literal.is_int() || literal.is_double()) {
    auto parsed = Value::FromText(text, ValueType::kDouble);
    if (!parsed.ok()) return false;
    lhs = *parsed;
  } else {
    lhs = Value::String(text);
  }
  return EvalCompare(lhs, op, literal);
}

class XmlUpdater {
 public:
  XmlUpdater(Node* root, const xq::UpdateStmt& stmt,
             const xq::UpdateAction& action)
      : root_(root), stmt_(stmt), action_(action) {}

  Result<int> Run() {
    UFILTER_RETURN_NOT_OK(BindFrom(0));
    // Apply collected mutations after enumeration (stable iteration).
    int changes = 0;
    if (action_.op == xq::UpdateOpType::kInsert) {
      for (Node* target : insert_targets_) {
        target->AddChild(action_.payload->Clone());
        ++changes;
      }
    } else {
      for (auto& [parent, child] : removals_) {
        if (action_.op == xq::UpdateOpType::kReplace) {
          parent->AddChild(action_.payload->Clone());
          ++changes;
        }
        if (parent->RemoveChild(child) != nullptr) ++changes;
      }
    }
    return changes;
  }

 private:
  /// Enumerates variable bindings in order; on full binding evaluates the
  /// WHERE clause and records the mutation target.
  Status BindFrom(size_t index) {
    if (index == stmt_.bindings.size()) {
      if (!ConditionsHold()) return Status::OK();
      return RecordTarget();
    }
    const xq::ForBinding& binding = stmt_.bindings[index];
    std::vector<Node*> candidates;
    if (binding.path.from_document) {
      candidates = NavigateSteps(root_, binding.path.steps);
    } else {
      auto it = env_.find(binding.path.variable);
      if (it == env_.end()) {
        return Status::InvalidUpdate("unbound variable $" +
                                     binding.path.variable);
      }
      candidates = NavigateSteps(it->second, binding.path.steps);
    }
    for (Node* node : candidates) {
      env_[binding.variable] = node;
      UFILTER_RETURN_NOT_OK(BindFrom(index + 1));
    }
    env_.erase(binding.variable);
    return Status::OK();
  }

  bool ConditionsHold() const {
    for (const xq::Condition& cond : stmt_.conditions) {
      const xq::Operand* path_side = &cond.lhs;
      const xq::Operand* lit_side = &cond.rhs;
      CompareOp op = cond.op;
      if (!path_side->is_path()) {
        path_side = &cond.rhs;
        lit_side = &cond.lhs;
        op = FlipCompareOp(op);
      }
      auto it = env_.find(path_side->path.variable);
      if (it == env_.end()) return false;
      std::vector<Node*> nodes =
          NavigateSteps(it->second, path_side->path.steps);
      bool any = false;
      for (Node* n : nodes) {
        if (CompareText(n->TextContent(), op, lit_side->literal)) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  }

  Status RecordTarget() {
    auto it = env_.find(stmt_.target_variable);
    if (it == env_.end()) {
      return Status::InvalidUpdate("unbound UPDATE variable $" +
                                   stmt_.target_variable);
    }
    Node* anchor = it->second;
    switch (action_.op) {
      case xq::UpdateOpType::kInsert:
        if (seen_.insert(anchor).second) insert_targets_.push_back(anchor);
        return Status::OK();
      case xq::UpdateOpType::kDelete:
      case xq::UpdateOpType::kReplace: {
        Node* start = anchor;
        if (!action_.victim.variable.empty() &&
            action_.victim.variable != stmt_.target_variable) {
          auto vit = env_.find(action_.victim.variable);
          if (vit == env_.end()) {
            return Status::InvalidUpdate("unbound victim variable $" +
                                         action_.victim.variable);
          }
          start = vit->second;
        }
        std::vector<Node*> victims = NavigateSteps(start, action_.victim.steps);
        for (Node* victim : victims) {
          if (action_.victim.text_fn) {
            // Deleting text() NULLs the underlying attribute; a NULL leaf
            // renders as an absent element, so the element goes away too.
            if (victim->parent() != nullptr && seen_.insert(victim).second) {
              removals_.emplace_back(victim->parent(), victim);
            }
          } else {
            if (victim->parent() != nullptr && seen_.insert(victim).second) {
              removals_.emplace_back(victim->parent(), victim);
            }
          }
        }
        return Status::OK();
      }
    }
    return Status::Internal("unknown op");
  }

  Node* root_;
  const xq::UpdateStmt& stmt_;
  const xq::UpdateAction& action_;
  std::map<std::string, Node*> env_;
  std::set<Node*> seen_;
  std::vector<Node*> insert_targets_;
  std::vector<std::pair<Node*, Node*>> removals_;  // (parent, child)
};

}  // namespace

Result<int> ApplyUpdateToXml(Node* root, const xq::UpdateStmt& stmt) {
  int total = 0;
  for (const xq::UpdateAction& action : stmt.actions) {
    XmlUpdater updater(root, stmt, action);
    UFILTER_ASSIGN_OR_RETURN(int n, updater.Run());
    total += n;
  }
  return total;
}

}  // namespace ufilter::check
