#include "ufilter/datacheck.h"

#include "relational/dryrun.h"

namespace ufilter::check {

using relational::ColumnPredicate;
using relational::QueryEvaluator;
using relational::QueryResult;
using relational::RowId;
using relational::SelectQuery;
using relational::Table;
using relational::UpdateOp;
using relational::UpdateOpKind;

const char* DataCheckStrategyName(DataCheckStrategy s) {
  switch (s) {
    case DataCheckStrategy::kInternal:
      return "internal";
    case DataCheckStrategy::kHybrid:
      return "hybrid";
    case DataCheckStrategy::kOutside:
      return "outside";
  }
  return "?";
}

namespace {

/// Runs a probe, replaying a compiled plan when one is attached.
Result<QueryResult> RunProbe(relational::Database* db,
                             relational::ExecutionContext* ctx,
                             const SelectQuery& query,
                             const std::shared_ptr<
                                 const relational::PhysicalPlan>& plan) {
  QueryEvaluator evaluator(db, ctx);
  if (plan != nullptr) {
    UFILTER_ASSIGN_OR_RETURN(relational::DisjunctiveResult merged,
                             evaluator.ExecutePlan(*plan));
    return std::move(merged.merged);
  }
  return evaluator.Execute(query);
}

}  // namespace

Result<QueryResult> DataChecker::CheckContext(const BoundUpdate& update,
                                              SelectQuery* query_out,
                                              DataCheckReport* report,
                                              const InjectedProbes* injected,
                                              const CompiledProbeSet* compiled) {
  if (injected != nullptr && injected->has_anchor) {
    *query_out = injected->anchor_query;
    report->probes.push_back(injected->anchor_sql);
    if (injected->anchors.empty()) {
      return Status::DataConflict(
          "update context <" + update.context->tag +
          "> matches nothing in the view (probe returned no rows)");
    }
    return injected->anchors;
  }
  SelectQuery query;
  std::string sql;
  std::shared_ptr<const relational::PhysicalPlan> plan;
  if (compiled != nullptr && compiled->anchor.present) {
    query = compiled->anchor.query;
    sql = compiled->anchor.sql;
    plan = compiled->anchor.plan;
  } else {
    UFILTER_ASSIGN_OR_RETURN(query, translator_.ComposeAnchorProbe(update));
    sql = query.ToSql();
  }
  *query_out = query;
  if (query.tables.empty()) {
    // Root-anchored update: the context trivially exists.
    return QueryResult{};
  }
  report->probes.push_back(sql);
  UFILTER_ASSIGN_OR_RETURN(QueryResult result, RunProbe(db_, ctx_, query, plan));
  if (result.empty()) {
    return Status::DataConflict(
        "update context <" + update.context->tag +
        "> matches nothing in the view (probe returned no rows)");
  }
  return result;
}

Result<QueryResult> DataChecker::FetchVictims(const BoundUpdate& update,
                                              SelectQuery* query_out,
                                              DataCheckReport* report,
                                              const InjectedProbes* injected,
                                              const CompiledProbeSet* compiled) {
  if (injected != nullptr && injected->has_victim) {
    *query_out = injected->victim_query;
    report->probes.push_back(injected->victim_sql);
    return injected->victims;
  }
  SelectQuery query;
  std::string sql;
  std::shared_ptr<const relational::PhysicalPlan> plan;
  if (compiled != nullptr && compiled->victim.present) {
    query = compiled->victim.query;
    sql = compiled->victim.sql;
    plan = compiled->victim.plan;
  } else {
    UFILTER_ASSIGN_OR_RETURN(query, translator_.ComposeVictimProbe(update));
    sql = query.ToSql();
  }
  *query_out = query;
  report->probes.push_back(sql);
  return RunProbe(db_, ctx_, query, plan);
}

Status DataChecker::RunWideProbe(const BoundUpdate& update,
                                 DataCheckReport* report,
                                 const CompiledProbeSet* compiled) {
  SelectQuery query;
  std::string sql;
  std::shared_ptr<const relational::PhysicalPlan> plan;
  if (compiled != nullptr && compiled->wide.present) {
    query = compiled->wide.query;
    sql = compiled->wide.sql;
    plan = compiled->wide.plan;
  } else {
    UFILTER_ASSIGN_OR_RETURN(query, translator_.ComposeWideProbe(update));
    sql = query.ToSql();
  }
  report->probes.push_back(sql);
  UFILTER_ASSIGN_OR_RETURN(QueryResult result, RunProbe(db_, ctx_, query, plan));
  (void)result;
  return Status::OK();
}

Status DataChecker::ExecuteOps(const std::vector<UpdateOp>& ops,
                               DataCheckReport* report) {
  if (mode_ == ApplyMode::kReadOnly) {
    relational::DryRunOutcome outcome =
        relational::DryRunOps(*db_, ctx_, ops);
    if (!outcome.decided) {
      report->undecided = true;
      return Status::OK();
    }
    if (!outcome.failure.ok()) return outcome.failure;
    report->rows_affected += outcome.rows_affected;
    return Status::OK();
  }
  for (const UpdateOp& op : ops) {
    switch (op.kind) {
      case UpdateOpKind::kInsert: {
        auto result = db_->InsertValues(ctx_, op.table, op.values);
        if (!result.ok()) return result.status();
        report->rows_affected += 1;
        break;
      }
      case UpdateOpKind::kDelete: {
        auto result = db_->DeleteWhere(ctx_, op.table, op.where);
        if (!result.ok()) return result.status();
        report->rows_affected += result->deleted_rows;
        break;
      }
      case UpdateOpKind::kUpdate: {
        auto result = db_->UpdateWhere(ctx_, op.table, op.values, op.where);
        if (!result.ok()) return result.status();
        report->rows_affected += *result;
        break;
      }
    }
  }
  return Status::OK();
}

Status DataChecker::ProbeInsertConflicts(const std::vector<UpdateOp>& ops,
                                         DataCheckReport* report) {
  for (const UpdateOp& op : ops) {
    if (op.kind != UpdateOpKind::kInsert) continue;
    UFILTER_ASSIGN_OR_RETURN(Table * table, db_->GetTable(ctx_, op.table));
    const relational::TableSchema& schema = table->schema();
    if (schema.primary_key().empty()) continue;
    std::vector<ColumnPredicate> preds;
    bool full_key = true;
    for (const std::string& pk : schema.primary_key()) {
      auto it = op.values.find(pk);
      if (it == op.values.end() || it->second.is_null()) {
        full_key = false;
        break;
      }
      preds.push_back({pk, CompareOp::kEq, it->second});
    }
    if (!full_key) continue;
    SelectQuery probe;
    probe.tables.push_back({op.table, op.table});
    for (const ColumnPredicate& p : preds) {
      probe.filters.push_back(
          {relational::ColRef{op.table, p.column}, p.op, p.literal});
      probe.selects.push_back(relational::ColRef{op.table, p.column});
    }
    report->probes.push_back(probe.ToSql());
    if (!table->Find(preds, &db_->stats()).empty()) {
      return Status::DataConflict("data conflict: key already exists in '" +
                                  op.table + "' (outside-strategy probe)");
    }
  }
  return Status::OK();
}

Result<DataCheckReport> DataChecker::RunDelete(const BoundUpdate& update,
                                               const StarVerdict& verdict,
                                               DataCheckStrategy strategy,
                                               const InjectedProbes* injected,
                                               const CompiledProbeSet* compiled) {
  DataCheckReport report;
  SelectQuery anchor_query;
  UFILTER_ASSIGN_OR_RETURN(
      QueryResult anchors,
      CheckContext(update, &anchor_query, &report, injected, compiled));
  (void)anchors;

  SelectQuery victim_query;
  UFILTER_ASSIGN_OR_RETURN(
      QueryResult victims,
      FetchVictims(update, &victim_query, &report, injected, compiled));
  if (strategy == DataCheckStrategy::kInternal) {
    // The internal strategy would delete through the flat relational view:
    // fetch the full-width tuples first.
    UFILTER_RETURN_NOT_OK(RunWideProbe(update, &report, compiled));
  }
  if (victims.empty()) {
    // The paper's u12: the relational engine would answer "zero tuples
    // deleted"; the outside strategy detects it before issuing any delete.
    report.passed = true;
    report.zero_tuple_warning = true;
    return report;
  }
  bool minimize = verdict.condition.find("minimization") != std::string::npos;
  UFILTER_ASSIGN_OR_RETURN(
      report.translation,
      translator_.TranslateDelete(update, victim_query, victims, minimize));
  Status exec = ExecuteOps(report.translation, &report);
  if (!exec.ok()) {
    report.failure = exec;
    return report;
  }
  report.passed = true;
  return report;
}

Result<DataCheckReport> DataChecker::RunInsert(const BoundUpdate& update,
                                               const StarVerdict& verdict,
                                               DataCheckStrategy strategy,
                                               const InjectedProbes* injected,
                                               const CompiledProbeSet* compiled) {
  DataCheckReport report;
  SelectQuery anchor_query;
  UFILTER_ASSIGN_OR_RETURN(
      QueryResult anchors,
      CheckContext(update, &anchor_query, &report, injected, compiled));

  if (strategy == DataCheckStrategy::kInternal) {
    // Build the complete relational-view tuple: wide probe over the chain
    // (this is the extra cost Fig. 15 shows).
    UFILTER_RETURN_NOT_OK(RunWideProbe(update, &report, compiled));
  }

  UFILTER_ASSIGN_OR_RETURN(
      report.translation,
      translator_.TranslateInsert(update, anchor_query, anchors));

  // Condition analysis (Fig. 5). The consistency pass runs for every
  // insert: it rejects key conflicts on the element's own relation (the
  // update-point check of 6.2) and, when the STAR condition demands
  // duplication consistency, turns consistent secondary duplicates into
  // tuple reuse.
  {
    Status st =
        translator_.EnforceDuplicationConsistency(update, &report.translation);
    if (!st.ok()) {
      report.failure = st;
      return report;
    }
  }
  (void)verdict;
  if (strategy == DataCheckStrategy::kOutside) {
    Status st = ProbeInsertConflicts(report.translation, &report);
    if (!st.ok()) {
      report.failure = st;
      return report;
    }
  }
  Status exec = ExecuteOps(report.translation, &report);
  if (!exec.ok()) {
    // Hybrid/internal path: the engine detected the conflict.
    report.failure = Status::DataConflict(exec.message());
    return report;
  }
  report.passed = true;
  return report;
}

Result<DataCheckReport> DataChecker::RunReplace(
    const BoundUpdate& update, const StarVerdict& verdict,
    // Replace rewrites one bound leaf in place, so the probe and the
    // translation coincide for every strategy: there is no wide tuple to
    // assemble (internal) and no conflict set to pre-probe (outside).
    DataCheckStrategy /*strategy*/, const InjectedProbes* injected,
    const CompiledProbeSet* compiled) {
  DataCheckReport report;
  SelectQuery anchor_query;
  UFILTER_ASSIGN_OR_RETURN(
      QueryResult anchors,
      CheckContext(update, &anchor_query, &report, injected, compiled));

  const asg::ViewNode& target = gv_->node(update.target_node);
  SelectQuery victim_query;
  UFILTER_ASSIGN_OR_RETURN(
      QueryResult victims,
      FetchVictims(update, &victim_query, &report, injected, compiled));
  if (victims.empty()) {
    report.passed = true;
    report.zero_tuple_warning = true;
    return report;
  }

  if (target.kind == asg::NodeKind::kLeaf ||
      target.kind == asg::NodeKind::kTag) {
    // Value replacement: UPDATE ... SET attr = new value.
    const asg::ViewNode& leaf = target.kind == asg::NodeKind::kLeaf
                                    ? target
                                    : gv_->node(target.children[0]);
    UFILTER_ASSIGN_OR_RETURN(
        Value v,
        Value::FromText(update.payload->TextContent(), leaf.type));
    std::map<std::string, size_t> alias_pos;
    for (size_t i = 0; i < victim_query.tables.size(); ++i) {
      alias_pos[victim_query.tables[i].alias] = i;
    }
    auto pos = alias_pos.find(leaf.variable);
    if (pos == alias_pos.end()) {
      return Status::Internal("replace target variable missing from probe");
    }
    UFILTER_ASSIGN_OR_RETURN(Table * table,
                             db_->GetTable(ctx_, leaf.relation));
    for (const auto& ids : victims.row_ids) {
      const relational::Row* row = table->GetRow(ids[pos->second]);
      if (row == nullptr) continue;
      UpdateOp op;
      op.kind = UpdateOpKind::kUpdate;
      op.table = leaf.relation;
      op.values[leaf.attr] = v;
      for (const std::string& pk : table->schema().primary_key()) {
        int c = table->schema().ColumnIndex(pk);
        op.where.push_back(
            {pk, CompareOp::kEq, (*row)[static_cast<size_t>(c)]});
      }
      report.translation.push_back(std::move(op));
    }
  } else {
    // Element replacement = delete victim + insert payload.
    bool minimize =
        verdict.condition.find("minimization") != std::string::npos;
    UFILTER_ASSIGN_OR_RETURN(
        std::vector<UpdateOp> delete_ops,
        translator_.TranslateDelete(update, victim_query, victims, minimize));
    // The replacement is inserted once per *victim* (whose probe rows carry
    // the full context chain), not per context anchor: a WHERE on the
    // victim's own scope must not fan the insert out to sibling contexts.
    UFILTER_ASSIGN_OR_RETURN(
        std::vector<UpdateOp> insert_ops,
        translator_.TranslateInsert(update, victim_query, victims));
    report.translation = std::move(delete_ops);
    for (UpdateOp& op : insert_ops) report.translation.push_back(std::move(op));
    if (verdict.condition.find("duplication consistency") !=
        std::string::npos) {
      Status st = translator_.EnforceDuplicationConsistency(
          update, &report.translation);
      if (!st.ok()) {
        report.failure = st;
        return report;
      }
    }
  }

  Status exec = ExecuteOps(report.translation, &report);
  if (!exec.ok()) {
    report.failure = Status::DataConflict(exec.message());
    return report;
  }
  report.passed = true;
  return report;
}

Result<DataCheckReport> DataChecker::CheckAndExecute(
    const BoundUpdate& update, const StarVerdict& verdict,
    DataCheckStrategy strategy, ApplyMode mode,
    const InjectedProbes* injected, const CompiledProbeSet* compiled) {
  mode_ = mode;
  // Read-only mode touches no data, so there is nothing to roll back (and
  // taking a savepoint would race with concurrent readers' contexts).
  const bool read_only = mode == ApplyMode::kReadOnly;
  size_t savepoint = read_only ? 0 : ctx_->Begin();
  Result<DataCheckReport> result = [&]() -> Result<DataCheckReport> {
    switch (update.op) {
      case xq::UpdateOpType::kDelete:
        return RunDelete(update, verdict, strategy, injected, compiled);
      case xq::UpdateOpType::kInsert:
        return RunInsert(update, verdict, strategy, injected, compiled);
      case xq::UpdateOpType::kReplace:
        return RunReplace(update, verdict, strategy, injected, compiled);
    }
    return Status::Internal("unknown update op");
  }();
  if (!result.ok()) {
    if (!read_only) ctx_->Rollback(savepoint);
    // Context-check rejections surface as a failed report, not an error.
    if (result.status().IsDataConflict()) {
      DataCheckReport report;
      report.failure = result.status();
      return report;
    }
    return result.status();
  }
  if (read_only) return result;
  if (!result->passed || mode != ApplyMode::kApply) {
    ctx_->Rollback(savepoint);
  } else {
    ctx_->Commit(savepoint);
  }
  return result;
}

}  // namespace ufilter::check
