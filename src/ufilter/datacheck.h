// Step 3: data-driven translatability checking (Section 6).
//
// The update-context check (6.1) probes whether the element the update
// inserts into / deletes from exists in the view. The update-point check
// (6.2) detects conflicts in the updated data itself, with three strategies:
//   - internal: map the view to a flat relational view; the probe must fetch
//     *all* view columns to build a complete relational-view tuple,
//   - external-hybrid: translate without checking, execute, let the engine
//     report conflicts (key violations / zero-tuple warnings), roll back,
//   - external-outside: probe each target relation first, then execute.
#ifndef UFILTER_UFILTER_DATACHECK_H_
#define UFILTER_UFILTER_DATACHECK_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/planner.h"
#include "relational/query.h"
#include "relational/sqlgen.h"
#include "ufilter/star.h"
#include "ufilter/translator.h"
#include "ufilter/update_binding.h"

namespace ufilter::check {

/// Update-point checking strategy (Section 6.2).
enum class DataCheckStrategy { kInternal, kHybrid, kOutside };

const char* DataCheckStrategyName(DataCheckStrategy s);

/// How step 3 treats the translated ops once composed.
enum class ApplyMode {
  kApply,    ///< execute and keep (savepoint committed)
  kDryRun,   ///< execute, then roll the savepoint back
  /// Validate the ops read-only (relational/dryrun.h) — no savepoint, no
  /// mutation, safe against a pinned MVCC snapshot with no lock held.
  /// Sequences the validator cannot decide surface as
  /// DataCheckReport::undecided.
  kReadOnly,
};

/// One step-3 probe, composed and physically compiled at Prepare time. The
/// query (alias layout) and its SQL rendering are frozen; `plan` is the
/// cost-based planner's output, replayed by Execute/CheckBatch with zero
/// name resolution. A null `plan` with `present` set means planning was
/// deferred (e.g. an empty FROM list) — the checker compiles on demand.
struct CompiledProbe {
  bool present = false;
  relational::SelectQuery query;
  std::string sql;
  std::shared_ptr<const relational::PhysicalPlan> plan;
};

/// The compiled probe plans of one prepared action (see PreparedAction).
struct CompiledProbeSet {
  CompiledProbe anchor;  ///< context probe (6.1)
  CompiledProbe victim;  ///< delete/replace victim enumeration
  CompiledProbe wide;    ///< internal strategy's full-width tuple probe
};

/// Step-3 probe results computed externally — UFilter::CheckBatch merges
/// the anchor/victim probes of several updates into OR-of-predicates
/// queries and injects each update's demultiplexed slice here, so the
/// checker consumes them instead of issuing its own probe queries.
struct InjectedProbes {
  bool has_anchor = false;
  relational::SelectQuery anchor_query;  ///< per-update probe (alias layout)
  relational::QueryResult anchors;
  std::string anchor_sql;  ///< SQL of the merged query actually issued
  bool has_victim = false;
  relational::SelectQuery victim_query;
  relational::QueryResult victims;
  std::string victim_sql;
};

/// Outcome of step 3 plus translation/execution.
struct DataCheckReport {
  bool passed = false;
  /// kReadOnly only: the read-only validator could not guarantee
  /// equivalence with real execution; re-run via kDryRun (writer lane).
  bool undecided = false;
  Status failure;  ///< DataConflict / ConstraintViolation when !passed
  /// The executed relational update sequence (the `U` of Definition 1).
  std::vector<relational::UpdateOp> translation;
  int64_t rows_affected = 0;
  /// Delete matched nothing ("zero tuples deleted" warning, update u12).
  bool zero_tuple_warning = false;
  /// SQL of the probe queries issued, for logging/EXPERIMENTS.
  std::vector<std::string> probes;
};

/// \brief Runs step 3 and, when it passes, executes the translation.
class DataChecker {
 public:
  /// Probes and mutations run against `db` + `ctx` (temp tables, undo log);
  /// a null `ctx` means the database's root context.
  DataChecker(relational::Database* db, relational::ExecutionContext* ctx,
              const view::AnalyzedView* view, const asg::ViewAsg* gv)
      : db_(db),
        ctx_(ctx != nullptr ? ctx : db->root_context()),
        view_(view),
        gv_(gv),
        // The translator shares the session context: with a snapshot-pinned
        // context the probes *and* the translation's own table reads all see
        // the same commit epoch.
        translator_(db, view, gv, ctx_) {}

  DataChecker(relational::Database* db, const view::AnalyzedView* view,
              const asg::ViewAsg* gv)
      : DataChecker(db, nullptr, view, gv) {}

  /// Checks and executes `update` (which already passed steps 1 and 2 with
  /// `verdict`). With kDryRun the database is rolled back to its initial
  /// state afterwards; with kReadOnly it is never touched at all (the
  /// translated ops are validated by relational/dryrun.h instead of
  /// executed — check-only traffic runs against a pinned snapshot with no
  /// lock held). On
  /// failure the database is always left unchanged. When `injected` is
  /// non-null its probe results replace the checker's own anchor/victim
  /// queries (batch mode); the internal strategy's wide probe is always
  /// issued locally. When `compiled` is non-null its prepared plans are
  /// replayed instead of composing and planning the probe queries from
  /// scratch.
  Result<DataCheckReport> CheckAndExecute(const BoundUpdate& update,
                                          const StarVerdict& verdict,
                                          DataCheckStrategy strategy,
                                          ApplyMode mode,
                                          const InjectedProbes* injected =
                                              nullptr,
                                          const CompiledProbeSet* compiled =
                                              nullptr);

  Result<DataCheckReport> CheckAndExecute(const BoundUpdate& update,
                                          const StarVerdict& verdict,
                                          DataCheckStrategy strategy,
                                          bool apply,
                                          const InjectedProbes* injected =
                                              nullptr,
                                          const CompiledProbeSet* compiled =
                                              nullptr) {
    return CheckAndExecute(update, verdict, strategy,
                           apply ? ApplyMode::kApply : ApplyMode::kDryRun,
                           injected, compiled);
  }

 private:
  Result<DataCheckReport> RunDelete(const BoundUpdate& update,
                                    const StarVerdict& verdict,
                                    DataCheckStrategy strategy,
                                    const InjectedProbes* injected,
                                    const CompiledProbeSet* compiled);
  Result<DataCheckReport> RunInsert(const BoundUpdate& update,
                                    const StarVerdict& verdict,
                                    DataCheckStrategy strategy,
                                    const InjectedProbes* injected,
                                    const CompiledProbeSet* compiled);
  Result<DataCheckReport> RunReplace(const BoundUpdate& update,
                                     const StarVerdict& verdict,
                                     DataCheckStrategy strategy,
                                     const InjectedProbes* injected,
                                     const CompiledProbeSet* compiled);

  /// Context check (6.1): returns the anchor probe result; DataConflict when
  /// the context element does not exist in the view.
  Result<relational::QueryResult> CheckContext(
      const BoundUpdate& update, relational::SelectQuery* query_out,
      DataCheckReport* report, const InjectedProbes* injected,
      const CompiledProbeSet* compiled);

  /// Victim probe (query + rows), honoring an injected result.
  Result<relational::QueryResult> FetchVictims(
      const BoundUpdate& update, relational::SelectQuery* query_out,
      DataCheckReport* report, const InjectedProbes* injected,
      const CompiledProbeSet* compiled);

  /// Internal strategy's wide probe (full-width relational-view tuple):
  /// replays the compiled plan when available, else composes + plans.
  Status RunWideProbe(const BoundUpdate& update, DataCheckReport* report,
                      const CompiledProbeSet* compiled);

  /// Executes translated ops and fills rows_affected — or, in kReadOnly
  /// mode, validates them via DryRunOps (setting report->undecided when the
  /// validator punts).
  Status ExecuteOps(const std::vector<relational::UpdateOp>& ops,
                    DataCheckReport* report);

  /// Outside strategy: pre-probe inserts for key conflicts (PQ3-style).
  Status ProbeInsertConflicts(const std::vector<relational::UpdateOp>& ops,
                              DataCheckReport* report);

  relational::Database* db_;
  relational::ExecutionContext* ctx_;
  const view::AnalyzedView* view_;
  const asg::ViewAsg* gv_;
  Translator translator_;
  /// Set for the duration of one CheckAndExecute call.
  ApplyMode mode_ = ApplyMode::kApply;
};

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_DATACHECK_H_
