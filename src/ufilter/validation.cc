#include "ufilter/validation.h"

#include <map>
#include <optional>

#include "common/strings.h"

namespace ufilter::check {

using asg::Cardinality;
using asg::NodeKind;
using asg::ViewAsg;
using asg::ViewNode;
using relational::CheckPredicate;

bool PredicatesSatisfiable(const std::vector<CheckPredicate>& preds) {
  // Equality pins first.
  std::optional<Value> pinned;
  for (const CheckPredicate& p : preds) {
    if (p.op == CompareOp::kEq) {
      if (pinned.has_value() && !(*pinned == p.literal)) return false;
      pinned = p.literal;
    }
  }
  if (pinned.has_value()) {
    for (const CheckPredicate& p : preds) {
      if (!EvalCompare(*pinned, p.op, p.literal)) return false;
    }
    return true;
  }
  // Interval reasoning over the Value total order.
  std::optional<Value> lower, upper;
  bool lower_strict = false, upper_strict = false;
  std::vector<Value> excluded;
  for (const CheckPredicate& p : preds) {
    switch (p.op) {
      case CompareOp::kGt:
      case CompareOp::kGe: {
        bool strict = p.op == CompareOp::kGt;
        if (!lower.has_value() || *lower < p.literal ||
            (*lower == p.literal && strict)) {
          lower = p.literal;
          lower_strict = strict;
        }
        break;
      }
      case CompareOp::kLt:
      case CompareOp::kLe: {
        bool strict = p.op == CompareOp::kLt;
        if (!upper.has_value() || p.literal < *upper ||
            (*upper == p.literal && strict)) {
          upper = p.literal;
          upper_strict = strict;
        }
        break;
      }
      case CompareOp::kNe:
        excluded.push_back(p.literal);
        break;
      case CompareOp::kEq:
        break;  // handled above
    }
  }
  if (lower.has_value() && upper.has_value()) {
    if (*upper < *lower) return false;
    if (*lower == *upper) {
      if (lower_strict || upper_strict) return false;
      for (const Value& e : excluded) {
        if (e == *lower) return false;
      }
    }
  }
  // Open-ended or wide intervals with != exclusions stay satisfiable
  // (conservative for dense domains).
  return true;
}

namespace {

/// Finds the vL node projecting `attr` (matching relation + attribute +
/// originating variable when available).
const ViewNode* FindLeaf(const ViewAsg& gv, const view::AttrRef& attr) {
  const ViewNode* fallback = nullptr;
  for (const ViewNode& n : gv.nodes()) {
    if (n.kind != NodeKind::kLeaf) continue;
    if (n.relation != attr.relation || n.attr != attr.attr) continue;
    if (n.variable == attr.variable) return &n;
    fallback = &n;
  }
  return fallback;
}

/// The "overlap" test (Section 4, delete check (i)): the update predicate
/// conjoined with the leaf's check annotation must be satisfiable, otherwise
/// the update can never touch anything in this view.
Status CheckPredicateOverlap(const ViewAsg& gv,
                             const std::vector<BoundPredicate>& preds) {
  // Group by attribute.
  std::map<std::string, std::vector<CheckPredicate>> grouped;
  for (const BoundPredicate& p : preds) {
    std::string key = p.attr.ToString();
    auto& bucket = grouped[key];
    if (bucket.empty()) {
      const ViewNode* leaf = FindLeaf(gv, p.attr);
      if (leaf != nullptr) bucket = leaf->checks;
    }
    bucket.push_back({p.op, p.literal});
  }
  for (const auto& [attr, bucket] : grouped) {
    if (!PredicatesSatisfiable(bucket)) {
      return Status::InvalidUpdate(
          "update predicate on " + attr +
          " contradicts the view's selection/check constraints — the "
          "qualified element can never appear in this view");
    }
  }
  return Status::OK();
}

Status CheckLeafValue(const ViewNode& leaf, const std::string& text,
                      const std::string& element_tag) {
  if (text.empty()) {
    if (leaf.not_null) {
      return Status::InvalidUpdate("<" + element_tag + "> (" + leaf.relation +
                                   "." + leaf.attr + ") must not be NULL");
    }
    return Status::OK();
  }
  auto value = Value::FromText(text, leaf.type);
  if (!value.ok()) {
    return Status::InvalidUpdate(
        "<" + element_tag + "> value '" + text + "' is outside domain " +
        ValueTypeName(leaf.type));
  }
  for (const CheckPredicate& chk : leaf.checks) {
    if (!chk.Admits(*value)) {
      return Status::InvalidUpdate("<" + element_tag + "> value '" + text +
                                   "' violates CHECK (" +
                                   chk.ToString("value") + ")");
    }
  }
  return Status::OK();
}

/// Structural + value conformance of an insert payload against the ASG
/// subtree rooted at `node_id` (Section 4, insert checks).
Status ValidatePayload(const ViewAsg& gv, int node_id,
                       const xml::Node& payload) {
  const ViewNode& node = gv.node(node_id);
  if (node.kind == NodeKind::kTag) {
    // Simple element: children are text; check against the leaf.
    if (node.children.empty()) return Status::OK();
    const ViewNode& leaf = gv.node(node.children[0]);
    return CheckLeafValue(leaf, payload.TextContent(), node.tag);
  }
  if (node.kind != NodeKind::kComplex && node.kind != NodeKind::kRoot) {
    return Status::InvalidUpdate("cannot insert into a leaf position");
  }

  // Index ASG children by tag.
  std::map<std::string, int> by_tag;
  for (int c : node.children) {
    const ViewNode& child = gv.node(c);
    by_tag[child.tag] = c;
  }
  // Count payload children per tag and validate each against its ASG child.
  std::map<std::string, int> counts;
  for (const xml::NodePtr& child : payload.children()) {
    if (child->is_text()) {
      return Status::InvalidUpdate("unexpected text content inside <" +
                                   payload.label() + ">");
    }
    auto it = by_tag.find(child->label());
    if (it == by_tag.end()) {
      return Status::InvalidUpdate("view does not allow element <" +
                                   child->label() + "> inside <" + node.tag +
                                   ">");
    }
    counts[child->label()]++;
    UFILTER_RETURN_NOT_OK(ValidatePayload(gv, it->second, *child));
  }
  // Cardinality constraints of the ASG edges.
  for (int c : node.children) {
    const ViewNode& child = gv.node(c);
    int count = counts.count(child.tag) > 0 ? counts[child.tag] : 0;
    switch (child.card) {
      case Cardinality::kOne:
        if (count != 1) {
          return Status::InvalidUpdate(
              "each <" + node.tag + "> must have exactly one <" + child.tag +
              ">; payload has " + std::to_string(count));
        }
        break;
      case Cardinality::kOpt:
        if (count > 1) {
          return Status::InvalidUpdate("each <" + node.tag +
                                       "> admits at most one <" + child.tag +
                                       ">");
        }
        break;
      case Cardinality::kStar:
        break;
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateUpdate(const ViewAsg& gv, const BoundUpdate& update) {
  // Selection-predicate overlap applies to every operation kind.
  UFILTER_RETURN_NOT_OK(CheckPredicateOverlap(gv, update.predicates));

  const ViewNode& target = gv.node(update.target_node);
  switch (update.op) {
    case xq::UpdateOpType::kDelete: {
      if (target.kind == NodeKind::kLeaf) {
        // DELETE $x/attr/text(): invalid when the attribute is NOT NULL.
        if (target.not_null) {
          return Status::InvalidUpdate(
              "cannot delete text() of " + target.relation + "." +
              target.attr + ": attribute is NOT NULL");
        }
        return Status::OK();
      }
      if (target.kind == NodeKind::kRoot) return Status::OK();
      // Deleting a simple element whose leaf is NOT NULL is invalid (the
      // incoming edge is "1"; the deletion would leave an impossible NULL).
      // Deleting a *complex* element over a "1" edge (u2's publisher) is
      // still a valid update — STAR classifies it untranslatable in step 2.
      if (target.kind == NodeKind::kTag && target.card == Cardinality::kOne &&
          !target.children.empty() && gv.node(target.children[0]).not_null) {
        return Status::InvalidUpdate(
            "cannot delete <" + target.tag + ">: " + target.relation + "." +
            target.attr + " is NOT NULL");
      }
      return Status::OK();
    }
    case xq::UpdateOpType::kInsert: {
      if (update.payload == nullptr) {
        return Status::InvalidUpdate("INSERT without payload");
      }
      if (target.kind == NodeKind::kLeaf) {
        return Status::InvalidUpdate("cannot insert below a text() node");
      }
      // Inserting an additional instance over a "1" edge is invalid.
      if (target.card == Cardinality::kOne &&
          target.kind != NodeKind::kRoot) {
        return Status::InvalidUpdate(
            "cannot insert another <" + target.tag + ">: each <" +
            gv.node(target.parent).tag + "> has exactly one");
      }
      return ValidatePayload(gv, update.target_node, *update.payload);
    }
    case xq::UpdateOpType::kReplace: {
      if (update.payload == nullptr) {
        return Status::InvalidUpdate("REPLACE without payload");
      }
      if (target.kind == NodeKind::kLeaf) {
        const ViewNode& tag_node = gv.node(target.parent);
        return CheckLeafValue(target, update.payload->TextContent(),
                              tag_node.tag);
      }
      // Replacement keeps cardinalities intact; only the payload must
      // conform structurally.
      if (update.payload->label() != target.tag) {
        return Status::InvalidUpdate("REPLACE payload <" +
                                     update.payload->label() +
                                     "> does not match target <" +
                                     target.tag + ">");
      }
      return ValidatePayload(gv, update.target_node, *update.payload);
    }
  }
  return Status::OK();
}

}  // namespace ufilter::check
