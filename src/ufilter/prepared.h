// The compile-time half of the U-Filter pipeline (Fig. 5, left of the
// per-update loop): a PreparedUpdate owns the parsed AST of one update
// template plus everything that depends only on the view schema — the
// step-1 binding/validation verdict and the STAR classification of every
// action. UFilter::Prepare produces it once; UFilter::Execute replays it
// against current data any number of times, paying only step 3.
#ifndef UFILTER_UFILTER_PREPARED_H_
#define UFILTER_UFILTER_PREPARED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ufilter/datacheck.h"
#include "ufilter/star.h"
#include "ufilter/update_binding.h"
#include "xquery/ast.h"
#include "xquery/normalize.h"

namespace ufilter::check {

class UFilter;

/// One action of the statement after compile. When step 1 failed, `bound`
/// is unusable and `step1_error` carries the rejection; STAR only runs for
/// actions that passed step 1. `probes` holds the step-3 probe queries
/// composed and physically compiled (cost-based plan) at Prepare time, so
/// Execute/CheckBatch replay them with zero name resolution.
struct PreparedAction {
  BoundUpdate bound;
  Status step1_error;
  bool bound_ok = false;
  StarVerdict star;
  bool star_computed = false;
  CompiledProbeSet probes;
};

/// \brief A compiled update template, bound to one UFilter instance.
///
/// Immutable after Prepare; the plan cache shares instances across calls, so
/// Execute never mutates a plan. The BoundUpdates point into `stmt_` (owned
/// here) and into the owner's analyzed view, hence the owner/signature
/// checks in UFilter::Execute.
class PreparedUpdate {
 public:
  /// Canonical template text (the plan-cache key).
  const std::string& normalized_text() const { return normalized_text_; }
  /// Hash of the template, computed on demand (cross-process plan
  /// identification, e.g. future shard routing; the in-process cache keys
  /// on the text itself).
  uint64_t template_hash() const {
    return xq::HashUpdateTemplate(normalized_text_);
  }

  /// Parse failure for the whole statement; when set, `actions()` is empty.
  const Status& parse_error() const { return parse_error_; }
  bool parsed() const { return parse_error_.ok(); }

  /// The owned AST (valid only when parsed()).
  const xq::UpdateStmt& stmt() const { return *stmt_; }
  const std::vector<PreparedAction>& actions() const { return actions_; }

  /// Weakest STAR classification across classified actions; kUnclassified
  /// when no action was classified (e.g. step-1 rejection).
  Translatability star_class() const {
    Translatability weakest = Translatability::kUnclassified;
    for (const PreparedAction& a : actions_) {
      if (!a.star_computed) continue;
      if (weakest == Translatability::kUnclassified ||
          static_cast<int>(a.star.result) < static_cast<int>(weakest)) {
        weakest = a.star.result;
      }
    }
    return weakest;
  }

  /// Seconds the compile spent in step 1 (parse + bind + validate) and in
  /// step 2 (STAR), summed over actions.
  double compile_step1_seconds() const { return step1_seconds_; }
  double compile_step2_seconds() const { return step2_seconds_; }

  /// The UFilter this plan was prepared against and the structural signature
  /// of its view at compile time.
  const UFilter* owner() const { return owner_; }
  uint64_t view_signature() const { return view_signature_; }

 private:
  friend class UFilter;
  PreparedUpdate() = default;

  std::string normalized_text_;
  Status parse_error_;
  std::unique_ptr<xq::UpdateStmt> stmt_;
  std::vector<PreparedAction> actions_;
  double step1_seconds_ = 0;
  double step2_seconds_ = 0;
  const UFilter* owner_ = nullptr;
  uint64_t view_signature_ = 0;
};

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_PREPARED_H_
