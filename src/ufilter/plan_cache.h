// Sharded, mutex-protected LRU cache of prepared update plans, keyed by the
// normalized update template text. A hit means a repeated update string pays
// zero parse / bind / validate / STAR work — the compile-once half of the
// prepared-statement architecture.
//
// Concurrency: the key space is hash-partitioned into independent shards,
// each holding its own LRU list under its own mutex, so concurrent check
// workers preparing different templates rarely contend. Recency and
// eviction are therefore *per shard*; construct with `shards = 1` to get
// the classic single-list LRU (deterministic global eviction order, used by
// the LRU-order tests). Hit/miss/eviction totals are relaxed atomics,
// readable while workers run; UFilter additionally mirrors hits/misses into
// the database's EngineStats.
#ifndef UFILTER_UFILTER_PLAN_CACHE_H_
#define UFILTER_UFILTER_PLAN_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relational/database.h"
#include "ufilter/prepared.h"

namespace ufilter::check {

/// Point-in-time copy of the cache's work counters.
struct PlanCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

/// \brief Bounded sharded LRU map: normalized template -> shared plan.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 128;
  static constexpr size_t kDefaultShards = 8;

  explicit PlanCache(size_t capacity = kDefaultCapacity,
                     size_t shards = kDefaultShards) {
    Configure(capacity, shards);
  }

  /// Rebuilds the cache with a new shape, dropping all entries. The total
  /// capacity is split evenly across shards (never below 1 per shard).
  /// Safe to call while workers run: reshaping takes the shard set's
  /// exclusive lock.
  void Configure(size_t capacity, size_t shards) {
    std::unique_lock<std::shared_mutex> reshape(reshape_mu_);
    std::vector<std::unique_ptr<Shard>> next;
    if (shards == 0) shards = 1;
    next.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      next.push_back(std::make_unique<Shard>());
    }
    shards_ = std::move(next);
    capacity_ = capacity;
    Redistribute();
  }

  /// Returns the cached plan and marks it most-recently-used in its shard;
  /// null on miss.
  std::shared_ptr<const PreparedUpdate> Lookup(const std::string& key) {
    std::shared_lock<std::shared_mutex> reshape(reshape_mu_);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Inserts (or replaces) a plan, evicting the least-recently-used entries
  /// of the key's shard beyond its capacity. A zero-capacity cache stores
  /// nothing.
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedUpdate> plan) {
    std::shared_lock<std::shared_mutex> reshape(reshape_mu_);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++insertions_;
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(plan);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(plan));
    shard.index[key] = shard.lru.begin();
    EvictOverCapacity(&shard);
  }

  void Clear() {
    std::shared_lock<std::shared_mutex> reshape(reshape_mu_);
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> reshape(reshape_mu_);
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->lru.size();
    }
    return total;
  }
  size_t capacity() const {
    std::shared_lock<std::shared_mutex> reshape(reshape_mu_);
    return capacity_;
  }
  size_t shard_count() const {
    std::shared_lock<std::shared_mutex> reshape(reshape_mu_);
    return shards_.size();
  }
  void set_capacity(size_t capacity) {
    std::unique_lock<std::shared_mutex> reshape(reshape_mu_);
    capacity_ = capacity;
    Redistribute();
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      EvictOverCapacity(shard.get());
    }
  }

  /// Keys most-recently-used first within each shard, shards concatenated
  /// in order (a global recency order only with a single shard).
  std::vector<std::string> KeysByRecency() const {
    std::shared_lock<std::shared_mutex> reshape(reshape_mu_);
    std::vector<std::string> keys;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [key, plan] : shard->lru) keys.push_back(key);
    }
    return keys;
  }

  /// Cumulative hit/miss/insertion/eviction counts (relaxed reads; exact
  /// once workers are quiesced).
  PlanCacheCounters counters() const {
    PlanCacheCounters c;
    c.hits = hits_;
    c.misses = misses_;
    c.insertions = insertions_;
    c.evictions = evictions_;
    return c;
  }
  void ResetCounters() {
    hits_.Reset();
    misses_.Reset();
    insertions_.Reset();
    evictions_.Reset();
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;
    /// Front = most recently used.
    std::list<std::pair<std::string, std::shared_ptr<const PreparedUpdate>>>
        lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<
            std::string, std::shared_ptr<const PreparedUpdate>>>::iterator>
        index;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  void Redistribute() {
    const size_t n = shards_.size();
    for (size_t i = 0; i < n; ++i) {
      // Even split, remainder to the first shards; at least 1 unless the
      // total capacity is 0 (which disables caching entirely).
      size_t per = capacity_ / n + (i < capacity_ % n ? 1 : 0);
      if (capacity_ > 0 && per == 0) per = 1;
      std::lock_guard<std::mutex> lock(shards_[i]->mu);
      shards_[i]->capacity = per;
    }
  }

  void EvictOverCapacity(Shard* shard) {
    while (shard->lru.size() > shard->capacity) {
      shard->index.erase(shard->lru.back().first);
      shard->lru.pop_back();
      ++evictions_;
    }
  }

  /// Guards the shard *set* (reshaping): normal operations hold it shared
  /// and only contend on their shard's mutex; Configure/set_capacity hold
  /// it exclusively.
  mutable std::shared_mutex reshape_mu_;
  size_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  relational::RelaxedCounter hits_;
  relational::RelaxedCounter misses_;
  relational::RelaxedCounter insertions_;
  relational::RelaxedCounter evictions_;
};

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_PLAN_CACHE_H_
