// LRU cache of prepared update plans, keyed by the normalized update
// template text. A hit means a repeated update string pays zero parse /
// bind / validate / STAR work — the compile-once half of the prepared-
// statement architecture. Hit/miss counts are surfaced through the
// database's work-counter mechanism (EngineStats) by UFilter.
#ifndef UFILTER_UFILTER_PLAN_CACHE_H_
#define UFILTER_UFILTER_PLAN_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ufilter/prepared.h"

namespace ufilter::check {

/// \brief Bounded LRU map: normalized template -> shared prepared plan.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Returns the cached plan and marks it most-recently-used; null on miss.
  std::shared_ptr<const PreparedUpdate> Lookup(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  /// Inserts (or replaces) a plan, evicting the least-recently-used entries
  /// beyond capacity. A zero-capacity cache stores nothing.
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedUpdate> plan) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(plan);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(plan));
    index_[key] = lru_.begin();
    EvictOverCapacity();
  }

  void Clear() {
    lru_.clear();
    index_.clear();
  }

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) {
    capacity_ = capacity;
    EvictOverCapacity();
  }

  /// Keys most-recently-used first (tests observe eviction order).
  std::vector<std::string> KeysByRecency() const {
    std::vector<std::string> keys;
    keys.reserve(lru_.size());
    for (const auto& [key, plan] : lru_) keys.push_back(key);
    return keys;
  }

 private:
  void EvictOverCapacity() {
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<std::string, std::shared_ptr<const PreparedUpdate>>>
      lru_;
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string,
                          std::shared_ptr<const PreparedUpdate>>>::iterator>
      index_;
};

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_PLAN_CACHE_H_
