#include "ufilter/update_binding.h"

namespace ufilter::check {

using view::AnalyzedView;
using view::AvNode;

std::string BoundPredicate::ToString() const {
  return attr.ToString() + " " + CompareOpSymbol(op) + " " +
         literal.ToSqlLiteral();
}

namespace {

/// Finds the element child of `from` with tag `tag` (through groups).
const AvNode* ChildByTag(const AvNode* from, const std::string& tag) {
  for (const AvNode* c : from->ElementChildren()) {
    if (c->tag == tag) return c;
  }
  return nullptr;
}

class Binder {
 public:
  Binder(const AnalyzedView& view, const asg::ViewAsg& gv,
         const xq::UpdateStmt& stmt, const xq::UpdateAction& action)
      : view_(view), gv_(gv), stmt_(stmt), action_(action) {}

  Result<BoundUpdate> Run() {
    BoundUpdate out;
    out.op = action_.op;
    out.stmt = &stmt_;

    // Resolve FOR bindings in order.
    for (const xq::ForBinding& b : stmt_.bindings) {
      UFILTER_ASSIGN_OR_RETURN(const AvNode* node, ResolvePath(b.path));
      vars_[b.variable] = node;
    }

    // Resolve WHERE predicates.
    for (const xq::Condition& c : stmt_.conditions) {
      UFILTER_ASSIGN_OR_RETURN(BoundPredicate pred, ResolvePredicate(c));
      out.predicates.push_back(std::move(pred));
    }

    // Resolve the UPDATE anchor.
    auto it = vars_.find(stmt_.target_variable);
    if (it == vars_.end()) {
      return Status::InvalidUpdate("UPDATE references unbound variable $" +
                                   stmt_.target_variable);
    }
    out.context = it->second;

    switch (action_.op) {
      case xq::UpdateOpType::kDelete:
        UFILTER_RETURN_NOT_OK(ResolveVictim(&out));
        break;
      case xq::UpdateOpType::kInsert:
        UFILTER_RETURN_NOT_OK(ResolveInsert(&out));
        break;
      case xq::UpdateOpType::kReplace:
        UFILTER_RETURN_NOT_OK(ResolveVictim(&out));
        out.payload = action_.payload.get();
        break;
    }
    return out;
  }

 private:
  /// Resolves a statement path to a view element. Document paths start at
  /// the view root; variable paths start at an earlier binding.
  Result<const AvNode*> ResolvePath(const xq::Path& path) {
    const AvNode* current = nullptr;
    if (path.from_document) {
      current = &view_.root();
    } else {
      auto it = vars_.find(path.variable);
      if (it == vars_.end()) {
        return Status::InvalidUpdate("unbound variable $" + path.variable +
                                     " in update path");
      }
      current = it->second;
    }
    for (const std::string& step : path.steps) {
      const AvNode* next = ChildByTag(current, step);
      if (next == nullptr) {
        return Status::InvalidUpdate("view has no element <" + step +
                                     "> under <" +
                                     (current->kind == AvNode::Kind::kRoot
                                          ? current->tag
                                          : current->tag) +
                                     ">");
      }
      current = next;
    }
    return current;
  }

  Result<BoundPredicate> ResolvePredicate(const xq::Condition& cond) {
    // Normalize literal to the right.
    const xq::Operand* path_side = &cond.lhs;
    const xq::Operand* lit_side = &cond.rhs;
    CompareOp op = cond.op;
    if (!path_side->is_path()) {
      path_side = &cond.rhs;
      lit_side = &cond.lhs;
      op = FlipCompareOp(op);
    }
    if (!path_side->is_path() || lit_side->is_path()) {
      return Status::NotSupported(
          "update WHERE must compare a view path with a literal: " +
          cond.ToString());
    }
    UFILTER_ASSIGN_OR_RETURN(const AvNode* node,
                             ResolvePath(path_side->path));
    if (node->kind != AvNode::Kind::kSimple) {
      return Status::InvalidUpdate("predicate path " +
                                   path_side->path.ToString() +
                                   " does not reach a simple view element");
    }
    BoundPredicate out;
    out.attr = view::AttrRef{node->variable, node->relation, node->attr};
    out.op = op;
    out.literal = lit_side->literal;
    return out;
  }

  Status ResolveVictim(BoundUpdate* out) {
    const xq::Path& victim = action_.victim;
    UFILTER_ASSIGN_OR_RETURN(const AvNode* node, ResolvePath(victim));
    out->target = node;
    out->text_only = victim.text_fn;
    const asg::ViewNode* asg_node = gv_.NodeForAv(node);
    if (asg_node == nullptr) {
      return Status::Internal("no ASG node for resolved victim");
    }
    out->target_node = asg_node->id;
    if (victim.text_fn) {
      // text() of a simple element: target the leaf node under the tag.
      if (node->kind != AvNode::Kind::kSimple) {
        return Status::InvalidUpdate(
            "text() deletion applies to simple elements only");
      }
      if (!asg_node->children.empty()) {
        out->target_node = asg_node->children[0];  // the vL node
      }
    }
    return Status::OK();
  }

  Status ResolveInsert(BoundUpdate* out) {
    if (action_.payload == nullptr || !action_.payload->is_element()) {
      return Status::InvalidUpdate("INSERT requires an element payload");
    }
    out->payload = action_.payload.get();
    const AvNode* target = ChildByTag(out->context, action_.payload->label());
    if (target == nullptr) {
      return Status::InvalidUpdate(
          "view does not allow element <" + action_.payload->label() +
          "> under <" + out->context->tag + ">");
    }
    out->target = target;
    const asg::ViewNode* asg_node = gv_.NodeForAv(target);
    if (asg_node == nullptr) {
      return Status::Internal("no ASG node for resolved insert target");
    }
    out->target_node = asg_node->id;
    return Status::OK();
  }

  const AnalyzedView& view_;
  const asg::ViewAsg& gv_;
  const xq::UpdateStmt& stmt_;
  const xq::UpdateAction& action_;
  std::map<std::string, const AvNode*> vars_;
};

}  // namespace

Result<BoundUpdate> BindUpdate(const AnalyzedView& view,
                               const asg::ViewAsg& gv,
                               const xq::UpdateStmt& stmt) {
  if (stmt.actions.empty()) {
    return Status::InvalidUpdate("update statement has no action");
  }
  return BindUpdateAction(view, gv, stmt, stmt.actions[0]);
}

Result<BoundUpdate> BindUpdateAction(const AnalyzedView& view,
                                     const asg::ViewAsg& gv,
                                     const xq::UpdateStmt& stmt,
                                     const xq::UpdateAction& action) {
  Binder binder(view, gv, stmt, action);
  return binder.Run();
}

}  // namespace ufilter::check
