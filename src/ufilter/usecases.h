// Fig. 12: expressiveness evaluation of the view ASG model over the W3C XML
// Query Use Cases (XMP, TREE, R). The ASG inherits the SilkRoute view-forest
// limitations: no if/then/else, no ordering functions, no user-defined or
// aggregate functions (max, count, avg, ...), and Project never eliminates
// duplicates (no Distinct).
//
// Each use-case query is encoded as the set of features it uses (taken from
// the published use-case definitions); the classifier includes a query iff
// it uses no feature outside the ASG-expressible fragment.
#ifndef UFILTER_UFILTER_USECASES_H_
#define UFILTER_UFILTER_USECASES_H_

#include <string>
#include <vector>

namespace ufilter::check {

/// Query-language features that the ASG model cannot express.
enum class QueryFeature {
  kDistinct,
  kCount,
  kMax,
  kAvg,
  kSum,
  kIfThenElse,
  kOrderFunction,
  kUserFunction,
};

const char* QueryFeatureName(QueryFeature f);

/// One W3C use-case query with its feature profile.
struct UseCaseQuery {
  std::string group;  ///< "XMP", "TREE", "R"
  std::string id;     ///< "Q1"...
  std::string description;
  std::vector<QueryFeature> features;  ///< unsupported features used
};

/// Result row of the Fig. 12 table.
struct UseCaseVerdict {
  const UseCaseQuery* query;
  bool included;       ///< ASG-expressible?
  std::string reason;  ///< blocking features when excluded
};

/// The catalog of W3C use-case queries covered by Fig. 12.
const std::vector<UseCaseQuery>& UseCaseCatalog();

/// Classifies every catalog query.
std::vector<UseCaseVerdict> EvaluateUseCases();

/// Renders the Fig. 12 table.
std::string UseCaseTable();

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_USECASES_H_
