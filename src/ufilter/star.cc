#include "ufilter/star.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace ufilter::check {

using asg::BaseAsg;
using asg::Cardinality;
using asg::Closure;
using asg::NodeKind;
using asg::ViewAsg;
using asg::ViewNode;
using view::ResolvedCondition;

namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// True if `attr` is a unique identifier (single-column PK or UNIQUE) of
/// `relation`.
bool IsUniqueId(const relational::DatabaseSchema& schema,
                const std::string& relation, const std::string& attr) {
  auto table = schema.FindTable(relation);
  return table.ok() && (*table)->IsUniqueIdentifier(attr);
}

/// Rule 1: decides whether the * edge into `node` carries proper join
/// conditions. Returns an empty string when proper; otherwise the reason.
///
/// Every new relation R of the edge (CR of the child) must be attached
/// without introducing duplicates:
///   (a) determined:  a condition S.x = R.y with R.y a unique identifier of
///       R and S already attached (each S tuple picks at most one R tuple);
///   (b) chained:     a condition R.x = S.y with S.y a unique identifier of
///       S and S already attached (each R tuple hangs under at most one
///       parent instance — the paper's literal "proper Join");
///   (c) free driver: when the parent has a single instance (no * edge above
///       it), one relation may drive the iteration unconstrained.
std::string CheckProperJoin(const ViewAsg& gv, const ViewNode& node) {
  const relational::DatabaseSchema& schema = gv.analyzed_view().schema();
  std::vector<std::string> new_rels = gv.CurrentRelations(node.id);
  if (new_rels.empty()) return "";
  std::set<std::string> attached;
  if (node.parent >= 0) {
    const ViewNode& parent = gv.node(node.parent);
    attached.insert(parent.uc_binding.begin(), parent.uc_binding.end());
  }
  bool free_slot = gv.ParentIsSingleInstance(node.id);

  std::set<std::string> pending(new_rels.begin(), new_rels.end());
  bool progress = true;
  while (!pending.empty() && progress) {
    progress = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const std::string& r = *it;
      bool ok = false;
      for (const ResolvedCondition& cond : node.edge_conditions) {
        if (!cond.is_correlation || cond.op != CompareOp::kEq) continue;
        const view::AttrRef* mine = nullptr;
        const view::AttrRef* other = nullptr;
        if (cond.lhs.relation == r && attached.count(cond.rhs.relation) > 0) {
          mine = &cond.lhs;
          other = &cond.rhs;
        } else if (cond.rhs.relation == r &&
                   attached.count(cond.lhs.relation) > 0) {
          mine = &cond.rhs;
          other = &cond.lhs;
        } else {
          continue;
        }
        // (a) determined by the other side, or (b) chained via a unique
        // identifier of the other side.
        if (IsUniqueId(schema, mine->relation, mine->attr) ||
            IsUniqueId(schema, other->relation, other->attr)) {
          ok = true;
          break;
        }
      }
      if (ok) {
        attached.insert(r);
        it = pending.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
    if (!progress && !pending.empty() && free_slot) {
      // Grant the free driver slot to the first pending relation.
      attached.insert(*pending.begin());
      pending.erase(pending.begin());
      free_slot = false;
      progress = true;
    }
  }
  if (pending.empty()) return "";
  return "Rule 1: relation '" + *pending.begin() +
         "' joins edge into <" + node.tag +
         "> without a proper Join condition (missing or non-unique join "
         "attribute)";
}

void MarkSubtreeUnsafe(ViewAsg* gv, int id, const std::string& reason) {
  ViewNode& node = gv->mutable_node(id);
  node.mark.safe_delete = false;
  node.mark.safe_insert = false;
  node.mark.unsafe_delete_reason = reason;
  node.mark.unsafe_insert_reason = reason;
  for (int c : node.children) MarkSubtreeUnsafe(gv, c, reason);
}

void ApplyRule1(ViewAsg* gv) {
  // Iterate a snapshot of star edges; marking mutates marks only.
  for (const ViewNode& node : gv->nodes()) {
    if (node.card != Cardinality::kStar) continue;
    if (node.kind != NodeKind::kComplex && node.kind != NodeKind::kTag) {
      continue;
    }
    std::string reason = CheckProperJoin(*gv, node);
    if (!reason.empty()) MarkSubtreeUnsafe(gv, node.id, reason);
  }
}

/// Attributes used by any correlation predicate anywhere in the view.
std::set<std::string> ViewJoinAttrs(const ViewAsg& gv) {
  std::set<std::string> out;
  for (const ViewNode& node : gv.nodes()) {
    for (const ResolvedCondition& cond : node.edge_conditions) {
      if (!cond.is_correlation) continue;
      out.insert(cond.lhs.relation + "." + cond.lhs.attr);
      out.insert(cond.rhs.relation + "." + cond.rhs.attr);
    }
  }
  return out;
}

/// extend(R) restricted to the view's relations (Rule 2), with view-aware
/// policy handling: a SET NULL hop still propagates *view impact* when the
/// nulled FK column feeds a view join condition (the referencing row
/// survives but drops out of every joined view).
std::vector<std::string> ExtendInView(const ViewAsg& gv,
                                      const std::string& relation) {
  const relational::DatabaseSchema& schema = gv.analyzed_view().schema();
  std::vector<std::string> view_rels = gv.analyzed_view().Relations();
  std::set<std::string> join_attrs = ViewJoinAttrs(gv);
  std::set<std::string> reached = {relation};
  std::vector<std::string> frontier = {relation};
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    for (const relational::TableSchema& t : schema.tables()) {
      if (reached.count(t.name()) > 0) continue;
      for (const relational::ForeignKey& fk : t.foreign_keys()) {
        if (fk.ref_table != current) continue;
        bool propagates = false;
        switch (fk.on_delete) {
          case relational::DeletePolicy::kCascade:
            propagates = true;
            break;
          case relational::DeletePolicy::kSetNull:
            for (const std::string& c : fk.columns) {
              auto col = t.FindColumn(c);
              if (col.ok() && (*col)->not_null) propagates = true;
              if (join_attrs.count(t.name() + "." + c) > 0) propagates = true;
            }
            break;
          case relational::DeletePolicy::kRestrict:
            propagates = false;
            break;
        }
        if (propagates) {
          reached.insert(t.name());
          frontier.push_back(t.name());
          break;
        }
      }
    }
  }
  std::vector<std::string> out;
  for (const std::string& r : reached) {
    if (Contains(view_rels, r)) out.push_back(r);
  }
  return out;
}

void ApplyRule2(ViewAsg* gv) {
  for (ViewNode& node : gv->mutable_nodes()) {
    if (node.kind != NodeKind::kComplex) continue;
    if (!node.mark.safe_delete) continue;  // already unsafe via Rule 1
    std::vector<std::string> cr = gv->CurrentRelations(node.id);
    bool found = false;
    std::string best_reason;
    for (const std::string& r : cr) {
      std::vector<std::string> ext = ExtendInView(*gv, r);
      bool all_disjoint = true;
      for (const ViewNode& other : gv->nodes()) {
        if (other.kind != NodeKind::kComplex && other.kind != NodeKind::kRoot) {
          continue;
        }
        if (gv->IsDescendant(node.id, other.id)) continue;
        for (const std::string& e : ext) {
          if (Contains(other.uc_binding, e)) {
            all_disjoint = false;
            best_reason = "deleting from '" + r + "' (extend = {" +
                          Join(ext, ",") + "}) would affect <" + other.tag +
                          ">";
            break;
          }
        }
        if (!all_disjoint) break;
      }
      if (all_disjoint) {
        found = true;
        break;
      }
    }
    if (!found) {
      node.mark.safe_delete = false;
      node.mark.unsafe_delete_reason =
          cr.empty()
              ? "Rule 2: no current relation — every relation of <" +
                    node.tag + "> is already bound at its parent"
              : "Rule 2: " + best_reason;
    }
  }
}

void ApplyRule3(ViewAsg* gv) {
  for (ViewNode& node : gv->mutable_nodes()) {
    if (node.kind != NodeKind::kComplex) continue;
    if (!node.mark.safe_insert) continue;  // already unsafe via Rule 1
    for (const ViewNode& other : gv->nodes()) {
      if (other.kind != NodeKind::kComplex) continue;
      if (gv->IsDescendant(node.id, other.id)) continue;
      if (other.mark.safe_delete) continue;  // (ii) fails
      std::vector<std::string> cr = gv->CurrentRelations(other.id);
      bool overlap = false;
      for (const std::string& r : cr) {
        if (Contains(node.up_binding, r)) {
          overlap = true;
          break;
        }
      }
      if (overlap) {
        node.mark.safe_insert = false;
        node.mark.unsafe_insert_reason =
            "Rule 3: inserting <" + node.tag +
            "> may make an instance of unsafe-delete node <" + other.tag +
            "> appear";
        break;
      }
    }
  }
}

void MarkUPoint(ViewAsg* gv, const BaseAsg& gd) {
  for (ViewNode& node : gv->mutable_nodes()) {
    if (node.kind != NodeKind::kComplex && node.kind != NodeKind::kRoot) {
      continue;
    }
    Closure cv = gv->NodeClosure(node.id);
    std::vector<std::string> leaf_names;
    asg::CollectClosureLeaves(cv, &leaf_names);
    Closure cd = gd.MappingClosure(leaf_names);
    node.mark.clean = cv.Equals(cd);
  }
}

}  // namespace

Status MarkViewAsg(ViewAsg* gv, const BaseAsg& gd) {
  // Reset marks.
  for (ViewNode& node : gv->mutable_nodes()) node.mark = asg::StarMark();
  ApplyRule1(gv);
  ApplyRule2(gv);
  ApplyRule3(gv);
  MarkUPoint(gv, gd);
  return Status::OK();
}

std::string PrimaryVariable(const ViewAsg& gv, int node_id) {
  const ViewNode& node = gv.node(node_id);
  if (node.av == nullptr || node.av->scope == nullptr ||
      node.av->scope->vars.empty()) {
    return "";
  }
  const view::Scope& scope = *node.av->scope;
  const relational::DatabaseSchema& schema = gv.analyzed_view().schema();
  std::set<std::string> attached;
  if (node.parent >= 0) {
    const ViewNode& parent = gv.node(node.parent);
    attached.insert(parent.uc_binding.begin(), parent.uc_binding.end());
  }
  // Replay the Rule-1 attachment analysis, recording which relations are
  // *determined* (functionally dependent on an already-attached relation via
  // a unique identifier on their own side) versus *multipliers* (they drive
  // the element's repetition). The primary is the last multiplier bound.
  std::string primary = scope.vars[0].first;  // fallback: first binding
  std::vector<std::pair<std::string, std::string>> pending(scope.vars);
  bool progress = true;
  bool free_slot = gv.ParentIsSingleInstance(node_id);
  while (!pending.empty() && progress) {
    progress = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const auto& [var, rel] = *it;
      bool determined = false, multiplier = false;
      for (const ResolvedCondition& cond : node.edge_conditions) {
        if (!cond.is_correlation || cond.op != CompareOp::kEq) continue;
        const view::AttrRef* mine = nullptr;
        const view::AttrRef* other = nullptr;
        if (cond.lhs.relation == rel && attached.count(cond.rhs.relation)) {
          mine = &cond.lhs;
          other = &cond.rhs;
        } else if (cond.rhs.relation == rel &&
                   attached.count(cond.lhs.relation)) {
          mine = &cond.rhs;
          other = &cond.lhs;
        } else {
          continue;
        }
        auto table = schema.FindTable(mine->relation);
        if (table.ok() && (*table)->IsUniqueIdentifier(mine->attr)) {
          determined = true;
          break;
        }
        auto other_table = schema.FindTable(other->relation);
        if (other_table.ok() &&
            (*other_table)->IsUniqueIdentifier(other->attr)) {
          multiplier = true;
        }
      }
      if (determined || multiplier) {
        if (multiplier && !determined) primary = var;
        attached.insert(rel);
        it = pending.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
    if (!progress && !pending.empty() && free_slot) {
      primary = pending.front().first;
      attached.insert(pending.front().second);
      pending.erase(pending.begin());
      free_slot = false;
      progress = true;
    }
  }
  return primary;
}

const char* TranslatabilityName(Translatability t) {
  switch (t) {
    case Translatability::kUnclassified:
      return "unclassified";
    case Translatability::kUntranslatable:
      return "untranslatable";
    case Translatability::kConditionallyTranslatable:
      return "conditionally translatable";
    case Translatability::kUnconditionallyTranslatable:
      return "unconditionally translatable";
  }
  return "?";
}

namespace {

/// vS/vL updates translate to UPDATE R SET a = ... WHERE key. They are
/// side-effect free iff the attribute is not load-bearing elsewhere in the
/// view (not used in a join / selection predicate, not projected by another
/// leaf).
StarVerdict CheckLeafUpdate(const ViewAsg& gv, const ViewNode& node) {
  StarVerdict verdict;
  const view::AnalyzedView& av = gv.analyzed_view();
  // Used in any correlation or selection predicate anywhere in the view?
  std::vector<const view::Scope*> scopes;
  for (const ViewNode& n : gv.nodes()) {
    if (n.av != nullptr && n.av->scope != nullptr) scopes.push_back(n.av->scope);
  }
  std::sort(scopes.begin(), scopes.end());
  scopes.erase(std::unique(scopes.begin(), scopes.end()), scopes.end());
  for (const view::Scope* s : scopes) {
    for (const ResolvedCondition& cond : s->conditions) {
      bool touches =
          (cond.lhs.relation == node.relation && cond.lhs.attr == node.attr) ||
          (cond.is_correlation && cond.rhs.relation == node.relation &&
           cond.rhs.attr == node.attr);
      if (touches) {
        verdict.result = Translatability::kUntranslatable;
        verdict.reason = "attribute " + node.relation + "." + node.attr +
                         " is used by view predicate '" + cond.ToString() +
                         "'; changing it has view side effects";
        return verdict;
      }
    }
  }
  // Projected by another leaf node?
  int appearances = 0;
  for (const ViewNode& n : gv.nodes()) {
    if (n.kind == NodeKind::kLeaf && n.relation == node.relation &&
        n.attr == node.attr) {
      ++appearances;
    }
  }
  if (appearances > 1) {
    verdict.result = Translatability::kUntranslatable;
    verdict.reason = "attribute " + node.relation + "." + node.attr +
                     " appears in " + std::to_string(appearances) +
                     " view leaves; updating one instance changes the others";
    return verdict;
  }
  (void)av;
  verdict.result = Translatability::kUnconditionallyTranslatable;
  return verdict;
}

}  // namespace

StarVerdict CheckStar(const ViewAsg& gv, int node_id, xq::UpdateOpType op) {
  const ViewNode& node = gv.node(node_id);
  StarVerdict verdict;

  if (node.kind == NodeKind::kRoot) {
    // Deleting the root is always translatable (drop all base content the
    // view exposes); inserting "a root" is meaningless.
    verdict.result = Translatability::kUnconditionallyTranslatable;
    return verdict;
  }
  if (node.kind == NodeKind::kTag || node.kind == NodeKind::kLeaf) {
    return CheckLeafUpdate(gv, node);
  }

  auto CheckDelete = [&]() -> StarVerdict {
    StarVerdict v;
    if (!node.mark.safe_delete) {
      v.result = Translatability::kUntranslatable;
      v.reason = node.mark.unsafe_delete_reason;
    } else if (node.mark.clean) {
      v.result = Translatability::kUnconditionallyTranslatable;
    } else {
      v.result = Translatability::kConditionallyTranslatable;
      v.condition = "translation minimization";
    }
    return v;
  };
  auto CheckInsert = [&]() -> StarVerdict {
    StarVerdict v;
    if (!node.mark.safe_insert) {
      v.result = Translatability::kUntranslatable;
      v.reason = node.mark.unsafe_insert_reason;
    } else if (node.mark.clean) {
      v.result = Translatability::kUnconditionallyTranslatable;
    } else {
      v.result = Translatability::kConditionallyTranslatable;
      v.condition = "duplication consistency";
    }
    return v;
  };

  switch (op) {
    case xq::UpdateOpType::kDelete:
      return CheckDelete();
    case xq::UpdateOpType::kInsert:
      return CheckInsert();
    case xq::UpdateOpType::kReplace: {
      // Replace = delete followed by insert (footnote 4).
      StarVerdict del = CheckDelete();
      StarVerdict ins = CheckInsert();
      if (del.result == Translatability::kUntranslatable) return del;
      if (ins.result == Translatability::kUntranslatable) return ins;
      if (del.result == Translatability::kConditionallyTranslatable ||
          ins.result == Translatability::kConditionallyTranslatable) {
        verdict.result = Translatability::kConditionallyTranslatable;
        std::vector<std::string> conds;
        if (!del.condition.empty()) conds.push_back(del.condition);
        if (!ins.condition.empty()) conds.push_back(ins.condition);
        verdict.condition = Join(conds, " + ");
        return verdict;
      }
      verdict.result = Translatability::kUnconditionallyTranslatable;
      return verdict;
    }
  }
  return verdict;
}

}  // namespace ufilter::check
