// STAR: Schema-driven TrAnslatability Reasoning (Section 5).
//
// The static marking procedure (Algorithm 1) labels every internal node of
// the view ASG with its (UPoint | UContext) pair:
//   - Rule 1 catches missing/improper join conditions on * edges,
//   - Rule 2 marks unsafe-delete nodes (deleting them would make
//     non-descendant view content disappear),
//   - Rule 3 marks unsafe-insert nodes (inserting them could make
//     non-descendant view content appear),
//   - UPoint compares a node's closure with its mapping closure in the base
//     ASG (clean = the where-provenance is a clean extended source).
//
// The dynamic checking procedure (Observations 1 and 2) then classifies an
// update in O(1): unsafe -> untranslatable; clean&safe -> unconditional;
// dirty&safe -> conditional (minimization for deletes, duplication
// consistency for inserts).
#ifndef UFILTER_UFILTER_STAR_H_
#define UFILTER_UFILTER_STAR_H_

#include <string>

#include "asg/view_asg.h"
#include "common/result.h"
#include "xquery/ast.h"

namespace ufilter::check {

/// Marks all nodes of `gv` with their STAR (UPoint | UContext) labels.
/// Idempotent; call once after ViewAsg::Build.
Status MarkViewAsg(asg::ViewAsg* gv, const asg::BaseAsg& gd);

/// Translatability classes of Fig. 6 (for valid updates), plus the explicit
/// "STAR has not run" state a fresh CheckReport starts in (so a half-run
/// report can never read as unconditionally translatable). Order is
/// meaningful: larger = stronger guarantee; kUnclassified is outside the
/// scale.
enum class Translatability {
  kUnclassified = -1,  ///< step 2 has not run for this report
  kUntranslatable = 0,
  kConditionallyTranslatable,
  kUnconditionallyTranslatable,
};

const char* TranslatabilityName(Translatability t);

/// Outcome of the STAR checking procedure for one update.
struct StarVerdict {
  Translatability result = Translatability::kUnconditionallyTranslatable;
  /// For conditional updates: the required condition ("translation
  /// minimization" or "duplication consistency").
  std::string condition;
  /// For untranslatable updates: why.
  std::string reason;
};

/// Classifies an update of kind `op` targeting ASG node `node_id`.
/// Handles internal (vC), tag (vS) and root nodes; replace is treated as
/// delete-then-insert (footnote 4).
StarVerdict CheckStar(const asg::ViewAsg& gv, int node_id,
                      xq::UpdateOpType op);

/// The variable of the element's scope whose relation is in 1-1
/// correspondence with the element's instances (the deepest "multiplier" of
/// the join attachment analysis). The delete translation removes this
/// relation's tuple unconditionally; all other current relations are
/// shared and go through the minimization reference check.
std::string PrimaryVariable(const asg::ViewAsg& gv, int node_id);

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_STAR_H_
