#include "ufilter/translator.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/strings.h"
#include "ufilter/star.h"

namespace ufilter::check {

using relational::ColRef;
using relational::ColumnPredicate;
using relational::FilterPredicate;
using relational::JoinPredicate;
using relational::QueryEvaluator;
using relational::QueryResult;
using relational::Row;
using relational::RowId;
using relational::SelectQuery;
using relational::Table;
using relational::TableSchema;
using relational::UpdateOp;
using relational::UpdateOpKind;
using view::AttrRef;
using view::AvNode;
using view::ResolvedCondition;
using view::Scope;

namespace {

/// (variable, relation) pairs of a scope chain, outermost first.
std::vector<std::pair<std::string, std::string>> ChainVars(
    const std::vector<const Scope*>& chain) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const Scope* s : chain) {
    for (const auto& [var, rel] : s->vars) out.emplace_back(var, rel);
  }
  return out;
}

bool HasVar(const std::vector<std::pair<std::string, std::string>>& vars,
            const std::string& var) {
  for (const auto& [v, r] : vars) {
    (void)r;
    if (v == var) return true;
  }
  return false;
}

void AddSelect(SelectQuery* q, const std::string& alias,
               const std::string& column) {
  ColRef ref{alias, column};
  for (const ColRef& c : q->selects) {
    if (c == ref) return;
  }
  q->selects.push_back(ref);
}

}  // namespace

std::vector<const Scope*> Translator::ScopeChain(const AvNode* element) const {
  std::vector<const Scope*> chain;
  for (const Scope* s = element->scope; s != nullptr; s = s->parent) {
    chain.push_back(s);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

Result<SelectQuery> Translator::ComposeChainProbe(const BoundUpdate& update,
                                                  const AvNode* element,
                                                  bool wide,
                                                  bool skip_outside_preds) const {
  SelectQuery query;
  std::vector<const Scope*> chain = ScopeChain(element);
  auto vars = ChainVars(chain);
  for (const auto& [var, rel] : vars) {
    query.tables.push_back({rel, var});
  }

  // View predicates of every scope in the chain.
  for (const Scope* s : chain) {
    for (const ResolvedCondition& cond : s->conditions) {
      if (cond.is_correlation) {
        query.joins.push_back({ColRef{cond.lhs.variable, cond.lhs.attr},
                               cond.op,
                               ColRef{cond.rhs.variable, cond.rhs.attr}});
      } else {
        query.filters.push_back({ColRef{cond.lhs.variable, cond.lhs.attr},
                                 cond.op, cond.literal});
      }
    }
  }

  // The update's own WHERE conjuncts.
  for (const BoundPredicate& pred : update.predicates) {
    if (!HasVar(vars, pred.attr.variable)) {
      if (skip_outside_preds) continue;  // handled by the victim probe
      return Status::NotSupported("update predicate on $" +
                                  pred.attr.variable +
                                  " lies outside the probe's scope chain");
    }
    query.filters.push_back(
        {ColRef{pred.attr.variable, pred.attr.attr}, pred.op, pred.literal});
  }

  if (wide) {
    // Every view column sourced from a chain variable (internal strategy
    // must reconstruct the full relational-view tuple).
    std::vector<const AvNode*> stack = {&view_->root()};
    while (!stack.empty()) {
      const AvNode* n = stack.back();
      stack.pop_back();
      if (n->kind == AvNode::Kind::kSimple && HasVar(vars, n->variable)) {
        AddSelect(&query, n->variable, n->attr);
      }
      for (const auto& c : n->children) stack.push_back(c.get());
    }
  } else {
    // Key columns per chain variable.
    for (const auto& [var, rel] : vars) {
      UFILTER_ASSIGN_OR_RETURN(const TableSchema* table,
                               view_->schema().FindTable(rel));
      for (const std::string& pk : table->primary_key()) {
        AddSelect(&query, var, pk);
      }
    }
    // Columns referenced by chain conditions and by the target's edge
    // conditions (the translation needs them for FK filling).
    auto AddCondCols = [&](const ResolvedCondition& cond) {
      if (HasVar(vars, cond.lhs.variable)) {
        AddSelect(&query, cond.lhs.variable, cond.lhs.attr);
      }
      if (cond.is_correlation && HasVar(vars, cond.rhs.variable)) {
        AddSelect(&query, cond.rhs.variable, cond.rhs.attr);
      }
    };
    for (const Scope* s : chain) {
      for (const ResolvedCondition& cond : s->conditions) AddCondCols(cond);
    }
    if (update.target_node >= 0) {
      for (const ResolvedCondition& cond :
           gv_->node(update.target_node).edge_conditions) {
        AddCondCols(cond);
      }
    }
  }
  return query;
}

Result<SelectQuery> Translator::ComposeAnchorProbe(
    const BoundUpdate& update) const {
  if (update.op == xq::UpdateOpType::kInsert) {
    return ComposeChainProbe(update, update.context, /*wide=*/false,
                             /*skip_outside_preds=*/false);
  }
  // Delete/replace: the context to check is the victim's parent element;
  // predicates on the victim's own scope belong to the victim probe.
  const AvNode* anchor =
      update.target != nullptr ? update.target->ParentElement() : nullptr;
  if (anchor == nullptr) anchor = &view_->root();
  return ComposeChainProbe(update, anchor, /*wide=*/false,
                           /*skip_outside_preds=*/true);
}

Result<SelectQuery> Translator::ComposeVictimProbe(
    const BoundUpdate& update) const {
  return ComposeChainProbe(update, update.target, /*wide=*/false,
                           /*skip_outside_preds=*/false);
}

Result<SelectQuery> Translator::ComposeWideProbe(
    const BoundUpdate& update) const {
  const AvNode* element = update.op == xq::UpdateOpType::kInsert
                              ? update.context
                              : update.target;
  if (element == nullptr) element = &view_->root();
  return ComposeChainProbe(update, element, /*wide=*/true,
                           /*skip_outside_preds=*/true);
}

namespace {

/// Builds a PK predicate list for `row` of `table`.
std::vector<ColumnPredicate> KeyPredicates(const TableSchema& schema,
                                           const Row& row) {
  std::vector<ColumnPredicate> preds;
  for (const std::string& pk : schema.primary_key()) {
    int c = schema.ColumnIndex(pk);
    preds.push_back({pk, CompareOp::kEq, row[static_cast<size_t>(c)]});
  }
  return preds;
}

}  // namespace

Result<std::vector<UpdateOp>> Translator::TranslateDelete(
    const BoundUpdate& update, const SelectQuery& victim_query,
    const QueryResult& victims, bool minimize) {
  std::vector<UpdateOp> ops;
  const asg::ViewNode& target = gv_->node(update.target_node);

  // Alias -> position in the victim query's FROM list.
  std::map<std::string, size_t> alias_pos;
  for (size_t i = 0; i < victim_query.tables.size(); ++i) {
    alias_pos[victim_query.tables[i].alias] = i;
  }

  // Simple-element / text() deletion: SET the attribute NULL.
  if (target.kind == asg::NodeKind::kLeaf ||
      target.kind == asg::NodeKind::kTag) {
    auto pos = alias_pos.find(target.variable);
    if (pos == alias_pos.end()) {
      return Status::Internal("victim variable missing from probe");
    }
    UFILTER_ASSIGN_OR_RETURN(Table * table, db_->GetTable(ctx_, target.relation));
    std::set<RowId> seen;
    for (const auto& ids : victims.row_ids) {
      RowId id = ids[pos->second];
      if (!seen.insert(id).second) continue;
      const Row* row = table->GetRow(id);
      if (row == nullptr) continue;
      UpdateOp op;
      op.kind = UpdateOpKind::kUpdate;
      op.table = target.relation;
      op.values[target.attr] = Value::Null();
      op.where = KeyPredicates(table->schema(), *row);
      ops.push_back(std::move(op));
    }
    return ops;
  }

  if (target.kind == asg::NodeKind::kRoot) {
    return Status::NotSupported("deleting the view root is not translated");
  }

  // Complex element: delete the tuples of the element's current relations.
  std::vector<std::string> cr = gv_->CurrentRelations(update.target_node);
  const Scope* scope = update.target->scope;
  if (scope->vars.empty()) {
    return Status::Internal("victim scope has no bindings");
  }
  std::string primary_var = PrimaryVariable(*gv_, update.target_node);
  if (primary_var.empty()) primary_var = scope->vars[0].first;
  std::string primary_rel = scope->vars[0].second;
  for (const auto& [var, rel] : scope->vars) {
    if (var == primary_var) primary_rel = rel;
  }

  std::set<std::pair<std::string, RowId>> scheduled;
  for (const auto& ids : victims.row_ids) {
    // Primary first so shared tuples are reference-checked against a
    // database that still contains everything except prior scheduled work.
    for (const auto& [var, rel] : scope->vars) {
      if (std::find(cr.begin(), cr.end(), rel) == cr.end()) continue;
      auto pos = alias_pos.find(var);
      if (pos == alias_pos.end()) continue;
      RowId id = ids[pos->second];
      if (scheduled.count({rel, id}) > 0) continue;
      UFILTER_ASSIGN_OR_RETURN(Table * table, db_->GetTable(ctx_, rel));
      const Row* row = table->GetRow(id);
      if (row == nullptr) continue;

      if (minimize && var != primary_var) {
        // Reference check: is this tuple still used by other view content?
        auto primary_pos = alias_pos.find(primary_var);
        Value primary_key_value;
        std::string primary_key_col;
        if (primary_pos != alias_pos.end()) {
          UFILTER_ASSIGN_OR_RETURN(Table * ptable, db_->GetTable(ctx_, primary_rel));
          const Row* prow = ptable->GetRow(ids[primary_pos->second]);
          const auto& ppk = ptable->schema().primary_key();
          if (prow != nullptr && ppk.size() == 1) {
            primary_key_col = ppk[0];
            primary_key_value =
                (*prow)[static_cast<size_t>(
                    ptable->schema().ColumnIndex(ppk[0]))];
          }
        }
        UFILTER_ASSIGN_OR_RETURN(
            bool referenced,
            TupleReferencedElsewhere(rel, *row, primary_rel, primary_key_col,
                                     primary_key_value));
        if (referenced) continue;  // minimization: keep the shared tuple
      }

      UpdateOp op;
      op.kind = UpdateOpKind::kDelete;
      op.table = rel;
      op.where = KeyPredicates(table->schema(), *row);
      ops.push_back(std::move(op));
      scheduled.insert({rel, id});
    }
  }
  return ops;
}

Result<bool> Translator::TupleReferencedElsewhere(
    const std::string& relation, const Row& tuple,
    const std::string& excluded_rel, const std::string& excluded_key_col,
    const Value& excluded_key_value) {
  UFILTER_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ctx_, relation));
  const TableSchema& schema = table->schema();
  if (schema.primary_key().empty()) return true;  // conservative

  QueryEvaluator evaluator(db_, ctx_);
  // Every internal view node whose UCBinding includes `relation` describes
  // view content that may reference this tuple.
  std::set<std::string> probed;
  for (const asg::ViewNode& node : gv_->nodes()) {
    if (node.kind != asg::NodeKind::kComplex) continue;
    if (std::find(node.uc_binding.begin(), node.uc_binding.end(), relation) ==
        node.uc_binding.end()) {
      continue;
    }
    const AvNode* av = node.av;
    if (av == nullptr) continue;
    std::vector<const Scope*> chain = ScopeChain(av);
    auto vars = ChainVars(chain);
    // One probe per distinct chain signature.
    std::string sig;
    for (const auto& [v, r] : vars) sig += v + ":" + r + ";";
    if (!probed.insert(sig).second) continue;

    SelectQuery query;
    for (const auto& [var, rel] : vars) query.tables.push_back({rel, var});
    for (const Scope* s : chain) {
      for (const ResolvedCondition& cond : s->conditions) {
        if (cond.is_correlation) {
          query.joins.push_back({ColRef{cond.lhs.variable, cond.lhs.attr},
                                 cond.op,
                                 ColRef{cond.rhs.variable, cond.rhs.attr}});
        } else {
          query.filters.push_back({ColRef{cond.lhs.variable, cond.lhs.attr},
                                   cond.op, cond.literal});
        }
      }
    }
    // Pin the tuple via the first chain variable bound to `relation`.
    std::string pin_var;
    for (const auto& [var, rel] : vars) {
      if (rel == relation) {
        pin_var = var;
        break;
      }
    }
    if (pin_var.empty()) continue;
    for (const std::string& pk : schema.primary_key()) {
      int c = schema.ColumnIndex(pk);
      query.filters.push_back({ColRef{pin_var, pk}, CompareOp::kEq,
                               tuple[static_cast<size_t>(c)]});
      AddSelect(&query, pin_var, pk);
    }
    // Exclude the instance being deleted.
    if (!excluded_key_col.empty()) {
      for (const auto& [var, rel] : vars) {
        if (rel == excluded_rel) {
          query.filters.push_back({ColRef{var, excluded_key_col},
                                   CompareOp::kNe, excluded_key_value});
          break;
        }
      }
    }
    UFILTER_ASSIGN_OR_RETURN(QueryResult result, evaluator.Execute(query));
    if (!result.empty()) return true;
  }
  return false;
}

Result<std::vector<UpdateOp>> Translator::TranslateInsert(
    const BoundUpdate& update, const SelectQuery& anchor_query,
    const QueryResult& anchors) {
  std::vector<UpdateOp> ops;
  if (update.payload == nullptr) {
    return Status::InvalidArgument("insert without payload");
  }
  // Anchor values keyed "variable.column".
  std::vector<std::map<std::string, Value>> anchor_rows;
  if (anchor_query.tables.empty()) {
    anchor_rows.emplace_back();  // root context: one trivial anchor
  } else {
    for (const Row& row : anchors.rows) {
      std::map<std::string, Value> m;
      for (size_t i = 0; i < anchors.column_names.size(); ++i) {
        m[anchors.column_names[i]] = row[i];
      }
      anchor_rows.push_back(std::move(m));
    }
  }
  std::set<std::string> emitted;  // dedupe identical ops
  for (const auto& anchor : anchor_rows) {
    std::vector<UpdateOp> batch;
    UFILTER_RETURN_NOT_OK(
        CollectInsertOps(update.target_node, *update.payload, anchor, &batch));
    for (UpdateOp& op : batch) {
      std::string key = op.ToSql();
      if (emitted.insert(key).second) ops.push_back(std::move(op));
    }
  }
  return ops;
}

Status Translator::CollectInsertOps(
    int node_id, const xml::Node& payload,
    const std::map<std::string, Value>& anchor_values,
    std::vector<UpdateOp>* ops) {
  const asg::ViewNode& node = gv_->node(node_id);
  std::vector<std::string> relations = gv_->CurrentRelations(node_id);
  std::map<std::string, std::map<std::string, Value>> values;  // rel -> col

  // Recursive leaf-value gathering, stopping at * children (those become
  // child inserts of their own).
  std::vector<std::pair<int, const xml::Node*>> star_children;
  std::function<Status(int, const xml::Node&)> Gather =
      [&](int nid, const xml::Node& el) -> Status {
    const asg::ViewNode& n = gv_->node(nid);
    std::map<std::string, int> by_tag;
    for (int c : n.children) by_tag[gv_->node(c).tag] = c;
    for (const xml::NodePtr& child : el.children()) {
      if (!child->is_element()) continue;
      auto it = by_tag.find(child->label());
      if (it == by_tag.end()) continue;  // validation already rejected these
      const asg::ViewNode& cn = gv_->node(it->second);
      if (cn.card == asg::Cardinality::kStar) {
        star_children.emplace_back(it->second, child.get());
        continue;
      }
      if (cn.kind == asg::NodeKind::kTag) {
        if (cn.children.empty()) continue;
        const asg::ViewNode& leaf = gv_->node(cn.children[0]);
        std::string text = child->TextContent();
        if (text.empty()) continue;  // NULL
        UFILTER_ASSIGN_OR_RETURN(Value v, Value::FromText(text, leaf.type));
        values[leaf.relation][leaf.attr] = std::move(v);
      } else if (cn.kind == asg::NodeKind::kComplex) {
        UFILTER_RETURN_NOT_OK(Gather(it->second, *child));
      }
    }
    return Status::OK();
  };
  UFILTER_RETURN_NOT_OK(Gather(node_id, payload));

  auto InRelations = [&](const std::string& r) {
    return std::find(relations.begin(), relations.end(), r) !=
           relations.end();
  };
  auto SideValue = [&](const AttrRef& side) -> const Value* {
    auto rit = values.find(side.relation);
    if (rit != values.end()) {
      auto cit = rit->second.find(side.attr);
      if (cit != rit->second.end()) return &cit->second;
    }
    auto ait = anchor_values.find(side.variable + "." + side.attr);
    if (ait != anchor_values.end()) return &ait->second;
    return nullptr;
  };

  // Seed join columns of the inserted relations directly from the anchor
  // row when available (a replace's victim probe binds the element's own
  // chain, so both condition sides may already resolve from the anchor —
  // the values still have to reach the INSERT).
  for (const ResolvedCondition& cond : node.edge_conditions) {
    if (!cond.is_correlation) continue;
    for (const AttrRef* side : {&cond.lhs, &cond.rhs}) {
      if (!InRelations(side->relation)) continue;
      if (values[side->relation].count(side->attr) > 0) continue;
      auto it = anchor_values.find(side->variable + "." + side->attr);
      if (it != anchor_values.end() && !it->second.is_null()) {
        values[side->relation][side->attr] = it->second;
      }
    }
  }

  // Fill FK / join columns from the element's edge conditions (iterate to a
  // fixpoint so chains like anchor -> book.pubid -> publisher.pubid fill).
  bool progress = true;
  while (progress) {
    progress = false;
    for (const ResolvedCondition& cond : node.edge_conditions) {
      if (!cond.is_correlation || cond.op != CompareOp::kEq) continue;
      const Value* lhs = SideValue(cond.lhs);
      const Value* rhs = SideValue(cond.rhs);
      if (lhs != nullptr && rhs == nullptr && InRelations(cond.rhs.relation)) {
        values[cond.rhs.relation][cond.rhs.attr] = *lhs;
        progress = true;
      } else if (rhs != nullptr && lhs == nullptr &&
                 InRelations(cond.lhs.relation)) {
        values[cond.lhs.relation][cond.lhs.attr] = *rhs;
        progress = true;
      }
    }
  }

  // Pin attributes constrained by the element's selection predicates so the
  // inserted element is visible in the view (e.g. the paper's U2 supplies a
  // qualifying year for book.year > 1990).
  for (const ResolvedCondition& cond : node.edge_conditions) {
    if (cond.is_correlation) continue;
    if (!InRelations(cond.lhs.relation)) continue;
    auto& rel_values = values[cond.lhs.relation];
    if (rel_values.count(cond.lhs.attr) > 0) continue;
    rel_values[cond.lhs.attr] = SatisfyingValue(cond.op, cond.literal);
  }
  if (node.av != nullptr && node.av->scope != nullptr) {
    for (const ResolvedCondition& cond : node.av->scope->conditions) {
      if (cond.is_correlation) continue;
      if (!InRelations(cond.lhs.relation)) continue;
      auto& rel_values = values[cond.lhs.relation];
      if (rel_values.count(cond.lhs.attr) > 0) continue;
      rel_values[cond.lhs.attr] = SatisfyingValue(cond.op, cond.literal);
    }
  }

  // Emit inserts in FK topological order (referenced tables first).
  std::vector<std::string> ordered = relations;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const std::string& a, const std::string& b) {
                     // a before b if b references a.
                     auto tb = view_->schema().FindTable(b);
                     if (!tb.ok()) return false;
                     for (const auto& fk : (*tb)->foreign_keys()) {
                       if (fk.ref_table == a) return true;
                     }
                     return false;
                   });
  for (const std::string& rel : ordered) {
    UpdateOp op;
    op.kind = UpdateOpKind::kInsert;
    op.table = rel;
    auto it = values.find(rel);
    if (it != values.end()) op.values = it->second;
    ops->push_back(std::move(op));
  }

  // Nested repeating children in the payload become child inserts. Their
  // anchor values are the current element's gathered values.
  for (const auto& [child_id, child_el] : star_children) {
    std::map<std::string, Value> child_anchor = anchor_values;
    for (const auto& [rel, cols] : values) {
      // Key both by relation and by the variables bound to it in this scope.
      for (const auto& [col, v] : cols) {
        child_anchor[rel + "." + col] = v;
        if (node.av != nullptr && node.av->scope != nullptr) {
          for (const Scope* s = node.av->scope; s != nullptr; s = s->parent) {
            for (const auto& [var, r] : s->vars) {
              if (r == rel) child_anchor[var + "." + col] = v;
            }
          }
        }
      }
    }
    UFILTER_RETURN_NOT_OK(
        CollectInsertOps(child_id, *child_el, child_anchor, ops));
  }
  return Status::OK();
}

Value Translator::SatisfyingValue(CompareOp op, const Value& literal) const {
  switch (op) {
    case CompareOp::kEq:
    case CompareOp::kGe:
    case CompareOp::kLe:
      return literal;
    case CompareOp::kGt:
      if (literal.is_int()) return Value::Int(literal.AsInt() + 1);
      if (literal.is_double()) return Value::Double(literal.AsDouble() + 1.0);
      return Value::String(literal.ToText() + "~");
    case CompareOp::kLt:
      if (literal.is_int()) return Value::Int(literal.AsInt() - 1);
      if (literal.is_double()) return Value::Double(literal.AsDouble() - 1.0);
      return Value::String("");
    case CompareOp::kNe:
      if (literal.is_int()) return Value::Int(literal.AsInt() + 1);
      if (literal.is_double()) return Value::Double(literal.AsDouble() + 1.0);
      return Value::String(literal.ToText() + "_alt");
  }
  return literal;
}

Status Translator::EnforceDuplicationConsistency(
    const BoundUpdate& update, std::vector<UpdateOp>* ops) {
  // The element's own (primary) relation is strict.
  std::string strict_rel;
  if (update.target != nullptr && update.target->scope != nullptr &&
      !update.target->scope->vars.empty()) {
    strict_rel = update.target->scope->vars[0].second;
  }
  std::vector<UpdateOp> kept;
  for (UpdateOp& op : *ops) {
    if (op.kind != UpdateOpKind::kInsert) {
      kept.push_back(std::move(op));
      continue;
    }
    UFILTER_ASSIGN_OR_RETURN(Table * table, db_->GetTable(ctx_, op.table));
    const TableSchema& schema = table->schema();
    std::vector<ColumnPredicate> key_preds;
    bool have_full_key = !schema.primary_key().empty();
    for (const std::string& pk : schema.primary_key()) {
      auto it = op.values.find(pk);
      if (it == op.values.end() || it->second.is_null()) {
        have_full_key = false;
        break;
      }
      key_preds.push_back({pk, CompareOp::kEq, it->second});
    }
    if (!have_full_key) {
      kept.push_back(std::move(op));
      continue;
    }
    std::vector<RowId> existing = table->Find(key_preds, &db_->stats());
    if (existing.empty()) {
      kept.push_back(std::move(op));
      continue;
    }
    if (op.table == strict_rel) {
      return Status::DataConflict(
          "a tuple with the same key already exists in '" + op.table +
          "' — the inserted element would collide with existing view "
          "content");
    }
    // Secondary relation: duplicate allowed iff consistent.
    const Row* row = table->GetRow(existing[0]);
    for (const auto& [col, v] : op.values) {
      int c = schema.ColumnIndex(col);
      if (c < 0) continue;
      const Value& existing_v = (*row)[static_cast<size_t>(c)];
      if (!v.is_null() && !(v == existing_v)) {
        return Status::DataConflict(
            "duplication consistency violated: payload value " +
            v.ToSqlLiteral() + " for " + op.table + "." + col +
            " differs from the existing tuple's " +
            existing_v.ToSqlLiteral());
      }
    }
    // Consistent duplicate: reuse the existing tuple, drop the insert.
  }
  *ops = std::move(kept);
  return Status::OK();
}

}  // namespace ufilter::check
