// The baseline U-Filter argues against (Section 1, Fig. 14): blindly
// translate the view update, execute it, detect view side effects by
// comparing the materialized view against the expected view, and roll back
// on mismatch. Expensive exactly where U-Filter's STAR check is cheap.
#ifndef UFILTER_UFILTER_BLIND_H_
#define UFILTER_UFILTER_BLIND_H_

#include "common/result.h"
#include "relational/database.h"
#include "ufilter/checker.h"
#include "xquery/ast.h"

namespace ufilter::check {

struct BlindResult {
  bool side_effect = false;   ///< update was rejected and rolled back
  bool applied = false;       ///< update committed
  int64_t rows_affected = 0;
  double translate_seconds = 0;
  double execute_seconds = 0;
  double detect_seconds = 0;  ///< view materialization + diff
  double rollback_seconds = 0;
};

/// Executes `stmt` with no translatability checking: translate directly,
/// apply, materialize the view, compare against the XML-side expectation,
/// roll back when a side effect is observed. `uf` supplies the compiled view
/// (its ASG marks are ignored — that is the point of the baseline).
Result<BlindResult> BlindExecute(UFilter* uf, const xq::UpdateStmt& stmt);

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_BLIND_H_
