#include "ufilter/usecases.h"

#include "common/strings.h"

namespace ufilter::check {

const char* QueryFeatureName(QueryFeature f) {
  switch (f) {
    case QueryFeature::kDistinct:
      return "Distinct()";
    case QueryFeature::kCount:
      return "Count()";
    case QueryFeature::kMax:
      return "max()";
    case QueryFeature::kAvg:
      return "avg()";
    case QueryFeature::kSum:
      return "sum()";
    case QueryFeature::kIfThenElse:
      return "if/then/else";
    case QueryFeature::kOrderFunction:
      return "order function";
    case QueryFeature::kUserFunction:
      return "user-defined function";
  }
  return "?";
}

const std::vector<UseCaseQuery>& UseCaseCatalog() {
  using F = QueryFeature;
  static const std::vector<UseCaseQuery> kCatalog = {
      // ---- XMP: experiences and exemplars --------------------------------
      {"XMP", "Q1", "books published by Addison-Wesley after 1991", {}},
      {"XMP", "Q2", "flat list of all title-author pairs", {}},
      {"XMP", "Q3", "each book's title and all its authors", {}},
      {"XMP", "Q4", "for each author, the titles of their books",
       {F::kDistinct}},
      {"XMP", "Q5", "title/price pairs joined across two sources", {}},
      {"XMP", "Q6", "books with more than one author (et-al cut-off)",
       {F::kCount}},
      {"XMP", "Q7", "titles and prices of books, restructured", {}},
      {"XMP", "Q8", "books mentioning Suciu in a paragraph", {}},
      {"XMP", "Q9", "titles containing the word XML", {}},
      {"XMP", "Q10", "authors with the set of books they wrote",
       {F::kDistinct}},
      {"XMP", "Q11", "books with empty author lists rendered differently",
       {}},
      {"XMP", "Q12", "pairs of books with identical author sets", {}},
      // ---- TREE: queries that preserve hierarchy --------------------------
      {"TREE", "Q1", "table of contents: nested section titles", {}},
      {"TREE", "Q2", "figures with their enclosing section titles", {}},
      {"TREE", "Q3", "number of sections and figures", {F::kCount}},
      {"TREE", "Q4", "sections with figure counts per section", {F::kCount}},
      {"TREE", "Q5", "top-level section count", {F::kCount}},
      {"TREE", "Q6", "shallow sections (count of nested sections)",
       {F::kCount}},
      // ---- R: access to relational data -----------------------------------
      {"R", "Q1", "items offered by a given seller", {}},
      {"R", "Q2", "highest bid per item", {F::kMax}},
      {"R", "Q3", "items with their current bids joined", {}},
      {"R", "Q4", "bidders and the items they bid on", {}},
      {"R", "Q5", "average bid amount per item", {F::kAvg}},
      {"R", "Q6", "items with more than N bids", {F::kCount}},
      {"R", "Q7", "highest bid in a category", {F::kMax}},
      {"R", "Q8", "users with bid counts", {F::kCount}},
      {"R", "Q9", "items with no bids (count = 0)", {F::kCount}},
      {"R", "Q10", "most active bidder", {F::kMax, F::kCount}},
      {"R", "Q11", "bid totals per user", {F::kSum}},
      {"R", "Q12", "price statistics per category", {F::kAvg, F::kMax}},
      {"R", "Q13", "items whose bids exceed the average", {F::kAvg}},
      {"R", "Q14", "bid histogram per item", {F::kCount}},
      {"R", "Q15", "top item per category", {F::kMax}},
      {"R", "Q16", "items and bids of one bidder, restructured", {}},
      {"R", "Q17", "open auctions with seller and buyer info", {}},
      {"R", "Q18", "distinct users who offered or bid", {F::kDistinct}},
  };
  return kCatalog;
}

std::vector<UseCaseVerdict> EvaluateUseCases() {
  std::vector<UseCaseVerdict> out;
  for (const UseCaseQuery& q : UseCaseCatalog()) {
    UseCaseVerdict v;
    v.query = &q;
    v.included = q.features.empty();
    if (!v.included) {
      std::vector<std::string> names;
      for (QueryFeature f : q.features) names.push_back(QueryFeatureName(f));
      v.reason = Join(names, ", ");
    }
    out.push_back(v);
  }
  return out;
}

std::string UseCaseTable() {
  std::string out;
  out += "View Query     | Included | Reason\n";
  out += "---------------+----------+-------------------\n";
  for (const UseCaseVerdict& v : EvaluateUseCases()) {
    std::string name = v.query->group + "-" + v.query->id;
    name.resize(14, ' ');
    out += name + " | " + (v.included ? "   Yes   " : "   No    ") + "| " +
           v.reason + "\n";
  }
  return out;
}

}  // namespace ufilter::check
