// Update translation engine (the box below U-Filter in Fig. 5), plus the
// probe-query composition of Section 6.1. Translatable view updates become
// sequences of relational UpdateOps; conditionally translatable ones get
// their condition enforced here (translation minimization for deletes,
// duplication consistency for inserts).
#ifndef UFILTER_UFILTER_TRANSLATOR_H_
#define UFILTER_UFILTER_TRANSLATOR_H_

#include <vector>

#include "asg/view_asg.h"
#include "common/result.h"
#include "relational/query.h"
#include "relational/sqlgen.h"
#include "ufilter/update_binding.h"
#include "view/analyzed_view.h"

namespace ufilter::check {

/// \brief Composes probe queries and translates bound updates.
class Translator {
 public:
  /// `ctx` scopes every table *read* the translation performs (victim row
  /// fetches, minimization reference checks, duplication-consistency key
  /// probes): a snapshot-pinned context makes the whole translation read the
  /// pinned epoch, which is what lets check-only sessions translate with no
  /// lock held while a writer commits concurrently. Null means the
  /// database's root context (live reads), preserving the legacy behavior.
  Translator(relational::Database* db, const view::AnalyzedView* view,
             const asg::ViewAsg* gv,
             relational::ExecutionContext* ctx = nullptr)
      : db_(db), view_(view), gv_(gv),
        ctx_(ctx != nullptr ? ctx : db->root_context()) {}

  /// Probe for the *context anchor* (does the element the update inserts
  /// into / deletes from exist in the view?). Composes the view query chain
  /// of the context element with the update's WHERE (the paper's PQ1/PQ2).
  /// Selects key columns plus any column referenced by the target's edge
  /// conditions. An update anchored at the root has an empty FROM list;
  /// callers treat that as trivially existing.
  Result<relational::SelectQuery> ComposeAnchorProbe(
      const BoundUpdate& update) const;

  /// Probe enumerating the victim instances of a delete (the context chain
  /// extended to the victim element's scope).
  Result<relational::SelectQuery> ComposeVictimProbe(
      const BoundUpdate& update) const;

  /// Wide probe used by the *internal* strategy: same FROM/WHERE as the
  /// anchor probe but selecting every view column of the chain, as required
  /// to build a complete relational-view tuple (Section 6.2.1).
  Result<relational::SelectQuery> ComposeWideProbe(
      const BoundUpdate& update) const;

  /// Translates a delete given the victim probe (query + result). With
  /// `minimize` (the conditional-translatability condition of Observation
  /// 1), shared tuples are reference-checked against the database and
  /// skipped when still referenced by other view content.
  Result<std::vector<relational::UpdateOp>> TranslateDelete(
      const BoundUpdate& update, const relational::SelectQuery& victim_query,
      const relational::QueryResult& victims, bool minimize);

  /// Translates an insert given the anchor probe (query + result). Fills FK
  /// columns from the anchor row and from the view's join conditions, and
  /// fills attributes pinned by the view's selection predicates so the
  /// inserted element actually appears in the view.
  Result<std::vector<relational::UpdateOp>> TranslateInsert(
      const BoundUpdate& update, const relational::SelectQuery& anchor_query,
      const relational::QueryResult& anchors);

  /// Checks the duplication-consistency condition (Observation 2) for the
  /// translated inserts: an insert whose key already exists is dropped when
  /// the existing tuple carries identical values (the duplicate is
  /// consistent), and rejected with DataConflict otherwise. `ops` is edited
  /// in place.
  /// The update's *own* element relation is strict: an existing key there is
  /// always a conflict (a view cannot show the same tuple twice).
  Status EnforceDuplicationConsistency(const BoundUpdate& update,
                                       std::vector<relational::UpdateOp>* ops);

 private:
  /// Scopes from the root to `element`'s scope, outermost first.
  std::vector<const view::Scope*> ScopeChain(
      const view::AvNode* element) const;

  Result<relational::SelectQuery> ComposeChainProbe(
      const BoundUpdate& update, const view::AvNode* element, bool wide,
      bool skip_outside_preds) const;

  Status CollectInsertOps(int node_id, const xml::Node& payload,
                          const std::map<std::string, Value>& anchor_values,
                          std::vector<relational::UpdateOp>* ops);

  /// Minimization reference check: true when `tuple` of `relation` is still
  /// used by some view instance other than the one keyed by
  /// (`excluded_rel`, `excluded_key_col` = `excluded_key_value`).
  Result<bool> TupleReferencedElsewhere(const std::string& relation,
                                        const relational::Row& tuple,
                                        const std::string& excluded_rel,
                                        const std::string& excluded_key_col,
                                        const Value& excluded_key_value);

  /// A value satisfying `value <op> literal` (used to pin attributes the
  /// payload omits but the view's selection predicates constrain).
  Value SatisfyingValue(CompareOp op, const Value& literal) const;

  relational::Database* db_;
  const view::AnalyzedView* view_;
  const asg::ViewAsg* gv_;
  relational::ExecutionContext* ctx_;
};

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_TRANSLATOR_H_
