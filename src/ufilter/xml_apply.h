// Applies a view update statement directly to a materialized XML view, with
// pure XML semantics. This computes the paper's u(DEFv(D)) — the *expected*
// view after the update — which tests and the blind-translation baseline
// compare against DEFv(U(D)) to witness view side effects (Definition 1's
// rectangle rule).
#ifndef UFILTER_UFILTER_XML_APPLY_H_
#define UFILTER_UFILTER_XML_APPLY_H_

#include "common/result.h"
#include "xml/node.h"
#include "xquery/ast.h"

namespace ufilter::check {

/// Applies `stmt` to `root` in place. Returns the number of nodes inserted
/// plus removed (0 means the update matched nothing).
Result<int> ApplyUpdateToXml(xml::Node* root, const xq::UpdateStmt& stmt);

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_XML_APPLY_H_
