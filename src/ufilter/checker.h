// U-Filter pipeline facade (Fig. 5), split into an explicit two-phase
// lifecycle. Compile a view once (parse, analyze, build + mark the ASGs),
// then *prepare* each distinct update template once (parse, bind, validate,
// STAR-classify) and *execute* it any number of times — execution pays only
// step 3 (data-driven checking) and translation. A bounded LRU plan cache
// keyed by the normalized update text makes Prepare free for repeated
// templates, and CheckBatch merges the step-3 probes of many updates into
// OR-of-predicates queries against the database.
//
// This is the library's primary public entry point:
//
//   auto db = ...;                      // relational::Database
//   auto uf = UFilter::Create(db.get(), kBookViewQuery).value();
//
//   // One-shot (compatibility shim over Prepare + Execute):
//   CheckReport r = uf->Check("FOR $b IN document(...)...", {});
//   if (r.outcome == CheckOutcome::kExecuted) { ... }
//
//   // Prepared-statement style:
//   auto plan = uf->Prepare("FOR $b IN document(...)...");
//   for (...) { CheckReport r = uf->Execute(*plan); ... }
//
//   // Batch style (merged probe queries):
//   std::vector<CheckReport> rs = uf->CheckBatch({u1, u2, ...});
#ifndef UFILTER_UFILTER_CHECKER_H_
#define UFILTER_UFILTER_CHECKER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asg/view_asg.h"
#include "common/result.h"
#include "obs/trace.h"
#include "relational/database.h"
#include "ufilter/datacheck.h"
#include "ufilter/plan_cache.h"
#include "ufilter/prepared.h"
#include "ufilter/star.h"
#include "view/analyzed_view.h"
#include "view/materializer.h"
#include "xml/node.h"
#include "xquery/parser.h"

namespace ufilter::check {

/// Where the pipeline ended for an update.
enum class CheckOutcome {
  kNotRun,          ///< no step has run (a fresh report's explicit state)
  kInvalid,         ///< rejected by step 1 (update validation)
  kUntranslatable,  ///< rejected by step 2 (STAR)
  kDataConflict,    ///< rejected by step 3 (data-driven check)
  kExecuted,        ///< translated (and executed unless apply=false)
  /// The request's deadline expired before any pipeline step ran (rejected
  /// at service admission or purged from the admission queue). Nothing was
  /// executed — retrying is always safe.
  kDeadlineExceeded,
};

const char* CheckOutcomeName(CheckOutcome o);

struct CheckOptions {
  DataCheckStrategy strategy = DataCheckStrategy::kOutside;
  /// When false, translation runs but the database is rolled back (dry run).
  bool apply = true;
  /// When false, steps 1-2 run but step 3 / execution is skipped; the report
  /// carries the STAR classification only.
  bool run_data_check = true;
  /// When false, step 2 (STAR) is skipped and the update is treated as
  /// unconditionally translatable — the "Update" (no checking) baseline of
  /// Figs. 13/14. Default on.
  bool run_star = true;
  /// When false, Check/CheckBatch compile from scratch without consulting or
  /// populating the plan cache (cold-path benchmarking).
  bool use_plan_cache = true;
};

/// Full pipeline report for one update. Starts in the explicit not-run /
/// unclassified state so a half-run report can never read as success.
struct CheckReport {
  CheckOutcome outcome = CheckOutcome::kNotRun;
  /// Rejection reason (invalid / untranslatable / data conflict).
  Status error;
  /// STAR classification (valid once past step 2; kUnclassified before).
  Translatability star_class = Translatability::kUnclassified;
  /// Condition attached by STAR for conditionally translatable updates.
  std::string condition;
  /// Executed relational update sequence.
  std::vector<relational::UpdateOp> translation;
  int64_t rows_affected = 0;
  bool zero_tuple_warning = false;
  std::vector<std::string> probes;
  /// Wall-clock seconds spent per step. On a plan-cache hit steps 1-2 cost
  /// nothing; on a miss they carry the compile cost of this call.
  double step1_seconds = 0;
  double step2_seconds = 0;
  double step3_seconds = 0;
  /// Seconds spent in Prepare (normalization + cache lookup + any compile).
  double prepare_seconds = 0;
  /// The plan came from the cache — this call did zero parse/bind/STAR work.
  bool from_plan_cache = false;

  /// One-paragraph human-readable summary.
  std::string Describe() const;
};

/// \brief A compiled U-Filter instance for one view over one database.
class UFilter {
 public:
  /// Parses and analyzes `view_query`, builds both ASGs and runs the STAR
  /// marking procedure. The database must outlive the returned object.
  static Result<std::unique_ptr<UFilter>> Create(
      relational::Database* db, const std::string& view_query);

  /// Compiles `update_text` into a reusable plan: parse, bind, validate
  /// (step 1) and STAR-classify (step 2) every action. Never returns null;
  /// compile failures travel inside the plan and surface when executed.
  /// Consults the plan cache first (key: normalized text); `cache_hit`, when
  /// non-null, reports whether the plan was served from the cache. `ctx`
  /// scopes the table-statistics reads of probe *planning*: a
  /// snapshot-pinned context lets Prepare run with no lock while a writer
  /// commits concurrently (the physical plans re-resolve tables by name at
  /// execution, so a plan compiled at one epoch replays at any other).
  /// `trace`, when non-null, receives plan_cache / compile stage spans.
  std::shared_ptr<const PreparedUpdate> Prepare(
      const std::string& update_text, bool* cache_hit = nullptr,
      relational::ExecutionContext* ctx = nullptr,
      obs::TraceContext* trace = nullptr);

  /// Runs step 3 + translation for a prepared plan against current data.
  /// Rejects plans prepared against a different UFilter or view definition.
  /// `ctx` is the session's scratch (temp tables, undo log); null means the
  /// database's root context. The same UFilter is shared by all sessions.
  CheckReport Execute(const PreparedUpdate& prepared,
                      const CheckOptions& options = {},
                      relational::ExecutionContext* ctx = nullptr);

  /// Attempts the check without mutating the database at all: probes and
  /// translation run normally, but the translated ops are *validated*
  /// read-only (relational/dryrun.h) instead of executed-and-rolled-back.
  /// Returns the report when the result is guaranteed equal to
  /// Execute(apply=false); nullopt when it is not — apply=true requests,
  /// non-outside strategies reaching step 3, multi-action statements, and
  /// op sequences the validator cannot decide — in which case the caller
  /// must fall back to Execute (the service routes that through its writer
  /// lane). This is what lets check-only traffic run under a shared reader
  /// lock.
  std::optional<CheckReport> TryCheckReadOnly(
      const PreparedUpdate& prepared, const CheckOptions& options = {},
      relational::ExecutionContext* ctx = nullptr);

  /// One-shot check: Prepare (through the plan cache) + Execute.
  CheckReport Check(const std::string& update_text,
                    const CheckOptions& options = {},
                    relational::ExecutionContext* ctx = nullptr);

  /// Checks a caller-parsed statement (compiles it transiently; the plan
  /// cache is not consulted since there is no source text to key on).
  CheckReport CheckParsed(const xq::UpdateStmt& stmt,
                          const CheckOptions& options = {},
                          relational::ExecutionContext* ctx = nullptr);

  /// Checks N updates, merging the step-3 anchor/victim probes of updates
  /// that share a probe shape (same target relation chain) into single
  /// OR-of-predicates queries with per-update result demultiplexing.
  /// Reports align positionally with `updates`; updates are executed in
  /// order. Multi-action statements fall back to the unbatched path.
  ///
  /// Snapshot semantics: all merged probes run against the batch-entry
  /// state, *before* any update of the batch executes. Insert key conflicts
  /// introduced within the batch are still caught at execute time (engine
  /// constraints / duplication consistency), but anchor existence and
  /// delete/replace victim sets are judged against the entry snapshot — if
  /// an earlier update of the same batch moves rows into or out of a later
  /// update's predicate scope, the later translation acts on the stale
  /// victim set instead of re-probing. Batches whose members may interfere
  /// through overlapping predicates should be checked sequentially with
  /// Check, or validated with apply=false first.
  std::vector<CheckReport> CheckBatch(const std::vector<std::string>& updates,
                                      const CheckOptions& options = {},
                                      relational::ExecutionContext* ctx =
                                          nullptr);

  /// Materializes the current view content.
  Result<xml::NodePtr> MaterializeView();

  const view::AnalyzedView& analyzed_view() const { return *view_; }
  const asg::ViewAsg& view_asg() const { return *gv_; }
  const asg::BaseAsg& base_asg() const { return gd_; }
  relational::Database* database() { return db_; }
  /// Seconds the STAR marking procedure took at Create time.
  double marking_seconds() const { return marking_seconds_; }

  /// The prepared-plan cache (tests tune capacity / observe LRU order).
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }

 private:
  UFilter() = default;

  /// Compiles all actions of `stmt` (steps 1-2); fills per-action verdicts
  /// and the step-1/2 compile timings. With `compute_star` false step 2 is
  /// skipped (the run_star=false baseline must not pay STAR anywhere) —
  /// only cache-bypassing callers may skip it, since a cached plan must
  /// serve later run_star=true executions. `ctx` scopes the probe planner's
  /// table-statistics reads (null = root context / live tables).
  void CompileActions(const xq::UpdateStmt& stmt, bool compute_star,
                      std::vector<PreparedAction>* actions,
                      double* step1_seconds, double* step2_seconds,
                      relational::ExecutionContext* ctx = nullptr);

  /// Shared rejection prologue of Execute / TryCheckReadOnly: a plan
  /// prepared against another UFilter / view signature, or one whose parse
  /// failed, yields the rejection report; nullopt means executable.
  std::optional<CheckReport> RejectUnusablePlan(
      const PreparedUpdate& prepared) const;

  /// Full compile of one update text into a fresh plan (no cache).
  std::shared_ptr<PreparedUpdate> CompileUpdate(
      const std::string& update_text, const std::string& normalized,
      bool compute_star, relational::ExecutionContext* ctx = nullptr);

  /// Replays precompiled actions: the per-action step-1/2 verdict gates plus
  /// step 3, with the multi-action atomic savepoint protocol.
  CheckReport ExecuteActions(const std::vector<PreparedAction>& actions,
                             const CheckOptions& options,
                             relational::ExecutionContext* ctx);

  /// Runs one precompiled action (gates + step 3). `injected`, when
  /// non-null, supplies batch-merged probe results to the data checker.
  /// A non-null `read_only_undecided` switches step 3 into read-only
  /// validation (ApplyMode::kReadOnly) and reports whether the validator
  /// punted (in which case the returned report must be discarded).
  CheckReport ExecuteAction(const PreparedAction& action,
                            const CheckOptions& options,
                            relational::ExecutionContext* ctx,
                            const InjectedProbes* injected = nullptr,
                            bool* read_only_undecided = nullptr);

  relational::Database* db_ = nullptr;
  xq::ViewQuery query_;
  std::unique_ptr<view::AnalyzedView> view_;
  std::unique_ptr<asg::ViewAsg> gv_;
  asg::BaseAsg gd_;
  double marking_seconds_ = 0;
  /// view_->Signature(), cached at Create (checked on every Execute).
  uint64_t view_signature_ = 0;
  PlanCache plan_cache_;
};

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_CHECKER_H_
