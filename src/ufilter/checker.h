// U-Filter pipeline facade (Fig. 5): compile a view once (parse, analyze,
// build + mark the ASGs), then check any number of updates through the three
// steps, feeding translatable ones to the translation engine.
//
// This is the library's primary public entry point:
//
//   auto db = ...;                      // relational::Database
//   auto uf = UFilter::Create(db.get(), kBookViewQuery).value();
//   CheckReport r = uf->Check("FOR $b IN document(...)...", {});
//   if (r.outcome == CheckOutcome::kExecuted) { ... }
#ifndef UFILTER_UFILTER_CHECKER_H_
#define UFILTER_UFILTER_CHECKER_H_

#include <memory>
#include <string>
#include <vector>

#include "asg/view_asg.h"
#include "common/result.h"
#include "relational/database.h"
#include "ufilter/datacheck.h"
#include "ufilter/star.h"
#include "view/analyzed_view.h"
#include "view/materializer.h"
#include "xml/node.h"
#include "xquery/parser.h"

namespace ufilter::check {

/// Where the pipeline ended for an update.
enum class CheckOutcome {
  kInvalid,         ///< rejected by step 1 (update validation)
  kUntranslatable,  ///< rejected by step 2 (STAR)
  kDataConflict,    ///< rejected by step 3 (data-driven check)
  kExecuted,        ///< translated (and executed unless apply=false)
};

const char* CheckOutcomeName(CheckOutcome o);

struct CheckOptions {
  DataCheckStrategy strategy = DataCheckStrategy::kOutside;
  /// When false, translation runs but the database is rolled back (dry run).
  bool apply = true;
  /// When false, steps 1-2 run but step 3 / execution is skipped; the report
  /// carries the STAR classification only.
  bool run_data_check = true;
  /// When false, step 2 (STAR) is skipped and the update is treated as
  /// unconditionally translatable — the "Update" (no checking) baseline of
  /// Figs. 13/14. Default on.
  bool run_star = true;
};

/// Full pipeline report for one update.
struct CheckReport {
  CheckOutcome outcome = CheckOutcome::kExecuted;
  /// Rejection reason (invalid / untranslatable / data conflict).
  Status error;
  /// STAR classification (valid once past step 2).
  Translatability star_class = Translatability::kUnconditionallyTranslatable;
  /// Condition attached by STAR for conditionally translatable updates.
  std::string condition;
  /// Executed relational update sequence.
  std::vector<relational::UpdateOp> translation;
  int64_t rows_affected = 0;
  bool zero_tuple_warning = false;
  std::vector<std::string> probes;
  /// Wall-clock seconds spent per step.
  double step1_seconds = 0;
  double step2_seconds = 0;
  double step3_seconds = 0;

  /// One-paragraph human-readable summary.
  std::string Describe() const;
};

/// \brief A compiled U-Filter instance for one view over one database.
class UFilter {
 public:
  /// Parses and analyzes `view_query`, builds both ASGs and runs the STAR
  /// marking procedure. The database must outlive the returned object.
  static Result<std::unique_ptr<UFilter>> Create(
      relational::Database* db, const std::string& view_query);

  /// Checks (and by default executes) one update statement.
  CheckReport Check(const std::string& update_text,
                    const CheckOptions& options = {});
  CheckReport CheckParsed(const xq::UpdateStmt& stmt,
                          const CheckOptions& options = {});

  /// Materializes the current view content.
  Result<xml::NodePtr> MaterializeView();

  const view::AnalyzedView& analyzed_view() const { return *view_; }
  const asg::ViewAsg& view_asg() const { return *gv_; }
  const asg::BaseAsg& base_asg() const { return gd_; }
  relational::Database* database() { return db_; }
  /// Seconds the STAR marking procedure took at Create time.
  double marking_seconds() const { return marking_seconds_; }

 private:
  UFilter() = default;

  /// Runs the three steps for one action of a statement.
  CheckReport CheckAction(const xq::UpdateStmt& stmt,
                          const xq::UpdateAction& action,
                          const CheckOptions& options);

  relational::Database* db_ = nullptr;
  xq::ViewQuery query_;
  std::unique_ptr<view::AnalyzedView> view_;
  std::unique_ptr<asg::ViewAsg> gv_;
  asg::BaseAsg gd_;
  double marking_seconds_ = 0;
};

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_CHECKER_H_
