// Step 1: update validation (Section 4). Checks a bound update against the
// *local* constraints captured in the view ASG: overlap of the update's
// selection predicates with the leaf check annotations, deletability
// (incoming-edge cardinality / NOT NULL), structural conformance and value
// constraints of insert payloads.
#ifndef UFILTER_UFILTER_VALIDATION_H_
#define UFILTER_UFILTER_VALIDATION_H_

#include <vector>

#include "asg/view_asg.h"
#include "common/result.h"
#include "ufilter/update_binding.h"

namespace ufilter::check {

/// Returns OK when the update is valid per the view schema; otherwise an
/// InvalidUpdate status with the violated constraint.
Status ValidateUpdate(const asg::ViewAsg& gv, const BoundUpdate& update);

/// True when the conjunction of check predicates admits at least one value
/// (used for the "does the element ever appear in the view" overlap test —
/// update u5's price > 50 against the view's price < 50 is unsatisfiable).
bool PredicatesSatisfiable(
    const std::vector<relational::CheckPredicate>& preds);

}  // namespace ufilter::check

#endif  // UFILTER_UFILTER_VALIDATION_H_
