#include "obs/metrics.h"

#include <algorithm>

namespace ufilter::obs {
namespace {

// Bucket upper bounds: 100 * 1.3^i, rounded, strictly increasing (the
// rounding never collapses adjacent bounds because the step exceeds 1
// everywhere past 100). Computed once; lookups binary-search this table.
const std::array<uint64_t, kHistogramBuckets - 1>& BucketBounds() {
  static const std::array<uint64_t, kHistogramBuckets - 1> bounds = [] {
    std::array<uint64_t, kHistogramBuckets - 1> b{};
    double bound = 100.0;
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<uint64_t>(bound + 0.5);
      bound *= 1.3;
    }
    return b;
  }();
  return bounds;
}

}  // namespace

uint64_t HistogramBucketBound(size_t i) { return BucketBounds()[i]; }

size_t HistogramBucketFor(uint64_t value) {
  const auto& bounds = BucketBounds();
  // Bucket i holds values in [bounds[i-1], bounds[i]): the first bound
  // strictly greater than the value.
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q >= 1.0) return max;
  if (q < 0.0) q = 0.0;
  // Rank of the requested sample, 1-based; walk buckets until the
  // cumulative count covers it.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count)) + 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      if (i == kHistogramBuckets - 1) return max;  // overflow bucket
      uint64_t lo = i == 0 ? 0 : HistogramBucketBound(i - 1);
      uint64_t hi = HistogramBucketBound(i);
      // Interpolate by the rank's position within the bucket population.
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(buckets[i]);
      uint64_t est =
          lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
      return std::min(est, max);
    }
    seen += buckets[i];
  }
  return max;
}

const char* MetricKindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricSample* FindSample(const RegistrySnapshot& snapshot,
                               const std::string& name) {
  for (const MetricSample& s : snapshot) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == MetricKind::kCounter ? it->second.counter.get()
                                                   : nullptr;
  }
  Entry e;
  e.kind = MetricKind::kCounter;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  metrics_.emplace(name, std::move(e));
  return out;
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == MetricKind::kGauge ? it->second.gauge.get()
                                                 : nullptr;
  }
  Entry e;
  e.kind = MetricKind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  metrics_.emplace(name, std::move(e));
  return out;
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == MetricKind::kHistogram
               ? it->second.histogram.get()
               : nullptr;
  }
  Entry e;
  e.kind = MetricKind::kHistogram;
  e.histogram = std::make_unique<Histogram>();
  Histogram* out = e.histogram.get();
  metrics_.emplace(name, std::move(e));
  return out;
}

void Registry::AddCollector(std::function<void(RegistrySnapshot*)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

RegistrySnapshot Registry::Collect() const {
  RegistrySnapshot out;
  std::vector<std::function<void(RegistrySnapshot*)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(metrics_.size());
    for (const auto& [name, entry] : metrics_) {
      MetricSample s;
      s.name = name;
      s.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          s.value = entry.counter->Value();
          break;
        case MetricKind::kGauge:
          s.value = entry.gauge->Value();
          break;
        case MetricKind::kHistogram:
          s.hist = entry.histogram->Snapshot();
          break;
      }
      out.push_back(std::move(s));
    }
    collectors = collectors_;
  }
  // Collectors run outside the registry lock: they read other subsystems
  // (engine counters, plan cache) whose own locks must not nest under ours.
  for (const auto& fn : collectors) {
    fn(&out);
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace ufilter::obs
