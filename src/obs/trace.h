// Per-check stage tracing. A TraceContext rides one check request from
// net::Server decode through CheckService submit into UFilter::Prepare /
// execute and WAL sync, attributing wall time to a fixed eight-stage
// taxonomy:
//
//   queue_wait      admission-queue residency (push -> worker pop)
//   snapshot_pin    opening + pinning the MVCC read snapshot
//   plan_cache      normalized-text plan-cache lookup
//   compile         full compilation on a plan-cache miss
//   probe           the lock-free read-only U-Filter probe
//   apply           writer-lane execution (probe + mutation)
//   wal_sync        version publication + WAL append/fsync
//   response_write  encoding + writing the response frame
//
// Two outputs, two costs. Stage *histograms* are always on and cost one
// histogram record per span — that is what bench_obs gates at <3%. Full
// *traces* (the per-request span list) are sampled 1-in-M: unsampled
// requests still get span timings recorded into stage totals (needed for
// the slow-check log), but skip the span-vector append; sampled traces
// land in a bounded ring exportable as Chrome trace-event JSON that
// chrome://tracing and Perfetto load directly.
#ifndef UFILTER_OBS_TRACE_H_
#define UFILTER_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace ufilter::obs {

enum class Stage : uint8_t {
  kQueueWait = 0,
  kSnapshotPin = 1,
  kPlanCache = 2,
  kCompile = 3,
  kProbe = 4,
  kApply = 5,
  kWalSync = 6,
  kResponseWrite = 7,
};

inline constexpr size_t kStageCount = 8;

/// Stable stage name used in trace span names, stage histogram metric
/// names (`stage_<name>_ns`) and slow-check-log keys.
const char* StageName(Stage s);

using TraceClock = std::chrono::steady_clock;

/// One timed stage within a request, relative to the context's birth.
struct TraceSpan {
  Stage stage = Stage::kQueueWait;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Dense id of the thread that ran the span; becomes the Chrome trace
  /// `tid`, so spans on one lane render as one track.
  uint32_t lane = 0;
};

/// Dense per-thread lane id (0, 1, 2, ... in first-use order), stable for
/// the thread's lifetime. Used instead of std::thread::id so trace tids
/// are small and deterministic-ish.
uint32_t CurrentThreadLane();

/// \brief The per-request trace state.
///
/// Created by Tracer::Begin (or default-constructed inactive, in which
/// case every recording call is a no-op). Only one thread touches a
/// TraceContext at a time — it is handed off along the request path
/// (reader thread -> worker -> writer thread), never shared.
class TraceContext {
 public:
  TraceContext() = default;

  bool active() const { return active_; }
  bool sampled() const { return sampled_; }
  uint64_t request_id() const { return request_id_; }

  /// When set, the layer that completes the check (CheckService) must NOT
  /// finish the trace; a later layer (net::Server, after response write)
  /// owns the finish. Keeps wal_sync and response_write inside one trace.
  bool defer_finish() const { return defer_finish_; }
  void set_defer_finish(bool v) { defer_finish_ = v; }

  /// Nanoseconds since the context was born.
  uint64_t NowRelNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            TraceClock::now() - born_)
            .count());
  }

  /// Records a completed stage [begin, end) (absolute steady-clock
  /// times), attributed to the calling thread's lane.
  void RecordSpan(Stage stage, TraceClock::time_point begin,
                  TraceClock::time_point end);

  /// Same, with an explicit lane (used for queue-wait, which no single
  /// thread "runs").
  void RecordSpanLane(Stage stage, TraceClock::time_point begin,
                      TraceClock::time_point end, uint32_t lane);

  /// Pre-measured variant for durations timed outside the context.
  void RecordDuration(Stage stage, uint64_t dur_ns);

  /// Total ns attributed to `stage` so far.
  uint64_t StageTotalNs(Stage stage) const {
    return stage_totals_[static_cast<size_t>(stage)];
  }
  const std::array<uint64_t, kStageCount>& stage_totals() const {
    return stage_totals_;
  }

  /// End-to-end latency; set by Tracer::Finish.
  uint64_t total_ns() const { return total_ns_; }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  TraceClock::time_point born() const { return born_; }

 private:
  friend class Tracer;

  uint64_t request_id_ = 0;
  bool active_ = false;
  bool sampled_ = false;
  bool defer_finish_ = false;
  TraceClock::time_point born_{};
  std::array<uint64_t, kStageCount> stage_totals_{};
  uint64_t total_ns_ = 0;
  std::vector<TraceSpan> spans_;
};

/// RAII span: times construction -> destruction into `trace` (no-op when
/// trace is null or inactive — the clock is not even read).
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* trace, Stage stage) : trace_(trace), stage_(stage) {
    if (trace_ != nullptr && trace_->active()) {
      begin_ = TraceClock::now();
    } else {
      trace_ = nullptr;
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->RecordSpan(stage_, begin_, TraceClock::now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceContext* trace_;
  Stage stage_;
  TraceClock::time_point begin_{};
};

/// A finished, sampled trace held in the Tracer's ring.
struct CompletedTrace {
  uint64_t request_id = 0;
  uint64_t total_ns = 0;
  std::vector<TraceSpan> spans;
};

/// \brief Owns the sampling decision and the ring of completed traces.
class Tracer {
 public:
  struct Options {
    /// Sample one full trace out of every `sample_every` requests;
    /// 0 disables full traces entirely (stage histograms stay on).
    uint32_t sample_every = 64;
    /// Completed sampled traces retained (oldest evicted first).
    size_t ring_capacity = 256;
  };

  // Two constructors instead of one defaulted argument: GCC rejects a
  // default argument that needs the nested struct's member initializers
  // before the enclosing class is complete.
  Tracer() : Tracer(Options()) {}
  explicit Tracer(Options options) : options_(options) {}

  /// Starts a trace for a new request. Always active (stage totals are
  /// always accumulated); sampled 1-in-M per options.
  TraceContext Begin(uint64_t request_id);

  /// Seals the trace: fixes total_ns (birth -> now, unless already set)
  /// and, if sampled, pushes it into the ring. Idempotent via active().
  void Finish(TraceContext& trace);

  std::vector<CompletedTrace> Snapshot() const;

  /// Renders the ring as a Chrome trace-event JSON document
  /// ({"traceEvents":[...]} with "ph":"X" complete events, ts/dur in
  /// microseconds). Loadable by chrome://tracing and Perfetto.
  std::string ExportChromeJson() const;

  uint64_t sampled_count() const {
    return sampled_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> sampled_{0};
  mutable std::mutex mu_;
  std::deque<CompletedTrace> ring_;
};

}  // namespace ufilter::obs

#endif  // UFILTER_OBS_TRACE_H_
