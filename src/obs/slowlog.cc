#include "obs/slowlog.h"

#include <chrono>
#include <cinttypes>

namespace ufilter::obs {
namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64Field(std::string* out, const char* key, uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
  *out += buf;
}

}  // namespace

std::string FormatSlowCheckRecord(const SlowCheckRecord& record) {
  std::string out = "{";
  out += "\"event\":\"slow_check\",";
  AppendU64Field(&out, "request_id", record.request_id);
  out += ",\"session\":";
  AppendJsonString(&out, record.session);
  out += ",\"verdict\":\"";
  out += record.verdict;
  out += "\",";
  AppendU64Field(&out, "total_ns", record.total_ns);
  out += ",\"stages\":{";
  for (size_t i = 0; i < kStageCount; ++i) {
    if (i != 0) out += ",";
    out += "\"";
    out += StageName(static_cast<Stage>(i));
    out += "\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, record.stage_ns[i]);
    out += buf;
  }
  out += "},";
  AppendU64Field(&out, "template_hash", record.template_hash);
  out += ",\"from_plan_cache\":";
  out += record.from_plan_cache ? "true" : "false";
  out += ",\"normalized\":";
  AppendJsonString(&out, record.normalized_text);
  out += "}";
  return out;
}

SlowLog::~SlowLog() {
  if (owned_ != nullptr) std::fclose(owned_);
}

void SlowLog::Configure(const SlowLogOptions& options) {
  if (owned_ != nullptr) {
    std::fclose(owned_);
    owned_ = nullptr;
  }
  threshold_ns_ = options.threshold_ns;
  max_per_sec_ = options.max_per_sec;
  stream_ = options.stream;
  if (threshold_ns_ != 0 && !options.path.empty()) {
    owned_ = std::fopen(options.path.c_str(), "a");
    if (owned_ == nullptr) {
      std::fprintf(stderr, "slowlog: cannot open %s, falling back to stderr\n",
                   options.path.c_str());
    }
  }
}

void SlowLog::Log(const SlowCheckRecord& record) {
  if (threshold_ns_ == 0 || record.total_ns < threshold_ns_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t now_sec = std::chrono::duration_cast<std::chrono::seconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
    if (now_sec != window_sec_) {
      window_sec_ = now_sec;
      window_count_ = 0;
    }
    if (max_per_sec_ != 0 && window_count_ >= max_per_sec_) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++window_count_;
  }
  std::string line = FormatSlowCheckRecord(record);
  line.push_back('\n');
  std::FILE* dst = owned_ != nullptr ? owned_
                   : stream_ != nullptr ? stream_
                                        : stderr;
  // One fwrite per record keeps lines whole even with concurrent loggers.
  std::fwrite(line.data(), 1, line.size(), dst);
  std::fflush(dst);
  logged_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ufilter::obs
