#include "obs/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace ufilter::obs {
namespace {

void AppendValueLine(std::string* out, const std::string& name, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
  *out += name;
  *out += buf;
}

}  // namespace

std::string RenderPrometheus(const RegistrySnapshot& snapshot,
                             const std::string& prefix) {
  std::string out;
  char buf[128];
  for (const MetricSample& s : snapshot) {
    const std::string name = prefix + s.name;
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += "# TYPE " + name +
               (s.kind == MetricKind::kCounter ? " counter\n" : " gauge\n");
        AppendValueLine(&out, name, s.value);
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
          cumulative += s.hist.buckets[i];
          if (i + 1 < kHistogramBuckets) {
            // Skip empty tail buckets below the overflow to keep the
            // exposition compact; cumulative counts stay correct because
            // a skipped bucket adds nothing.
            if (s.hist.buckets[i] == 0 && cumulative == 0) continue;
            std::snprintf(buf, sizeof(buf), "{le=\"%" PRIu64 "\"} ",
                          HistogramBucketBound(i));
            out += name + "_bucket" + buf;
          } else {
            out += name + "_bucket{le=\"+Inf\"} ";
          }
          std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", cumulative);
          out += buf;
        }
        AppendValueLine(&out, name + "_sum", s.hist.sum);
        AppendValueLine(&out, name + "_count", s.hist.count);
        break;
      }
    }
  }
  return out;
}

}  // namespace ufilter::obs
