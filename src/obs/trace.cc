#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace ufilter::obs {

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kSnapshotPin:
      return "snapshot_pin";
    case Stage::kPlanCache:
      return "plan_cache";
    case Stage::kCompile:
      return "compile";
    case Stage::kProbe:
      return "probe";
    case Stage::kApply:
      return "apply";
    case Stage::kWalSync:
      return "wal_sync";
    case Stage::kResponseWrite:
      return "response_write";
  }
  return "unknown";
}

uint32_t CurrentThreadLane() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t lane = next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

void TraceContext::RecordSpan(Stage stage, TraceClock::time_point begin,
                              TraceClock::time_point end) {
  RecordSpanLane(stage, begin, end, CurrentThreadLane());
}

void TraceContext::RecordSpanLane(Stage stage, TraceClock::time_point begin,
                                  TraceClock::time_point end, uint32_t lane) {
  if (!active_) return;
  if (end < begin) end = begin;
  uint64_t dur = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
  stage_totals_[static_cast<size_t>(stage)] += dur;
  if (sampled_) {
    TraceSpan span;
    span.stage = stage;
    // Spans can begin before the context (queue-wait starts at the queue
    // push that preceded Tracer::Begin on a racing clock read); clamp.
    span.start_ns = begin <= born_
                        ? 0
                        : static_cast<uint64_t>(
                              std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(begin - born_)
                                  .count());
    span.dur_ns = dur;
    span.lane = lane;
    spans_.push_back(span);
  }
}

void TraceContext::RecordDuration(Stage stage, uint64_t dur_ns) {
  if (!active_) return;
  stage_totals_[static_cast<size_t>(stage)] += dur_ns;
}

TraceContext Tracer::Begin(uint64_t request_id) {
  TraceContext t;
  t.request_id_ = request_id;
  t.active_ = true;
  t.born_ = TraceClock::now();
  if (options_.sample_every > 0) {
    uint64_t n = next_.fetch_add(1, std::memory_order_relaxed);
    t.sampled_ = (n % options_.sample_every) == 0;
    if (t.sampled_) t.spans_.reserve(kStageCount);
  }
  return t;
}

void Tracer::Finish(TraceContext& trace) {
  if (!trace.active_) return;
  trace.active_ = false;
  if (trace.total_ns_ == 0) trace.total_ns_ = trace.NowRelNs();
  if (!trace.sampled_) return;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  CompletedTrace done;
  done.request_id = trace.request_id_;
  done.total_ns = trace.total_ns_;
  done.spans = std::move(trace.spans_);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(done));
  while (ring_.size() > options_.ring_capacity) {
    ring_.pop_front();
  }
}

std::vector<CompletedTrace> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<CompletedTrace>(ring_.begin(), ring_.end());
}

std::string Tracer::ExportChromeJson() const {
  std::vector<CompletedTrace> traces = Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  // Each trace gets its own disjoint time window: span timestamps are
  // relative to the trace's birth, so laying traces end to end (with 1us
  // padding) keeps every thread track overlap-free in the viewer.
  uint64_t base_ns = 0;
  for (const CompletedTrace& t : traces) {
    uint64_t span_end = t.total_ns;
    for (const TraceSpan& s : t.spans) {
      span_end = std::max(span_end, s.start_ns + s.dur_ns);
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"check\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
          "\"args\":{\"request_id\":%llu}}",
          first ? "" : ",", StageName(s.stage),
          static_cast<double>(base_ns + s.start_ns) / 1000.0,
          static_cast<double>(s.dur_ns) / 1000.0, s.lane,
          static_cast<unsigned long long>(t.request_id));
      out += buf;
      first = false;
    }
    base_ns += span_end + 1000;
  }
  out += "]}";
  return out;
}

}  // namespace ufilter::obs
