// Prometheus text-exposition renderer over a RegistrySnapshot. Counters
// and gauges become single samples; histograms become the standard
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`, with
// bucket bounds in nanoseconds (the unit every histogram in this codebase
// records). Metric names are already lower_snake_case, so the only
// transformation is the `ufilter_` prefix.
#ifndef UFILTER_OBS_PROMETHEUS_H_
#define UFILTER_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace ufilter::obs {

std::string RenderPrometheus(const RegistrySnapshot& snapshot,
                             const std::string& prefix = "ufilter_");

}  // namespace ufilter::obs

#endif  // UFILTER_OBS_PROMETHEUS_H_
