// The slow-check log: one structured JSON line per check whose
// end-to-end latency crosses a configurable threshold, carrying the full
// stage breakdown, the normalized-text plan fingerprint, and the verdict —
// enough for an operator to tell a queue-wait problem from a compile storm
// from a slow fsync without reproducing the request.
//
// Records are rate-limited (token window per wall-clock second) so a
// latency incident cannot turn the log itself into the bottleneck;
// suppressed records are counted and surfaced as a metric.
#ifndef UFILTER_OBS_SLOWLOG_H_
#define UFILTER_OBS_SLOWLOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "obs/trace.h"

namespace ufilter::obs {

struct SlowLogOptions {
  /// Checks at or above this end-to-end latency are logged; 0 disables
  /// the slow log entirely.
  uint64_t threshold_ns = 0;
  /// Records emitted per wall-clock second before suppression kicks in.
  uint32_t max_per_sec = 10;
  /// Destination stream; nullptr means stderr. Ignored when `path` is
  /// set. The stream is borrowed, not owned.
  std::FILE* stream = nullptr;
  /// When non-empty, the log is appended to this file (opened by the
  /// SlowLog, owned by it).
  std::string path;
};

/// Everything one slow-check line carries.
struct SlowCheckRecord {
  uint64_t request_id = 0;
  std::string session;
  /// A stable check::CheckOutcomeName() string ("executed", "invalid",
  /// "data conflict", ...).
  const char* verdict = "not run";
  uint64_t total_ns = 0;
  std::array<uint64_t, kStageCount> stage_ns{};
  /// The normalized update text — the plan-cache key, i.e. the plan
  /// fingerprint an operator can correlate across requests.
  std::string normalized_text;
  uint64_t template_hash = 0;
  bool from_plan_cache = false;
};

/// Renders the record as a single JSON line (no trailing newline).
/// Exposed separately so tests can validate the schema without a FILE*.
std::string FormatSlowCheckRecord(const SlowCheckRecord& record);

/// \brief Threshold + rate-limit front end over a FILE* sink.
///
/// Thread-safe; Log() from any worker. Cheap when disabled (one load) or
/// under threshold (one comparison).
class SlowLog {
 public:
  SlowLog() = default;
  ~SlowLog();
  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  /// (Re)configures the sink. Not thread-safe against concurrent Log();
  /// call before the workers start.
  void Configure(const SlowLogOptions& options);

  bool enabled() const { return threshold_ns_ != 0; }
  uint64_t threshold_ns() const { return threshold_ns_; }

  /// Logs the record if total_ns >= threshold and the rate limit allows.
  void Log(const SlowCheckRecord& record);

  uint64_t logged() const { return logged_.load(std::memory_order_relaxed); }
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t threshold_ns_ = 0;
  uint32_t max_per_sec_ = 10;
  std::FILE* stream_ = nullptr;  // borrowed (or stderr)
  std::FILE* owned_ = nullptr;   // opened from options.path
  std::atomic<uint64_t> logged_{0};
  std::atomic<uint64_t> suppressed_{0};
  std::mutex mu_;
  // Rate-limit window state (guarded by mu_).
  int64_t window_sec_ = -1;
  uint32_t window_count_ = 0;
};

}  // namespace ufilter::obs

#endif  // UFILTER_OBS_SLOWLOG_H_
