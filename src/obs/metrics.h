// The metrics registry: named counters, gauges and log-bucketed latency
// histograms shared by every layer of the service (engine, WAL, plan cache,
// check service, network front end). One Registry instance backs one
// service process — the ad-hoc stats structs (CheckServiceStats,
// ServerStats) are *views* over registry-owned counters rather than
// separately maintained copies, so the in-process snapshot, the wire stats
// message and the Prometheus exposition can never disagree.
//
// Design constraints, in order:
//   - recording must be cheap enough for the per-check hot path: counter
//     increments and histogram records are single relaxed atomic RMWs
//     (plus one bounded binary search for the bucket); no locks, no
//     allocation — bench_obs gates the end-to-end overhead at <3%;
//   - histograms must answer percentile queries (p50/p90/p99/max) without
//     storing samples: fixed log-spaced buckets (64 buckets growing by
//     ~1.3x from 100ns, so any quantile estimate is within one bucket
//     ratio of the true sample) plus an exact running max and sum;
//   - snapshots must be mergeable: HistogramSnapshot::Merge is
//     associative and commutative (bucketwise sums, max of maxes), so
//     per-shard or per-epoch snapshots aggregate into fleet-level views.
//
// Registration is get-or-create by name and returns stable pointers: call
// sites hold the Counter*/Histogram* and never touch the registry map
// again. Values computed elsewhere (engine work counters, plan-cache
// tallies, MVCC epochs) join the exposition through collector callbacks
// that append samples at Collect() time.
#ifndef UFILTER_OBS_METRICS_H_
#define UFILTER_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ufilter::obs {

/// A monotonically increasing relaxed-atomic counter. Increments never
/// lose updates under concurrency; reads are approximate while writers
/// run and exact once they quiesce.
class Counter {
 public:
  void Inc() { v_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Undoes a premature increment (e.g. a submission counted before an
  /// admission-queue push that was then refused).
  void Sub(uint64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A last-writer-wins gauge (current value, not a total).
class Gauge {
 public:
  void Set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Histogram shape: bucket 0 is [0, 100); bucket i covers
/// [bound(i-1), bound(i)) with bounds growing by ~1.3x per bucket; the
/// last bucket is the overflow [bound(62), +inf). In nanoseconds the
/// covered range is 100ns .. ~1.2s before overflow — checks, probes,
/// fsyncs and response writes all land inside it.
inline constexpr size_t kHistogramBuckets = 64;

/// Exclusive upper bound of bucket `i` (i < kHistogramBuckets - 1); the
/// overflow bucket has no finite bound. Bounds are strictly increasing.
uint64_t HistogramBucketBound(size_t i);

/// The bucket a recorded value lands in.
size_t HistogramBucketFor(uint64_t value);

/// A point-in-time, plain-value copy of a Histogram — the unit of
/// merging, percentile queries and wire transport.
struct HistogramSnapshot {
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  /// Bucketwise sum; associative and commutative (proven in
  /// tests/common/metrics_test.cc), so shard/epoch snapshots aggregate in
  /// any order.
  void Merge(const HistogramSnapshot& other);

  /// Estimate of the q-quantile (q in [0,1]): linear interpolation inside
  /// the bucket holding the rank-q sample, so the estimate is within one
  /// bucket ratio (~1.3x) of the true sample value. q >= 1 or a rank in
  /// the overflow bucket returns the exact running max; count == 0
  /// returns 0.
  uint64_t ValueAtQuantile(double q) const;

  uint64_t Percentile(int p) const {
    return ValueAtQuantile(static_cast<double>(p) / 100.0);
  }
};

/// \brief Lock-free log-bucketed histogram (the live, writable half).
class Histogram {
 public:
  void Record(uint64_t value) {
    buckets_[HistogramBucketFor(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Approximately consistent while writers run (relaxed reads; a record
  /// racing the snapshot may show in `count` before its bucket or vice
  /// versa), exact once they quiesce.
  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

const char* MetricKindName(MetricKind k);

/// One metric's value at Collect() time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter / gauge value (unused for histograms).
  uint64_t value = 0;
  HistogramSnapshot hist;
};

/// A full registry snapshot, sorted by name: the single source every
/// exposition path (wire message, Prometheus text, stats structs) renders
/// from.
using RegistrySnapshot = std::vector<MetricSample>;

/// Finds a sample by exact name; nullptr when absent.
const MetricSample* FindSample(const RegistrySnapshot& snapshot,
                               const std::string& name);

/// \brief The named-metric registry for one service instance.
///
/// Registration (get-or-create) takes a mutex and returns a pointer that
/// stays valid for the registry's lifetime; the hot path only ever touches
/// the returned objects. A name registered twice returns the same object;
/// re-registering a name under a different kind is a programming error and
/// returns nullptr.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a callback that appends externally computed samples (engine
  /// counters, plan-cache tallies, queue gauges) at Collect() time. The
  /// callback must stay valid for the registry's lifetime and be safe to
  /// call from any thread.
  void AddCollector(std::function<void(RegistrySnapshot*)> fn);

  /// Snapshots every owned metric plus all collector contributions,
  /// sorted by name.
  RegistrySnapshot Collect() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
  std::vector<std::function<void(RegistrySnapshot*)>> collectors_;
};

}  // namespace ufilter::obs

#endif  // UFILTER_OBS_METRICS_H_
