#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace ufilter::net {

namespace {

Status ErrnoStatus(const char* what, int err) {
  return Status::Internal(std::string(what) + ": " + ::strerror(err));
}

/// Remaining whole milliseconds until `deadline`, clamped to [0, 100].
/// Polls wake at least every 100ms so blocked I/O threads notice shutdown
/// (the owning object shuts the fd down, which also wakes the poll).
int PollTimeoutMs(SteadyTime deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, 100));
}

bool Expired(SteadyTime deadline) {
  return std::chrono::steady_clock::now() >= deadline;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

sockaddr_in LoopbackAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, h, &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  return addr;
}

}  // namespace

Result<int> ListenTcp(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr("", port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = ErrnoStatus("bind", errno);
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, backlog) < 0) {
    Status st = ErrnoStatus("listen", errno);
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd p{listen_fd, POLLIN, 0};
  int n = ::poll(&p, 1, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Status::DeadlineExceeded("accept interrupted");
    return ErrnoStatus("poll(accept)", errno);
  }
  if (n == 0) return Status::DeadlineExceeded("no pending connection");
  if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    return Status::Unavailable("listening socket closed");
  }
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Status::DeadlineExceeded("connection vanished before accept");
    }
    return Status::Unavailable(std::string("accept: ") + ::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       std::chrono::milliseconds timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  Status nb = SetNonBlocking(fd, true);
  if (!nb.ok()) {
    CloseFd(fd);
    return nb;
  }
  sockaddr_in addr = LoopbackAddr(host, port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    Status st =
        Status::Unavailable(std::string("connect: ") + ::strerror(errno));
    CloseFd(fd);
    return st;
  }
  if (rc < 0) {
    // In progress: wait for writability, then read the final status.
    pollfd p{fd, POLLOUT, 0};
    int n = ::poll(&p, 1, static_cast<int>(timeout.count()));
    if (n <= 0) {
      CloseFd(fd);
      return Status::Unavailable("connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      Status st = Status::Unavailable(std::string("connect: ") +
                                      ::strerror(err != 0 ? err : errno));
      CloseFd(fd);
      return st;
    }
  }
  Status back = SetNonBlocking(fd, false);
  if (!back.ok()) {
    CloseFd(fd);
    return back;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAll(int fd, const void* data, size_t n, SteadyTime deadline) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    pollfd pf{fd, POLLOUT, 0};
    int rc = ::poll(&pf, 1, PollTimeoutMs(deadline));
    if (rc < 0 && errno != EINTR) return ErrnoStatus("poll(send)", errno);
    if (rc == 0 || (rc < 0 && errno == EINTR)) {
      if (Expired(deadline)) {
        return Status::DeadlineExceeded("send timed out mid-frame");
      }
      continue;
    }
    if ((pf.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (pf.revents & POLLOUT) == 0) {
      return Status::Unavailable("connection closed while sending");
    }
    ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + ::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, void* buf, size_t cap, SteadyTime deadline) {
  while (true) {
    pollfd pf{fd, POLLIN, 0};
    int rc = ::poll(&pf, 1, PollTimeoutMs(deadline));
    if (rc < 0 && errno != EINTR) return ErrnoStatus("poll(recv)", errno);
    if (rc == 0 || (rc < 0 && errno == EINTR)) {
      if (Expired(deadline)) {
        return Status::DeadlineExceeded("recv timed out");
      }
      continue;
    }
    ssize_t r = ::recv(fd, buf, cap, 0);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::Unavailable(std::string("recv: ") + ::strerror(errno));
    }
    if (r == 0) return Status::Unavailable("connection closed by peer");
    return static_cast<size_t>(r);
  }
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace ufilter::net
