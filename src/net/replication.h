// Epoch-stream replication: WAL shipping from a primary to read replicas.
//
// The primary runs a ReplicationSource on its own listen port. A replica
// connects, sends the protocol magic and one kReplSubscribe frame, and the
// source answers with a bootstrap (a kReplSnapshot carrying the full
// published state at some epoch, only when the subscriber starts from
// epoch 0) followed by a live tail of kReplRecords frames — each one a
// batch of WAL record payloads (EncodeWalPayload bytes, exactly what the
// primary's own recovery replays) in strictly increasing epoch order. The
// stream is the WAL: a follower that applies every record is running
// Database::RecoverFrom continuously, so "replica state" and "what the
// primary would recover to" are the same artifact by construction.
//
// The follower side (net::Follower) maintains the subscription: it
// connects, bootstraps or resumes from its own commit epoch, applies each
// epoch through the service's writer lane (serializing with escalated
// check-only traffic; fast-path checks keep reading pinned snapshots), and
// publishes through the normal MVCC path — replication is just another
// writer. On any transport damage it disconnects, backs off with full
// jitter and resubscribes with start_epoch = its current commit epoch, so
// a kill -9, a severed cable or one corrupt frame each cost one reconnect,
// never a re-bootstrap and never a double-applied epoch (applies are
// idempotent for epochs at or below the follower's commit epoch).
//
// Liveness: the source ships an empty kReplRecords as a heartbeat while
// the primary is idle, carrying the primary's epoch and WAL byte counts;
// the follower computes its lag gauges (replication_lag_epochs / _bytes /
// _ms) from those on every frame and treats a silent connection as dead
// after `dead_after`. Acks (kReplAck, the follower's applied epoch) flow
// back on the same socket and surface on the primary as repl_acked_epoch.
#ifndef UFILTER_NET_REPLICATION_H_
#define UFILTER_NET_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "relational/database.h"
#include "relational/wal.h"
#include "service/check_service.h"

namespace ufilter::net {

struct ReplicationSourceOptions {
  /// Replication listen port; 0 = kernel-assigned (read back via port()).
  uint16_t port = 0;
  int backlog = 16;
  /// The primary's WAL file (must match the database's durability config);
  /// the source tails this file — replication requires durability on.
  std::string wal_path;
  /// How often each subscriber thread polls the WAL for new records.
  std::chrono::milliseconds poll_interval{20};
  /// Idle heartbeat cadence (empty kReplRecords with fresh lag counters).
  std::chrono::milliseconds heartbeat_interval{200};
  /// Per-batch payload cap; a subscriber may request a smaller one.
  uint64_t max_batch_bytes = 4u << 20;
};

/// Per-source counters (registry views; scrape-friendly).
struct ReplicationSourceStats {
  uint64_t subscribers = 0;         ///< currently connected
  uint64_t snapshots_shipped = 0;   ///< bootstrap kReplSnapshot frames
  uint64_t records_shipped = 0;     ///< WAL records sent (sum over batches)
  uint64_t bytes_shipped = 0;       ///< payload bytes of those records
  uint64_t acked_epoch = 0;         ///< highest epoch any subscriber acked
  uint64_t protocol_errors = 0;     ///< subscriptions dropped for bad frames
};

/// \brief Primary-side replication feed: accepts subscribers, streams WAL.
class ReplicationSource {
 public:
  /// Binds and starts the accept loop. `db` must have durability enabled
  /// on `options.wal_path` and must outlive the source. Metrics register
  /// in `registry` (must outlive the source too).
  static Result<std::unique_ptr<ReplicationSource>> Start(
      relational::Database* db, obs::Registry* registry,
      ReplicationSourceOptions options);
  ~ReplicationSource();

  ReplicationSource(const ReplicationSource&) = delete;
  ReplicationSource& operator=(const ReplicationSource&) = delete;

  uint16_t port() const { return port_; }
  ReplicationSourceStats stats() const;

  /// Stops accepting, severs every subscriber, joins all threads.
  /// Idempotent; also the destructor's path.
  void Stop();

 private:
  struct Subscriber {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  ReplicationSource(relational::Database* db, obs::Registry* registry,
                    ReplicationSourceOptions options, int listen_fd,
                    uint16_t port);

  void AcceptLoop();
  /// One subscriber's whole life: handshake, bootstrap, tail, acks.
  void ServeSubscriber(Subscriber* sub);
  Status ServeSubscriberImpl(int fd);
  void ReapFinished();

  relational::Database* db_;
  ReplicationSourceOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::thread accept_thread_;
  std::atomic<bool> stop_{false};

  std::mutex subs_mu_;
  std::vector<std::unique_ptr<Subscriber>> subs_;

  obs::Gauge* subscribers_;
  obs::Counter* snapshots_shipped_;
  obs::Counter* records_shipped_;
  obs::Counter* bytes_shipped_;
  obs::Gauge* acked_epoch_;
  obs::Counter* protocol_errors_;
};

struct FollowerOptions {
  /// The primary's replication endpoint.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::chrono::milliseconds connect_timeout{1000};
  /// Reconnect backoff (full jitter, like net::Client).
  std::chrono::milliseconds backoff_base{20};
  std::chrono::milliseconds backoff_max{500};
  uint64_t jitter_seed = 0;  ///< 0 = random_device
  /// A connection with no frame (records or heartbeat) for this long is
  /// declared dead and rebuilt. Must exceed the source's heartbeat
  /// interval with margin.
  std::chrono::milliseconds dead_after{2000};
  /// Batch cap requested from the source (0 = source default).
  uint64_t max_batch_bytes = 0;
  /// When non-empty, every received bootstrap snapshot is persisted here
  /// as a normal checkpoint file (WriteFileAtomicSynced), so a follower
  /// restart recovers locally and resumes from its own epoch instead of
  /// re-bootstrapping over the wire.
  std::string checkpoint_path;
};

/// Follower-side counters (registry views).
struct FollowerStats {
  uint64_t connects = 0;           ///< successful subscriptions (1 = never
                                   ///< reconnected)
  uint64_t snapshots_loaded = 0;   ///< wire bootstraps applied
  uint64_t records_applied = 0;    ///< epochs applied (idempotent skips
                                   ///< counted separately)
  uint64_t bytes_applied = 0;      ///< payload bytes of applied records
  uint64_t stale_skipped = 0;      ///< resume duplicates (epoch <= local)
  uint64_t lag_epochs = 0;
  uint64_t lag_bytes = 0;
  uint64_t lag_ms = 0;
};

/// \brief Replica-side subscription: applies the primary's epoch stream.
class Follower {
 public:
  /// Starts the subscription thread. All pointers must outlive the
  /// follower. Applies go through `service` (the writer lane); lag and
  /// apply metrics register in the service's registry.
  static std::unique_ptr<Follower> Start(service::CheckService* service,
                                         relational::Database* db,
                                         FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Highest epoch applied (or verified already-present) on this replica.
  uint64_t applied_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }

  /// Blocks until applied_epoch() >= epoch or the timeout expires.
  bool WaitForEpoch(uint64_t epoch, std::chrono::milliseconds timeout) const;

  FollowerStats stats() const;

  /// OK while the stream is healthy (reconnects are healthy); a non-OK
  /// status means an apply failed — the replica's state can no longer be
  /// trusted to converge and the follower has stopped.
  Status status() const;

  /// Disconnects and joins the subscription thread. Idempotent.
  void Stop();

 private:
  Follower(service::CheckService* service, relational::Database* db,
           FollowerOptions options);

  void Run();
  /// One connection: subscribe, then apply frames until damage. The
  /// returned status is why the connection ended (never OK).
  Status RunOnce();
  Status HandleSnapshot(const std::string& payload);
  Status HandleRecords(const std::string& payload);
  std::chrono::milliseconds BackoffDelay(int attempt);

  service::CheckService* service_;
  relational::Database* db_;
  FollowerOptions options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> fd_{-1};
  std::atomic<uint64_t> applied_epoch_{0};
  std::mt19937_64 jitter_;
  /// The last instant the replica was fully caught up (lag_epochs == 0);
  /// replication_lag_ms measures from here while behind.
  std::chrono::steady_clock::time_point caught_up_at_;

  mutable std::mutex status_mu_;
  Status fatal_;  ///< non-OK once an apply failed (stream stopped)

  obs::Counter* connects_;
  obs::Counter* snapshots_loaded_;
  obs::Counter* records_applied_;
  obs::Counter* bytes_applied_;
  obs::Counter* stale_skipped_;
  obs::Gauge* lag_epochs_;
  obs::Gauge* lag_bytes_;
  obs::Gauge* lag_ms_;
  obs::Histogram* apply_ns_;
};

}  // namespace ufilter::net

#endif  // UFILTER_NET_REPLICATION_H_
