#include "net/frame.h"

#include <algorithm>
#include <cstring>

#include "relational/wal.h"  // Crc32: the WAL's framing checksum, reused

namespace ufilter::net {

namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Strict bounded reader over a payload; any underflow poisons it.
class Cursor {
 public:
  explicit Cursor(const std::string& payload) : p_(payload) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(p_[pos_++]);
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(p_[pos_++])) << (8 * i);
    }
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(p_[pos_++])) << (8 * i);
    }
    return v;
  }

  std::string Str() {
    uint32_t n = U32();
    if (!ok_ || !Need(n)) return std::string();
    std::string s = p_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  /// Trailing garbage is as suspect as a short payload.
  bool AtEnd() const { return ok_ && pos_ == p_.size(); }

 private:
  bool Need(size_t n) {
    if (!ok_ || p_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& p_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return Status::ParseError(std::string("malformed ") + what + " message");
}

}  // namespace

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kExecuted:
      return "executed";
    case Verdict::kInvalid:
      return "invalid";
    case Verdict::kUntranslatable:
      return "untranslatable";
    case Verdict::kDataConflict:
      return "data-conflict";
    case Verdict::kNotRun:
      return "not-run";
    case Verdict::kDeadlineExceeded:
      return "deadline-exceeded";
    case Verdict::kShed:
      return "shed";
    case Verdict::kDraining:
      return "draining";
    case Verdict::kError:
      return "error";
    case Verdict::kRedirectToPrimary:
      return "redirect-to-primary";
  }
  return "?";
}

bool VerdictIsRetrySafe(Verdict v) {
  return v == Verdict::kShed || v == Verdict::kDraining ||
         v == Verdict::kDeadlineExceeded;
}

std::string EncodeCheckRequest(const CheckRequestMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kCheckRequest));
  PutU64(&out, msg.request_id);
  PutU32(&out, msg.deadline_ms);
  PutU8(&out, msg.apply ? 1 : 0);
  PutU8(&out, msg.strategy);
  PutString(&out, msg.update_text);
  return out;
}

std::string EncodeCheckResponse(const CheckResponseMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kCheckResponse));
  PutU64(&out, msg.request_id);
  PutU8(&out, static_cast<uint8_t>(msg.verdict));
  PutU8(&out, msg.status_code);
  PutU64(&out, static_cast<uint64_t>(msg.rows_affected));
  PutU32(&out, msg.retry_after_ms);
  PutString(&out, msg.message);
  return out;
}

std::string EncodePing(uint64_t request_id) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kPing));
  PutU64(&out, request_id);
  return out;
}

std::string EncodePong(uint64_t request_id) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kPong));
  PutU64(&out, request_id);
  return out;
}

std::string EncodeStatsRequest() {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kStatsRequest));
  return out;
}

std::string EncodeStatsResponse(const StatsMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kStatsResponse));
  PutU64(&out, msg.submitted);
  PutU64(&out, msg.completed);
  PutU64(&out, msg.fast_path);
  PutU64(&out, msg.writer_lane);
  PutU64(&out, msg.shed);
  PutU64(&out, msg.deadline_expired);
  PutU64(&out, msg.queue_high_water);
  PutU64(&out, msg.commit_epoch);
  PutU64(&out, msg.wal_records);
  PutU64(&out, msg.connections_accepted);
  PutU64(&out, msg.protocol_errors);
  PutU64(&out, msg.draining_rejects);
  PutU64(&out, msg.queue_wait_p50_ns);
  PutU64(&out, msg.queue_wait_p99_ns);
  return out;
}

std::string EncodeMetricsRequest() {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kMetricsRequest));
  return out;
}

std::string EncodeMetricsResponse(const MetricsMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kMetricsResponse));
  PutU32(&out, static_cast<uint32_t>(msg.metrics.size()));
  for (const WireMetric& m : msg.metrics) {
    PutString(&out, m.name);
    PutU8(&out, m.kind);
    PutU64(&out, m.value);
    PutU64(&out, m.hist_count);
    PutU64(&out, m.hist_sum);
    PutU64(&out, m.hist_max);
    PutU32(&out, static_cast<uint32_t>(m.hist_buckets.size()));
    for (const auto& [idx, count] : m.hist_buckets) {
      PutU8(&out, idx);
      PutU64(&out, count);
    }
  }
  return out;
}

const WireMetric* MetricsMsg::Find(const std::string& name) const {
  for (const WireMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

MetricsMsg MetricsFromSnapshot(const obs::RegistrySnapshot& snapshot) {
  MetricsMsg msg;
  msg.metrics.reserve(snapshot.size());
  for (const obs::MetricSample& s : snapshot) {
    WireMetric m;
    m.name = s.name;
    m.kind = static_cast<uint8_t>(s.kind);
    m.value = s.value;
    if (s.kind == obs::MetricKind::kHistogram) {
      m.hist_count = s.hist.count;
      m.hist_sum = s.hist.sum;
      m.hist_max = s.hist.max;
      for (size_t i = 0; i < obs::kHistogramBuckets; ++i) {
        if (s.hist.buckets[i] != 0) {
          m.hist_buckets.emplace_back(static_cast<uint8_t>(i),
                                      s.hist.buckets[i]);
        }
      }
    }
    msg.metrics.push_back(std::move(m));
  }
  return msg;
}

obs::RegistrySnapshot SnapshotFromMetrics(const MetricsMsg& msg) {
  obs::RegistrySnapshot out;
  out.reserve(msg.metrics.size());
  for (const WireMetric& m : msg.metrics) {
    obs::MetricSample s;
    s.name = m.name;
    s.kind = static_cast<obs::MetricKind>(m.kind);
    s.value = m.value;
    if (s.kind == obs::MetricKind::kHistogram) {
      s.hist.count = m.hist_count;
      s.hist.sum = m.hist_sum;
      s.hist.max = m.hist_max;
      for (const auto& [idx, count] : m.hist_buckets) {
        s.hist.buckets[idx] = count;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

Result<MsgType> PeekType(const std::string& payload) {
  if (payload.empty()) return Status::ParseError("empty message payload");
  uint8_t t = static_cast<uint8_t>(payload[0]);
  if (t < 1 || t > kMaxMsgType) {
    return Status::ParseError("unknown message type " + std::to_string(t));
  }
  return static_cast<MsgType>(t);
}

Result<CheckRequestMsg> DecodeCheckRequest(const std::string& payload) {
  Cursor c(payload);
  if (c.U8() != static_cast<uint8_t>(MsgType::kCheckRequest)) {
    return Malformed("check-request");
  }
  CheckRequestMsg msg;
  msg.request_id = c.U64();
  msg.deadline_ms = c.U32();
  msg.apply = c.U8() != 0;
  msg.strategy = c.U8();
  msg.update_text = c.Str();
  if (!c.AtEnd()) return Malformed("check-request");
  if (msg.strategy > 2) return Malformed("check-request");
  return msg;
}

Result<CheckResponseMsg> DecodeCheckResponse(const std::string& payload) {
  Cursor c(payload);
  if (c.U8() != static_cast<uint8_t>(MsgType::kCheckResponse)) {
    return Malformed("check-response");
  }
  CheckResponseMsg msg;
  msg.request_id = c.U64();
  uint8_t verdict = c.U8();
  msg.status_code = c.U8();
  msg.rows_affected = static_cast<int64_t>(c.U64());
  msg.retry_after_ms = c.U32();
  msg.message = c.Str();
  if (!c.AtEnd()) return Malformed("check-response");
  if (verdict > static_cast<uint8_t>(Verdict::kRedirectToPrimary)) {
    return Malformed("check-response");
  }
  msg.verdict = static_cast<Verdict>(verdict);
  return msg;
}

Result<uint64_t> DecodePingPong(const std::string& payload) {
  Cursor c(payload);
  uint8_t t = c.U8();
  if (t != static_cast<uint8_t>(MsgType::kPing) &&
      t != static_cast<uint8_t>(MsgType::kPong)) {
    return Malformed("ping/pong");
  }
  uint64_t id = c.U64();
  if (!c.AtEnd()) return Malformed("ping/pong");
  return id;
}

Result<StatsMsg> DecodeStatsResponse(const std::string& payload) {
  Cursor c(payload);
  if (c.U8() != static_cast<uint8_t>(MsgType::kStatsResponse)) {
    return Malformed("stats-response");
  }
  StatsMsg msg;
  msg.submitted = c.U64();
  msg.completed = c.U64();
  msg.fast_path = c.U64();
  msg.writer_lane = c.U64();
  msg.shed = c.U64();
  msg.deadline_expired = c.U64();
  msg.queue_high_water = c.U64();
  msg.commit_epoch = c.U64();
  msg.wal_records = c.U64();
  msg.connections_accepted = c.U64();
  msg.protocol_errors = c.U64();
  msg.draining_rejects = c.U64();
  msg.queue_wait_p50_ns = c.U64();
  msg.queue_wait_p99_ns = c.U64();
  if (!c.AtEnd()) return Malformed("stats-response");
  return msg;
}

Result<MetricsMsg> DecodeMetricsResponse(const std::string& payload) {
  Cursor c(payload);
  if (c.U8() != static_cast<uint8_t>(MsgType::kMetricsResponse)) {
    return Malformed("metrics-response");
  }
  MetricsMsg msg;
  uint32_t n = c.U32();
  for (uint32_t i = 0; i < n && c.ok(); ++i) {
    WireMetric m;
    m.name = c.Str();
    m.kind = c.U8();
    m.value = c.U64();
    m.hist_count = c.U64();
    m.hist_sum = c.U64();
    m.hist_max = c.U64();
    uint32_t buckets = c.U32();
    for (uint32_t b = 0; b < buckets && c.ok(); ++b) {
      uint8_t idx = c.U8();
      uint64_t count = c.U64();
      // A bucket index past the fixed histogram shape is corruption, not a
      // future extension — SnapshotFromMetrics would index out of bounds.
      if (idx >= static_cast<uint8_t>(obs::kHistogramBuckets)) {
        return Malformed("metrics-response");
      }
      m.hist_buckets.emplace_back(idx, count);
    }
    if (m.kind > 2) return Malformed("metrics-response");
    msg.metrics.push_back(std::move(m));
  }
  if (!c.AtEnd()) return Malformed("metrics-response");
  return msg;
}

std::string EncodeReplSubscribe(const ReplSubscribeMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kReplSubscribe));
  PutU64(&out, msg.start_epoch);
  PutU64(&out, msg.max_batch_bytes);
  return out;
}

Result<ReplSubscribeMsg> DecodeReplSubscribe(const std::string& payload) {
  Cursor c(payload);
  if (c.U8() != static_cast<uint8_t>(MsgType::kReplSubscribe)) {
    return Malformed("repl-subscribe");
  }
  ReplSubscribeMsg msg;
  msg.start_epoch = c.U64();
  msg.max_batch_bytes = c.U64();
  if (!c.AtEnd()) return Malformed("repl-subscribe");
  return msg;
}

std::string EncodeReplSnapshot(const ReplSnapshotMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kReplSnapshot));
  PutU64(&out, msg.epoch);
  PutString(&out, msg.state_payload);
  return out;
}

Result<ReplSnapshotMsg> DecodeReplSnapshot(const std::string& payload) {
  Cursor c(payload);
  if (c.U8() != static_cast<uint8_t>(MsgType::kReplSnapshot)) {
    return Malformed("repl-snapshot");
  }
  ReplSnapshotMsg msg;
  msg.epoch = c.U64();
  msg.state_payload = c.Str();
  if (!c.AtEnd()) return Malformed("repl-snapshot");
  return msg;
}

std::string EncodeReplRecords(const ReplRecordsMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kReplRecords));
  PutU64(&out, msg.primary_epoch);
  PutU64(&out, msg.primary_wal_bytes);
  PutU64(&out, msg.shipped_wal_bytes);
  PutU32(&out, static_cast<uint32_t>(msg.records.size()));
  for (const std::string& r : msg.records) PutString(&out, r);
  return out;
}

Result<ReplRecordsMsg> DecodeReplRecords(const std::string& payload) {
  Cursor c(payload);
  if (c.U8() != static_cast<uint8_t>(MsgType::kReplRecords)) {
    return Malformed("repl-records");
  }
  ReplRecordsMsg msg;
  msg.primary_epoch = c.U64();
  msg.primary_wal_bytes = c.U64();
  msg.shipped_wal_bytes = c.U64();
  uint32_t n = c.U32();
  msg.records.reserve(std::min<uint32_t>(n, 1024));
  for (uint32_t i = 0; i < n && c.ok(); ++i) {
    msg.records.push_back(c.Str());
  }
  if (!c.AtEnd()) return Malformed("repl-records");
  return msg;
}

std::string EncodeReplAck(const ReplAckMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kReplAck));
  PutU64(&out, msg.applied_epoch);
  return out;
}

Result<ReplAckMsg> DecodeReplAck(const std::string& payload) {
  Cursor c(payload);
  if (c.U8() != static_cast<uint8_t>(MsgType::kReplAck)) {
    return Malformed("repl-ack");
  }
  ReplAckMsg msg;
  msg.applied_epoch = c.U64();
  if (!c.AtEnd()) return Malformed("repl-ack");
  return msg;
}

std::string FramePayload(const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderLen + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, relational::Crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

Result<std::optional<std::string>> FrameReader::Next() {
  if (magic_pending_) {
    if (buf_.size() - pos_ < kNetMagicLen) return std::optional<std::string>();
    if (::memcmp(buf_.data() + pos_, kNetMagic, kNetMagicLen) != 0) {
      return Status::ParseError("bad connection magic");
    }
    pos_ += kNetMagicLen;
    magic_pending_ = false;
  }
  if (buf_.size() - pos_ < kFrameHeaderLen) {
    Compact();
    return std::optional<std::string>();
  }
  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  uint32_t len = 0;
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(h[i]) << (8 * i);
    crc |= static_cast<uint32_t>(h[4 + i]) << (8 * i);
  }
  if (len > max_frame_) {
    return Status::ParseError("frame length " + std::to_string(len) +
                              " exceeds limit " + std::to_string(max_frame_) +
                              " (corrupt length prefix?)");
  }
  if (buf_.size() - pos_ < kFrameHeaderLen + len) {
    return std::optional<std::string>();  // torn mid-frame: need more bytes
  }
  std::string payload = buf_.substr(pos_ + kFrameHeaderLen, len);
  if (relational::Crc32(payload.data(), payload.size()) != crc) {
    return Status::ParseError("frame CRC mismatch");
  }
  pos_ += kFrameHeaderLen + len;
  Compact();
  return std::optional<std::string>(std::move(payload));
}

}  // namespace ufilter::net
