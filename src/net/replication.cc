#include "net/replication.h"

#include <algorithm>
#include <random>
#include <utility>

namespace ufilter::net {

namespace {

// Bound on writing one frame to a subscriber / one ack to the source; a
// peer that cannot take bytes within this window is treated as gone.
constexpr std::chrono::milliseconds kWriteTimeout{5000};
// Bound on the subscribe handshake (connect -> first frame).
constexpr std::chrono::milliseconds kHandshakeTimeout{5000};

std::chrono::steady_clock::time_point Deadline(std::chrono::milliseconds d) {
  return std::chrono::steady_clock::now() + d;
}

}  // namespace

// ---------------------------------------------------------------------------
// ReplicationSource
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ReplicationSource>> ReplicationSource::Start(
    relational::Database* db, obs::Registry* registry,
    ReplicationSourceOptions options) {
  if (options.wal_path.empty()) {
    return Status::InvalidArgument(
        "replication source needs a WAL to tail (wal_path is empty)");
  }
  if (!db->durability_enabled()) {
    return Status::InvalidArgument(
        "replication source requires durability: the epoch stream *is* the "
        "WAL");
  }
  auto listen = ListenTcp(options.port, options.backlog);
  UFILTER_RETURN_NOT_OK(listen.status());
  auto port = LocalPort(*listen);
  if (!port.ok()) {
    CloseFd(*listen);
    return port.status();
  }
  std::unique_ptr<ReplicationSource> src(new ReplicationSource(
      db, registry, std::move(options), *listen, *port));
  src->accept_thread_ = std::thread([s = src.get()] { s->AcceptLoop(); });
  return src;
}

ReplicationSource::ReplicationSource(relational::Database* db,
                                     obs::Registry* registry,
                                     ReplicationSourceOptions options,
                                     int listen_fd, uint16_t port)
    : db_(db),
      options_(std::move(options)),
      listen_fd_(listen_fd),
      port_(port),
      subscribers_(registry->GetGauge("repl_subscribers")),
      snapshots_shipped_(registry->GetCounter("repl_snapshots_shipped")),
      records_shipped_(registry->GetCounter("repl_records_shipped")),
      bytes_shipped_(registry->GetCounter("repl_bytes_shipped")),
      acked_epoch_(registry->GetGauge("repl_acked_epoch")),
      protocol_errors_(registry->GetCounter("repl_protocol_errors")) {}

ReplicationSource::~ReplicationSource() { Stop(); }

ReplicationSourceStats ReplicationSource::stats() const {
  ReplicationSourceStats s;
  s.subscribers = subscribers_->Value();
  s.snapshots_shipped = snapshots_shipped_->Value();
  s.records_shipped = records_shipped_->Value();
  s.bytes_shipped = bytes_shipped_->Value();
  s.acked_epoch = acked_epoch_->Value();
  s.protocol_errors = protocol_errors_->Value();
  return s;
}

void ReplicationSource::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto fd = AcceptWithTimeout(listen_fd_, /*timeout_ms=*/100);
    if (!fd.ok()) {
      if (fd.status().code() == StatusCode::kDeadlineExceeded) {
        ReapFinished();
        continue;
      }
      break;  // listening socket shut down
    }
    auto sub = std::make_unique<Subscriber>();
    sub->fd = *fd;
    Subscriber* raw = sub.get();
    {
      std::lock_guard<std::mutex> lock(subs_mu_);
      subs_.push_back(std::move(sub));
    }
    raw->thread = std::thread([this, raw] { ServeSubscriber(raw); });
  }
}

void ReplicationSource::ReapFinished() {
  std::vector<std::unique_ptr<Subscriber>> done;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto it = subs_.begin(); it != subs_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        done.push_back(std::move(*it));
        it = subs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& sub : done) {
    if (sub->thread.joinable()) sub->thread.join();
    CloseFd(sub->fd);
  }
}

void ReplicationSource::ServeSubscriber(Subscriber* sub) {
  subscribers_->Set(subscribers_->Value() + 1);
  Status st = ServeSubscriberImpl(sub->fd);
  if (st.code() == StatusCode::kParseError) protocol_errors_->Inc();
  subscribers_->Set(subscribers_->Value() - 1);
  ShutdownFd(sub->fd);
  sub->done.store(true, std::memory_order_release);
}

Status ReplicationSource::ServeSubscriberImpl(int fd) {
  // Handshake: the magic preamble plus exactly one kReplSubscribe frame.
  FrameReader frames(/*expect_magic=*/true, kReplMaxFrameBytes);
  auto handshake_deadline = Deadline(kHandshakeTimeout);
  std::string first;
  char buf[65536];
  while (true) {
    auto got = RecvSome(fd, buf, sizeof(buf), handshake_deadline);
    UFILTER_RETURN_NOT_OK(got.status());
    frames.Feed(buf, *got);
    auto next = frames.Next();
    UFILTER_RETURN_NOT_OK(next.status());
    if (next->has_value()) {
      first = *std::move(*next);
      break;
    }
  }
  auto type = PeekType(first);
  UFILTER_RETURN_NOT_OK(type.status());
  if (*type != MsgType::kReplSubscribe) {
    return Status::ParseError("replication handshake: expected subscribe");
  }
  auto sub = DecodeReplSubscribe(first);
  UFILTER_RETURN_NOT_OK(sub.status());

  uint64_t batch_cap = options_.max_batch_bytes;
  if (sub->max_batch_bytes > 0) {
    batch_cap = std::min(batch_cap, sub->max_batch_bytes);
  }

  // Bootstrap: a subscriber starting from nothing gets the full published
  // state at one pinned epoch; everyone else resumes from their own epoch
  // and receives only the WAL suffix past it.
  uint64_t resume_epoch = sub->start_epoch;
  if (sub->start_epoch == 0) {
    ReplSnapshotMsg snap_msg;
    {
      auto snapshot = db_->OpenSnapshot();
      snap_msg.epoch = snapshot->epoch();
      snap_msg.state_payload =
          relational::EncodeDatabaseState(db_->schema(), *snapshot);
    }
    std::string frame = FramePayload(EncodeReplSnapshot(snap_msg));
    UFILTER_RETURN_NOT_OK(
        SendAll(fd, frame.data(), frame.size(), Deadline(kWriteTimeout)));
    snapshots_shipped_->Inc();
    resume_epoch = snap_msg.epoch;
  }

  relational::WalTailer tailer(options_.wal_path);
  auto last_send = std::chrono::steady_clock::now();
  bool sent_anything = false;
  while (!stop_.load(std::memory_order_acquire)) {
    // Make every record staged by the group-commit buffer visible to the
    // tailer; the fsync schedule is untouched (Flush, not Sync).
    UFILTER_RETURN_NOT_OK(db_->FlushWalToFile());
    auto polled = tailer.Poll(batch_cap);
    UFILTER_RETURN_NOT_OK(polled.status());

    ReplRecordsMsg msg;
    uint64_t batch_bytes = 0;
    for (auto& rec : *polled) {
      if (rec.epoch <= resume_epoch) continue;  // subscriber already has it
      resume_epoch = rec.epoch;
      batch_bytes += rec.payload.size();
      msg.records.push_back(std::move(rec.payload));
    }

    auto now = std::chrono::steady_clock::now();
    bool heartbeat_due =
        !sent_anything || now - last_send >= options_.heartbeat_interval;
    if (!msg.records.empty() || heartbeat_due) {
      msg.primary_epoch = db_->commit_epoch();
      msg.primary_wal_bytes = tailer.known_file_bytes();
      msg.shipped_wal_bytes = tailer.offset();
      std::string frame = FramePayload(EncodeReplRecords(msg));
      UFILTER_RETURN_NOT_OK(
          SendAll(fd, frame.data(), frame.size(), Deadline(kWriteTimeout)));
      records_shipped_->Add(msg.records.size());
      bytes_shipped_->Add(batch_bytes);
      last_send = now;
      sent_anything = true;
    }

    // Drain any acks the follower pushed back (non-blocking-ish: a 1ms
    // recv window per iteration).
    while (true) {
      auto got = RecvSome(fd, buf, sizeof(buf),
                          Deadline(std::chrono::milliseconds(1)));
      if (!got.ok()) {
        if (got.status().code() == StatusCode::kDeadlineExceeded) break;
        return got.status();  // subscriber gone
      }
      frames.Feed(buf, *got);
      while (true) {
        auto next = frames.Next();
        UFILTER_RETURN_NOT_OK(next.status());
        if (!next->has_value()) break;
        auto t = PeekType(**next);
        UFILTER_RETURN_NOT_OK(t.status());
        if (*t != MsgType::kReplAck) {
          return Status::ParseError(
              "replication stream: follower sent a non-ack frame");
        }
        auto ack = DecodeReplAck(**next);
        UFILTER_RETURN_NOT_OK(ack.status());
        if (ack->applied_epoch > acked_epoch_->Value()) {
          acked_epoch_->Set(ack->applied_epoch);
        }
      }
    }

    if (msg.records.empty()) {
      std::this_thread::sleep_for(options_.poll_interval);
    }
  }
  return Status::OK();
}

void ReplicationSource::Stop() {
  if (stop_.exchange(true)) {
    // Idempotent: the first caller did (or is doing) the teardown.
    if (accept_thread_.joinable()) return;
  }
  ShutdownFd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs.swap(subs_);
  }
  for (auto& sub : subs) {
    ShutdownFd(sub->fd);
    if (sub->thread.joinable()) sub->thread.join();
    CloseFd(sub->fd);
  }
  if (listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Follower
// ---------------------------------------------------------------------------

std::unique_ptr<Follower> Follower::Start(service::CheckService* service,
                                          relational::Database* db,
                                          FollowerOptions options) {
  std::unique_ptr<Follower> f(
      new Follower(service, db, std::move(options)));
  f->thread_ = std::thread([raw = f.get()] { raw->Run(); });
  return f;
}

Follower::Follower(service::CheckService* service, relational::Database* db,
                   FollowerOptions options)
    : service_(service),
      db_(db),
      options_(std::move(options)),
      jitter_(options_.jitter_seed != 0 ? options_.jitter_seed
                                        : std::random_device{}()),
      caught_up_at_(std::chrono::steady_clock::now()) {
  obs::Registry& reg = service_->registry();
  connects_ = reg.GetCounter("repl_connects");
  snapshots_loaded_ = reg.GetCounter("repl_snapshots_loaded");
  records_applied_ = reg.GetCounter("repl_records_applied");
  bytes_applied_ = reg.GetCounter("repl_bytes_applied");
  stale_skipped_ = reg.GetCounter("repl_stale_skipped");
  lag_epochs_ = reg.GetGauge("replication_lag_epochs");
  lag_bytes_ = reg.GetGauge("replication_lag_bytes");
  lag_ms_ = reg.GetGauge("replication_lag_ms");
  apply_ns_ = reg.GetHistogram("repl_apply_ns");
  applied_epoch_.store(db_->commit_epoch(), std::memory_order_release);
}

Follower::~Follower() { Stop(); }

FollowerStats Follower::stats() const {
  FollowerStats s;
  s.connects = connects_->Value();
  s.snapshots_loaded = snapshots_loaded_->Value();
  s.records_applied = records_applied_->Value();
  s.bytes_applied = bytes_applied_->Value();
  s.stale_skipped = stale_skipped_->Value();
  s.lag_epochs = lag_epochs_->Value();
  s.lag_bytes = lag_bytes_->Value();
  s.lag_ms = lag_ms_->Value();
  return s;
}

Status Follower::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return fatal_;
}

bool Follower::WaitForEpoch(uint64_t epoch,
                            std::chrono::milliseconds timeout) const {
  auto deadline = Deadline(timeout);
  while (applied_epoch() < epoch) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

std::chrono::milliseconds Follower::BackoffDelay(int attempt) {
  int64_t ceil_ms = options_.backoff_base.count();
  for (int i = 1; i < attempt && ceil_ms < options_.backoff_max.count(); ++i) {
    ceil_ms *= 2;
  }
  ceil_ms = std::min<int64_t>(ceil_ms, options_.backoff_max.count());
  std::uniform_int_distribution<int64_t> dist(0, std::max<int64_t>(ceil_ms, 1));
  return std::chrono::milliseconds(dist(jitter_));
}

void Follower::Run() {
  int attempt = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    uint64_t connects_before = connects_->Value();
    Status st = RunOnce();
    (void)st;  // why the connection ended; reconnecting is the remedy
    {
      std::lock_guard<std::mutex> lock(status_mu_);
      if (!fatal_.ok()) return;  // apply failed: convergence lost, stop
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // A connection that got as far as subscribing resets the backoff.
    attempt = connects_->Value() > connects_before ? 1 : attempt + 1;
    std::this_thread::sleep_for(BackoffDelay(attempt));
  }
}

Status Follower::RunOnce() {
  auto fd = ConnectTcp(options_.host, options_.port, options_.connect_timeout);
  UFILTER_RETURN_NOT_OK(fd.status());
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    fd_.store(*fd, std::memory_order_release);
  }
  auto cleanup = [this] {
    std::lock_guard<std::mutex> lock(status_mu_);
    CloseFd(fd_.exchange(-1, std::memory_order_acq_rel));
  };
  auto fail = [&](Status st) {
    cleanup();
    return st;
  };

  // Subscribe: magic preamble, then resume from our own commit epoch — 0
  // (a fresh replica) asks for a snapshot bootstrap.
  Status st = SendAll(*fd, kNetMagic, kNetMagicLen,
                      Deadline(options_.connect_timeout));
  if (!st.ok()) return fail(st);
  ReplSubscribeMsg sub;
  sub.start_epoch = db_->commit_epoch();
  sub.max_batch_bytes = options_.max_batch_bytes;
  std::string frame = FramePayload(EncodeReplSubscribe(sub));
  st = SendAll(*fd, frame.data(), frame.size(), Deadline(kWriteTimeout));
  if (!st.ok()) return fail(st);
  connects_->Inc();

  FrameReader frames(/*expect_magic=*/false, kReplMaxFrameBytes);
  char buf[65536];
  auto last_frame = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    auto got = RecvSome(*fd, buf, sizeof(buf),
                        Deadline(std::chrono::milliseconds(100)));
    if (!got.ok()) {
      if (got.status().code() != StatusCode::kDeadlineExceeded) {
        return fail(got.status());  // peer gone / reset
      }
      if (std::chrono::steady_clock::now() - last_frame >
          options_.dead_after) {
        return fail(Status::DeadlineExceeded(
            "replication stream silent past dead_after: reconnecting"));
      }
      continue;
    }
    frames.Feed(buf, *got);
    while (true) {
      auto next = frames.Next();
      if (!next.ok()) return fail(next.status());  // corrupt stream
      if (!next->has_value()) break;
      last_frame = std::chrono::steady_clock::now();
      auto type = PeekType(**next);
      if (!type.ok()) return fail(type.status());
      switch (*type) {
        case MsgType::kReplSnapshot:
          st = HandleSnapshot(**next);
          break;
        case MsgType::kReplRecords:
          st = HandleRecords(**next);
          break;
        default:
          st = Status::ParseError(
              "unexpected frame type on the replication stream");
          break;
      }
      if (!st.ok()) return fail(st);
    }
  }
  cleanup();
  return Status::OK();
}

Status Follower::HandleSnapshot(const std::string& payload) {
  auto msg = DecodeReplSnapshot(payload);
  UFILTER_RETURN_NOT_OK(msg.status());
  // Persist the bootstrap before applying it: a follower killed right
  // after the load recovers from this checkpoint locally and resumes,
  // instead of re-shipping the whole state.
  if (!options_.checkpoint_path.empty()) {
    UFILTER_RETURN_NOT_OK(relational::WriteFileAtomicSynced(
        options_.checkpoint_path,
        relational::EncodeCheckpointFile(msg->epoch, msg->state_payload)));
  }
  Status st = db_->LoadReplicatedSnapshot(msg->epoch, msg->state_payload);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(status_mu_);
    fatal_ = st;
    return st;
  }
  snapshots_loaded_->Inc();
  applied_epoch_.store(msg->epoch, std::memory_order_release);
  std::string ack = FramePayload(EncodeReplAck({msg->epoch}));
  int fd = fd_.load(std::memory_order_acquire);
  return SendAll(fd, ack.data(), ack.size(), Deadline(kWriteTimeout));
}

Status Follower::HandleRecords(const std::string& payload) {
  auto msg = DecodeReplRecords(payload);
  UFILTER_RETURN_NOT_OK(msg.status());
  for (const std::string& rec_payload : msg->records) {
    auto record = relational::DecodeWalPayload(rec_payload);
    UFILTER_RETURN_NOT_OK(record.status());
    if (record->epoch <= db_->commit_epoch()) {
      // Resume overlap: the source replayed an epoch we already hold
      // (e.g. an ack lost to a reconnect). Never re-applied, never
      // double-counted.
      stale_skipped_->Inc();
      continue;
    }
    auto t0 = std::chrono::steady_clock::now();
    Status st = service_->ApplyReplicatedEpoch(*record);
    auto t1 = std::chrono::steady_clock::now();
    apply_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(status_mu_);
      fatal_ = st;
      return st;
    }
    records_applied_->Inc();
    bytes_applied_->Add(rec_payload.size());
    applied_epoch_.store(record->epoch, std::memory_order_release);
  }

  // Lag gauges come from the primary's own counters stamped on the frame,
  // so they are meaningful even when this batch was empty (a heartbeat).
  uint64_t local_epoch = db_->commit_epoch();
  uint64_t lag_epochs = msg->primary_epoch > local_epoch
                            ? msg->primary_epoch - local_epoch
                            : 0;
  uint64_t lag_bytes = msg->primary_wal_bytes > msg->shipped_wal_bytes
                           ? msg->primary_wal_bytes - msg->shipped_wal_bytes
                           : 0;
  auto now = std::chrono::steady_clock::now();
  if (lag_epochs == 0) {
    caught_up_at_ = now;
    lag_ms_->Set(0);
  } else {
    lag_ms_->Set(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - caught_up_at_)
            .count()));
  }
  lag_epochs_->Set(lag_epochs);
  lag_bytes_->Set(lag_bytes);

  std::string ack = FramePayload(
      EncodeReplAck({applied_epoch_.load(std::memory_order_acquire)}));
  int fd = fd_.load(std::memory_order_acquire);
  return SendAll(fd, ack.data(), ack.size(), Deadline(kWriteTimeout));
}

void Follower::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ShutdownFd(fd);
  }
  if (thread_.joinable()) thread_.join();
}

}  // namespace ufilter::net
