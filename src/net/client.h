// C++ client for the network front end: connect/request timeouts, deadline
// propagation, and jittered exponential-backoff retry on transient
// failures.
//
// Retry policy (the contract the chaos tests pin down):
//   - retried: connect refused/timed out (nothing reached the server),
//     kShed / kDraining verdicts (the server certifies nothing executed;
//     honors the server's retry_after_ms as a floor under the backoff),
//     and kDeadlineExceeded verdicts (admission reject or queue purge —
//     the server certifies the request never executed, so even an apply
//     is safe to resend);
//   - retried only for check-only requests: a connection that dies or
//     times out *after* an apply request was sent — the server may have
//     executed it, the client cannot know (indeterminate), and resending
//     could double-apply. Those return kUnavailable/kDeadlineExceeded to
//     the caller, counted in metrics().indeterminate.
// Backoff is full-jitter exponential: uniform(0, min(base * 2^attempt,
// max)), deterministic per client via jitter_seed.
//
// A Client owns one connection, lazily (re)established; any failed attempt
// closes it so no stale bytes of a previous exchange can be misread as a
// response. Not thread-safe — one Client per thread (they are cheap).
#ifndef UFILTER_NET_CLIENT_H_
#define UFILTER_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <random>
#include <string>

#include "common/result.h"
#include "net/frame.h"
#include "net/socket.h"

namespace ufilter::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::chrono::milliseconds connect_timeout{1000};
  /// Per-attempt budget; also the deadline the request carries to the
  /// server (minus nothing — the server rebases it on arrival).
  std::chrono::milliseconds request_timeout{2000};
  /// Total tries per call, the first included.
  int max_attempts = 4;
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_max{250};
  /// Seed of the deterministic jitter stream (tests pin it).
  uint32_t jitter_seed = 1;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

struct ClientMetrics {
  uint64_t requests = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  /// Retry-triggering verdicts seen (shed/draining and deadline-exceeded).
  uint64_t shed_seen = 0;
  uint64_t deadline_seen = 0;
  /// Applies abandoned because their outcome is unknowable (connection
  /// died after the request was sent). Never retried.
  uint64_t indeterminate = 0;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One end-to-end check with retries. OK holds the server's verdict
  /// (which may be a rejection — kInvalid etc.; transport succeeded).
  /// Errors: kUnavailable (server unreachable / retries exhausted /
  /// indeterminate apply), kDeadlineExceeded (client-side budget spent).
  Result<CheckResponseMsg> Check(const std::string& update_text, bool apply);

  /// Round-trips a ping (no retries beyond the standard policy).
  Status Ping();

  /// Fetches the server's service/transport counters.
  Result<StatsMsg> ServerStats();

  /// Fetches the server's full metric registry (counters, gauges, latency
  /// histograms) — everything obs::Registry::Collect() sees in-process.
  Result<MetricsMsg> Metrics();

  const ClientMetrics& metrics() const { return metrics_; }

  /// Drops the connection; the next call reconnects.
  void Disconnect();

  bool connected() const { return fd_ >= 0; }

 private:
  /// Sends `payload` and waits for the response frame with `request_id`.
  /// `sent` reports whether any request bytes may have reached the wire
  /// (the indeterminacy marker for applies).
  Result<std::string> RoundTrip(const std::string& payload,
                                uint64_t request_id, bool* sent);
  Status EnsureConnected();
  std::chrono::milliseconds BackoffDelay(int attempt, uint32_t floor_ms);

  ClientOptions options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::mt19937 jitter_;
  ClientMetrics metrics_;
};

}  // namespace ufilter::net

#endif  // UFILTER_NET_CLIENT_H_
