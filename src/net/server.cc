#include "net/server.h"

#include <utility>

namespace ufilter::net {

namespace {

using check::CheckOutcome;
using check::CheckReport;
using service::AdmitResult;
using service::QueueWaitResult;

constexpr int kIdlePollMs = 100;

Verdict VerdictFromOutcome(CheckOutcome outcome) {
  switch (outcome) {
    case CheckOutcome::kExecuted:
      return Verdict::kExecuted;
    case CheckOutcome::kInvalid:
      return Verdict::kInvalid;
    case CheckOutcome::kUntranslatable:
      return Verdict::kUntranslatable;
    case CheckOutcome::kDataConflict:
      return Verdict::kDataConflict;
    case CheckOutcome::kNotRun:
      return Verdict::kNotRun;
    case CheckOutcome::kDeadlineExceeded:
      return Verdict::kDeadlineExceeded;
  }
  return Verdict::kError;
}

CheckResponseMsg ResponseFromReport(uint64_t request_id,
                                    const CheckReport& report) {
  CheckResponseMsg msg;
  msg.request_id = request_id;
  msg.verdict = VerdictFromOutcome(report.outcome);
  msg.status_code = static_cast<uint8_t>(report.error.code());
  msg.message = report.error.message();
  msg.rows_affected = report.rows_affected;
  return msg;
}

CheckResponseMsg ServiceResponse(uint64_t request_id, Verdict verdict,
                                 Status status, uint32_t retry_after_ms) {
  CheckResponseMsg msg;
  msg.request_id = request_id;
  msg.verdict = verdict;
  msg.status_code = static_cast<uint8_t>(status.code());
  msg.message = status.message();
  msg.retry_after_ms = retry_after_ms;
  return msg;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(check::UFilter* filter,
                                              ServerOptions options) {
  auto listen = ListenTcp(options.port, options.backlog);
  if (!listen.ok()) return listen.status();
  auto port = LocalPort(*listen);
  if (!port.ok()) {
    CloseFd(*listen);
    return port.status();
  }
  std::unique_ptr<Server> server(
      new Server(filter, std::move(options), *listen, *port));
  if (!server->service_->durability_status().ok()) {
    Status st = server->service_->durability_status();
    return st;
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::Server(check::UFilter* filter, ServerOptions options, int listen_fd,
               uint16_t port)
    : options_(std::move(options)), listen_fd_(listen_fd), port_(port) {
  service_ = std::make_unique<service::CheckService>(filter, options_.service);
  obs::Registry& registry = service_->registry();
  connections_accepted_ = registry.GetCounter("server_connections_accepted");
  protocol_errors_ = registry.GetCounter("server_protocol_errors");
  requests_ = registry.GetCounter("server_requests");
  responses_ = registry.GetCounter("server_responses");
  admission_expired_ = registry.GetCounter("server_admission_expired");
  draining_rejects_ = registry.GetCounter("server_draining_rejects");
  redirected_applies_ = registry.GetCounter("server_redirected_applies");
}

Server::~Server() { Drain(); }

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_->Value();
  s.protocol_errors = protocol_errors_->Value();
  s.requests = requests_->Value();
  s.responses = responses_->Value();
  s.admission_expired = admission_expired_->Value();
  s.draining_rejects = draining_rejects_->Value();
  s.redirected_applies = redirected_applies_->Value();
  return s;
}

void Server::AcceptLoop() {
  while (!stop_accept_.load(std::memory_order_relaxed)) {
    ReapFinished();
    auto fd = AcceptWithTimeout(listen_fd_, kIdlePollMs);
    if (!fd.ok()) {
      if (fd.status().IsDeadlineExceeded()) continue;  // idle tick
      break;  // listener gone: drain in progress
    }
    connections_accepted_->Inc();
    auto conn = std::make_unique<Conn>(options_.max_pipeline);
    conn->fd = *fd;
    conn->session = service_->OpenSession();
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
    raw->writer = std::thread([this, raw] { WriterLoop(raw); });
  }
}

void Server::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn* c = it->get();
    if (c->live_loops.load(std::memory_order_acquire) == 0) {
      if (c->reader.joinable()) c->reader.join();
      if (c->writer.joinable()) c->writer.join();
      CloseFd(c->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::ReaderLoop(Conn* conn) {
  FrameReader frames(/*expect_magic=*/true, options_.max_frame_bytes);
  char buf[4096];
  bool protocol_error = false;
  while (!conn->stop.load(std::memory_order_relaxed)) {
    auto got = RecvSome(conn->fd, buf, sizeof(buf),
                        std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(kIdlePollMs));
    if (!got.ok()) {
      if (got.status().IsDeadlineExceeded()) continue;  // idle tick
      break;  // peer gone (EOF / reset) — normal for a severed client
    }
    frames.Feed(buf, *got);
    bool drop = false;
    while (true) {
      auto next = frames.Next();
      if (!next.ok()) {
        // Wire damage (bad magic, corrupt length, CRC mismatch): there is
        // no resynchronization point — drop this connection only.
        protocol_error = true;
        drop = true;
        break;
      }
      if (!next->has_value()) break;  // torn mid-frame: wait for more bytes
      Status st = HandlePayload(conn, *std::move(*next));
      if (!st.ok()) {
        // ParseError = wire damage (counted); anything else (e.g. the
        // connection closing under us mid-drain) is a quiet drop.
        protocol_error = st.IsParseError();
        drop = true;
        break;
      }
    }
    if (drop) break;
  }
  if (protocol_error) protocol_errors_->Inc();
  conn->stop.store(true, std::memory_order_relaxed);
  // Writer drains whatever is still pending (futures resolve via the
  // service), then exits on the closed-and-drained signal.
  conn->pending.Close();
  conn->live_loops.fetch_sub(1, std::memory_order_release);
}

Status Server::HandlePayload(Conn* conn, std::string payload) {
  auto type = PeekType(payload);
  if (!type.ok()) return type.status();
  auto pending = std::make_unique<Pending>();
  switch (*type) {
    case MsgType::kPing: {
      auto id = DecodePingPong(payload);
      if (!id.ok()) return id.status();
      pending->ready_payload = EncodePong(*id);
      break;
    }
    case MsgType::kStatsRequest: {
      service::CheckServiceStats svc = service_->Snapshot();
      StatsMsg stats;
      stats.submitted = svc.submitted;
      stats.completed = svc.completed;
      stats.fast_path = svc.fast_path;
      stats.writer_lane = svc.writer_lane;
      stats.shed = svc.shed;
      stats.deadline_expired = svc.deadline_expired;
      stats.queue_high_water = svc.queue_high_water;
      stats.commit_epoch = svc.commit_epoch;
      stats.wal_records = svc.wal_records;
      stats.connections_accepted = connections_accepted_->Value();
      stats.protocol_errors = protocol_errors_->Value();
      stats.draining_rejects = draining_rejects_->Value();
      stats.queue_wait_p50_ns = svc.queue_wait_p50_ns;
      stats.queue_wait_p99_ns = svc.queue_wait_p99_ns;
      pending->ready_payload = EncodeStatsResponse(stats);
      break;
    }
    case MsgType::kMetricsRequest: {
      // The full registry scrape: one Collect(), encoded sparse. This is
      // what ufilter_metrics and the parity test in
      // tests/net/server_client_test.cc consume.
      pending->ready_payload = EncodeMetricsResponse(
          MetricsFromSnapshot(service_->registry().Collect()));
      break;
    }
    case MsgType::kCheckRequest: {
      auto req = DecodeCheckRequest(payload);
      if (!req.ok()) return req.status();
      requests_->Inc();
      pending->request_id = req->request_id;
      if (draining_.load(std::memory_order_relaxed)) {
        draining_rejects_->Inc();
        pending->ready_payload = EncodeCheckResponse(ServiceResponse(
            req->request_id, Verdict::kDraining,
            Status::Unavailable("server is draining"),
            options_.drain_retry_after_ms));
        break;
      }
      if (req->apply && !options_.redirect_primary.empty()) {
        // Follower mode: applies never run here — the caller must go to
        // the primary named in the message. Deliberately not retry-safe:
        // retrying the same follower would loop forever.
        redirected_applies_->Inc();
        pending->ready_payload = EncodeCheckResponse(ServiceResponse(
            req->request_id, Verdict::kRedirectToPrimary,
            Status::InvalidArgument("read-only follower: apply this update "
                                    "against the primary at " +
                                    options_.redirect_primary),
            0));
        break;
      }
      std::optional<service::CheckService::SteadyTime> deadline;
      if (req->deadline_ms != kNoDeadlineMs) {
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(req->deadline_ms);
      }
      check::CheckOptions opts;
      opts.apply = req->apply;
      opts.strategy = static_cast<check::DataCheckStrategy>(req->strategy);
      // Born here, before admission, so queue-wait is inside the trace;
      // finished by the writer thread after the response write.
      std::shared_ptr<obs::TraceContext> trace = service_->StartTrace();
      std::future<CheckReport> future;
      AdmitResult admitted = service_->SubmitWithDeadline(
          conn->session, std::move(req->update_text), opts, deadline,
          &future, trace);
      switch (admitted) {
        case AdmitResult::kAdmitted:
          pending->has_future = true;
          pending->future = std::move(future);
          pending->trace = std::move(trace);
          break;
        case AdmitResult::kShed:
          pending->ready_payload = EncodeCheckResponse(ServiceResponse(
              req->request_id, Verdict::kShed,
              Status::Unavailable("admission queue full (load shed)"),
              options_.shed_retry_after_ms));
          break;
        case AdmitResult::kExpired:
          admission_expired_->Inc();
          pending->ready_payload = EncodeCheckResponse(ServiceResponse(
              req->request_id, Verdict::kDeadlineExceeded,
              Status::DeadlineExceeded("deadline expired at admission"), 0));
          break;
        case AdmitResult::kClosed:
          pending->ready_payload = EncodeCheckResponse(ServiceResponse(
              req->request_id, Verdict::kDraining,
              Status::Unavailable("check service is shut down"),
              options_.drain_retry_after_ms));
          break;
      }
      break;
    }
    case MsgType::kCheckResponse:
    case MsgType::kPong:
    case MsgType::kStatsResponse:
    case MsgType::kMetricsResponse:
      return Status::ParseError("client sent a server-only message type");
    case MsgType::kReplSubscribe:
    case MsgType::kReplSnapshot:
    case MsgType::kReplRecords:
    case MsgType::kReplAck:
      // The replication plane has its own listener (net::ReplicationSource);
      // these never belong on the request/response port.
      return Status::ParseError("replication message on the request plane");
  }
  // Blocks when max_pipeline responses are unanswered: per-connection
  // backpressure. Refused only when the connection is already closing.
  if (!conn->pending.Push(std::move(pending))) {
    return Status::Unavailable("connection closing");
  }
  return Status::OK();
}

void Server::WriterLoop(Conn* conn) {
  bool write_failed = false;
  std::unique_ptr<Pending> p;
  while (true) {
    QueueWaitResult got =
        conn->pending.PopFor(&p, std::chrono::steady_clock::now() +
                                     std::chrono::milliseconds(kIdlePollMs));
    if (got == QueueWaitResult::kClosed) break;
    if (got == QueueWaitResult::kTimedOut) continue;
    std::string payload;
    if (p->has_future) {
      // Resolves unconditionally: a worker executes it, purges it at its
      // deadline, or the service drain finishes it.
      CheckReport report = p->future.get();
      payload = EncodeCheckResponse(ResponseFromReport(p->request_id, report));
    } else {
      payload = std::move(p->ready_payload);
    }
    if (write_failed) {
      // Drain mode: discard, keep futures resolved — but still seal any
      // deferred trace so sampled traces aren't leaked half-open.
      if (p->trace != nullptr) service_->tracer().Finish(*p->trace);
      continue;
    }
    std::string frame = FramePayload(payload);
    auto write_start = std::chrono::steady_clock::now();
    Status st = SendAll(conn->fd, frame.data(), frame.size(),
                        write_start + options_.write_timeout);
    if (!st.ok()) {
      // Slow or dead client: stop reading from it and discard the rest of
      // its responses — but keep popping so admitted futures resolve.
      write_failed = true;
      conn->stop.store(true, std::memory_order_relaxed);
    } else {
      responses_->Inc();
    }
    if (p->trace != nullptr) {
      // The last span of the request's trace, then the deferred finish
      // (fixes total_ns = decode -> response written).
      auto write_end = std::chrono::steady_clock::now();
      p->trace->RecordSpan(obs::Stage::kResponseWrite, write_start, write_end);
      service_->ObserveStage(
          obs::Stage::kResponseWrite,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  write_end - write_start)
                  .count()));
      service_->tracer().Finish(*p->trace);
    }
  }
  conn->live_loops.fetch_sub(1, std::memory_order_release);
}

void Server::Drain() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (drained_) return;
  drained_ = true;

  // 1. Stop accepting; new requests on live connections get kDraining.
  draining_.store(true, std::memory_order_relaxed);
  stop_accept_.store(true, std::memory_order_relaxed);
  ShutdownFd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;

  // 2. Bounded wait for in-flight work: every admitted request either
  // finishes or hits its deadline (the workers purge expired ones), and
  // every response gets flushed.
  auto grace_deadline = std::chrono::steady_clock::now() + options_.drain_grace;
  while (std::chrono::steady_clock::now() < grace_deadline) {
    bool busy = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& c : conns_) {
        if (c->pending.size() > 0) busy = true;
      }
    }
    if (!busy) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // 3. Stop the connections: readers exit on the flag, writers flush the
  // remaining pending responses, then everything joins.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& c : conns_) {
      c->stop.store(true, std::memory_order_relaxed);
      c->pending.Close();
    }
  }
  std::vector<std::unique_ptr<Conn>> doomed;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    doomed.swap(conns_);
  }
  for (auto& c : doomed) {
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
    ShutdownFd(c->fd);
    CloseFd(c->fd);
  }

  // 4. Drain the check service (workers finish or deadline-expire what is
  // queued) and force the WAL to stable storage — its Shutdown ends with
  // a SyncWal barrier.
  if (service_) service_->Shutdown();
}

}  // namespace ufilter::net
