#include "net/metrics_http.h"

#include <chrono>

#include "net/socket.h"

namespace ufilter::net {

namespace {
constexpr int kAcceptPollMs = 100;
constexpr std::chrono::milliseconds kIoTimeout{2000};
}  // namespace

Status MetricsHttpServer::Start(uint16_t port,
                                std::function<std::string()> render) {
  if (thread_.joinable()) return Status::InvalidArgument("already started");
  auto listen = ListenTcp(port);
  if (!listen.ok()) return listen.status();
  auto got_port = LocalPort(*listen);
  if (!got_port.ok()) {
    CloseFd(*listen);
    return got_port.status();
  }
  listen_fd_ = *listen;
  port_ = *got_port;
  render_ = std::move(render);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  ShutdownFd(listen_fd_);
  thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::ServeLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto fd = AcceptWithTimeout(listen_fd_, kAcceptPollMs);
    if (!fd.ok()) {
      if (fd.status().IsDeadlineExceeded()) continue;  // idle tick
      break;  // listener gone: Stop() in progress
    }
    auto deadline = std::chrono::steady_clock::now() + kIoTimeout;
    // Read (and ignore) whatever request the client sent: one recv is
    // enough for any curl/Prometheus GET line, and a client that sends
    // nothing still gets its metrics.
    char buf[2048];
    (void)RecvSome(*fd, buf, sizeof(buf), deadline);
    std::string body = render_();
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    // Count before the bytes go out: a client that has read the full
    // response must observe the scrape as counted.
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    (void)SendAll(*fd, resp.data(), resp.size(), deadline);
    ShutdownFd(*fd);
    CloseFd(*fd);
  }
}

}  // namespace ufilter::net
