// The wire protocol of the network front end: a length-prefixed,
// CRC-framed binary protocol reusing the WAL's framing discipline
// (src/relational/wal.h). A connection is
//
//   [8-byte magic "UFNET001"]  (client -> server, once)
//   then frames in both directions, each
//   [u32 payload_len][u32 crc32(payload)][payload]   (little-endian)
//
// and every payload is one message: a type byte followed by fixed-width
// little-endian fields and u32-length-prefixed strings. The CRC catches
// corruption; the length prefix makes torn frames detectable (a frame is
// either completely parsed or the connection is dead — there is no
// resynchronization, exactly like a torn WAL tail). Decoders are strict:
// short, overlong or type-confused payloads are ParseError, never UB —
// these bytes arrive off a socket from arbitrary peers.
//
// Deadlines travel as a *relative* millisecond budget (clock-skew free):
// the client computes the remaining budget when it serializes the request,
// the server rebases it onto its own steady clock at decode. kNoDeadlineMs
// means unbounded.
#ifndef UFILTER_NET_FRAME_H_
#define UFILTER_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace ufilter::net {

/// Connection preamble; versioned like the WAL's "UFWAL001".
inline constexpr char kNetMagic[] = "UFNET001";
inline constexpr size_t kNetMagicLen = 8;

/// Frame header: payload length + CRC32 of the payload.
inline constexpr size_t kFrameHeaderLen = 8;

/// Default ceiling on a single frame (update texts are small; anything
/// bigger is a corrupt length prefix or an abusive peer).
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

/// Ceiling for replication-stream frames: a kReplSnapshot carries the full
/// serialized database state and a kReplRecords batch carries many WAL
/// payloads, so subscription connections negotiate a much larger frame
/// budget than the request/response plane.
inline constexpr size_t kReplMaxFrameBytes = 64u << 20;

/// Relative-deadline sentinel: no deadline.
inline constexpr uint32_t kNoDeadlineMs = 0xFFFFFFFFu;

enum class MsgType : uint8_t {
  kCheckRequest = 1,
  kCheckResponse = 2,
  kPing = 3,
  kPong = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  /// Full metric-registry scrape (counters, gauges, histograms) — the
  /// wire form of obs::Registry::Collect(). kStats stays the cheap
  /// fixed-size summary; kMetrics carries everything, including the
  /// counters that used to be wire-invisible (WAL, columnar, plan cache,
  /// MVCC) and the latency histograms.
  kMetricsRequest = 7,
  kMetricsResponse = 8,
  /// Replication plane (epoch-stream snapshot shipping). A follower sends
  /// kReplSubscribe once after the magic; the primary answers with an
  /// optional kReplSnapshot bootstrap followed by a stream of kReplRecords
  /// batches (empty batch = heartbeat); the follower acks applied epochs
  /// with kReplAck so the primary can export subscriber lag.
  kReplSubscribe = 9,
  kReplSnapshot = 10,
  kReplRecords = 11,
  kReplAck = 12,
};

inline constexpr uint8_t kMaxMsgType =
    static_cast<uint8_t>(MsgType::kReplAck);

/// The server's answer class for one request. Distinct from CheckOutcome
/// because the wire must also express service-level dispositions (shed,
/// draining, deadline exceeded) that certify the request never executed.
enum class Verdict : uint8_t {
  kExecuted = 0,
  kInvalid = 1,
  kUntranslatable = 2,
  kDataConflict = 3,
  kNotRun = 4,
  /// The deadline expired before execution (admission reject or queue
  /// purge). Never executed; always safe to retry.
  kDeadlineExceeded = 5,
  /// Load shed: the admission queue stayed full for the request's whole
  /// deadline budget. Never executed; retry after `retry_after_ms`.
  kShed = 6,
  /// The server is draining for shutdown. Never executed.
  kDraining = 7,
  /// Protocol/internal failure while serving the request.
  kError = 8,
  /// Read-only follower refusing an apply: the caller must re-issue the
  /// request against the primary named in `message`. Never executed here,
  /// but NOT retry-safe against this server — retrying the same follower
  /// would loop forever.
  kRedirectToPrimary = 9,
};

const char* VerdictName(Verdict v);

/// True for verdicts that certify the request was never executed and can
/// be retried even when it was an apply (shed / draining / deadline).
bool VerdictIsRetrySafe(Verdict v);

struct CheckRequestMsg {
  uint64_t request_id = 0;
  /// Remaining deadline budget in ms (relative); kNoDeadlineMs = none.
  uint32_t deadline_ms = kNoDeadlineMs;
  bool apply = false;
  /// DataCheckStrategy as its enum integer (kInternal/kHybrid/kOutside).
  uint8_t strategy = 2;
  std::string update_text;
};

struct CheckResponseMsg {
  uint64_t request_id = 0;
  Verdict verdict = Verdict::kError;
  /// StatusCode of the report's error (kOk when none).
  uint8_t status_code = 0;
  std::string message;
  int64_t rows_affected = 0;
  /// Advisory backoff for kShed/kDraining; 0 otherwise.
  uint32_t retry_after_ms = 0;
};

/// Service counters exposed over the wire (bench_server scrapes these so
/// shed/expired work is visible in BENCH_server.json).
struct StatsMsg {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t fast_path = 0;
  uint64_t writer_lane = 0;
  uint64_t shed = 0;
  uint64_t deadline_expired = 0;
  uint64_t queue_high_water = 0;
  uint64_t commit_epoch = 0;
  uint64_t wal_records = 0;
  uint64_t connections_accepted = 0;
  uint64_t protocol_errors = 0;
  uint64_t draining_rejects = 0;
  /// Admission-queue residency percentiles (push -> worker pop), ns.
  uint64_t queue_wait_p50_ns = 0;
  uint64_t queue_wait_p99_ns = 0;
};

/// One metric in a kMetricsResponse: the wire form of obs::MetricSample.
/// Histogram buckets travel sparse ([bucket-index, count] pairs) — latency
/// distributions concentrate in a handful of buckets, so this is far
/// smaller than 64 fixed u64s per histogram.
struct WireMetric {
  std::string name;
  /// obs::MetricKind as its enum integer (0 counter, 1 gauge, 2 histogram).
  uint8_t kind = 0;
  /// Counter / gauge value (0 for histograms).
  uint64_t value = 0;
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
  uint64_t hist_max = 0;
  /// Non-empty buckets only: (bucket index < obs::kHistogramBuckets, count).
  std::vector<std::pair<uint8_t, uint64_t>> hist_buckets;
};

struct MetricsMsg {
  std::vector<WireMetric> metrics;

  /// Finds a metric by exact name; nullptr when absent.
  const WireMetric* Find(const std::string& name) const;
};

/// RegistrySnapshot <-> MetricsMsg: the server encodes its Collect() with
/// the first, the scraper reconstructs percentiles/renders Prometheus text
/// with the second. Round-tripping is lossless (tests/net/frame_test.cc).
MetricsMsg MetricsFromSnapshot(const obs::RegistrySnapshot& snapshot);
obs::RegistrySnapshot SnapshotFromMetrics(const MetricsMsg& msg);

// --- Replication-plane messages ------------------------------------------

/// Follower -> primary, once per connection: start (or resume) an epoch
/// stream. start_epoch is the last epoch the follower has durably applied;
/// 0 means "bootstrap me" and the primary answers with a kReplSnapshot
/// before any records.
struct ReplSubscribeMsg {
  uint64_t start_epoch = 0;
  /// Soft cap on the WAL-payload bytes per kReplRecords batch; 0 = primary
  /// default. A hint, not a contract — one oversized record still ships.
  uint64_t max_batch_bytes = 0;
};

/// Primary -> follower bootstrap: the full serialized state
/// (relational::EncodeDatabaseState) as of `epoch`. Sent exactly once, and
/// only for start_epoch == 0 subscriptions.
struct ReplSnapshotMsg {
  uint64_t epoch = 0;
  std::string state_payload;
};

/// Primary -> follower: a batch of WAL record payloads in strictly
/// increasing epoch order. `primary_epoch` is the primary's commit epoch at
/// send time (lag is primary_epoch - last applied); `primary_wal_bytes` the
/// primary's WAL offset after the last record in the batch (byte lag). An
/// empty batch is a heartbeat: it refreshes lag while the primary idles.
struct ReplRecordsMsg {
  uint64_t primary_epoch = 0;
  uint64_t primary_wal_bytes = 0;
  /// Primary WAL offset just past the last record in this batch (equal to
  /// primary_wal_bytes when the batch drains the log). The follower's byte
  /// lag is primary_wal_bytes - shipped_wal_bytes.
  uint64_t shipped_wal_bytes = 0;
  /// Each entry is one EncodeWalPayload blob (epoch + redo ops), decodable
  /// with relational::DecodeWalPayload.
  std::vector<std::string> records;
};

/// Follower -> primary: everything up to applied_epoch is applied and
/// published locally.
struct ReplAckMsg {
  uint64_t applied_epoch = 0;
};

// --- Message codecs (payloads, no framing) -------------------------------

std::string EncodeCheckRequest(const CheckRequestMsg& msg);
std::string EncodeCheckResponse(const CheckResponseMsg& msg);
std::string EncodePing(uint64_t request_id);
std::string EncodePong(uint64_t request_id);
std::string EncodeStatsRequest();
std::string EncodeStatsResponse(const StatsMsg& msg);
std::string EncodeMetricsRequest();
std::string EncodeMetricsResponse(const MetricsMsg& msg);
std::string EncodeReplSubscribe(const ReplSubscribeMsg& msg);
std::string EncodeReplSnapshot(const ReplSnapshotMsg& msg);
std::string EncodeReplRecords(const ReplRecordsMsg& msg);
std::string EncodeReplAck(const ReplAckMsg& msg);

Result<MsgType> PeekType(const std::string& payload);
Result<CheckRequestMsg> DecodeCheckRequest(const std::string& payload);
Result<CheckResponseMsg> DecodeCheckResponse(const std::string& payload);
/// Decodes a kPing or kPong payload to its request id.
Result<uint64_t> DecodePingPong(const std::string& payload);
Result<StatsMsg> DecodeStatsResponse(const std::string& payload);
Result<MetricsMsg> DecodeMetricsResponse(const std::string& payload);
Result<ReplSubscribeMsg> DecodeReplSubscribe(const std::string& payload);
Result<ReplSnapshotMsg> DecodeReplSnapshot(const std::string& payload);
Result<ReplRecordsMsg> DecodeReplRecords(const std::string& payload);
Result<ReplAckMsg> DecodeReplAck(const std::string& payload);

// --- Framing -------------------------------------------------------------

/// Wraps a payload as [len][crc][payload], ready for the socket.
std::string FramePayload(const std::string& payload);

/// \brief Incremental frame parser over an arbitrary byte stream.
///
/// Feed() whatever the socket delivered (any chunking — the chaos proxy
/// tears frames mid-length-prefix on purpose); Next() yields complete
/// payloads in order, nullopt when more bytes are needed, and a ParseError
/// status on corruption (bad magic, CRC mismatch, absurd length). After an
/// error the stream is unrecoverable by design — drop the connection.
class FrameReader {
 public:
  /// `expect_magic`: the first kNetMagicLen bytes must be kNetMagic
  /// (server side of a fresh connection).
  explicit FrameReader(bool expect_magic = false,
                       size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : magic_pending_(expect_magic), max_frame_(max_frame_bytes) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  /// One complete payload, nullopt (need more bytes), or ParseError.
  Result<std::optional<std::string>> Next();

  /// Bytes buffered but not yet consumed (torn-frame visibility).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  /// Drops the consumed prefix once it dominates the buffer, so a
  /// long-lived connection never grows its buffer without bound.
  void Compact() {
    if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::string buf_;
  size_t pos_ = 0;
  bool magic_pending_;
  size_t max_frame_;
};

}  // namespace ufilter::net

#endif  // UFILTER_NET_FRAME_H_
