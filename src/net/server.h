// The network front end: a TCP server speaking the CRC-framed protocol of
// net/frame.h over a service::CheckService (the paper's Fig. 5 middleware
// deployment, fronting many clients the way XPERANTO / SilkRoute front a
// relational engine).
//
// Fault-tolerance contract (proven by tests/net/ under the chaos proxy):
//   - deadlines propagate end-to-end: a request's relative budget is
//     rebased on arrival, expired requests are rejected at admission,
//     queued requests are purged by the workers before execution, and the
//     kDeadlineExceeded verdict certifies nothing ran;
//   - overload is shed, never socketed away: when the admission queue is
//     full past the request's budget the server answers kShed with an
//     advisory retry_after_ms instead of letting bytes pile up;
//   - broken peers cannot hurt the server: torn frames, corrupt bytes and
//     severed connections surface as Status, drop only that connection,
//     and count in ServerStats::protocol_errors;
//   - graceful drain (Drain(), wired to SIGTERM in tools/ufilter_server):
//     stop accepting, answer new requests kDraining, finish or
//     deadline-expire everything in flight, sync the WAL, then stop.
//
// Threading: one accept loop; per connection one reader (decodes frames,
// admits requests) and one writer (serializes responses — they may finish
// out of submission order internally, but each connection's responses are
// written in request order, matched by request_id either way).
#ifndef UFILTER_NET_SERVER_H_
#define UFILTER_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "service/check_service.h"

namespace ufilter::net {

struct ServerOptions {
  /// Listen port; 0 = kernel-assigned ephemeral (read back via port()).
  uint16_t port = 0;
  int backlog = 64;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Advisory client backoff attached to kShed / kDraining responses.
  uint32_t shed_retry_after_ms = 50;
  uint32_t drain_retry_after_ms = 200;
  /// Per-connection response pipeline bound: a client with this many
  /// unanswered requests stops being read (backpressure on one socket,
  /// invisible to every other connection).
  size_t max_pipeline = 64;
  /// Bound on writing one response to a slow client; a socket that cannot
  /// take a response within this window is dropped.
  std::chrono::milliseconds write_timeout{5000};
  /// Drain(): how long to wait for in-flight work before forcing the rest
  /// through the deadline-expiry path.
  std::chrono::milliseconds drain_grace{5000};
  /// Read-only follower mode: when non-empty ("host:port" of the primary),
  /// every apply request is refused immediately with kRedirectToPrimary
  /// carrying this address; check-only requests are served normally from
  /// pinned snapshots.
  std::string redirect_primary;
  service::CheckServiceOptions service;
};

/// Transport-level counters (service-level ones live in CheckServiceStats).
struct ServerStats {
  uint64_t connections_accepted = 0;
  /// Connections dropped for wire damage: bad magic, oversized or
  /// CRC-failing frames, undecodable messages.
  uint64_t protocol_errors = 0;
  uint64_t requests = 0;
  uint64_t responses = 0;
  /// Check requests whose deadline was already expired at admission.
  uint64_t admission_expired = 0;
  /// Check requests answered kDraining during graceful shutdown.
  uint64_t draining_rejects = 0;
  /// Apply requests answered kRedirectToPrimary (follower mode).
  uint64_t redirected_applies = 0;
};

class Server {
 public:
  /// Binds, starts the worker pool and the accept loop. `filter` (and its
  /// database) must outlive the server.
  static Result<std::unique_ptr<Server>> Start(check::UFilter* filter,
                                               ServerOptions options = {});
  /// Drains (see Drain) and joins everything.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }
  service::CheckService& service() { return *service_; }
  ServerStats stats() const;
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Graceful drain: stop accepting, answer new check requests kDraining,
  /// wait (bounded by drain_grace) for in-flight work to finish or expire,
  /// flush every response, shut the check service down (which syncs the
  /// WAL), and join all threads. Idempotent; also the destructor's path.
  void Drain();

 private:
  struct Pending {
    uint64_t request_id = 0;
    /// Admitted into the check service: the verdict arrives via `future`.
    bool has_future = false;
    std::future<check::CheckReport> future;
    /// Pre-encoded payload for immediate answers (shed, expired, draining,
    /// pong, stats) — no future involved.
    std::string ready_payload;
    /// The request's trace (deferred finish): the writer thread appends
    /// the response_write span and seals it. Null when metrics are off or
    /// the request never reached the service.
    std::shared_ptr<obs::TraceContext> trace;
  };

  struct Conn {
    explicit Conn(size_t pipeline) : pending(pipeline) {}
    int fd = -1;
    std::shared_ptr<service::Session> session;
    service::BoundedQueue<std::unique_ptr<Pending>> pending;
    std::thread reader;
    std::thread writer;
    std::atomic<bool> stop{false};
    /// Loops still running (2 at spawn); 0 = reapable.
    std::atomic<int> live_loops{2};
  };

  Server(check::UFilter* filter, ServerOptions options, int listen_fd,
         uint16_t port);

  void AcceptLoop();
  void ReaderLoop(Conn* conn);
  void WriterLoop(Conn* conn);
  /// Dispatches one decoded payload; non-OK drops the connection.
  Status HandlePayload(Conn* conn, std::string payload);
  /// Joins and erases connections whose loops both exited.
  void ReapFinished();

  ServerOptions options_;
  std::unique_ptr<service::CheckService> service_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::thread accept_thread_;
  std::atomic<bool> stop_accept_{false};
  std::atomic<bool> draining_{false};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::mutex lifecycle_mu_;
  bool drained_ = false;

  // Registered in the service's metric registry (stable pointers owned by
  // it), so ServerStats is a registry view and the transport counters are
  // scrapable remotely alongside everything else.
  obs::Counter* connections_accepted_;
  obs::Counter* protocol_errors_;
  obs::Counter* requests_;
  obs::Counter* responses_;
  obs::Counter* admission_expired_;
  obs::Counter* draining_rejects_;
  obs::Counter* redirected_applies_;
};

}  // namespace ufilter::net

#endif  // UFILTER_NET_SERVER_H_
