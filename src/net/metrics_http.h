// A minimal HTTP/1.0 exporter for Prometheus scrapes: one accept loop, one
// response per connection (render callback -> 200 text/plain -> close).
// Deliberately not a real HTTP server — the request line is read and
// discarded (every path serves the metrics), keep-alive is not offered,
// and the whole thing exists so `curl localhost:PORT/metrics` and a
// Prometheus scrape_config work against ufilter_server --metrics-port.
#ifndef UFILTER_NET_METRICS_HTTP_H_
#define UFILTER_NET_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/result.h"

namespace ufilter::net {

class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer() { Stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, read back via port()) and
  /// starts serving. `render` is called once per scrape, from the serving
  /// thread — it must be thread-safe (Registry::Collect is).
  Status Start(uint16_t port, std::function<std::string()> render);

  /// Stops the accept loop and joins; idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

 private:
  void ServeLoop();

  std::function<std::string()> render_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> scrapes_{0};
};

}  // namespace ufilter::net

#endif  // UFILTER_NET_METRICS_HTTP_H_
