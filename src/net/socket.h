// Thin POSIX TCP helpers shared by the server, the client library and the
// fault-injection proxy: listen/accept/connect with explicit timeouts, and
// deadline-bounded send/recv loops built on poll(2). Everything fails into
// Status instead of errno spaghetti:
//   - kDeadlineExceeded: the caller's deadline passed before the I/O
//     completed (the byte stream is mid-frame and must be abandoned);
//   - kUnavailable: the peer is gone (refused, reset, or closed) — the
//     transport-level "transient" the client's retry policy keys on;
//   - kInvalidArgument / kInternal: programmer or OS errors.
// All sends use MSG_NOSIGNAL so a dead peer surfaces as a Status, never a
// SIGPIPE — a server must survive any client dying at any byte.
#ifndef UFILTER_NET_SOCKET_H_
#define UFILTER_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace ufilter::net {

using SteadyTime = std::chrono::steady_clock::time_point;

/// Opens a listening TCP socket on 127.0.0.1:`port` (port 0 = kernel picks
/// an ephemeral port; read it back with LocalPort). SO_REUSEADDR set.
Result<int> ListenTcp(uint16_t port, int backlog = 64);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// Waits up to `timeout_ms` for a pending connection, then accepts it.
/// kDeadlineExceeded when nothing arrived (poll again), kUnavailable when
/// the listening socket is gone (shutdown path).
Result<int> AcceptWithTimeout(int listen_fd, int timeout_ms);

/// Non-blocking connect to 127.0.0.1:`port` (or `host` if given) bounded
/// by `timeout`. Refused / unreachable / timed out all map to kUnavailable
/// — from the retry policy's point of view they are the same transient.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       std::chrono::milliseconds timeout);

/// Writes all `n` bytes before `deadline` (poll + send loop).
Status SendAll(int fd, const void* data, size_t n, SteadyTime deadline);

/// Reads *some* bytes (1..cap) before `deadline`. kUnavailable on EOF /
/// reset (peer gone), kDeadlineExceeded when nothing arrived in time.
Result<size_t> RecvSome(int fd, void* buf, size_t cap, SteadyTime deadline);

/// shutdown(2) both directions — wakes any thread blocked on the fd.
void ShutdownFd(int fd);

/// close(2), ignoring errors; negative fds ignored.
void CloseFd(int fd);

}  // namespace ufilter::net

#endif  // UFILTER_NET_SOCKET_H_
