#include "net/client.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace ufilter::net {

namespace {

constexpr char kIndeterminate[] = "indeterminate apply";

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {}

Client::~Client() { Disconnect(); }

void Client::Disconnect() {
  if (fd_ >= 0) {
    CloseFd(fd_);
    fd_ = -1;
  }
}

Status Client::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  auto fd = ConnectTcp(options_.host, options_.port, options_.connect_timeout);
  if (!fd.ok()) return fd.status();
  // Preamble: the 8-byte magic, so the server can reject non-protocol
  // peers before parsing a single frame.
  Status st = SendAll(*fd, kNetMagic, kNetMagicLen,
                      std::chrono::steady_clock::now() +
                          options_.connect_timeout);
  if (!st.ok()) {
    CloseFd(*fd);
    return st;
  }
  fd_ = *fd;
  ++metrics_.reconnects;
  return Status::OK();
}

std::chrono::milliseconds Client::BackoffDelay(int attempt,
                                               uint32_t floor_ms) {
  // Full jitter: uniform(0, min(base * 2^(attempt-1), max)), floored by
  // the server's advisory retry-after when one was given.
  int64_t ceil_ms = options_.backoff_base.count();
  for (int i = 1; i < attempt && ceil_ms < options_.backoff_max.count(); ++i) {
    ceil_ms *= 2;
  }
  ceil_ms = std::min<int64_t>(ceil_ms, options_.backoff_max.count());
  std::uniform_int_distribution<int64_t> dist(0, std::max<int64_t>(ceil_ms, 1));
  int64_t jittered = dist(jitter_);
  return std::chrono::milliseconds(
      std::max<int64_t>(jittered, static_cast<int64_t>(floor_ms)));
}

Result<std::string> Client::RoundTrip(const std::string& payload,
                                      uint64_t /*request_id*/, bool* sent) {
  *sent = false;
  Status conn = EnsureConnected();
  if (!conn.ok()) return conn;
  auto deadline = std::chrono::steady_clock::now() + options_.request_timeout;
  std::string frame = FramePayload(payload);
  // From here on bytes may reach the server: an apply whose response is
  // lost is indeterminate.
  *sent = true;
  Status send = SendAll(fd_, frame.data(), frame.size(), deadline);
  if (!send.ok()) return send;
  // Exactly one response frame per request, so a per-call reader never
  // strands bytes between calls.
  FrameReader frames(/*expect_magic=*/false, options_.max_frame_bytes);
  char buf[4096];
  while (true) {
    auto got = RecvSome(fd_, buf, sizeof(buf), deadline);
    if (!got.ok()) return got.status();
    frames.Feed(buf, *got);
    auto next = frames.Next();
    if (!next.ok()) return next.status();  // corrupt response stream
    if (next->has_value()) return *std::move(*next);
  }
}

Result<CheckResponseMsg> Client::Check(const std::string& update_text,
                                       bool apply) {
  ++metrics_.requests;
  Status last = Status::Unavailable("no attempt made");
  uint32_t retry_floor_ms = 0;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++metrics_.retries;
      std::this_thread::sleep_for(BackoffDelay(attempt, retry_floor_ms));
      retry_floor_ms = 0;
    }
    CheckRequestMsg req;
    req.request_id = next_request_id_++;
    req.deadline_ms =
        static_cast<uint32_t>(options_.request_timeout.count());
    req.apply = apply;
    req.update_text = update_text;
    bool sent = false;
    auto raw = RoundTrip(EncodeCheckRequest(req), req.request_id, &sent);
    Result<CheckResponseMsg> resp =
        raw.ok() ? DecodeCheckResponse(*raw) : raw.status();
    if (resp.ok() && resp->request_id != req.request_id) {
      resp = Status::ParseError("response for a different request id");
    }
    if (!resp.ok()) {
      // Transport or protocol failure: the connection is unusable either
      // way. Whether we may retry depends on what the server might have
      // seen: a request that never went out (connect refused) is always
      // safe; a lost response to a check-only request is safe (re-checking
      // is idempotent); a lost response to an *apply* is indeterminate —
      // the server may have executed it — and is never retried.
      Disconnect();
      last = resp.status();
      if (sent && apply) {
        ++metrics_.indeterminate;
        return Status::Unavailable(std::string(kIndeterminate) + ": " +
                                   last.ToString());
      }
      continue;
    }
    switch (resp->verdict) {
      case Verdict::kShed:
      case Verdict::kDraining:
        // The server refused before execution and suggested when to come
        // back; its retry-after floors our jittered backoff.
        ++metrics_.shed_seen;
        retry_floor_ms = resp->retry_after_ms;
        last = Status::Unavailable("server " +
                                   std::string(VerdictName(resp->verdict)) +
                                   ": " + resp->message);
        continue;
      case Verdict::kDeadlineExceeded:
        // Admission reject or queue purge: certified never-executed, so
        // retrying is safe even for an apply.
        ++metrics_.deadline_seen;
        last = Status::DeadlineExceeded("server deadline: " + resp->message);
        continue;
      default:
        return *std::move(resp);
    }
  }
  return last;
}

Status Client::Ping() {
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++metrics_.retries;
      std::this_thread::sleep_for(BackoffDelay(attempt, 0));
    }
    uint64_t id = next_request_id_++;
    bool sent = false;
    auto raw = RoundTrip(EncodePing(id), id, &sent);
    if (!raw.ok()) {
      Disconnect();
      last = raw.status();
      continue;  // pings are always idempotent
    }
    auto pong = DecodePingPong(*raw);
    if (pong.ok() && *pong == id) return Status::OK();
    Disconnect();
    last = pong.ok() ? Status::ParseError("pong id mismatch") : pong.status();
  }
  return last;
}

Result<StatsMsg> Client::ServerStats() {
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++metrics_.retries;
      std::this_thread::sleep_for(BackoffDelay(attempt, 0));
    }
    bool sent = false;
    auto raw = RoundTrip(EncodeStatsRequest(), 0, &sent);
    if (!raw.ok()) {
      Disconnect();
      last = raw.status();
      continue;  // stats reads are idempotent
    }
    auto stats = DecodeStatsResponse(*raw);
    if (stats.ok()) return *std::move(stats);
    Disconnect();
    last = stats.status();
  }
  return last;
}

Result<MetricsMsg> Client::Metrics() {
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++metrics_.retries;
      std::this_thread::sleep_for(BackoffDelay(attempt, 0));
    }
    bool sent = false;
    auto raw = RoundTrip(EncodeMetricsRequest(), 0, &sent);
    if (!raw.ok()) {
      Disconnect();
      last = raw.status();
      continue;  // metric scrapes are idempotent
    }
    auto metrics = DecodeMetricsResponse(*raw);
    if (metrics.ok()) return *std::move(metrics);
    Disconnect();
    last = metrics.status();
  }
  return last;
}

}  // namespace ufilter::net
