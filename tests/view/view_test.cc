#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "view/analyzed_view.h"
#include "view/diff.h"
#include "view/materializer.h"
#include "view/relview.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xquery/parser.h"

namespace ufilter::view {
namespace {

class BookViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto q = xq::ParseViewQuery(fixtures::BookViewQuery());
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    query_ = std::move(*q);
    auto v = AnalyzedView::Analyze(query_, &db_->schema());
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    view_ = std::move(*v);
  }

  std::unique_ptr<relational::Database> db_;
  xq::ViewQuery query_;
  std::unique_ptr<AnalyzedView> view_;
};

TEST_F(BookViewTest, RelationsAndRoot) {
  auto rels = view_->Relations();
  ASSERT_EQ(rels.size(), 3u);
  EXPECT_EQ(rels[0], "book");
  EXPECT_EQ(rels[1], "publisher");
  EXPECT_EQ(rels[2], "review");
  EXPECT_EQ(view_->root().tag, "BookView");
}

TEST_F(BookViewTest, ScopesAndConditions) {
  // Root has two groups: the book FLWR and the publisher list FLWR.
  const AvNode& root = view_->root();
  ASSERT_EQ(root.children.size(), 2u);
  const AvNode& book_group = *root.children[0];
  ASSERT_EQ(book_group.kind, AvNode::Kind::kGroup);
  ASSERT_EQ(book_group.scope->vars.size(), 2u);
  EXPECT_EQ(book_group.scope->vars[0].second, "book");
  ASSERT_EQ(book_group.scope->conditions.size(), 3u);
  EXPECT_TRUE(book_group.scope->conditions[0].is_correlation);
  EXPECT_EQ(book_group.scope->conditions[1].ToString(), "book.price < 50.00");
}

TEST_F(BookViewTest, ElementPathResolution) {
  auto book = view_->ResolveElementPath({"book"});
  ASSERT_TRUE(book.ok());
  EXPECT_EQ((*book)->tag, "book");
  auto pub_inner = view_->ResolveElementPath({"book", "publisher"});
  ASSERT_TRUE(pub_inner.ok());
  auto pub_outer = view_->ResolveElementPath({"publisher"});
  ASSERT_TRUE(pub_outer.ok());
  EXPECT_NE(*pub_inner, *pub_outer);
  EXPECT_FALSE(view_->ResolveElementPath({"book", "missing"}).ok());
}

TEST_F(BookViewTest, RepeatsBelowAndTagPath) {
  auto review = view_->ResolveElementPath({"book", "review"});
  ASSERT_TRUE(review.ok());
  auto path = (*review)->TagPath();
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], "book");
  EXPECT_EQ(path[1], "review");
  auto book = view_->ResolveElementPath({"book"});
  EXPECT_TRUE((*review)->RepeatsBelow(&view_->root()));
  EXPECT_TRUE((*review)->RepeatsBelow(*book));
  auto pub = view_->ResolveElementPath({"book", "publisher"});
  EXPECT_FALSE((*pub)->RepeatsBelow(*book));
}

TEST_F(BookViewTest, AnalyzerRejectsUnknownNames) {
  auto bad1 = xq::ParseViewQuery(
      "<V>FOR $x IN document(\"d\")/nosuch/row RETURN { $x/a }</V>");
  ASSERT_TRUE(bad1.ok());
  EXPECT_FALSE(AnalyzedView::Analyze(*bad1, &db_->schema()).ok());
  auto bad2 = xq::ParseViewQuery(
      "<V>FOR $x IN document(\"d\")/book/row RETURN { $x/nocol }</V>");
  ASSERT_TRUE(bad2.ok());
  EXPECT_FALSE(AnalyzedView::Analyze(*bad2, &db_->schema()).ok());
  auto bad3 = xq::ParseViewQuery(
      "<V>FOR $x IN document(\"d\")/book/row RETURN { $y/bookid }</V>");
  ASSERT_TRUE(bad3.ok());
  EXPECT_FALSE(AnalyzedView::Analyze(*bad3, &db_->schema()).ok());
}

TEST_F(BookViewTest, MaterializesFig3bContent) {
  Materializer m(db_.get());
  auto view = m.Materialize(*view_);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const xml::Node& root = **view;
  EXPECT_EQ(root.label(), "BookView");
  // Two qualifying books (98001 and 98003; 98002 fails year > 1990).
  auto books = root.FindChildren("book");
  ASSERT_EQ(books.size(), 2u);
  EXPECT_EQ(books[0]->ChildText("bookid"), "98001");
  EXPECT_EQ(books[0]->ChildText("price"), "37.00");
  EXPECT_EQ(books[0]->FindChildren("review").size(), 2u);
  EXPECT_EQ(books[1]->ChildText("bookid"), "98003");
  EXPECT_TRUE(books[1]->FindChildren("review").empty());
  // Nested publisher.
  ASSERT_NE(books[0]->FindChild("publisher"), nullptr);
  EXPECT_EQ(books[0]->FindChild("publisher")->ChildText("pubname"),
            "McGraw-Hill Inc.");
  // All three publishers republished at the top level.
  EXPECT_EQ(root.FindChildren("publisher").size(), 3u);
}

TEST_F(BookViewTest, MaterializerOmitsNullLeaves) {
  // A book with NULL price renders without a <price> element — but price
  // has a view predicate, so use year instead (no predicate on year means
  // year > 1990 filters it; use a fresh view without predicates).
  auto q = xq::ParseViewQuery(
      "<V>FOR $b IN document(\"d\")/book/row RETURN { <book> $b/bookid, "
      "$b/year </book> }</V>");
  ASSERT_TRUE(q.ok());
  auto view = AnalyzedView::Analyze(*q, &db_->schema());
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(db_->Insert("book", {Value::String("99"), Value::String("T"),
                                   Value::Null(), Value::Double(5),
                                   Value::Null()})
                  .ok());
  Materializer m(db_.get());
  auto xml = m.Materialize(**view);
  ASSERT_TRUE(xml.ok());
  auto books = (*xml)->FindChildren("book");
  ASSERT_EQ(books.size(), 4u);
  EXPECT_EQ(books[3]->FindChild("year"), nullptr);
  EXPECT_NE(books[3]->FindChild("bookid"), nullptr);
}

TEST_F(BookViewTest, RelationalViewMappingFig11) {
  auto rv = BuildRelationalView(db_.get(), *view_);
  ASSERT_TRUE(rv.ok()) << rv.status().ToString();
  // Columns: bookid,title,price,pubid,pubname,reviewid,comment (+ the
  // republished branch's pubid_1,pubname_1 are part of the flatten list).
  EXPECT_GE(rv->columns.size(), 7u);
  EXPECT_EQ(rv->columns[0].name, "bookid");
  EXPECT_EQ(rv->columns[0].source.relation, "book");
  // Rows: book 98001 x 2 reviews + book 98003 with NULL review columns.
  ASSERT_EQ(rv->rows.size(), 3u);
  int reviewid = rv->ColumnIndex("reviewid");
  ASSERT_GE(reviewid, 0);
  EXPECT_FALSE(rv->rows[0][static_cast<size_t>(reviewid)].is_null());
  EXPECT_TRUE(rv->rows[2][static_cast<size_t>(reviewid)].is_null());
  std::string sql = rv->ToCreateViewSql("RelationalBookView");
  EXPECT_NE(sql.find("CREATE VIEW RelationalBookView"), std::string::npos);
}

TEST(DiffTest, ReportsFirstDifference) {
  auto a = xml::Parse("<v><b><x>1</x></b></v>");
  auto b = xml::Parse("<v><b><x>2</x></b></v>");
  ASSERT_TRUE(a.ok() && b.ok());
  auto d = FirstDifference(**a, **b);
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->find("'1' vs '2'"), std::string::npos);
  EXPECT_TRUE(TreesEqual(**a, **a));
}

TEST(DiffTest, ChildCountDifference) {
  auto a = xml::Parse("<v><b/></v>");
  auto b = xml::Parse("<v><b/><b/></v>");
  ASSERT_TRUE(a.ok() && b.ok());
  auto d = FirstDifference(**a, **b);
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->find("child count"), std::string::npos);
}

}  // namespace
}  // namespace ufilter::view
