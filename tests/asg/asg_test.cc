// Asserts the ASG construction against the paper's Figs. 8 and 9: node
// annotations (UCBinding/UPBinding, checks), edge cardinalities/conditions,
// closures, mapping closures and the base ASG shape.
#include <gtest/gtest.h>

#include "asg/view_asg.h"
#include "fixtures/bookdb.h"
#include "ufilter/star.h"
#include "xquery/parser.h"

namespace ufilter::asg {
namespace {

using view::AnalyzedView;

class BookAsgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto q = xq::ParseViewQuery(fixtures::BookViewQuery());
    ASSERT_TRUE(q.ok());
    query_ = std::move(*q);
    auto v = AnalyzedView::Analyze(query_, &db_->schema());
    ASSERT_TRUE(v.ok());
    view_ = std::move(*v);
    auto gv = ViewAsg::Build(*view_);
    ASSERT_TRUE(gv.ok()) << gv.status().ToString();
    gv_ = std::move(*gv);
    gd_ = BaseAsg::Build(*view_);
  }

  const ViewNode* Node(const std::vector<std::string>& path) {
    auto av = view_->ResolveElementPath(path);
    EXPECT_TRUE(av.ok());
    return gv_->NodeForAv(*av);
  }

  std::unique_ptr<relational::Database> db_;
  xq::ViewQuery query_;
  std::unique_ptr<AnalyzedView> view_;
  std::unique_ptr<ViewAsg> gv_;
  BaseAsg gd_;
};

TEST_F(BookAsgTest, Fig8Bindings) {
  const ViewNode& root = gv_->root();
  EXPECT_TRUE(root.uc_binding.empty());
  EXPECT_EQ(root.up_binding,
            (std::vector<std::string>{"book", "publisher", "review"}));

  const ViewNode* vc1 = Node({"book"});
  ASSERT_NE(vc1, nullptr);
  EXPECT_EQ(vc1->uc_binding, (std::vector<std::string>{"book", "publisher"}));
  EXPECT_EQ(vc1->up_binding,
            (std::vector<std::string>{"book", "publisher", "review"}));

  const ViewNode* vc2 = Node({"book", "publisher"});
  ASSERT_NE(vc2, nullptr);
  EXPECT_EQ(vc2->uc_binding, (std::vector<std::string>{"book", "publisher"}));
  EXPECT_EQ(vc2->up_binding, (std::vector<std::string>{"publisher"}));

  const ViewNode* vc3 = Node({"book", "review"});
  ASSERT_NE(vc3, nullptr);
  EXPECT_EQ(vc3->uc_binding,
            (std::vector<std::string>{"book", "publisher", "review"}));
  EXPECT_EQ(vc3->up_binding, (std::vector<std::string>{"review"}));

  const ViewNode* vc4 = Node({"publisher"});
  ASSERT_NE(vc4, nullptr);
  EXPECT_EQ(vc4->uc_binding, (std::vector<std::string>{"publisher"}));
  EXPECT_EQ(vc4->up_binding, (std::vector<std::string>{"publisher"}));
}

TEST_F(BookAsgTest, Fig8CurrentRelations) {
  EXPECT_EQ(gv_->CurrentRelations(Node({"book"})->id),
            (std::vector<std::string>{"book", "publisher"}));
  EXPECT_TRUE(gv_->CurrentRelations(Node({"book", "publisher"})->id).empty());
  EXPECT_EQ(gv_->CurrentRelations(Node({"book", "review"})->id),
            (std::vector<std::string>{"review"}));
  EXPECT_EQ(gv_->CurrentRelations(Node({"publisher"})->id),
            (std::vector<std::string>{"publisher"}));
}

TEST_F(BookAsgTest, Fig8EdgeAnnotations) {
  // (vR, vC1): * with the book-publisher join condition.
  const ViewNode* vc1 = Node({"book"});
  EXPECT_EQ(vc1->card, Cardinality::kStar);
  bool has_join = false;
  for (const auto& c : vc1->edge_conditions) {
    if (c.is_correlation) has_join = true;
  }
  EXPECT_TRUE(has_join);
  // (vC1, vC2): 1.
  EXPECT_EQ(Node({"book", "publisher"})->card, Cardinality::kOne);
  // (vC1, vC3): *.
  EXPECT_EQ(Node({"book", "review"})->card, Cardinality::kStar);
  // (vR, vC4): *.
  EXPECT_EQ(Node({"publisher"})->card, Cardinality::kStar);
}

TEST_F(BookAsgTest, Fig8LeafAnnotations) {
  // The price leaf merges the DB CHECK (> 0) and the query predicate (< 50).
  const ViewNode* vc1 = Node({"book"});
  int price_tag = -1;
  for (int c : vc1->children) {
    if (gv_->node(c).tag == "price") price_tag = c;
  }
  ASSERT_GE(price_tag, 0);
  const ViewNode& leaf = gv_->node(gv_->node(price_tag).children[0]);
  EXPECT_EQ(leaf.kind, NodeKind::kLeaf);
  ASSERT_EQ(leaf.checks.size(), 2u);
  EXPECT_EQ(leaf.checks[0].op, CompareOp::kGt);
  EXPECT_EQ(leaf.checks[1].op, CompareOp::kLt);
  EXPECT_FALSE(leaf.not_null);

  // bookid is NOT NULL (key).
  int bookid_tag = vc1->children[0];
  const ViewNode& bookid_leaf =
      gv_->node(gv_->node(bookid_tag).children[0]);
  EXPECT_TRUE(bookid_leaf.not_null);
  EXPECT_EQ(bookid_leaf.relation, "book");
  EXPECT_EQ(bookid_leaf.attr, "bookid");
}

TEST_F(BookAsgTest, NodeClosuresMatchSection512) {
  // vC2+ = {publisher.pubid, publisher.pubname}.
  Closure c2 = gv_->NodeClosure(Node({"book", "publisher"})->id);
  EXPECT_EQ(c2.Serialize(), "{publisher.pubid,publisher.pubname}");
  // vC3+ = {review.comment, review.reviewid}.
  Closure c3 = gv_->NodeClosure(Node({"book", "review"})->id);
  EXPECT_EQ(c3.Serialize(), "{review.comment,review.reviewid}");
  // vC1+ inlines book and publisher leaves and stars the review group.
  Closure c1 = gv_->NodeClosure(Node({"book"})->id);
  EXPECT_EQ(c1.leaves.size(), 5u);
  ASSERT_EQ(c1.starred.size(), 1u);
  EXPECT_EQ(c1.starred[0].group.Serialize(),
            "{review.comment,review.reviewid}");
  EXPECT_EQ(c1.starred[0].condition, "book.bookid=review.bookid");
}

TEST_F(BookAsgTest, Fig9BaseAsg) {
  EXPECT_EQ(gd_.relations().size(), 3u);
  EXPECT_TRUE(gd_.HasRelation("book"));
  EXPECT_TRUE(gd_.HasRelation("publisher"));
  EXPECT_TRUE(gd_.HasRelation("review"));
  // publisher's closure nests book, which nests review.
  auto nested = gd_.NestedRelations("publisher");
  EXPECT_EQ(nested, (std::vector<std::string>{"book", "review"}));
  EXPECT_EQ(gd_.NestedRelations("review"),
            (std::vector<std::string>{}));
  // n8+ (review) = {review.comment, review.reviewid}.
  EXPECT_EQ(gd_.RelationClosure("review").Serialize(),
            "{review.comment,review.reviewid}");
  // n4+ (book) = {bookid,title,price,(review...)*con2}.
  Closure book = gd_.RelationClosure("book");
  EXPECT_EQ(book.leaves.size(), 3u);
  ASSERT_EQ(book.starred.size(), 1u);
  EXPECT_EQ(book.starred[0].condition, "book.bookid=review.bookid");
}

TEST_F(BookAsgTest, MappingClosures) {
  // Mapping closure of vC3's leaves = review's closure (clean).
  Closure cv3 = gv_->NodeClosure(Node({"book", "review"})->id);
  std::vector<std::string> leaves;
  CollectClosureLeaves(cv3, &leaves);
  Closure cd3 = gd_.MappingClosure(leaves);
  EXPECT_TRUE(cv3.Equals(cd3));

  // Mapping closure of vC2's leaves is publisher's full closure (dirty).
  Closure cv2 = gv_->NodeClosure(Node({"book", "publisher"})->id);
  leaves.clear();
  CollectClosureLeaves(cv2, &leaves);
  Closure cd2 = gd_.MappingClosure(leaves);
  EXPECT_FALSE(cv2.Equals(cd2));
  // The ⊔ dedup keeps only publisher: book and review nest inside it.
  Closure cd1 = gd_.MappingClosure(
      {"book.bookid", "publisher.pubid", "review.reviewid"});
  EXPECT_TRUE(cd1.Equals(gd_.RelationClosure("publisher")));
}

TEST_F(BookAsgTest, ClosureContainment) {
  Closure review = gd_.RelationClosure("review");
  Closure book = gd_.RelationClosure("book");
  Closure publisher = gd_.RelationClosure("publisher");
  EXPECT_TRUE(review.ContainedIn(book));      // n8+ ⊆ n4+
  EXPECT_TRUE(review.ContainedIn(publisher));
  EXPECT_TRUE(book.ContainedIn(publisher));
  EXPECT_FALSE(publisher.ContainedIn(book));
}

TEST_F(BookAsgTest, SubtreeLeavesAndDescendants) {
  const ViewNode* vc1 = Node({"book"});
  auto leaves = gv_->SubtreeLeaves(vc1->id);
  EXPECT_EQ(leaves.size(), 7u);  // bookid,title,price,pubid,pubname,reviewid,comment
  const ViewNode* vc3 = Node({"book", "review"});
  EXPECT_TRUE(gv_->IsDescendant(vc1->id, vc3->id));
  EXPECT_FALSE(gv_->IsDescendant(vc3->id, vc1->id));
  EXPECT_TRUE(gv_->IsDescendant(vc1->id, vc1->id));
}

TEST_F(BookAsgTest, ParentIsSingleInstance) {
  // book's parent is the root: single instance.
  EXPECT_TRUE(gv_->ParentIsSingleInstance(Node({"book"})->id));
  // review's parent (book) repeats.
  EXPECT_FALSE(gv_->ParentIsSingleInstance(Node({"book", "review"})->id));
}

TEST(ClosureTest, NormalizeSortsAndDedupes) {
  Closure c;
  c.leaves = {"b.y", "a.x", "b.y"};
  c.Normalize();
  EXPECT_EQ(c.Serialize(), "{a.x,b.y}");
}

TEST(ClosureTest, UnionEliminatesDuplicateSubgroups) {
  Closure sub;
  sub.leaves = {"r.a"};
  Closure c1;
  c1.starred.push_back({sub, "cond"});
  Closure c2;
  c2.starred.push_back({sub, "cond"});
  c2.leaves = {"x.y"};
  c1.UnionWith(c2);
  EXPECT_EQ(c1.starred.size(), 1u);
  EXPECT_EQ(c1.leaves.size(), 1u);
}

TEST(ClosureTest, NormalizeConditionSortsSides) {
  EXPECT_EQ(NormalizeCondition("b.x", "=", "a.y"), "a.y=b.x");
  EXPECT_EQ(NormalizeCondition("a.y", "=", "b.x"), "a.y=b.x");
  EXPECT_EQ(NormalizeCondition("b.x", "<", "a.y"), "b.x<a.y");
}

}  // namespace
}  // namespace ufilter::asg
