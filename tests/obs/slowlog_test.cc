#include "obs/slowlog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../support/mini_json.h"
#include "../support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "service/check_service.h"
#include "xquery/normalize.h"

namespace ufilter::obs {
namespace {

using ufilter::test_support::JsonValue;
using ufilter::test_support::MiniJsonParser;
using ufilter::test_support::TempDir;

SlowCheckRecord MakeRecord(uint64_t total_ns) {
  SlowCheckRecord rec;
  rec.request_id = 42;
  rec.session = "sess-1";
  rec.verdict = "executed";
  rec.total_ns = total_ns;
  rec.stage_ns[static_cast<size_t>(Stage::kQueueWait)] = 1000;
  rec.stage_ns[static_cast<size_t>(Stage::kProbe)] = 2000;
  rec.normalized_text = "FOR $b IN doc()//x";
  rec.template_hash = 7;
  rec.from_plan_cache = true;
  return rec;
}

TEST(SlowLogFormatTest, RecordIsOneValidJsonObject) {
  std::string line = FormatSlowCheckRecord(MakeRecord(5000000));
  EXPECT_EQ(line.find('\n'), std::string::npos);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(MiniJsonParser::Parse(line, &doc, &err)) << err << ": " << line;
  EXPECT_EQ(doc.Get("event")->str, "slow_check");
  EXPECT_EQ(doc.Get("request_id")->num, 42.0);
  EXPECT_EQ(doc.Get("session")->str, "sess-1");
  EXPECT_EQ(doc.Get("verdict")->str, "executed");
  EXPECT_EQ(doc.Get("total_ns")->num, 5000000.0);
  EXPECT_EQ(doc.Get("template_hash")->num, 7.0);
  EXPECT_TRUE(doc.Get("from_plan_cache")->b);
  EXPECT_EQ(doc.Get("normalized")->str, "FOR $b IN doc()//x");
  const JsonValue* stages = doc.Get("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->is_object());
  // All eight taxonomy keys, every time (zeros included — the breakdown is
  // the point of the record).
  ASSERT_EQ(stages->obj.size(), kStageCount);
  for (size_t i = 0; i < kStageCount; ++i) {
    ASSERT_NE(stages->Get(StageName(static_cast<Stage>(i))), nullptr) << i;
  }
  EXPECT_EQ(stages->Get("queue_wait")->num, 1000.0);
  EXPECT_EQ(stages->Get("probe")->num, 2000.0);
  EXPECT_EQ(stages->Get("wal_sync")->num, 0.0);
}

TEST(SlowLogFormatTest, EscapesHostileStrings) {
  SlowCheckRecord rec = MakeRecord(1);
  rec.session = "quote\" slash\\ nl\n tab\t ctl\x01";
  rec.normalized_text = "text with \"quotes\" and \\back\\slashes\\";
  std::string line = FormatSlowCheckRecord(rec);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(MiniJsonParser::Parse(line, &doc, &err)) << err << ": " << line;
  EXPECT_EQ(doc.Get("session")->str, rec.session);
  EXPECT_EQ(doc.Get("normalized")->str, rec.normalized_text);
}

TEST(SlowLogTest, ThresholdGates) {
  TempDir tmp("slowlog");
  SlowLogOptions opts;
  opts.threshold_ns = 1000000;  // 1ms
  opts.path = tmp.path("slow.log");
  SlowLog log;
  log.Configure(opts);
  ASSERT_TRUE(log.enabled());
  log.Log(MakeRecord(999999));   // under: dropped silently
  log.Log(MakeRecord(1000000));  // at threshold: logged
  log.Log(MakeRecord(5000000));  // over: logged
  EXPECT_EQ(log.logged(), 2u);
  EXPECT_EQ(log.suppressed(), 0u);
}

TEST(SlowLogTest, DisabledLogsNothing) {
  SlowLog log;
  SlowLogOptions opts;  // threshold 0 = off
  log.Configure(opts);
  EXPECT_FALSE(log.enabled());
  log.Log(MakeRecord(UINT64_MAX));
  EXPECT_EQ(log.logged(), 0u);
}

TEST(SlowLogTest, RateLimitSuppresssesAndCounts) {
  TempDir tmp("slowlog");
  SlowLogOptions opts;
  opts.threshold_ns = 1;
  opts.max_per_sec = 2;
  opts.path = tmp.path("slow.log");
  SlowLog log;
  log.Configure(opts);
  for (int i = 0; i < 6; ++i) log.Log(MakeRecord(100));
  // The burst may straddle one wall-second boundary, so up to two windows
  // of 2 may pass; at least two records must be suppressed either way.
  EXPECT_GE(log.logged(), 2u);
  EXPECT_LE(log.logged(), 4u);
  EXPECT_GE(log.suppressed(), 2u);
  EXPECT_EQ(log.logged() + log.suppressed(), 6u);
}

TEST(SlowLogTest, FileSinkWritesParsableLines) {
  TempDir tmp("slowlog");
  std::string path = tmp.path("slow.log");
  {
    SlowLogOptions opts;
    opts.threshold_ns = 1;
    opts.path = path;
    SlowLog log;
    log.Configure(opts);
    log.Log(MakeRecord(1111));
    log.Log(MakeRecord(2222));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(MiniJsonParser::Parse(line, &doc, &err)) << err;
    EXPECT_EQ(doc.Get("event")->str, "slow_check");
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

// End to end through a real service: a writer-lane apply with an injected
// 50ms lane hold must cross the 10ms threshold, and its logged stage
// breakdown must account for the end-to-end latency (the ±5% acceptance:
// the stages cover everything but scheduling gaps).
TEST(SlowLogServiceTest, SlowApplyIsLoggedWithAccountedStages) {
  constexpr int kDepth = 3;
  TempDir tmp("slowlog_svc");
  std::string path = tmp.path("slow.log");
  auto db = ufilter::fixtures::MakeChainDatabase(kDepth, 16);
  ASSERT_TRUE(db.ok());
  auto uf = check::UFilter::Create(db->get(),
                                   ufilter::fixtures::ChainViewQuery(kDepth));
  ASSERT_TRUE(uf.ok());

  service::CheckServiceOptions opts;
  opts.worker_threads = 1;
  opts.writer_lane_hold_ms_for_testing = 50;
  opts.slow_log.threshold_ns = 10000000;  // 10ms
  opts.slow_log.path = path;
  service::CheckService svc(uf->get(), opts);
  auto session = svc.OpenSession("slowpoke");

  check::CheckOptions dry;
  dry.apply = false;
  check::CheckOptions apply;
  // A fast check first: it must NOT be logged (well under 10ms)...
  auto fast =
      svc.Submit(session, ufilter::fixtures::ChainDeleteUpdate(kDepth - 1, 1),
                 dry)
          .get();
  ASSERT_EQ(fast.outcome, check::CheckOutcome::kExecuted);
  // ...then the slow apply, which must.
  std::string update =
      ufilter::fixtures::ChainReplaceUpdate(kDepth - 1, 0, "slow");
  auto slow = svc.Submit(session, update, apply).get();
  ASSERT_EQ(slow.outcome, check::CheckOutcome::kExecuted);
  EXPECT_EQ(svc.slow_log().logged(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(MiniJsonParser::Parse(line, &doc, &err)) << err << ": " << line;
  EXPECT_EQ(doc.Get("event")->str, "slow_check");
  EXPECT_EQ(doc.Get("session")->str, "slowpoke");
  EXPECT_EQ(doc.Get("verdict")->str, "executed");

  double total = doc.Get("total_ns")->num;
  EXPECT_GE(total, 50000000.0);  // the injected lane hold is inside it
  const JsonValue* stages = doc.Get("stages");
  ASSERT_NE(stages, nullptr);
  double sum = 0;
  for (const auto& [name, v] : stages->obj) sum += v.num;
  // The breakdown accounts for the latency: stages are disjoint wall-time
  // intervals of one request, so their sum can only fall short of total by
  // the untimed gaps (scheduling, lane-mutex wait) — which the 50ms hold
  // dwarfs. ±5% is the documented acceptance.
  EXPECT_GE(sum, 0.95 * total) << line;
  EXPECT_LE(sum, 1.05 * total) << line;
  // The apply stage itself carries the hold.
  EXPECT_GE(stages->Get("apply")->num, 50000000.0);

  // Plan fingerprint: normalized text + hash identify the template.
  std::string normalized = doc.Get("normalized")->str;
  EXPECT_EQ(normalized, xq::NormalizeUpdateText(update));
  ASSERT_TRUE(doc.Get("template_hash")->is_u64);
  EXPECT_EQ(doc.Get("template_hash")->u64, xq::HashUpdateTemplate(normalized));

  // The suppression/logged counters surface in the registry.
  auto reg = svc.registry().Collect();
  const obs::MetricSample* logged =
      obs::FindSample(reg, "slow_checks_logged");
  ASSERT_NE(logged, nullptr);
  EXPECT_EQ(logged->value, 1u);
}

}  // namespace
}  // namespace ufilter::obs
