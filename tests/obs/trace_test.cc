#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "../support/mini_json.h"
#include "fixtures/synthetic.h"
#include "obs/metrics.h"
#include "service/check_service.h"

namespace ufilter::obs {
namespace {

using ufilter::test_support::JsonValue;
using ufilter::test_support::MiniJsonParser;

const std::set<std::string>& StageTaxonomy() {
  static const std::set<std::string> names = [] {
    std::set<std::string> s;
    for (size_t i = 0; i < kStageCount; ++i) {
      s.insert(StageName(static_cast<Stage>(i)));
    }
    return s;
  }();
  return names;
}

TEST(TraceTest, StageTaxonomyIsFixed) {
  EXPECT_EQ(kStageCount, 8u);
  EXPECT_EQ(StageTaxonomy().size(), kStageCount);  // names are distinct
  EXPECT_STREQ(StageName(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(StageName(Stage::kResponseWrite), "response_write");
}

TEST(TraceTest, InactiveContextIsANoOp) {
  TraceContext t;  // default-constructed: inactive
  EXPECT_FALSE(t.active());
  auto now = TraceClock::now();
  t.RecordSpan(Stage::kProbe, now, now + std::chrono::microseconds(5));
  t.RecordDuration(Stage::kApply, 1234);
  EXPECT_EQ(t.StageTotalNs(Stage::kProbe), 0u);
  EXPECT_EQ(t.StageTotalNs(Stage::kApply), 0u);
  { ScopedSpan span(&t, Stage::kCompile); }
  { ScopedSpan null_span(nullptr, Stage::kCompile); }
  EXPECT_TRUE(t.spans().empty());
}

TEST(TraceTest, UnsampledAccumulatesTotalsWithoutSpans) {
  Tracer::Options opts;
  opts.sample_every = 0;  // full traces off
  Tracer tracer(opts);
  TraceContext t = tracer.Begin(1);
  EXPECT_TRUE(t.active());
  EXPECT_FALSE(t.sampled());
  auto now = TraceClock::now();
  t.RecordSpan(Stage::kProbe, now, now + std::chrono::microseconds(3));
  EXPECT_GE(t.StageTotalNs(Stage::kProbe), 3000u);
  EXPECT_TRUE(t.spans().empty());
  tracer.Finish(t);
  EXPECT_FALSE(t.active());
  EXPECT_GT(t.total_ns(), 0u);
  EXPECT_EQ(tracer.sampled_count(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  // Finish is idempotent.
  uint64_t total = t.total_ns();
  tracer.Finish(t);
  EXPECT_EQ(t.total_ns(), total);
}

TEST(TraceTest, SampledSpansLandInRing) {
  Tracer::Options opts;
  opts.sample_every = 1;
  opts.ring_capacity = 3;
  Tracer tracer(opts);
  for (uint64_t id = 1; id <= 5; ++id) {
    TraceContext t = tracer.Begin(id);
    ASSERT_TRUE(t.sampled());
    auto b = t.born();
    t.RecordSpanLane(Stage::kProbe, b + std::chrono::microseconds(1),
                     b + std::chrono::microseconds(4), 7);
    tracer.Finish(t);
  }
  EXPECT_EQ(tracer.sampled_count(), 5u);
  std::vector<CompletedTrace> ring = tracer.Snapshot();
  // Ring bounded at capacity, keeping the newest.
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.front().request_id, 3u);
  EXPECT_EQ(ring.back().request_id, 5u);
  ASSERT_EQ(ring.back().spans.size(), 1u);
  EXPECT_EQ(ring.back().spans[0].lane, 7u);
  EXPECT_EQ(ring.back().spans[0].stage, Stage::kProbe);
  EXPECT_GE(ring.back().spans[0].dur_ns, 3000u);
}

TEST(TraceTest, SamplesOneInM) {
  Tracer::Options opts;
  opts.sample_every = 4;
  Tracer tracer(opts);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) {
    TraceContext t = tracer.Begin(static_cast<uint64_t>(i));
    if (t.sampled()) ++sampled;
    tracer.Finish(t);
  }
  EXPECT_EQ(sampled, 4);
}

// Validates a Chrome trace-event document: overall shape, span names from
// the fixed taxonomy, ph=="X", and per-tid tracks that are monotonic and
// non-overlapping (what chrome://tracing / Perfetto require to render).
void ValidateChromeTrace(const std::string& json, size_t expect_min_events) {
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(MiniJsonParser::Parse(json, &doc, &err)) << err;
  const JsonValue* events = doc.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->arr.size(), expect_min_events);
  // Group by tid, then check each track.
  std::map<double, std::vector<std::pair<double, double>>> tracks;
  for (const JsonValue& e : events->arr) {
    ASSERT_TRUE(e.is_object());
    const JsonValue* name = e.Get("name");
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(StageTaxonomy().count(name->str) == 1)
        << "unknown span name: " << name->str;
    const JsonValue* ph = e.Get("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str, "X");
    const JsonValue* cat = e.Get("cat");
    ASSERT_NE(cat, nullptr);
    EXPECT_EQ(cat->str, "check");
    const JsonValue* ts = e.Get("ts");
    const JsonValue* dur = e.Get("dur");
    const JsonValue* tid = e.Get("tid");
    const JsonValue* pid = e.Get("pid");
    ASSERT_TRUE(ts != nullptr && ts->is_number());
    ASSERT_TRUE(dur != nullptr && dur->is_number());
    ASSERT_TRUE(tid != nullptr && tid->is_number());
    ASSERT_TRUE(pid != nullptr && pid->is_number());
    EXPECT_GE(ts->num, 0.0);
    EXPECT_GE(dur->num, 0.0);
    const JsonValue* args = e.Get("args");
    ASSERT_TRUE(args != nullptr && args->is_object());
    ASSERT_NE(args->Get("request_id"), nullptr);
    tracks[tid->num].push_back({ts->num, dur->num});
  }
  for (auto& [tid, spans] : tracks) {
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i) {
      // Non-overlap with a hair of tolerance for the µs text rounding.
      EXPECT_GE(spans[i].first + 0.002,
                spans[i - 1].first + spans[i - 1].second)
          << "overlapping spans on tid " << tid;
    }
  }
}

TEST(TraceTest, ExportChromeJsonHandcrafted) {
  Tracer::Options opts;
  opts.sample_every = 1;
  Tracer tracer(opts);
  for (uint64_t id = 1; id <= 3; ++id) {
    TraceContext t = tracer.Begin(id);
    auto b = t.born();
    t.RecordSpanLane(Stage::kQueueWait, b, b + std::chrono::microseconds(2),
                     0);
    t.RecordSpanLane(Stage::kSnapshotPin, b + std::chrono::microseconds(2),
                     b + std::chrono::microseconds(3), 1);
    t.RecordSpanLane(Stage::kProbe, b + std::chrono::microseconds(3),
                     b + std::chrono::microseconds(9), 1);
    tracer.Finish(t);
  }
  ValidateChromeTrace(tracer.ExportChromeJson(), 9);
  // Empty ring still exports a valid (empty) document.
  Tracer empty;
  JsonValue doc;
  ASSERT_TRUE(MiniJsonParser::Parse(empty.ExportChromeJson(), &doc));
  ASSERT_NE(doc.Get("traceEvents"), nullptr);
  EXPECT_TRUE(doc.Get("traceEvents")->arr.empty());
}

// End to end: a real CheckService with sample_every=1 produces sampled
// traces whose spans cover the read path, stage histograms fill in, and
// the export is a valid Chrome document.
TEST(TraceServiceTest, ServiceTracesEndToEnd) {
  constexpr int kDepth = 3;
  auto db = ufilter::fixtures::MakeChainDatabase(kDepth, 32);
  ASSERT_TRUE(db.ok());
  auto uf = check::UFilter::Create(db->get(),
                                   ufilter::fixtures::ChainViewQuery(kDepth));
  ASSERT_TRUE(uf.ok());

  service::CheckServiceOptions opts;
  opts.worker_threads = 2;
  opts.trace.sample_every = 1;
  service::CheckService svc(uf->get(), opts);
  auto session = svc.OpenSession("tracer");

  check::CheckOptions dry;
  dry.apply = false;
  check::CheckOptions apply;  // writer lane: covers apply + wal_sync spans
  constexpr int kChecks = 24;
  for (int i = 0; i < kChecks; ++i) {
    auto report =
        svc.Submit(session,
                   ufilter::fixtures::ChainDeleteUpdate(kDepth - 1, i % 8),
                   dry)
            .get();
    ASSERT_EQ(report.outcome, check::CheckOutcome::kExecuted);
  }
  auto applied =
      svc.Submit(session,
                 ufilter::fixtures::ChainReplaceUpdate(kDepth - 1, 0, "t0"),
                 apply)
          .get();
  ASSERT_EQ(applied.outcome, check::CheckOutcome::kExecuted);

  EXPECT_EQ(svc.tracer().sampled_count(),
            static_cast<uint64_t>(kChecks) + 1);
  std::vector<CompletedTrace> traces = svc.tracer().Snapshot();
  ASSERT_EQ(traces.size(), static_cast<size_t>(kChecks) + 1);
  // A read-only check's trace must show the fast path: queue_wait,
  // snapshot_pin, plan_cache, probe. Distinct request ids throughout.
  std::set<uint64_t> ids;
  for (const CompletedTrace& t : traces) ids.insert(t.request_id);
  EXPECT_EQ(ids.size(), traces.size());
  std::set<Stage> seen;
  for (const CompletedTrace& t : traces) {
    EXPECT_GT(t.total_ns, 0u);
    ASSERT_FALSE(t.spans.empty());
    for (const TraceSpan& s : t.spans) seen.insert(s.stage);
  }
  EXPECT_TRUE(seen.count(Stage::kQueueWait));
  EXPECT_TRUE(seen.count(Stage::kSnapshotPin));
  EXPECT_TRUE(seen.count(Stage::kPlanCache));
  EXPECT_TRUE(seen.count(Stage::kProbe));
  // The apply went through the writer lane: its trace shows apply+wal_sync.
  EXPECT_TRUE(seen.count(Stage::kApply));
  EXPECT_TRUE(seen.count(Stage::kWalSync));

  ValidateChromeTrace(svc.tracer().ExportChromeJson(), traces.size());

  // The always-on stage histograms saw every request.
  obs::RegistrySnapshot reg = svc.registry().Collect();
  const obs::MetricSample* lat = obs::FindSample(reg, "check_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, static_cast<uint64_t>(kChecks) + 1);
  const obs::MetricSample* probe = obs::FindSample(reg, "stage_probe_ns");
  ASSERT_NE(probe, nullptr);
  EXPECT_GT(probe->hist.count, 0u);
  const obs::MetricSample* qw = obs::FindSample(reg, "stage_queue_wait_ns");
  ASSERT_NE(qw, nullptr);
  EXPECT_EQ(qw->hist.count, static_cast<uint64_t>(kChecks) + 1);
}

// metrics_enabled=false must not break anything — and must record nothing.
TEST(TraceServiceTest, MetricsDisabledServiceStillServes) {
  constexpr int kDepth = 3;
  auto db = ufilter::fixtures::MakeChainDatabase(kDepth, 16);
  ASSERT_TRUE(db.ok());
  auto uf = check::UFilter::Create(db->get(),
                                   ufilter::fixtures::ChainViewQuery(kDepth));
  ASSERT_TRUE(uf.ok());
  service::CheckServiceOptions opts;
  opts.worker_threads = 1;
  opts.metrics_enabled = false;
  service::CheckService svc(uf->get(), opts);
  auto session = svc.OpenSession();
  check::CheckOptions dry;
  dry.apply = false;
  for (int i = 0; i < 8; ++i) {
    auto report =
        svc.Submit(session,
                   ufilter::fixtures::ChainDeleteUpdate(kDepth - 1, i), dry)
            .get();
    ASSERT_EQ(report.outcome, check::CheckOutcome::kExecuted);
  }
  EXPECT_EQ(svc.StartTrace(), nullptr);
  EXPECT_EQ(svc.tracer().sampled_count(), 0u);
  obs::RegistrySnapshot reg = svc.registry().Collect();
  const obs::MetricSample* lat = obs::FindSample(reg, "check_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, 0u);  // the clock was never read
  // Plain counters stay on regardless.
  const obs::MetricSample* completed =
      obs::FindSample(reg, "service_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value, 8u);
  auto stats = svc.Snapshot();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.queue_wait_p50_ns, 0u);
}

}  // namespace
}  // namespace ufilter::obs
