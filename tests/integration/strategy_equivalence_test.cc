// The three data-check strategies (internal / hybrid / outside) differ in
// cost, never in outcome: for any update they must produce the same verdict
// and leave the database in the same final state.
#include <gtest/gtest.h>

#include "fixtures/tpch_views.h"
#include "relational/tpch.h"
#include "ufilter/checker.h"
#include "view/diff.h"

namespace ufilter {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::DataCheckStrategy;
using check::UFilter;

struct Workload {
  const char* name;
  std::string update;
  const std::string* view_query;
};

std::vector<Workload> Workloads() {
  static const std::string vlinear = fixtures::VLinearQuery();
  static const std::string vbush = fixtures::VBushQuery();
  return {
      {"delete-nation", fixtures::DeleteElementUpdate("nation", 8), &vlinear},
      {"delete-order", fixtures::DeleteElementUpdate("order", 21), &vlinear},
      {"delete-lineitem", fixtures::DeleteElementUpdate("lineitem", 3),
       &vlinear},
      {"insert-lineitem", fixtures::InsertLineitemUpdate(7, 42), &vlinear},
      {"insert-conflict", fixtures::InsertLineitemUpdate(7, 1), &vlinear},
      {"insert-missing-order", fixtures::InsertLineitemUpdate(987654, 1),
       &vlinear},
      {"delete-bush-order",
       "FOR $nation IN document(\"V.xml\")/nation, $order IN "
       "$nation/order\nWHERE $order/o_orderkey/text() = 33\nUPDATE $nation "
       "{\n  DELETE $order\n}",
       &vbush},
  };
}

class StrategyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StrategyEquivalenceTest, SameOutcomeAndFinalState) {
  auto [workload_idx, strategy_idx] = GetParam();
  Workload workload = Workloads()[static_cast<size_t>(workload_idx)];
  DataCheckStrategy strategy = static_cast<DataCheckStrategy>(strategy_idx);

  // Reference run with the outside strategy.
  auto Run = [&](DataCheckStrategy s,
                 std::unique_ptr<relational::Database>* db_out)
      -> std::pair<CheckOutcome, int64_t> {
    relational::tpch::TpchOptions options;
    options.scale = 0.15;
    auto db = relational::tpch::MakeDatabase(options);
    EXPECT_TRUE(db.ok());
    auto uf = UFilter::Create(db->get(), *workload.view_query);
    EXPECT_TRUE(uf.ok()) << uf.status().ToString();
    CheckOptions check_options;
    check_options.strategy = s;
    CheckReport r = (*uf)->Check(workload.update, check_options);
    *db_out = std::move(*db);
    return {r.outcome, r.rows_affected};
  };

  std::unique_ptr<relational::Database> db_ref, db_test;
  auto ref = Run(DataCheckStrategy::kOutside, &db_ref);
  auto test = Run(strategy, &db_test);
  EXPECT_EQ(test.first, ref.first) << workload.name;
  EXPECT_EQ(test.second, ref.second) << workload.name;
  // Identical final state, table by table.
  for (const auto& table : db_ref->schema().tables()) {
    auto a = db_ref->GetTable(table.name());
    auto b = db_test->GetTable(table.name());
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ((*a)->live_row_count(), (*b)->live_row_count())
        << workload.name << " table " << table.name();
    auto ids_a = (*a)->AllRowIds();
    auto ids_b = (*b)->AllRowIds();
    ASSERT_EQ(ids_a.size(), ids_b.size());
    for (size_t i = 0; i < ids_a.size(); ++i) {
      const auto* ra = (*a)->GetRow(ids_a[i]);
      const auto* rb = (*b)->GetRow(ids_b[i]);
      ASSERT_TRUE(*ra == *rb) << workload.name << " table " << table.name()
                              << " row " << i;
    }
  }
}

std::string PairName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kStrategies[] = {"internal", "hybrid", "outside"};
  std::string name =
      Workloads()[static_cast<size_t>(std::get<0>(info.param))].name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + kStrategies[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, StrategyEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Range(0, 3)),
    PairName);

}  // namespace
}  // namespace ufilter
