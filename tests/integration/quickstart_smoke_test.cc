// End-to-end smoke test mirroring examples/quickstart.cpp: build the Fig. 1
// book database, compile the Fig. 3(a) BookView through UFilter::Create, and
// run a translatable paper update through all three checker steps, asserting
// it reaches kExecuted.
#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "ufilter/checker.h"
#include "xml/writer.h"

namespace ufilter::check {
namespace {

TEST(QuickstartSmoke, CreateAndCheckEndToEnd) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto uf = UFilter::Create(db->get(), fixtures::BookViewQuery());
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();

  // The compiled instance exposes both ASGs and can materialize the view.
  EXPECT_FALSE((*uf)->view_asg().ToString().empty());
  auto view = (*uf)->MaterializeView();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(xml::ToString(**view).empty());

  // At least one of the paper's updates u1..u13 must run the full pipeline
  // to completion (validation -> STAR -> data check -> translation).
  bool executed = false;
  for (int u = 1; u <= 13; ++u) {
    CheckReport report = (*uf)->Check(fixtures::PaperUpdate(u));
    if (report.outcome == CheckOutcome::kExecuted) {
      executed = true;
      EXPECT_FALSE(report.translation.empty())
          << "u" << u << " executed but emitted no relational ops";
    }
  }
  EXPECT_TRUE(executed) << "no paper update reached kExecuted";
}

}  // namespace
}  // namespace ufilter::check
