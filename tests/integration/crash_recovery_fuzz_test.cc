// Crash-recovery fuzz: a forked child commits randomized writer batches
// into a WAL and dies by SIGKILL at a random *byte offset* of the log (the
// WalWriter crash hook tears the file mid-write exactly like a power cut);
// the parent then recovers and asserts the database equals a reference
// replay of exactly the batches whose commit records survived complete —
// never a partial transaction.
//
// Epoch bookkeeping (fixed by the fixture design): enabling durability on
// the empty database is epoch 0; the seed populate publishes lazily as
// epoch 1 when the first batch's WriterGuard opens; batch b publishes as
// epoch b + 2. So a WAL whose last complete record has epoch E certifies
// the seed (E >= 1) plus batches 0 .. E-2.
//
// Seed override: UFILTER_FUZZ_SEED (logged). Iteration count:
// UFILTER_CRASH_FUZZ_ITERS (default 200; CI sanitizer jobs bound it).
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>

#include "../support/fuzz_seed.h"
#include "../support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "relational/database.h"
#include "relational/wal.h"

namespace ufilter {
namespace {

using relational::Database;
using relational::DurabilityOptions;
using relational::FsyncPolicy;
using relational::ReadWal;
using relational::WalReadResult;
using test_support::TempDir;

constexpr int kDepth = 2;
constexpr int kRows = 6;
constexpr int kBatchesPerRun = 24;

int Iterations() {
  const char* env = std::getenv("UFILTER_CRASH_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    return static_cast<int>(std::strtol(env, nullptr, 10));
  }
  return 200;
}

std::unique_ptr<Database> MakeEmptyChain() {
  auto db = Database::Create(fixtures::MakeChainSchema(kDepth));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

// The child's whole life. Returns the _exit code: 0 = ran to completion
// (crash threshold beyond the log's end), 42 = unexpected engine error.
// When the crash hook fires the child never returns — it raises SIGKILL
// mid-write, exactly at `crash_bytes` total WAL bytes.
int RunChild(const std::string& wal, uint32_t seed, int64_t crash_bytes) {
  auto db = Database::Create(fixtures::MakeChainSchema(kDepth));
  if (!db.ok()) return 42;
  DurabilityOptions opts;
  opts.wal_path = wal;
  opts.fsync_policy = FsyncPolicy::kGroup;
  opts.group_commit_size = 4;
  if (!(*db)->EnableDurability(opts).ok()) return 42;
  (*db)->set_wal_crash_after_bytes_for_testing(crash_bytes);
  if (!fixtures::PopulateChain(db->get(), kDepth, kRows).ok()) return 42;
  for (int b = 0; b < kBatchesPerRun; ++b) {
    if (!fixtures::ApplyChainBatch(db->get(), kDepth, kRows, seed, b)
             .ok()) {
      return 42;
    }
  }
  if (!(*db)->SyncWal().ok()) return 42;
  return 0;
}

TEST(CrashRecoveryFuzzTest, RecoveryEqualsReferenceReplayOfSurvivingEpochs) {
  const uint32_t seed =
      test_support::FuzzSeed("crash-recovery", 0x5eedu);
  const int iters = Iterations();
  TempDir tmp("ufilter_crash");
  ASSERT_TRUE(tmp.ok());
  std::mt19937 rng(seed);

  int clean_runs = 0;
  int torn_tails = 0;
  for (int i = 0; i < iters; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i) + " (seed " +
                 std::to_string(seed) + ")");
    const std::string wal = tmp.path("iter" + std::to_string(i) + ".wal");
    const uint32_t batch_seed = rng();
    // Wide threshold range: tiny values kill before the first record,
    // large ones let the child finish cleanly — both ends must recover.
    const int64_t crash_bytes = static_cast<int64_t>(rng() % 9000);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // In the child: no gtest, no exit handlers — just run and _exit /
      // die by the crash hook's SIGKILL.
      _exit(RunChild(wal, batch_seed, crash_bytes));
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    if (WIFEXITED(wstatus)) {
      ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "child hit an engine error";
      ++clean_runs;
    } else {
      ASSERT_TRUE(WIFSIGNALED(wstatus));
      ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
    }

    // What actually survived, straight from the file.
    auto read = ReadWal(wal);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    if (read->tail_truncated) ++torn_tails;
    const uint64_t last_epoch =
        read->records.empty() ? 0 : read->records.back().epoch;

    // Recover into a fresh database.
    std::unique_ptr<Database> recovered = MakeEmptyChain();
    Status rs = recovered->RecoverFrom(wal);
    ASSERT_TRUE(rs.ok()) << rs.ToString();
    ASSERT_EQ(recovered->commit_epoch(), last_epoch)
        << "recovery must land on the last fully published epoch";

    // Reference replay of exactly the certified history.
    std::unique_ptr<Database> reference = MakeEmptyChain();
    if (last_epoch >= 1) {
      ASSERT_TRUE(
          fixtures::PopulateChain(reference.get(), kDepth, kRows).ok());
    }
    for (uint64_t b = 0; last_epoch >= 2 && b <= last_epoch - 2; ++b) {
      ASSERT_TRUE(fixtures::ApplyChainBatch(reference.get(), kDepth, kRows,
                                            batch_seed,
                                            static_cast<int>(b))
                      .ok());
    }
    Result<std::string> got = recovered->SerializePublishedState();
    Result<std::string> want = reference->SerializePublishedState();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(*got, *want)
        << "recovered state diverged from the reference replay ("
        << read->records.size() << " surviving records, last epoch "
        << last_epoch << ")";
  }
  // The threshold range must actually exercise both regimes; a systematic
  // skew (e.g. every child finishing cleanly) would gut the test.
  if (iters >= 50) {
    EXPECT_GT(torn_tails, 0) << "no run ever tore a record";
    EXPECT_GT(clean_runs, 0) << "no run ever finished cleanly";
  }
  std::fprintf(stderr,
               "[crash-fuzz] %d iterations: %d clean, %d torn tails\n",
               iters, clean_runs, torn_tails);
}

// The recovery-crash regression: RecoverFrom truncates a torn tail, and
// that truncation must itself be durable (ftruncate + fsync of the log fd
// + fsync of the parent directory). A crash *between* the ftruncate and
// the fsync used to leave the truncation only in the page cache — a
// second crash could resurrect the torn bytes and make two recoveries of
// the same log disagree. This test kills a child exactly in that window
// and requires the next recovery to land on the same certified state.
TEST(CrashRecoveryFuzzTest, CrashDuringTailTruncationStaysRecoverable) {
  const uint32_t seed =
      test_support::FuzzSeed("recovery-crash", 0xc4a5u);
  TempDir tmp("ufilter_recovery_crash");
  ASSERT_TRUE(tmp.ok());
  std::mt19937 rng(seed);

  // Produce a WAL with a genuinely torn tail (bounded retries: the crash
  // offset is random, most land mid-record quickly).
  const std::string wal = tmp.path("torn.wal");
  const uint32_t batch_seed = rng();
  bool torn = false;
  for (int attempt = 0; attempt < 64 && !torn; ++attempt) {
    ::unlink(wal.c_str());
    const int64_t crash_bytes = 512 + static_cast<int64_t>(rng() % 6000);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) _exit(RunChild(wal, batch_seed, crash_bytes));
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    if (WIFEXITED(wstatus)) {
      ASSERT_EQ(WEXITSTATUS(wstatus), 0);
      continue;  // finished cleanly: no torn tail this time
    }
    auto read = ReadWal(wal);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    torn = read->tail_truncated && !read->records.empty();
  }
  ASSERT_TRUE(torn) << "could not produce a torn tail in 64 attempts";

  auto before = ReadWal(wal);
  ASSERT_TRUE(before.ok());
  const uint64_t last_epoch = before->records.back().epoch;

  // A child recovers from the torn log and is SIGKILLed in the window
  // after ftruncate but before the log fsync.
  {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      relational::SetRecoveryCrashPointForTesting(1);
      auto db = Database::Create(fixtures::MakeChainSchema(kDepth));
      if (!db.ok()) _exit(42);
      Status rs = (*db)->RecoverFrom(wal);
      // Reaching here means the crash point never fired (hook miswired).
      _exit(rs.ok() ? 43 : 42);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus))
        << "child survived the recovery crash point (exit "
        << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1) << ")";
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  // Second recovery, same log: the interrupted truncation must not have
  // changed what is certified.
  std::unique_ptr<Database> recovered = MakeEmptyChain();
  ASSERT_TRUE(recovered->RecoverFrom(wal).ok());
  ASSERT_EQ(recovered->commit_epoch(), last_epoch);

  std::unique_ptr<Database> reference = MakeEmptyChain();
  ASSERT_TRUE(fixtures::PopulateChain(reference.get(), kDepth, kRows).ok());
  for (uint64_t b = 0; last_epoch >= 2 && b <= last_epoch - 2; ++b) {
    ASSERT_TRUE(fixtures::ApplyChainBatch(reference.get(), kDepth, kRows,
                                          batch_seed, static_cast<int>(b))
                    .ok());
  }
  auto got = recovered->SerializePublishedState();
  auto want = reference->SerializePublishedState();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);

  // The completed recovery's truncation is durable: the log reads back
  // clean, and it remains appendable — more commits then one more
  // recovery still agree with a full reference replay.
  auto after = ReadWal(wal);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->tail_truncated)
      << "a completed recovery left the torn tail in place";

  DurabilityOptions opts;
  opts.wal_path = wal;
  opts.fsync_policy = FsyncPolicy::kAlways;
  ASSERT_TRUE(recovered->EnableDurability(opts).ok());
  ASSERT_TRUE(fixtures::ApplyChainBatch(recovered.get(), kDepth, kRows,
                                        batch_seed, /*b=*/900)
                  .ok());
  ASSERT_TRUE(recovered->SyncWal().ok());

  std::unique_ptr<Database> again = MakeEmptyChain();
  ASSERT_TRUE(again->RecoverFrom(wal).ok());
  ASSERT_TRUE(fixtures::ApplyChainBatch(reference.get(), kDepth, kRows,
                                        batch_seed, /*b=*/900)
                  .ok());
  auto got2 = again->SerializePublishedState();
  auto want2 = reference->SerializePublishedState();
  ASSERT_TRUE(got2.ok());
  ASSERT_TRUE(want2.ok());
  EXPECT_EQ(*got2, *want2) << "the log stopped being appendable";
}

}  // namespace
}  // namespace ufilter
