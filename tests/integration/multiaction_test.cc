// Multi-action UPDATE blocks (the full Tatarinov-style update language):
// several comma-separated operations per statement, checked and applied
// atomically.
#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "ufilter/checker.h"
#include "ufilter/xml_apply.h"
#include "view/diff.h"
#include "xquery/parser.h"

namespace ufilter {
namespace {

using check::CheckOutcome;
using check::CheckReport;
using check::UFilter;

class MultiActionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto uf = UFilter::Create(db_.get(), fixtures::BookViewQuery());
    ASSERT_TRUE(uf.ok());
    uf_ = std::move(*uf);
  }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<UFilter> uf_;
};

TEST_F(MultiActionTest, ParserSplitsActions) {
  auto stmt = xq::ParseUpdate(
      "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
      "\"98001\" UPDATE $book { DELETE $book/review, INSERT "
      "<review><reviewid>009</reviewid><comment>new</comment></review> }");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->actions.size(), 2u);
  EXPECT_EQ(stmt->actions[0].op, xq::UpdateOpType::kDelete);
  EXPECT_EQ(stmt->actions[1].op, xq::UpdateOpType::kInsert);
  // Mirrors reflect the first action.
  EXPECT_EQ(stmt->op, xq::UpdateOpType::kDelete);
}

TEST_F(MultiActionTest, DeleteTheNInsertExecutesAtomically) {
  CheckReport r = uf_->Check(
      "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
      "\"98001\" UPDATE $book { DELETE $book/review, INSERT "
      "<review><reviewid>009</reviewid><comment>replacement</comment>"
      "</review> }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.rows_affected, 3);  // 2 deletes + 1 insert
  auto review = db_->GetTable("review");
  EXPECT_EQ((*review)->live_row_count(), 1u);
}

TEST_F(MultiActionTest, RejectionOfAnyActionRollsBackAll) {
  size_t rows_before = db_->TotalRows();
  // First action fine (delete reviews), second action untranslatable
  // (delete publisher) -> nothing applied.
  CheckReport r = uf_->Check(
      "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
      "\"98001\" UPDATE $book { DELETE $book/review, DELETE "
      "$book/publisher }");
  EXPECT_EQ(r.outcome, CheckOutcome::kUntranslatable) << r.Describe();
  EXPECT_EQ(db_->TotalRows(), rows_before);
}

TEST_F(MultiActionTest, RectangleRuleHoldsForMultiAction) {
  auto stmt = xq::ParseUpdate(
      "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
      "\"98001\" UPDATE $book { DELETE $book/review, INSERT "
      "<review><reviewid>009</reviewid><comment>x</comment></review> }");
  ASSERT_TRUE(stmt.ok());
  auto expected = uf_->MaterializeView();
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(check::ApplyUpdateToXml(expected->get(), *stmt).ok());
  CheckReport r = uf_->CheckParsed(*stmt);
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  auto actual = uf_->MaterializeView();
  ASSERT_TRUE(actual.ok());
  auto diff = view::FirstDifference(**expected, **actual);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(MultiActionTest, DryRunMultiActionRollsBack) {
  size_t rows_before = db_->TotalRows();
  check::CheckOptions options;
  options.apply = false;
  CheckReport r = uf_->Check(
      "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
      "\"98001\" UPDATE $book { DELETE $book/review, INSERT "
      "<review><reviewid>009</reviewid><comment>x</comment></review> }",
      options);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(db_->TotalRows(), rows_before);
}

TEST_F(MultiActionTest, ConditionsAggregateAcrossActions) {
  // Two conditionally translatable deletes in one block.
  CheckReport r = uf_->Check(
      "FOR $root IN document(\"v\"), $book = $root/book WHERE "
      "$book/price > 40.00 UPDATE $root { DELETE $book }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted);
  EXPECT_EQ(r.condition, "translation minimization");
}

TEST_F(MultiActionTest, SecondActionSeesFirstActionsEffect) {
  // Insert a review, then delete all reviews of the same book: the freshly
  // inserted review must be gone too (sequential semantics).
  CheckReport r = uf_->Check(
      "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
      "\"98003\" UPDATE $book { INSERT <review><reviewid>009</reviewid>"
      "<comment>x</comment></review>, DELETE $book/review }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  auto review = db_->GetTable("review");
  auto rows = (*review)->Find(
      {{"bookid", CompareOp::kEq, Value::String("98003")}}, nullptr);
  EXPECT_TRUE(rows.empty());
}

}  // namespace
}  // namespace ufilter
