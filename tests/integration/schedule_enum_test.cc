// Exhaustive schedule enumeration for durability: two writers (two-step
// programs A and B) are interleaved in every program-order-preserving way
// (C(4,2) = 6 schedules); each step commits one epoch into a kAlways WAL.
// After every step we record {WAL size, state fingerprint, reader verdict};
// then we simulate a crash after *every byte* of the log — step boundaries
// and mid-record tears alike — recover a truncated copy into a fresh
// database, and assert the recovered state AND the post-recovery check
// verdict equal the ones recorded at the last fully committed step. This
// extends the PR 5 replay-equivalence oracle (same snapshot => same
// verdict) across a crash: same surviving WAL prefix => same state => same
// verdict.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "../support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "relational/database.h"
#include "relational/sqlgen.h"
#include "relational/wal.h"
#include "ufilter/checker.h"

namespace ufilter {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::UFilter;
using relational::Database;
using relational::DurabilityOptions;
using relational::FsyncPolicy;
using test_support::TempDir;

constexpr int kDepth = 2;
constexpr int kRows = 4;
const int kLeaf = kDepth - 1;

// Writer programs. A recolors two leaves; B races A on leaf 0 and then
// deletes whatever currently wears "a1" — so both the victim set of B's
// second step and the reader verdict depend on the interleaving.
std::vector<std::string> ProgramA() {
  return {fixtures::ChainReplaceUpdate(kLeaf, 0, "a1"),
          fixtures::ChainReplaceUpdate(kLeaf, 1, "a2")};
}
std::vector<std::string> ProgramB() {
  return {fixtures::ChainReplaceUpdate(kLeaf, 0, "b1"),
          fixtures::ChainDeleteByValueUpdate(kLeaf, "a1")};
}

// All interleavings of two 2-step programs, program order preserved.
const char* kSchedules[] = {"AABB", "ABAB", "ABBA", "BAAB", "BABA", "BBAA"};

struct Verdict {
  CheckOutcome outcome = CheckOutcome::kExecuted;
  int64_t rows_affected = 0;
  bool zero_tuple_warning = false;
  std::string error;
  std::string translation_sql;
};

bool operator==(const Verdict& a, const Verdict& b) {
  return a.outcome == b.outcome && a.rows_affected == b.rows_affected &&
         a.zero_tuple_warning == b.zero_tuple_warning &&
         a.error == b.error && a.translation_sql == b.translation_sql;
}

std::ostream& operator<<(std::ostream& os, const Verdict& v) {
  return os << "outcome=" << static_cast<int>(v.outcome)
            << " rows=" << v.rows_affected
            << " zero_warn=" << v.zero_tuple_warning << " error='"
            << v.error << "' sql='" << v.translation_sql << "'";
}

// The reader probe: a check-only delete whose victim set (and zero-tuple
// warning) depends on which writer steps have committed.
Verdict Probe(UFilter* uf, Database* db) {
  CheckOptions dry;
  dry.apply = false;
  auto ctx = db->CreateContext();
  auto snap = db->OpenSnapshot();
  ctx->PinReadSnapshot(snap);
  auto plan = uf->Prepare(
      fixtures::ChainDeleteByValueUpdate(kLeaf, "a1"), nullptr, ctx.get());
  auto fast = uf->TryCheckReadOnly(*plan, dry, ctx.get());
  ctx->ClearReadSnapshot();
  Verdict v;
  EXPECT_TRUE(fast.has_value()) << "probe must be decidable read-only";
  if (fast.has_value()) {
    v.outcome = fast->outcome;
    v.rows_affected = fast->rows_affected;
    v.zero_tuple_warning = fast->zero_tuple_warning;
    v.error = fast->error.ToString();
    v.translation_sql = relational::UpdateSequenceToSql(fast->translation);
  }
  return v;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
}

std::unique_ptr<Database> MakeEmptyChain() {
  auto db = Database::Create(fixtures::MakeChainSchema(kDepth));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

TEST(ScheduleEnumTest, EveryInterleavingRecoversToEveryStepAndMidRecord) {
  TempDir tmp("ufilter_sched");
  ASSERT_TRUE(tmp.ok());

  for (const char* schedule : kSchedules) {
    SCOPED_TRACE(std::string("schedule ") + schedule);
    const std::string wal =
        tmp.path(std::string("wal_") + schedule + ".wal");

    // --- Run the schedule, recording a cut point after each commit. ---
    std::unique_ptr<Database> db = MakeEmptyChain();
    DurabilityOptions opts;
    opts.wal_path = wal;
    opts.fsync_policy = FsyncPolicy::kAlways;  // every step on disk
    ASSERT_TRUE(db->EnableDurability(opts).ok());
    ASSERT_TRUE(fixtures::PopulateChain(db.get(), kDepth, kRows).ok());
    auto uf = UFilter::Create(db.get(), fixtures::ChainViewQuery(kDepth));
    ASSERT_TRUE(uf.ok()) << uf.status().ToString();
    {
      // Seed colors so the probe has victims before any writer step.
      Database::WriterGuard guard(db.get());
      CheckReport r =
          (*uf)->Check(fixtures::ChainReplaceUpdate(kLeaf, 0, "a1"));
      ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
      r = (*uf)->Check(fixtures::ChainReplaceUpdate(kLeaf, 2, "a1"));
      ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
    }
    ASSERT_TRUE(db->SyncWal().ok());

    struct Cut {
      uint64_t wal_bytes = 0;
      std::string state;
      Verdict verdict;
      uint64_t epoch = 0;
    };
    std::vector<Cut> cuts;
    auto record_cut = [&] {
      Cut c;
      c.wal_bytes = std::filesystem::file_size(wal);
      Result<std::string> state = db->SerializePublishedState();
      ASSERT_TRUE(state.ok()) << state.status().ToString();
      c.state = *state;
      c.verdict = Probe(uf->get(), db.get());
      c.epoch = db->commit_epoch();
      cuts.push_back(std::move(c));
    };
    record_cut();  // cut 0: the seeded baseline

    std::vector<std::string> a = ProgramA(), b = ProgramB();
    size_t ia = 0, ib = 0;
    for (const char* s = schedule; *s != '\0'; ++s) {
      const std::string& step = *s == 'A' ? a[ia++] : b[ib++];
      {
        Database::WriterGuard guard(db.get());
        CheckReport r = (*uf)->Check(step);
        ASSERT_EQ(r.outcome, CheckOutcome::kExecuted)
            << step << "\n" << r.Describe();
      }
      ASSERT_TRUE(db->SyncWal().ok());
      record_cut();
    }
    ASSERT_EQ(cuts.size(), 5u);
    for (size_t i = 1; i < cuts.size(); ++i) {
      ASSERT_GT(cuts[i].wal_bytes, cuts[i - 1].wal_bytes)
          << "every step must append at least one record";
    }

    // --- Crash after every byte >= the baseline; recover; compare. ---
    const std::string contents = Slurp(wal);
    ASSERT_EQ(contents.size(), cuts.back().wal_bytes);
    const std::string torn = tmp.path(std::string("torn_") + schedule);
    for (uint64_t cut_bytes = cuts.front().wal_bytes;
         cut_bytes <= contents.size(); ++cut_bytes) {
      // The last fully committed step at this crash point.
      size_t step = 0;
      while (step + 1 < cuts.size() &&
             cuts[step + 1].wal_bytes <= cut_bytes) {
        ++step;
      }
      Dump(torn, contents.substr(0, cut_bytes));
      std::unique_ptr<Database> recovered = MakeEmptyChain();
      Status rs = recovered->RecoverFrom(torn);
      ASSERT_TRUE(rs.ok()) << "cut=" << cut_bytes << ": " << rs.ToString();
      ASSERT_EQ(recovered->commit_epoch(), cuts[step].epoch)
          << "cut=" << cut_bytes;
      Result<std::string> state = recovered->SerializePublishedState();
      ASSERT_TRUE(state.ok());
      ASSERT_EQ(*state, cuts[step].state)
          << "cut=" << cut_bytes << " after step " << step
          << ": mid-record tear must land on the previous commit";
      // Post-recovery verdict: the same check on the recovered database
      // must reproduce the verdict recorded at the surviving step.
      auto ruf =
          UFilter::Create(recovered.get(), fixtures::ChainViewQuery(kDepth));
      ASSERT_TRUE(ruf.ok());
      const Verdict v = Probe(ruf->get(), recovered.get());
      ASSERT_TRUE(v == cuts[step].verdict)
          << "cut=" << cut_bytes << " after step " << step
          << "\nrecovered: " << v << "\nrecorded:  " << cuts[step].verdict;
    }

    // Sanity: the interleavings genuinely diverge — AABB (B's delete
    // removes leaf 0 recolored to b1? no: a1 was overwritten) vs BBAA
    // must not all share one final state. Checked across schedules below.
  }
}

// The six schedules must produce at least two distinct final states —
// otherwise the enumeration isn't exercising write-write interaction.
TEST(ScheduleEnumTest, InterleavingsProduceDivergentFinalStates) {
  TempDir tmp("ufilter_sched2");
  ASSERT_TRUE(tmp.ok());
  std::vector<std::string> finals;
  for (const char* schedule : kSchedules) {
    std::unique_ptr<Database> db = MakeEmptyChain();
    ASSERT_TRUE(fixtures::PopulateChain(db.get(), kDepth, kRows).ok());
    auto uf = UFilter::Create(db.get(), fixtures::ChainViewQuery(kDepth));
    ASSERT_TRUE(uf.ok());
    {
      Database::WriterGuard guard(db.get());
      ASSERT_EQ(
          (*uf)->Check(fixtures::ChainReplaceUpdate(kLeaf, 0, "a1")).outcome,
          CheckOutcome::kExecuted);
      ASSERT_EQ(
          (*uf)->Check(fixtures::ChainReplaceUpdate(kLeaf, 2, "a1")).outcome,
          CheckOutcome::kExecuted);
    }
    std::vector<std::string> a = ProgramA(), b = ProgramB();
    size_t ia = 0, ib = 0;
    for (const char* s = schedule; *s != '\0'; ++s) {
      Database::WriterGuard guard(db.get());
      ASSERT_EQ((*uf)->Check(*s == 'A' ? a[ia++] : b[ib++]).outcome,
                CheckOutcome::kExecuted);
    }
    Result<std::string> state = db->SerializePublishedState();
    ASSERT_TRUE(state.ok());
    finals.push_back(*state);
  }
  bool diverged = false;
  for (const std::string& f : finals) {
    if (f != finals.front()) diverged = true;
  }
  EXPECT_TRUE(diverged)
      << "all six schedules converged to one state; the programs are "
         "not actually conflicting";
}

}  // namespace
}  // namespace ufilter
