// CheckBatch: outcomes must match the one-at-a-time path while the step-3
// anchor/victim probes of same-shaped updates collapse into merged
// OR-of-predicates queries (fewer engine queries than the sum of individual
// checks).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fixtures/bookdb.h"
#include "fixtures/synthetic.h"
#include "relational/sqlgen.h"
#include "ufilter/checker.h"

namespace ufilter {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::UFilter;
using relational::EngineStats;

constexpr int kDepth = 3;
constexpr int kRows = 40;

struct Instance {
  std::unique_ptr<relational::Database> db;
  std::unique_ptr<UFilter> uf;
};

Instance MakeChainInstance() {
  Instance inst;
  auto db = fixtures::MakeChainDatabase(kDepth, kRows);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  inst.db = std::move(*db);
  auto uf = UFilter::Create(inst.db.get(), fixtures::ChainViewQuery(kDepth));
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  inst.uf = std::move(*uf);
  return inst;
}

std::vector<std::string> LeafDeletes(int count) {
  std::vector<std::string> updates;
  for (int k = 0; k < count; ++k) {
    updates.push_back(fixtures::ChainDeleteUpdate(kDepth - 1, k));
  }
  return updates;
}

TEST(BatchCheckTest, OutcomesMatchIndividualChecks) {
  Instance individual = MakeChainInstance();
  Instance batched = MakeChainInstance();
  std::vector<std::string> updates = LeafDeletes(10);
  CheckOptions dry;
  dry.apply = false;

  std::vector<CheckReport> individual_reports;
  for (const std::string& u : updates) {
    individual_reports.push_back(individual.uf->Check(u, dry));
  }
  std::vector<CheckReport> batch_reports = batched.uf->CheckBatch(updates, dry);
  ASSERT_EQ(batch_reports.size(), updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(batch_reports[i].outcome, individual_reports[i].outcome)
        << "update " << i << ": " << batch_reports[i].Describe();
    EXPECT_EQ(batch_reports[i].rows_affected,
              individual_reports[i].rows_affected)
        << "update " << i;
    EXPECT_EQ(relational::UpdateSequenceToSql(batch_reports[i].translation),
              relational::UpdateSequenceToSql(
                  individual_reports[i].translation))
        << "update " << i;
  }
}

TEST(BatchCheckTest, IssuesFewerProbeQueriesThanIndividualChecks) {
  Instance individual = MakeChainInstance();
  Instance batched = MakeChainInstance();
  std::vector<std::string> updates = LeafDeletes(8);  // >= 8 per acceptance
  CheckOptions dry;
  dry.apply = false;

  individual.db->ResetWorkCounters();
  for (const std::string& u : updates) {
    CheckReport r = individual.uf->Check(u, dry);
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  }
  uint64_t individual_queries =
      individual.db->SnapshotWorkCounters().queries_executed;

  batched.db->ResetWorkCounters();
  std::vector<CheckReport> reports = batched.uf->CheckBatch(updates, dry);
  EngineStats batch_stats = batched.db->SnapshotWorkCounters();
  for (const CheckReport& r : reports) {
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  }

  EXPECT_LT(batch_stats.queries_executed, individual_queries)
      << "batching did not reduce probe queries";
  // All 8 updates share one anchor shape and one victim shape.
  EXPECT_EQ(batch_stats.batch_queries_executed, 2u);
  EXPECT_EQ(batch_stats.batch_branches_merged, 16u);
  // The merged SQL is recorded per report.
  ASSERT_FALSE(reports[0].probes.empty());
  EXPECT_NE(reports[0].probes[0].find(" OR "), std::string::npos)
      << reports[0].probes[0];
}

TEST(BatchCheckTest, AppliedBatchMatchesSequentialState) {
  Instance individual = MakeChainInstance();
  Instance batched = MakeChainInstance();
  std::vector<std::string> updates = LeafDeletes(6);

  for (const std::string& u : updates) {
    CheckReport r = individual.uf->Check(u);
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  }
  std::vector<CheckReport> reports = batched.uf->CheckBatch(updates);
  for (const CheckReport& r : reports) {
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  }
  EXPECT_EQ(batched.db->TotalRows(), individual.db->TotalRows());
}

TEST(BatchCheckTest, MixedVerdictBatch) {
  // Heterogeneous batch over the book view: executed, untranslatable,
  // unparsable, data conflict, zero-tuple warning.
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::BookViewQuery());
  ASSERT_TRUE(uf.ok());
  std::vector<std::string> updates = {
      fixtures::PaperUpdate(8),   // executed
      fixtures::PaperUpdate(2),   // untranslatable
      "NOT AN UPDATE",            // invalid
      fixtures::PaperUpdate(11),  // data conflict (context probe empty)
      fixtures::PaperUpdate(12),  // zero-tuple warning
  };
  CheckOptions dry;
  dry.apply = false;
  std::vector<CheckReport> reports = (*uf)->CheckBatch(updates, dry);
  ASSERT_EQ(reports.size(), 5u);
  EXPECT_EQ(reports[0].outcome, CheckOutcome::kExecuted)
      << reports[0].Describe();
  EXPECT_EQ(reports[1].outcome, CheckOutcome::kUntranslatable);
  EXPECT_EQ(reports[2].outcome, CheckOutcome::kInvalid);
  EXPECT_EQ(reports[3].outcome, CheckOutcome::kDataConflict)
      << reports[3].Describe();
  EXPECT_EQ(reports[4].outcome, CheckOutcome::kExecuted);
  EXPECT_TRUE(reports[4].zero_tuple_warning) << reports[4].Describe();
}

TEST(BatchCheckTest, MultiActionStatementsFallBackToAtomicPath) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::BookViewQuery());
  ASSERT_TRUE(uf.ok());
  const std::string multi = R"(FOR $book IN document("BookView.xml")/book
WHERE $book/price < 40.00
UPDATE $book {
  DELETE $book/review,
  INSERT
  <review>
    <reviewid>007</reviewid>
    <comment>Replacement review.</comment>
  </review>
})";
  std::vector<CheckReport> reports =
      (*uf)->CheckBatch({multi, fixtures::PaperUpdate(12)});
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].outcome, CheckOutcome::kExecuted)
      << reports[0].Describe();
  EXPECT_EQ(reports[1].outcome, CheckOutcome::kExecuted)
      << reports[1].Describe();
}

TEST(BatchCheckTest, BatchUsesThePlanCache) {
  Instance inst = MakeChainInstance();
  std::vector<std::string> updates = LeafDeletes(4);
  CheckOptions dry;
  dry.apply = false;
  (void)inst.uf->CheckBatch(updates, dry);
  inst.db->ResetWorkCounters();
  std::vector<CheckReport> reports = inst.uf->CheckBatch(updates, dry);
  EngineStats stats = inst.db->SnapshotWorkCounters();
  EXPECT_EQ(stats.plan_cache_hits, 4u);
  EXPECT_EQ(stats.updates_compiled, 0u);
  for (const CheckReport& r : reports) {
    EXPECT_TRUE(r.from_plan_cache);
  }
}

TEST(BatchCheckTest, EmptyBatchReturnsNoReports) {
  Instance inst = MakeChainInstance();
  EXPECT_TRUE(inst.uf->CheckBatch({}).empty());
}

}  // namespace
}  // namespace ufilter
