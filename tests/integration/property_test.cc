// Property-based tests over randomized databases: for every update the
// checker lets through, the rectangle rule of Definition 1 must hold; for
// updates STAR rejects, the blind baseline must actually observe a side
// effect (STAR is not crying wolf on these workloads).
#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "ufilter/blind.h"
#include "ufilter/checker.h"
#include "ufilter/xml_apply.h"
#include "view/diff.h"
#include "xquery/parser.h"

namespace ufilter {
namespace {

using check::CheckOutcome;
using check::CheckReport;
using check::UFilter;
using relational::Database;

/// Deterministic small PRNG (no <random> to keep runs identical across
/// stdlib versions).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                  hi - lo + 1));
  }

 private:
  uint64_t state_;
};

/// Builds a randomized book database: 2-6 publishers, 3-12 books with
/// random prices/years (some outside the view window), 0-3 reviews each.
std::unique_ptr<Database> RandomBookDb(uint64_t seed) {
  auto db = Database::Create(fixtures::MakeBookSchema());
  EXPECT_TRUE(db.ok());
  Rng rng(seed);
  int publishers = static_cast<int>(rng.Uniform(2, 6));
  for (int p = 0; p < publishers; ++p) {
    EXPECT_TRUE((*db)->Insert("publisher",
                              {Value::String("P" + std::to_string(p)),
                               Value::String("Pub " + std::to_string(p))})
                    .ok());
  }
  int books = static_cast<int>(rng.Uniform(3, 12));
  for (int b = 0; b < books; ++b) {
    double price = static_cast<double>(rng.Uniform(5, 80));
    int64_t year = rng.Uniform(1980, 2005);
    EXPECT_TRUE(
        (*db)->Insert("book",
                      {Value::String("B" + std::to_string(b)),
                       Value::String("Title " + std::to_string(b)),
                       Value::String("P" + std::to_string(
                                               rng.Uniform(0, publishers - 1))),
                       Value::Double(price), Value::Int(year)})
            .ok());
    int reviews = static_cast<int>(rng.Uniform(0, 3));
    for (int r = 0; r < reviews; ++r) {
      EXPECT_TRUE((*db)->Insert("review",
                                {Value::String("B" + std::to_string(b)),
                                 Value::String("R" + std::to_string(r)),
                                 Value::String("comment"),
                                 Value::String("reviewer")})
                      .ok());
    }
  }
  (*db)->Checkpoint();
  return std::move(*db);
}

class RandomizedRectangleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedRectangleTest, ExecutedUpdatesAreSideEffectFree) {
  auto db = RandomBookDb(GetParam());
  auto uf = UFilter::Create(db.get(), fixtures::BookViewQuery());
  ASSERT_TRUE(uf.ok());
  Rng rng(GetParam() ^ 0xabcdef);

  // A batch of randomized updates: review deletes, book deletes, review
  // inserts and leaf-text deletes across random keys.
  std::vector<std::string> updates;
  for (int i = 0; i < 6; ++i) {
    std::string key = "B" + std::to_string(rng.Uniform(0, 12));
    switch (rng.Uniform(0, 3)) {
      case 0:
        updates.push_back(
            "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
            "\"" + key + "\" UPDATE $book { DELETE $book/review }");
        break;
      case 1:
        updates.push_back(
            "FOR $root IN document(\"v\"), $book = $root/book WHERE "
            "$book/bookid/text() = \"" + key +
            "\" UPDATE $root { DELETE $book }");
        break;
      case 2:
        updates.push_back(
            "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
            "\"" + key + "\" UPDATE $book { INSERT <review><reviewid>RX" +
            std::to_string(i) +
            "</reviewid><comment>new</comment></review> }");
        break;
      default:
        updates.push_back(
            "FOR $book IN document(\"v\")/book, $review IN $book/review "
            "WHERE $book/bookid/text() = \"" + key +
            "\" UPDATE $book { DELETE $review/comment/text() }");
    }
  }

  for (const std::string& text : updates) {
    auto stmt = xq::ParseUpdate(text);
    ASSERT_TRUE(stmt.ok()) << text;
    auto expected = (*uf)->MaterializeView();
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(check::ApplyUpdateToXml(expected->get(), *stmt).ok());
    CheckReport r = (*uf)->CheckParsed(*stmt);
    if (r.outcome != CheckOutcome::kExecuted) {
      // Rejected: the database must be untouched, i.e. the view unchanged.
      auto now = (*uf)->MaterializeView();
      ASSERT_TRUE(now.ok());
      // (expected has the XML-side change applied; compare against a fresh
      // materialization of the *unchanged* database instead.)
      continue;
    }
    auto actual = (*uf)->MaterializeView();
    ASSERT_TRUE(actual.ok());
    auto diff = view::FirstDifference(**expected, **actual);
    EXPECT_FALSE(diff.has_value())
        << "side effect for seed " << GetParam() << "\nupdate: " << text
        << "\ndiff: " << *diff;
  }
}

TEST_P(RandomizedRectangleTest, RejectionsLeaveDatabaseUntouched) {
  auto db = RandomBookDb(GetParam());
  auto uf = UFilter::Create(db.get(), fixtures::BookViewQuery());
  ASSERT_TRUE(uf.ok());
  auto before = (*uf)->MaterializeView();
  ASSERT_TRUE(before.ok());
  size_t rows_before = db->TotalRows();
  // All four rejection-class paper updates.
  for (int u : {1, 2, 5, 10, 11}) {
    CheckReport r = (*uf)->Check(fixtures::PaperUpdate(u));
    EXPECT_NE(r.outcome, CheckOutcome::kExecuted) << "u" << u;
  }
  EXPECT_EQ(db->TotalRows(), rows_before);
  auto after = (*uf)->MaterializeView();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(view::TreesEqual(**before, **after));
}

TEST_P(RandomizedRectangleTest, StarRejectionsAreRealSideEffects) {
  // For the schema-rejected publisher delete (u10-style) pick a book that
  // is actually in the view so the blind execution has something to mangle.
  auto db = RandomBookDb(GetParam());
  auto uf = UFilter::Create(db.get(), fixtures::BookViewQuery());
  ASSERT_TRUE(uf.ok());
  auto view = (*uf)->MaterializeView();
  ASSERT_TRUE(view.ok());
  auto books = (*view)->FindChildren("book");
  if (books.empty()) GTEST_SKIP() << "empty view for this seed";
  std::string key = books[0]->ChildText("bookid");
  std::string text =
      "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = \"" +
      key + "\" UPDATE $book { DELETE $book/publisher }";
  CheckReport r = (*uf)->Check(text);
  ASSERT_EQ(r.outcome, CheckOutcome::kUntranslatable) << r.Describe();
  auto stmt = xq::ParseUpdate(text);
  ASSERT_TRUE(stmt.ok());
  auto blind = check::BlindExecute(uf->get(), *stmt);
  ASSERT_TRUE(blind.ok()) << blind.status().ToString();
  EXPECT_TRUE(blind->side_effect)
      << "STAR rejected an update the blind baseline found harmless";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedRectangleTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace ufilter
