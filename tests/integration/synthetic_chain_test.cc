// Scalable synthetic chain views: correctness at depth (every level clean &
// safe, deletes cascade exactly) plus the Section 7.1 claim that the STAR
// marking procedure is polynomial in the view-query size.
#include <gtest/gtest.h>

#include <chrono>

#include "fixtures/synthetic.h"
#include "ufilter/checker.h"
#include "ufilter/xml_apply.h"
#include "view/diff.h"
#include "xquery/parser.h"

namespace ufilter {
namespace {

using check::CheckOutcome;
using check::CheckReport;
using check::Translatability;
using check::UFilter;

class ChainDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainDepthTest, AllLevelsCleanSafeAndUnconditional) {
  int depth = GetParam();
  auto db = fixtures::MakeChainDatabase(depth, 4);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto uf =
      UFilter::Create(db->get(), fixtures::ChainViewQuery(depth));
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();
  for (const auto& node : (*uf)->view_asg().nodes()) {
    if (!node.is_internal()) continue;
    EXPECT_TRUE(node.mark.safe_delete) << node.tag << " depth " << depth;
    EXPECT_TRUE(node.mark.safe_insert) << node.tag;
    EXPECT_TRUE(node.mark.clean) << node.tag;
  }
}

TEST_P(ChainDepthTest, DeepestDeleteIsExactAndSideEffectFree) {
  int depth = GetParam();
  auto db = fixtures::MakeChainDatabase(depth, 4);
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::ChainViewQuery(depth));
  ASSERT_TRUE(uf.ok());
  auto stmt =
      xq::ParseUpdate(fixtures::ChainDeleteUpdate(depth - 1, 2));
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto expected = (*uf)->MaterializeView();
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(check::ApplyUpdateToXml(expected->get(), *stmt).ok());
  CheckReport r = (*uf)->CheckParsed(*stmt);
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.star_class, Translatability::kUnconditionallyTranslatable);
  EXPECT_EQ(r.rows_affected, 1);  // leaf level: no cascade below
  auto actual = (*uf)->MaterializeView();
  ASSERT_TRUE(actual.ok());
  auto diff = view::FirstDifference(**expected, **actual);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_P(ChainDepthTest, TopDeleteCascadesWholeSubchain) {
  int depth = GetParam();
  auto db = fixtures::MakeChainDatabase(depth, 4);
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::ChainViewQuery(depth));
  ASSERT_TRUE(uf.ok());
  CheckReport r = (*uf)->Check(fixtures::ChainDeleteUpdate(0, 1));
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  // Row 1 at every level references row 1 above: one tuple per level goes.
  EXPECT_EQ(r.rows_affected, depth);
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainDepthTest,
                         ::testing::Values(2, 3, 5, 8, 12));

TEST(ChainScalingTest, MarkingStaysPolynomial) {
  // Marking time must grow gently with view size (poly, small constants):
  // compare depth 4 vs depth 16 — allow a generous 100x envelope against
  // the 16x node growth (quadratic rules), just catching exponential
  // blowups.
  auto time_marking = [](int depth) {
    auto db = fixtures::MakeChainDatabase(depth, 2);
    EXPECT_TRUE(db.ok());
    auto t0 = std::chrono::steady_clock::now();
    auto uf = UFilter::Create(db->get(), fixtures::ChainViewQuery(depth));
    EXPECT_TRUE(uf.ok());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  double shallow = time_marking(4);
  double deep = time_marking(16);
  EXPECT_LT(deep, shallow * 100 + 0.05);
}

}  // namespace
}  // namespace ufilter
