// The two-phase lifecycle must be observationally identical to the one-shot
// path: for every paper update u1..u13, Prepare + Execute lands in the same
// verdict with the same translation as Check, and a plan can be executed
// repeatedly.
#include <gtest/gtest.h>

#include <memory>

#include "fixtures/bookdb.h"
#include "relational/sqlgen.h"
#include "ufilter/checker.h"
#include "xquery/parser.h"

namespace ufilter {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::Translatability;
using check::UFilter;

struct Instance {
  std::unique_ptr<relational::Database> db;
  std::unique_ptr<UFilter> uf;
};

Instance MakeInstance() {
  Instance inst;
  auto db = fixtures::MakeBookDatabase();
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  inst.db = std::move(*db);
  auto uf = UFilter::Create(inst.db.get(), fixtures::BookViewQuery());
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  inst.uf = std::move(*uf);
  return inst;
}

void ExpectSameReport(const CheckReport& a, const CheckReport& b,
                      const std::string& label) {
  EXPECT_EQ(a.outcome, b.outcome) << label << ": " << a.Describe() << " vs "
                                  << b.Describe();
  EXPECT_EQ(a.star_class, b.star_class) << label;
  EXPECT_EQ(a.condition, b.condition) << label;
  EXPECT_EQ(a.rows_affected, b.rows_affected) << label;
  EXPECT_EQ(a.zero_tuple_warning, b.zero_tuple_warning) << label;
  EXPECT_EQ(relational::UpdateSequenceToSql(a.translation),
            relational::UpdateSequenceToSql(b.translation))
      << label;
  EXPECT_EQ(a.probes, b.probes) << label;
}

TEST(PreparedEquivalenceTest, RoundTripsEveryPaperUpdate) {
  for (int u = 1; u <= 13; ++u) {
    // Separate instances so applied updates cannot contaminate each other.
    Instance one_shot = MakeInstance();
    Instance two_phase = MakeInstance();
    CheckReport via_check = one_shot.uf->Check(fixtures::PaperUpdate(u));
    auto plan = two_phase.uf->Prepare(fixtures::PaperUpdate(u));
    CheckReport via_execute = two_phase.uf->Execute(*plan);
    ExpectSameReport(via_check, via_execute, "u" + std::to_string(u));
    // The databases must agree on the resulting state.
    EXPECT_EQ(one_shot.db->TotalRows(), two_phase.db->TotalRows())
        << "u" << u;
  }
}

TEST(PreparedEquivalenceTest, PlanIsReusableAcrossExecutes) {
  Instance inst = MakeInstance();
  auto plan = inst.uf->Prepare(fixtures::PaperUpdate(8));
  CheckOptions dry;
  dry.apply = false;
  CheckReport first = inst.uf->Execute(*plan, dry);
  CheckReport second = inst.uf->Execute(*plan, dry);
  ExpectSameReport(first, second, "repeated execute");
  EXPECT_EQ(first.outcome, CheckOutcome::kExecuted) << first.Describe();
}

TEST(PreparedEquivalenceTest, PlanExposesCompileVerdict) {
  Instance inst = MakeInstance();
  auto plan = inst.uf->Prepare(fixtures::PaperUpdate(9));
  ASSERT_TRUE(plan->parsed());
  ASSERT_EQ(plan->actions().size(), 1u);
  EXPECT_TRUE(plan->actions()[0].bound_ok);
  EXPECT_EQ(plan->star_class(), Translatability::kConditionallyTranslatable);
  EXPECT_EQ(plan->owner(), inst.uf.get());
  EXPECT_FALSE(plan->normalized_text().empty());
  EXPECT_NE(plan->template_hash(), 0u);
}

TEST(PreparedEquivalenceTest, RunStarFalseSkipsTheStarGate) {
  // The "Update" (no checking) baseline: a prepared untranslatable update
  // goes through to step 3 when the STAR gate is disabled.
  Instance inst = MakeInstance();
  CheckOptions options;
  options.run_star = false;
  options.apply = false;
  CheckReport r = inst.uf->Check(fixtures::PaperUpdate(2), options);
  EXPECT_NE(r.outcome, CheckOutcome::kUntranslatable) << r.Describe();
  EXPECT_EQ(r.star_class, Translatability::kUnclassified);
}

TEST(PreparedEquivalenceTest, RunStarFalseColdPathPaysNoStarAnywhere) {
  // The Figs. 13/14 baseline contract: with the STAR gate off and the plan
  // cache bypassed, no STAR classification runs — not even at compile.
  Instance inst = MakeInstance();
  CheckOptions options;
  options.run_star = false;
  options.apply = false;
  options.use_plan_cache = false;
  inst.db->ResetWorkCounters();
  CheckReport r = inst.uf->Check(fixtures::PaperUpdate(8), options);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(inst.db->SnapshotWorkCounters().star_checks, 0u);
}

TEST(PreparedEquivalenceTest, CachedPlanServesLaterRunStarTrueCalls) {
  // A plan first requested with run_star=false still carries STAR (cached
  // plans are compiled fully), so a later run_star=true Check on the same
  // template gets the real verdict from the cache.
  Instance inst = MakeInstance();
  CheckOptions no_star;
  no_star.run_star = false;
  CheckReport first = inst.uf->Check(fixtures::PaperUpdate(2), no_star);
  EXPECT_NE(first.outcome, CheckOutcome::kUntranslatable);
  CheckReport second = inst.uf->Check(fixtures::PaperUpdate(2));
  EXPECT_EQ(second.outcome, CheckOutcome::kUntranslatable)
      << second.Describe();
  EXPECT_TRUE(second.from_plan_cache);
}

TEST(PreparedEquivalenceTest, RunDataCheckFalseStopsAfterStar) {
  Instance inst = MakeInstance();
  CheckOptions options;
  options.run_data_check = false;
  CheckReport r = inst.uf->Check(fixtures::PaperUpdate(8), options);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.star_class, Translatability::kUnconditionallyTranslatable);
  EXPECT_TRUE(r.translation.empty());
  EXPECT_TRUE(r.probes.empty());
}

TEST(PreparedEquivalenceTest, MultiActionStatementViaPrepare) {
  // Delete the reviews of book 98001 and reinsert one, atomically.
  const std::string stmt_text = R"(FOR $book IN document("BookView.xml")/book
WHERE $book/price < 40.00
UPDATE $book {
  DELETE $book/review,
  INSERT
  <review>
    <reviewid>007</reviewid>
    <comment>Replacement review.</comment>
  </review>
})";
  Instance one_shot = MakeInstance();
  Instance two_phase = MakeInstance();
  CheckReport via_check = one_shot.uf->Check(stmt_text);
  auto plan = two_phase.uf->Prepare(stmt_text);
  ASSERT_EQ(plan->actions().size(), 2u);
  CheckReport via_execute = two_phase.uf->Execute(*plan);
  ExpectSameReport(via_check, via_execute, "multi-action");
  EXPECT_EQ(one_shot.db->TotalRows(), two_phase.db->TotalRows());
}

}  // namespace
}  // namespace ufilter
