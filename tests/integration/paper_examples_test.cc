// End-to-end reproduction of the paper's worked examples: every update
// u1..u13 of Figs. 4 and 10 must land in the verdict class the paper gives
// it, and executed updates must produce exactly the expected view change
// (Definition 1's rectangle rule).
#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "ufilter/blind.h"
#include "ufilter/checker.h"
#include "ufilter/xml_apply.h"
#include "view/diff.h"
#include "xml/writer.h"
#include "xquery/parser.h"

namespace ufilter {
namespace {

using check::CheckOutcome;
using check::CheckOptions;
using check::CheckReport;
using check::Translatability;
using check::UFilter;

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    auto uf = UFilter::Create(db_.get(), fixtures::BookViewQuery());
    ASSERT_TRUE(uf.ok()) << uf.status().ToString();
    uf_ = std::move(*uf);
  }

  CheckReport Check(int update, CheckOptions options = {}) {
    return uf_->Check(fixtures::PaperUpdate(update), options);
  }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<UFilter> uf_;
};

TEST_F(PaperExamplesTest, U1InvalidNotNullAndCheck) {
  CheckReport r = Check(1);
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
  EXPECT_TRUE(r.error.IsInvalidUpdate());
}

TEST_F(PaperExamplesTest, U2UntranslatablePublisherDelete) {
  CheckReport r = Check(2);
  EXPECT_EQ(r.outcome, CheckOutcome::kUntranslatable) << r.Describe();
}

TEST_F(PaperExamplesTest, U3DataConflictBookNotInView) {
  CheckReport r = Check(3);
  EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict) << r.Describe();
}

TEST_F(PaperExamplesTest, U4RejectedKeyExists) {
  // With the full BookView (publisher republished under the root) the book
  // insert is already rejected by STAR (Rule 3); the paper also calls u4
  // "not translatable".
  CheckReport r = Check(4);
  EXPECT_EQ(r.outcome, CheckOutcome::kUntranslatable) << r.Describe();
}

TEST_F(PaperExamplesTest, U4DataConflictOnReducedView) {
  // Without the republished branch the insert is schema-safe and the key
  // conflict is caught by the step-3 update-point check instead.
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::BookViewNoRepublishQuery());
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();
  CheckReport r = (*uf)->Check(fixtures::PaperUpdate(4));
  EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict) << r.Describe();
}

TEST_F(PaperExamplesTest, U5InvalidPredicateOverlap) {
  CheckReport r = Check(5);
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(PaperExamplesTest, U6InvalidKeyTextDelete) {
  CheckReport r = Check(6);
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(PaperExamplesTest, U7InvalidMissingPublisher) {
  CheckReport r = Check(7);
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(PaperExamplesTest, U8UnconditionalReviewDelete) {
  CheckReport r = Check(8);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.star_class, Translatability::kUnconditionallyTranslatable);
  // Book 98001 ($37) has two reviews; both go away.
  EXPECT_EQ(r.rows_affected, 2) << r.Describe();
}

TEST_F(PaperExamplesTest, U9ConditionalBookDelete) {
  CheckReport r = Check(9);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.star_class, Translatability::kConditionallyTranslatable);
  EXPECT_EQ(r.condition, "translation minimization");
  // Book 98003 ($48) is deleted; its publisher A01 is still referenced by
  // book 98001 and must survive (minimization).
  auto publisher = db_->GetTable("publisher");
  ASSERT_TRUE(publisher.ok());
  EXPECT_EQ((*publisher)->live_row_count(), 3u);
  auto book = db_->GetTable("book");
  ASSERT_TRUE(book.ok());
  EXPECT_EQ((*book)->live_row_count(), 2u);
}

TEST_F(PaperExamplesTest, U10UntranslatablePublisherDelete) {
  CheckReport r = Check(10);
  EXPECT_EQ(r.outcome, CheckOutcome::kUntranslatable) << r.Describe();
}

TEST_F(PaperExamplesTest, U11DataConflictBookNotInView) {
  CheckReport r = Check(11);
  EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict) << r.Describe();
}

TEST_F(PaperExamplesTest, U12ZeroTuplesWarning) {
  CheckReport r = Check(12);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_TRUE(r.zero_tuple_warning);
  EXPECT_EQ(r.rows_affected, 0);
}

TEST_F(PaperExamplesTest, U13TranslatedReviewInsert) {
  CheckReport r = Check(13);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.rows_affected, 1);
  // The probe supplied bookid 98003 for the translated INSERT (the paper's
  // U1 statement).
  ASSERT_EQ(r.translation.size(), 1u);
  EXPECT_EQ(r.translation[0].table, "review");
  EXPECT_EQ(r.translation[0].values.at("bookid").AsString(), "98003");
}

// Executed updates must satisfy the rectangle rule: the view after the
// translated update equals the view-side application of the update.
TEST_F(PaperExamplesTest, RectangleRuleHoldsForExecutedUpdates) {
  for (int u : {8, 9, 12, 13}) {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok());
    auto uf = UFilter::Create(db->get(), fixtures::BookViewQuery());
    ASSERT_TRUE(uf.ok());
    auto before = (*uf)->MaterializeView();
    ASSERT_TRUE(before.ok());
    auto stmt = xq::ParseUpdate(fixtures::PaperUpdate(u));
    ASSERT_TRUE(stmt.ok()) << "u" << u << ": " << stmt.status().ToString();
    auto applied = check::ApplyUpdateToXml(before->get(), *stmt);
    ASSERT_TRUE(applied.ok());

    CheckReport r = (*uf)->CheckParsed(*stmt);
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted)
        << "u" << u << ": " << r.Describe();
    auto after = (*uf)->MaterializeView();
    ASSERT_TRUE(after.ok());
    auto diff = view::FirstDifference(**before, **after);
    EXPECT_FALSE(diff.has_value())
        << "u" << u << " side effect: " << *diff << "\nexpected:\n"
        << xml::ToString(**before) << "\nactual:\n"
        << xml::ToString(**after);
  }
}

// The blind baseline detects (and rolls back) exactly the updates U-Filter
// rejects at step 2, but only after paying for execution + materialization.
TEST_F(PaperExamplesTest, BlindBaselineDetectsU9SideEffectFreedom) {
  auto stmt = xq::ParseUpdate(fixtures::PaperUpdate(10));
  ASSERT_TRUE(stmt.ok());
  auto blind = check::BlindExecute(uf_.get(), *stmt);
  ASSERT_TRUE(blind.ok()) << blind.status().ToString();
  EXPECT_TRUE(blind->side_effect);  // publisher delete kills the book too
  // The database must be unchanged after rollback.
  auto publisher = db_->GetTable("publisher");
  EXPECT_EQ((*publisher)->live_row_count(), 3u);
}

TEST_F(PaperExamplesTest, StrategiesAgreeOnPaperUpdates) {
  using check::DataCheckStrategy;
  for (DataCheckStrategy s : {DataCheckStrategy::kInternal,
                              DataCheckStrategy::kHybrid,
                              DataCheckStrategy::kOutside}) {
    for (int u = 1; u <= 13; ++u) {
      auto db = fixtures::MakeBookDatabase();
      ASSERT_TRUE(db.ok());
      auto uf = UFilter::Create(db->get(), fixtures::BookViewQuery());
      ASSERT_TRUE(uf.ok());
      CheckOptions options;
      options.strategy = s;
      CheckReport r = (*uf)->Check(fixtures::PaperUpdate(u), options);
      CheckOutcome expected;
      switch (u) {
        case 1:
        case 5:
        case 6:
        case 7:
          expected = CheckOutcome::kInvalid;
          break;
        case 2:
        case 4:
        case 10:
          expected = CheckOutcome::kUntranslatable;
          break;
        case 3:
        case 11:
          expected = CheckOutcome::kDataConflict;
          break;
        default:
          expected = CheckOutcome::kExecuted;
      }
      EXPECT_EQ(r.outcome, expected)
          << "u" << u << " strategy " << check::DataCheckStrategyName(s)
          << ": " << r.Describe();
    }
  }
}

}  // namespace
}  // namespace ufilter
