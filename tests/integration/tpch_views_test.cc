// Integration over the TPC-H substrate: the Section 7.2 views behave as the
// paper describes, end to end (classification, execution, rectangle rule,
// blind-baseline side-effect detection).
#include <gtest/gtest.h>

#include "fixtures/tpch_views.h"
#include "relational/tpch.h"
#include "ufilter/blind.h"
#include "ufilter/checker.h"
#include "ufilter/xml_apply.h"
#include "view/diff.h"
#include "xquery/parser.h"

namespace ufilter {
namespace {

using check::CheckOutcome;
using check::CheckReport;
using check::Translatability;
using check::UFilter;

std::unique_ptr<relational::Database> Db(double scale = 0.2) {
  relational::tpch::TpchOptions options;
  options.scale = scale;
  auto db = relational::tpch::MakeDatabase(options);
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

TEST(TpchViewsTest, VsuccessDeletesUnconditionalAtEveryLevel) {
  struct Case {
    const char* tag;
    int64_t key;
    int64_t min_deleted;
  };
  for (const Case& c : {Case{"region", 0, 1}, Case{"nation", 3, 1},
                        Case{"customer", 5, 1}, Case{"order", 10, 1},
                        Case{"lineitem", 2, 1}}) {
    auto db = Db();
    auto uf = UFilter::Create(db.get(), fixtures::VSuccessQuery());
    ASSERT_TRUE(uf.ok()) << uf.status().ToString();
    CheckReport r =
        (*uf)->Check(fixtures::DeleteElementUpdate(c.tag, c.key));
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted)
        << c.tag << ": " << r.Describe();
    EXPECT_EQ(r.star_class, Translatability::kUnconditionallyTranslatable)
        << c.tag;
    EXPECT_GE(r.rows_affected, c.min_deleted) << c.tag;
  }
}

TEST(TpchViewsTest, RegionDeleteCascadesThroughAllLevels) {
  auto db = Db();
  size_t before = db->TotalRows();
  auto uf = UFilter::Create(db.get(), fixtures::VSuccessQuery());
  ASSERT_TRUE(uf.ok());
  CheckReport r = (*uf)->Check(fixtures::DeleteElementUpdate("region", 0));
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  // Region 0 owns 5 nations and roughly 1/5 of everything below.
  EXPECT_GT(static_cast<size_t>(r.rows_affected), 6u);
  EXPECT_EQ(before - db->TotalRows(), static_cast<size_t>(r.rows_affected));
}

TEST(TpchViewsTest, VfailDeleteOfRepublishedRelationRejected) {
  for (const char* rel : {"region", "nation", "customer"}) {
    auto db = Db(0.1);
    auto uf = UFilter::Create(db.get(), fixtures::VFailQuery(rel));
    ASSERT_TRUE(uf.ok()) << uf.status().ToString();
    std::string tag = rel;
    if (tag == "orders") tag = "order";
    CheckReport r = (*uf)->Check(fixtures::DeleteElementUpdate(tag, 0));
    EXPECT_EQ(r.outcome, CheckOutcome::kUntranslatable)
        << rel << ": " << r.Describe();
    // Nothing was touched.
    EXPECT_EQ(db->undo_log_size(), 0u);
  }
}

TEST(TpchViewsTest, VfailBlindBaselineDetectsSideEffectAndRollsBack) {
  auto db = Db(0.1);
  size_t before = db->TotalRows();
  auto uf = UFilter::Create(db.get(), fixtures::VFailQuery("region"));
  ASSERT_TRUE(uf.ok());
  auto stmt = xq::ParseUpdate(fixtures::DeleteElementUpdate("region", 0));
  ASSERT_TRUE(stmt.ok());
  auto blind = check::BlindExecute(uf->get(), *stmt);
  ASSERT_TRUE(blind.ok()) << blind.status().ToString();
  EXPECT_TRUE(blind->side_effect);
  EXPECT_EQ(db->TotalRows(), before);  // rolled back
}

TEST(TpchViewsTest, VsuccessBlindBaselineAppliesCleanDelete) {
  auto db = Db(0.1);
  auto uf = UFilter::Create(db.get(), fixtures::VSuccessQuery());
  ASSERT_TRUE(uf.ok());
  auto stmt = xq::ParseUpdate(fixtures::DeleteElementUpdate("nation", 7));
  ASSERT_TRUE(stmt.ok());
  auto blind = check::BlindExecute(uf->get(), *stmt);
  ASSERT_TRUE(blind.ok()) << blind.status().ToString();
  EXPECT_FALSE(blind->side_effect);
  EXPECT_TRUE(blind->applied);
}

TEST(TpchViewsTest, LineitemInsertTranslatesAndAppears) {
  auto db = Db(0.1);
  auto uf = UFilter::Create(db.get(), fixtures::VLinearQuery());
  ASSERT_TRUE(uf.ok());
  CheckReport r = (*uf)->Check(fixtures::InsertLineitemUpdate(3, 9));
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.star_class, Translatability::kUnconditionallyTranslatable);
  ASSERT_EQ(r.translation.size(), 1u);
  EXPECT_EQ(r.translation[0].table, "lineitem");
  EXPECT_EQ(r.translation[0].values.at("l_orderkey").AsInt(), 3);
  // The new lineitem is visible in the materialized view.
  auto view = (*uf)->MaterializeView();
  ASSERT_TRUE(view.ok());
  bool found = false;
  std::vector<const xml::Node*> stack = {view->get()};
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    if (n->is_element() && n->label() == "lineitem" &&
        n->ChildText("l_linenumber") == "9") {
      found = true;
    }
    for (const auto& c : n->children()) stack.push_back(c.get());
  }
  EXPECT_TRUE(found);
}

TEST(TpchViewsTest, LineitemInsertKeyConflictRejected) {
  auto db = Db(0.1);
  auto uf = UFilter::Create(db.get(), fixtures::VLinearQuery());
  ASSERT_TRUE(uf.ok());
  // Line number 1 of order 3 already exists.
  CheckReport r = (*uf)->Check(fixtures::InsertLineitemUpdate(3, 1));
  EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict) << r.Describe();
}

TEST(TpchViewsTest, LineitemInsertIntoMissingOrderRejected) {
  auto db = Db(0.1);
  auto uf = UFilter::Create(db.get(), fixtures::VLinearQuery());
  ASSERT_TRUE(uf.ok());
  CheckReport r = (*uf)->Check(fixtures::InsertLineitemUpdate(999999, 9));
  EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict) << r.Describe();
}

TEST(TpchViewsTest, RectangleRuleOnTpch) {
  for (const char* workload :
       {"delete-nation", "delete-order", "insert-lineitem"}) {
    auto db = Db(0.1);
    auto uf = UFilter::Create(db.get(), fixtures::VSuccessQuery());
    ASSERT_TRUE(uf.ok());
    std::string text;
    if (std::string(workload) == "delete-nation") {
      text = fixtures::DeleteElementUpdate("nation", 12);
    } else if (std::string(workload) == "delete-order") {
      text = fixtures::DeleteElementUpdate("order", 42);
    } else {
      text = fixtures::InsertLineitemUpdate(42, 7);
    }
    auto stmt = xq::ParseUpdate(text);
    ASSERT_TRUE(stmt.ok());
    auto expected = (*uf)->MaterializeView();
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(check::ApplyUpdateToXml(expected->get(), *stmt).ok());
    CheckReport r = (*uf)->CheckParsed(*stmt);
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted)
        << workload << ": " << r.Describe();
    auto actual = (*uf)->MaterializeView();
    ASSERT_TRUE(actual.ok());
    auto diff = view::FirstDifference(**expected, **actual);
    EXPECT_FALSE(diff.has_value()) << workload << ": " << *diff;
  }
}

TEST(TpchViewsTest, VbushDeleteOrderExecutes) {
  auto db = Db(0.1);
  auto uf = UFilter::Create(db.get(), fixtures::VBushQuery());
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();
  CheckReport r = (*uf)->Check(
      "FOR $nation IN document(\"V.xml\")/nation, $order IN $nation/order\n"
      "WHERE $order/o_orderkey/text() = 5\n"
      "UPDATE $nation {\n  DELETE $order\n}");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  // The order plus its 4 lineitems disappear; the customer tuple is shared
  // with the customer's other orders and must survive minimization.
  auto customer = db->GetTable("customer");
  size_t customers = (*customer)->live_row_count();
  EXPECT_EQ(customers, 15u);  // scale 0.1 -> 15 customers, none deleted
}

TEST(TpchViewsTest, DryRunLeavesDatabaseUntouched) {
  auto db = Db(0.1);
  size_t before = db->TotalRows();
  auto uf = UFilter::Create(db.get(), fixtures::VSuccessQuery());
  ASSERT_TRUE(uf.ok());
  check::CheckOptions options;
  options.apply = false;
  CheckReport r = (*uf)->Check(fixtures::DeleteElementUpdate("region", 1),
                               options);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_GT(r.rows_affected, 0);
  EXPECT_EQ(db->TotalRows(), before);
}

TEST(TpchViewsTest, MarkingIsCheapRelativeToData) {
  auto db = Db(0.5);
  auto uf = UFilter::Create(db.get(), fixtures::VSuccessQuery());
  ASSERT_TRUE(uf.ok());
  // The paper reports 0.12s/0.15s marking on 2005 hardware; ours must be
  // well under that.
  EXPECT_LT((*uf)->marking_seconds(), 0.15);
}

}  // namespace
}  // namespace ufilter
