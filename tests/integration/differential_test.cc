// Differential test of the compiled plan executor against the retained
// reference interpreter: randomized SPJ and disjunctive queries over the
// bookdb and TPC-H fixtures must produce byte-identical results — rows,
// per-table row ids and branch demultiplexing — including the NULL
// semantics (NULL never joins or matches). Index-free temp tables are
// mixed in so the hash-join and join-reorder paths are exercised.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fixtures/bookdb.h"
#include "relational/query.h"
#include "relational/tpch.h"

#include "../support/fuzz_seed.h"

namespace ufilter::relational {
namespace {

class QueryFuzzer {
 public:
  /// `cheap_tables` disables cross products and theta joins: the *reference*
  /// interpreter pays O(n*m) for them, which is exactly what the compiled
  /// executor fixes — affordable on bookdb, not on TPC-H.
  QueryFuzzer(Database* db, std::vector<std::string> pool, uint32_t seed,
              bool cheap_tables = true)
      : db_(db), pool_(std::move(pool)), cheap_tables_(cheap_tables),
        rng_(seed) {}

  DisjunctiveQuery Generate() {
    DisjunctiveQuery dq;
    SelectQuery& q = dq.base;
    const int table_count = 1 + static_cast<int>(rng_() % 3);
    from_.clear();
    for (int i = 0; i < table_count; ++i) {
      std::string name = pool_[rng_() % pool_.size()];
      q.tables.push_back({name, Alias(i)});
      from_.push_back(std::move(name));
    }
    // Joins: chain consecutive tables on same-typed columns (usually an
    // equi-join — the interesting access paths — sometimes theta).
    for (int i = 1; i < table_count; ++i) {
      if (cheap_tables_ && rng_() % 4 == 0) continue;  // cross product
      std::string a = RandomColumn(i - 1);
      std::string b = SameTypeColumn(i, ColumnType(i - 1, a));
      if (b.empty()) continue;
      CompareOp op = cheap_tables_ && rng_() % 5 == 0 ? RandomOp()
                                                      : CompareOp::kEq;
      q.joins.push_back({{Alias(i - 1), a}, op, {Alias(i), b}});
    }
    // Literal filters sampled from live data (occasionally NULL to pin the
    // NULL-never-matches semantics).
    const int filter_count = static_cast<int>(rng_() % 3);
    for (int i = 0; i < filter_count; ++i) {
      int t = static_cast<int>(rng_() % q.tables.size());
      std::string col = RandomColumn(t);
      q.filters.push_back({{Alias(t), col}, RandomOp(), SampleLiteral(t, col)});
    }
    const int select_count = 1 + static_cast<int>(rng_() % 3);
    for (int i = 0; i < select_count; ++i) {
      int t = static_cast<int>(rng_() % q.tables.size());
      q.selects.push_back({Alias(t), RandomColumn(t)});
    }
    // Branches: OR-of-conjunctions over random tables/columns. An empty
    // conjunction is a TRUE branch (every result row belongs to it).
    if (rng_() % 2 == 0) {
      const int branch_count = 1 + static_cast<int>(rng_() % 3);
      for (int b = 0; b < branch_count; ++b) {
        std::vector<FilterPredicate> branch;
        const int conj = static_cast<int>(rng_() % 3);
        for (int i = 0; i < conj; ++i) {
          int t = static_cast<int>(rng_() % q.tables.size());
          std::string col = RandomColumn(t);
          branch.push_back(
              {{Alias(t), col}, RandomOp(), SampleLiteral(t, col)});
        }
        dq.branches.push_back(std::move(branch));
      }
    }
    return dq;
  }

 private:
  static std::string Alias(int i) { return "t" + std::to_string(i); }

  const Table& TableAt(int from_pos) {
    return **db_->GetTable(from_[static_cast<size_t>(from_pos)]);
  }

  std::string RandomColumn(int from_pos) {
    const auto& cols = TableAt(from_pos).schema().columns();
    return cols[rng_() % cols.size()].name;
  }

  ValueType ColumnType(int from_pos, const std::string& col) {
    const TableSchema& s = TableAt(from_pos).schema();
    return s.columns()[static_cast<size_t>(s.ColumnIndex(col))].type;
  }

  std::string SameTypeColumn(int from_pos, ValueType type) {
    std::vector<std::string> matches;
    for (const Column& c : TableAt(from_pos).schema().columns()) {
      if (c.type == type) matches.push_back(c.name);
    }
    if (matches.empty()) return "";
    return matches[rng_() % matches.size()];
  }

  CompareOp RandomOp() {
    static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kEq,
                                     CompareOp::kEq, CompareOp::kNe,
                                     CompareOp::kLt, CompareOp::kLe,
                                     CompareOp::kGt, CompareOp::kGe};
    return kOps[rng_() % (sizeof(kOps) / sizeof(kOps[0]))];
  }

  Value SampleLiteral(int from_pos, const std::string& col) {
    if (rng_() % 10 == 0) return Value::Null();  // NULL never matches
    const Table& table = TableAt(from_pos);
    std::vector<RowId> ids = table.AllRowIds();
    if (ids.empty()) return Value::Int(0);
    const Row* row = table.GetRow(ids[rng_() % ids.size()]);
    int c = table.schema().ColumnIndex(col);
    return (*row)[static_cast<size_t>(c)];
  }

  Database* db_;
  std::vector<std::string> pool_;
  bool cheap_tables_;
  std::vector<std::string> from_;  ///< table names behind t0, t1, ...
  std::mt19937 rng_;
};

void ExpectIdentical(Database* db, const DisjunctiveQuery& dq) {
  QueryEvaluator eval(db);
  auto compiled = eval.ExecuteDisjunctive(dq);
  auto reference = eval.ExecuteReference(dq.base, dq.branches);
  // Third run, same query, with the context pinned to an MVCC snapshot:
  // base-table scans and unindexed hash-join builds now serve from the
  // columnar read path (temp tables like TAB_fuzz stay on the row path).
  // The root context keeps its temp tables while pinned, so every fuzzed
  // shape — including temp joins — replays under all three executions.
  db->root_context()->PinReadSnapshot(db->OpenSnapshot());
  auto columnar = eval.ExecuteDisjunctive(dq);
  db->root_context()->ClearReadSnapshot();
  ASSERT_EQ(compiled.ok(), reference.ok()) << dq.ToSql();
  ASSERT_EQ(columnar.ok(), reference.ok()) << dq.ToSql();
  if (!compiled.ok()) return;
  SCOPED_TRACE(dq.ToSql());
  ASSERT_EQ(compiled->merged.column_names, reference->merged.column_names);
  ASSERT_EQ(compiled->merged.rows.size(), reference->merged.rows.size());
  // Both executors emit rows lexicographically by contributing row ids in
  // FROM order, so the comparison is positional, not set-based.
  EXPECT_EQ(compiled->merged.row_ids, reference->merged.row_ids);
  for (size_t i = 0; i < compiled->merged.rows.size(); ++i) {
    const Row& a = compiled->merged.rows[i];
    const Row& b = reference->merged.rows[i];
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_TRUE(a[j].is_null() ? b[j].is_null() : a[j] == b[j])
          << "row " << i << " col " << j;
    }
  }
  EXPECT_EQ(compiled->branch_rows, reference->branch_rows);
  // Columnar vs row path: byte-identical, including value *types* (the
  // columnar path must fetch surviving rows from the row store, never
  // materialize from widened arrays — an int stored in a DOUBLE column has
  // to come back as an int).
  EXPECT_EQ(columnar->merged.column_names, compiled->merged.column_names);
  EXPECT_EQ(columnar->merged.row_ids, compiled->merged.row_ids);
  ASSERT_EQ(columnar->merged.rows.size(), compiled->merged.rows.size());
  for (size_t i = 0; i < columnar->merged.rows.size(); ++i) {
    const Row& a = columnar->merged.rows[i];
    const Row& b = compiled->merged.rows[i];
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_TRUE(a[j].type() == b[j].type() &&
                  (a[j].is_null() || a[j] == b[j]))
          << "columnar row " << i << " col " << j;
    }
  }
  EXPECT_EQ(columnar->branch_rows, compiled->branch_rows);
}

TEST(DifferentialTest, RandomizedBookDbQueries) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  // An index-free materialization joins the pool: temp-table joins must
  // demux identically through the hash-join / reorder paths.
  QueryEvaluator eval(db->get());
  SelectQuery mat;
  mat.tables = {{"book", "b"}};
  mat.selects = {{"b", "bookid"}, {"b", "pubid"}, {"b", "price"}};
  ASSERT_TRUE(eval.MaterializeInto(mat, "TAB_fuzz").ok());
  QueryFuzzer fuzzer(db->get(),
                     {"book", "publisher", "review", "book", "TAB_fuzz"},
                     test_support::FuzzSeed("bookdb-differential", 20260728));
  for (int i = 0; i < 300; ++i) {
    ExpectIdentical(db->get(), fuzzer.Generate());
    if (::testing::Test::HasFatalFailure()) break;
  }
  // The pinned third run must actually have exercised the columnar path
  // (scans of unindexed columns / cross products are all but guaranteed
  // across 300 fuzzed shapes).
  EngineStats stats = (*db)->SnapshotWorkCounters();
  EXPECT_GT(stats.columnar_builds, 0u);
  EXPECT_GT(stats.columnar_scan_rows, 0u);
}

TEST(DifferentialTest, RandomizedTpchQueries) {
  tpch::TpchOptions options;
  options.scale = 0.1;
  auto db = tpch::MakeDatabase(options);
  ASSERT_TRUE(db.ok());
  QueryEvaluator eval(db->get());
  SelectQuery mat;
  mat.tables = {{"orders", "o"}};
  mat.selects = {{"o", "o_orderkey"}, {"o", "o_custkey"}};
  mat.filters = {{{"o", "o_orderyear"}, CompareOp::kGe, Value::Int(1995)}};
  ASSERT_TRUE(eval.MaterializeInto(mat, "TAB_orders").ok());
  QueryFuzzer fuzzer(
      db->get(), {"customer", "orders", "lineitem", "nation", "TAB_orders"},
      test_support::FuzzSeed("tpch-differential", 611),
      /*cheap_tables=*/false);
  for (int i = 0; i < 120; ++i) {
    ExpectIdentical(db->get(), fuzzer.Generate());
    if (::testing::Test::HasFatalFailure()) break;
  }
}

}  // namespace
}  // namespace ufilter::relational
